//! The journal-format battery: round-trip properties for every record
//! variant, golden-bytes fixtures pinning the v1 on-disk format, an
//! adversarial suite proving the decoder is total (byte soup, hostile
//! counts, oversized lengths rejected before allocation, wrong versions,
//! corrupted checksums — typed errors, never panics), and recovery tests
//! for torn tails and reopened stores.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

use proptest::prelude::*;
use talus_core::limits::{
    STORE_MAX_CUT_IDS, STORE_MAX_RECORD_LEN, WIRE_MAX_CURVE_POINTS, WIRE_MAX_TENANTS,
};
use talus_core::{MissCurve, ShadowConfig, TalusOptions, TalusPlan};
use talus_partition::{AllocPolicy, CachePlan, Planner, TenantPlan};
use talus_store::{
    decode_record, encode_record, fnv1a64, scan, Record, Store, StoreError, StoreSink,
    RECORD_HEADER_LEN, STORE_VERSION,
};

static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

/// A fresh per-test directory under the system temp dir (the container
/// has no tempfile crate; pid + counter keeps parallel tests apart).
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "talus-store-test-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Random monotone miss curve derived deterministically from a seed
/// (the same family the serve property tests use).
fn curve_from_seed(seed: u64) -> MissCurve {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let points = 2 + (next() % 15) as usize;
    let mut m = 10.0 + (next() % 40) as f64;
    let sizes: Vec<f64> = (0..points).map(|i| i as f64 * 64.0).collect();
    let misses: Vec<f64> = sizes
        .iter()
        .map(|_| {
            let v = m;
            m = (m - (next() % 12) as f64).max(0.0);
            v
        })
        .collect();
    MissCurve::from_samples(&sizes, &misses).expect("valid curve")
}

/// A planner in every configuration, picked by seed.
fn planner_from_seed(seed: u64) -> Planner {
    let policy = match seed % 4 {
        0 => AllocPolicy::Hill,
        1 => AllocPolicy::Lookahead,
        2 => AllocPolicy::Fair,
        _ => AllocPolicy::Imbalanced,
    };
    let mut planner = Planner::new(1 + (seed >> 2) % 256)
        .with_policy(policy)
        .with_options(TalusOptions {
            safety_margin: (seed % 11) as f64 * 0.01,
            vertex_tolerance: 1e-9 * (1 + seed % 5) as f64,
        });
    if seed & (1 << 20) != 0 {
        planner = planner.raw_curves();
    }
    planner
}

/// A plan body mixing unpartitioned and shadow tenants, picked by seed.
fn plan_from_seed(seed: u64) -> CachePlan {
    let tenants = (1 + seed % 4) as usize;
    CachePlan {
        round: seed % 100,
        tenants: (0..tenants as u64)
            .map(|i| {
                let s = seed.wrapping_add(i.wrapping_mul(0x9E37_79B9));
                let capacity = 64 * (1 + s % 32);
                let plan = if s & 1 == 0 {
                    TalusPlan::Unpartitioned {
                        size: capacity as f64,
                        expected_misses: (s % 997) as f64 * 0.125,
                    }
                } else {
                    let total = capacity as f64;
                    let alpha = total * 0.25;
                    let beta = total * 1.5;
                    let rho = 0.1 + (s % 80) as f64 / 100.0;
                    TalusPlan::Shadow(ShadowConfig {
                        total,
                        alpha,
                        beta,
                        rho,
                        ideal_rho: rho * 0.95,
                        s1: rho * alpha,
                        s2: total - rho * alpha,
                        expected_misses: (s % 89) as f64 * 0.5,
                    })
                };
                TenantPlan { capacity, plan }
            })
            .collect(),
    }
}

/// Every record variant, picked by discriminant (the shim has no
/// `prop_oneof`, so weighting rides a modulus, as in serve's tests).
fn arb_record() -> impl Strategy<Value = Record> {
    (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(kind, a, b, seed)| {
        match kind % 5 {
            0 => Record::Register {
                seq: a,
                id: b,
                capacity: 1 + seed % (1 << 32),
                tenants: 1 + (seed % u64::from(WIRE_MAX_TENANTS)) as u32,
                planner: planner_from_seed(seed),
            },
            1 => Record::Deregister { seq: a, id: b },
            2 => Record::Curve {
                seq: a,
                id: b,
                tenant: (seed % 64) as u32,
                curve: curve_from_seed(seed),
            },
            3 => Record::EpochCut {
                seq: a,
                shard: (b % 16) as u32,
                epoch: seed % 1000,
                drained: (0..b % 20).map(|i| seed.wrapping_add(i)).collect(),
            },
            _ => Record::Plan {
                seq: a,
                id: b,
                epoch: seed % 1000,
                version: 1 + seed % 64,
                updates: seed % 512,
                plan: plan_from_seed(seed),
            },
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `decode(encode(r)) == r` for every record variant, consuming
    /// exactly the encoded bytes.
    #[test]
    fn records_roundtrip(rec in arb_record()) {
        let bytes = encode_record(&rec);
        let (decoded, used) = decode_record(&bytes).expect("decodes");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(decoded, rec);
    }

    /// A concatenated journal scans back record-for-record with a clean
    /// tail, and scanning is idempotent.
    #[test]
    fn journals_roundtrip_through_scan(
        recs in proptest::collection::vec(arb_record(), 0..12),
    ) {
        let mut bytes = Vec::new();
        for rec in &recs {
            bytes.extend_from_slice(&encode_record(rec));
        }
        let scanned = scan(&bytes);
        prop_assert_eq!(scanned.consumed, bytes.len());
        prop_assert_eq!(scanned.tail, None);
        prop_assert_eq!(&scanned.records, &recs);
        prop_assert_eq!(scan(&bytes), scanned);
    }

    /// Random byte soup never panics the decoder or the scanner, and
    /// the scanner's valid prefix is always within the input.
    #[test]
    fn byte_soup_yields_typed_errors_not_panics(
        soup in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let _ = decode_record(&soup);
        let scanned = scan(&soup);
        prop_assert!(scanned.consumed <= soup.len());
        if scanned.consumed < soup.len() {
            prop_assert!(scanned.tail.is_some());
        }
    }

    /// Truncation at EVERY byte of a journal: the scanner recovers
    /// exactly the records whose bytes fully landed, never panics, and
    /// never resurrects a partial record — the crash-recovery contract
    /// at the byte level.
    #[test]
    fn truncation_at_every_byte_recovers_the_record_prefix(
        recs in proptest::collection::vec(arb_record(), 1..6),
    ) {
        let mut bytes = Vec::new();
        let mut boundaries = vec![0usize];
        for rec in &recs {
            bytes.extend_from_slice(&encode_record(rec));
            boundaries.push(bytes.len());
        }
        for cut in 0..=bytes.len() {
            let scanned = scan(&bytes[..cut]);
            // The recovered prefix is the records fully below the cut.
            let whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            prop_assert_eq!(scanned.records.len(), whole, "cut at {}", cut);
            prop_assert_eq!(scanned.consumed, boundaries[whole], "cut at {}", cut);
            prop_assert_eq!(&scanned.records[..], &recs[..whole]);
            // Mid-record cuts are diagnosed, boundary cuts are clean.
            prop_assert_eq!(scanned.tail.is_none(), cut == boundaries[whole]);
        }
    }

    /// Flipping any single byte of a record's checksum or payload is
    /// detected (checksum mismatch or a typed decode error) — never a
    /// panic, and never a silently different record.
    #[test]
    fn corruption_is_detected(rec in arb_record(), flip in any::<usize>()) {
        let bytes = encode_record(&rec);
        // Skip the length prefix: changing it is torn-tail territory
        // (covered above); here we corrupt checksum or payload bytes.
        let pos = 4 + flip % (bytes.len() - 4);
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 0x40;
        match decode_record(&corrupt) {
            Err(_) => {}
            Ok((decoded, _)) => prop_assert!(
                false,
                "flip at {} went undetected: {:?}",
                pos,
                decoded.label()
            ),
        }
    }
}

#[test]
fn oversized_length_prefix_is_rejected_before_anything_else() {
    // A hostile length with NO payload behind it: if the decoder trusted
    // the length it would report Truncated (wanting the bytes) or try to
    // allocate; instead the cap check fires first.
    for len in [STORE_MAX_RECORD_LEN + 1, u32::MAX, 0xDEAD_BEEF] {
        let mut header = len.to_le_bytes().to_vec();
        header.extend_from_slice(&[0u8; 8]); // checksum field
        assert_eq!(decode_record(&header), Err(StoreError::Oversized { len }));
    }
}

#[test]
fn undersized_length_prefix_is_malformed() {
    for len in [0u32, 1] {
        let mut bytes = len.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 9]);
        assert!(matches!(
            decode_record(&bytes),
            Err(StoreError::Malformed(_))
        ));
    }
}

#[test]
fn hostile_counts_fail_before_allocation() {
    // A curve record claiming u32::MAX points would be ~64 GiB if the
    // decoder trusted the count; passing at all is the no-allocation
    // proof. Payload framing (len + checksum) is valid so the count
    // check itself is what fires.
    let frame = |payload: &[u8]| {
        let mut out = (payload.len() as u32).to_le_bytes().to_vec();
        out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        out.extend_from_slice(payload);
        out
    };
    // Curve record: version, tag=0x03, seq, id, tenant, point count.
    let mut payload = vec![STORE_VERSION, 0x03];
    payload.extend_from_slice(&[0u8; 16]); // seq + id
    payload.extend_from_slice(&0u32.to_le_bytes()); // tenant
    payload.extend_from_slice(&u32::MAX.to_le_bytes());
    assert_eq!(
        decode_record(&frame(&payload)),
        Err(StoreError::BadCount {
            count: u32::MAX,
            max: WIRE_MAX_CURVE_POINTS
        })
    );
    // In-cap counts the record can't hold fail the remaining-bytes check.
    let mut payload = vec![STORE_VERSION, 0x03];
    payload.extend_from_slice(&[0u8; 16]);
    payload.extend_from_slice(&0u32.to_le_bytes());
    payload.extend_from_slice(&WIRE_MAX_CURVE_POINTS.to_le_bytes());
    assert_eq!(decode_record(&frame(&payload)), Err(StoreError::Truncated));
    // Epoch-cut id lists have their own cap.
    let mut payload = vec![STORE_VERSION, 0x04];
    payload.extend_from_slice(&[0u8; 8]); // seq
    payload.extend_from_slice(&0u32.to_le_bytes()); // shard
    payload.extend_from_slice(&[0u8; 8]); // epoch
    payload.extend_from_slice(&u32::MAX.to_le_bytes());
    assert_eq!(
        decode_record(&frame(&payload)),
        Err(StoreError::BadCount {
            count: u32::MAX,
            max: STORE_MAX_CUT_IDS
        })
    );
    // Plan tenant counts too.
    let mut payload = vec![STORE_VERSION, 0x05];
    payload.extend_from_slice(&[0u8; 40]); // seq, id, epoch, version, updates
    payload.extend_from_slice(&[0u8; 8]); // round
    payload.extend_from_slice(&u32::MAX.to_le_bytes());
    assert_eq!(
        decode_record(&frame(&payload)),
        Err(StoreError::BadCount {
            count: u32::MAX,
            max: WIRE_MAX_TENANTS
        })
    );
}

#[test]
fn wrong_version_is_rejected_on_every_tag() {
    let frame = |payload: &[u8]| {
        let mut out = (payload.len() as u32).to_le_bytes().to_vec();
        out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        out.extend_from_slice(payload);
        out
    };
    for version in [0u8, 2, 9, 0xFF] {
        for tag in 0..=0x10u8 {
            let bytes = frame(&[version, tag]);
            assert_eq!(
                decode_record(&bytes),
                Err(StoreError::BadVersion { got: version }),
                "version {version} tag {tag:#04x}"
            );
        }
    }
}

#[test]
fn garbage_tags_are_typed_errors() {
    let frame = |payload: &[u8]| {
        let mut out = (payload.len() as u32).to_le_bytes().to_vec();
        out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        out.extend_from_slice(payload);
        out
    };
    let known = [0x01, 0x02, 0x03, 0x04, 0x05];
    for tag in 0..=0xFFu8 {
        let bytes = frame(&[STORE_VERSION, tag]);
        match decode_record(&bytes) {
            // Known tag with an empty body: truncation is right.
            Err(StoreError::Truncated) => assert!(known.contains(&tag), "tag {tag:#04x}"),
            Err(StoreError::BadTag { got }) => {
                assert_eq!(got, tag);
                assert!(!known.contains(&tag), "tag {tag:#04x}");
            }
            other => panic!("tag {tag:#04x}: unexpected {other:?}"),
        }
    }
}

#[test]
fn register_bounds_are_enforced_at_decode_time() {
    // `restore` builds a CacheSpec (which panics on zero) from decoded
    // fields, so the decoder must reject them first.
    let rec = |capacity: u64, tenants: u32, grain: u64| {
        let mut bytes = encode_record(&Record::Register {
            seq: 1,
            id: 2,
            capacity: 64,
            tenants: 1,
            planner: Planner::new(8),
        });
        // Patch the fields in place (offsets: payload starts at 12;
        // version+tag = 2; seq, id = 16; then capacity, tenants, grain).
        let p = RECORD_HEADER_LEN + 2 + 16;
        bytes[p..p + 8].copy_from_slice(&capacity.to_le_bytes());
        bytes[p + 8..p + 12].copy_from_slice(&tenants.to_le_bytes());
        bytes[p + 12..p + 20].copy_from_slice(&grain.to_le_bytes());
        // Re-checksum the patched payload.
        let sum = fnv1a64(&bytes[RECORD_HEADER_LEN..]);
        bytes[4..12].copy_from_slice(&sum.to_le_bytes());
        bytes
    };
    assert!(matches!(
        decode_record(&rec(0, 1, 8)),
        Err(StoreError::Malformed(_))
    ));
    assert!(matches!(
        decode_record(&rec(64, 0, 8)),
        Err(StoreError::Malformed(_))
    ));
    assert!(matches!(
        decode_record(&rec(64, 1, 0)),
        Err(StoreError::Malformed(_))
    ));
    assert_eq!(
        decode_record(&rec(64, WIRE_MAX_TENANTS + 1, 8)),
        Err(StoreError::BadCount {
            count: WIRE_MAX_TENANTS + 1,
            max: WIRE_MAX_TENANTS
        })
    );
    assert!(decode_record(&rec(64, WIRE_MAX_TENANTS, 8)).is_ok());
}

#[test]
fn trailing_bytes_are_malformed() {
    let rec = Record::Deregister { seq: 3, id: 9 };
    let mut bytes = encode_record(&rec);
    // Extend the payload by one byte, fixing length and checksum so only
    // the trailing byte is wrong.
    bytes.push(0x00);
    let len = (bytes.len() - RECORD_HEADER_LEN) as u32;
    bytes[0..4].copy_from_slice(&len.to_le_bytes());
    let sum = fnv1a64(&bytes[RECORD_HEADER_LEN..]);
    bytes[4..12].copy_from_slice(&sum.to_le_bytes());
    assert!(matches!(
        decode_record(&bytes),
        Err(StoreError::Malformed(_))
    ));
}

// ---------------------------------------------------------------------
// Golden bytes: the v1 on-disk format, pinned byte for byte. If any of
// these fail, the format changed — bump STORE_VERSION and make the
// change deliberate.
// ---------------------------------------------------------------------

#[test]
fn golden_v1_constants() {
    assert_eq!(STORE_VERSION, 1);
    assert_eq!(RECORD_HEADER_LEN, 12);
    // The limits are part of the format contract (decoders reject by
    // them), so drifting them silently is a format change too.
    assert_eq!(STORE_MAX_RECORD_LEN, 1 << 18);
    assert_eq!(STORE_MAX_CUT_IDS, 1 << 14);
    // The checksum function itself is pinned by its standard vectors.
    assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
    assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
}

/// Frames a pinned payload literal: `[len LE][fnv1a64 LE][payload]`.
/// The payload bytes are the fixture; the checksum function is pinned
/// separately by its standard test vectors above.
fn framed(payload: &[u8]) -> Vec<u8> {
    let mut out = (payload.len() as u32).to_le_bytes().to_vec();
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

#[test]
fn golden_v1_deregister_record() {
    let bytes = encode_record(&Record::Deregister { seq: 7, id: 3 });
    assert_eq!(
        bytes,
        framed(&[
            1, 0x02, // version, tag
            7, 0, 0, 0, 0, 0, 0, 0, // seq
            3, 0, 0, 0, 0, 0, 0, 0, // id
        ])
    );
    assert_eq!(bytes.len(), RECORD_HEADER_LEN + 18);
}

#[test]
fn golden_v1_register_record() {
    let bytes = encode_record(&Record::Register {
        seq: 1,
        id: 5,
        capacity: 4096,
        tenants: 2,
        planner: Planner::new(64), // Hill, convexify, 5% margin, 1e-9 tol
    });
    assert_eq!(
        bytes,
        framed(&[
            1, 0x01, // version, tag
            1, 0, 0, 0, 0, 0, 0, 0, // seq
            5, 0, 0, 0, 0, 0, 0, 0, // id
            0x00, 0x10, 0, 0, 0, 0, 0, 0, // capacity = 4096
            2, 0, 0, 0, // tenants
            64, 0, 0, 0, 0, 0, 0, 0, // grain
            0x9A, 0x99, 0x99, 0x99, 0x99, 0x99, 0xA9, 0x3F, // margin 0.05
            0x95, 0xD6, 0x26, 0xE8, 0x0B, 0x2E, 0x11, 0x3E, // tol 1e-9
            0,    // policy: Hill
            1,    // convexify: true
        ])
    );
}

#[test]
fn golden_v1_curve_record() {
    let curve = MissCurve::from_samples(&[0.0, 64.0], &[8.0, 2.0]).unwrap();
    let bytes = encode_record(&Record::Curve {
        seq: 9,
        id: 7,
        tenant: 1,
        curve,
    });
    assert_eq!(
        bytes,
        framed(&[
            1, 0x03, // version, tag
            9, 0, 0, 0, 0, 0, 0, 0, // seq
            7, 0, 0, 0, 0, 0, 0, 0, // id
            1, 0, 0, 0, // tenant
            2, 0, 0, 0, // point count
            0, 0, 0, 0, 0, 0, 0, 0, // size 0.0
            0, 0, 0, 0, 0, 0, 0x20, 0x40, // misses 8.0
            0, 0, 0, 0, 0, 0, 0x50, 0x40, // size 64.0
            0, 0, 0, 0, 0, 0, 0x00, 0x40, // misses 2.0
        ])
    );
}

#[test]
fn golden_v1_epoch_cut_record() {
    let bytes = encode_record(&Record::EpochCut {
        seq: 11,
        shard: 2,
        epoch: 4,
        drained: vec![7, 3],
    });
    assert_eq!(
        bytes,
        framed(&[
            1, 0x04, // version, tag
            11, 0, 0, 0, 0, 0, 0, 0, // seq
            2, 0, 0, 0, // shard
            4, 0, 0, 0, 0, 0, 0, 0, // epoch
            2, 0, 0, 0, // drained count
            7, 0, 0, 0, 0, 0, 0, 0, // drained[0]
            3, 0, 0, 0, 0, 0, 0, 0, // drained[1]
        ])
    );
}

#[test]
fn golden_v1_plan_record() {
    let bytes = encode_record(&Record::Plan {
        seq: 13,
        id: 5,
        epoch: 4,
        version: 2,
        updates: 6,
        plan: CachePlan {
            round: 1,
            tenants: vec![
                TenantPlan {
                    capacity: 512,
                    plan: TalusPlan::Unpartitioned {
                        size: 512.0,
                        expected_misses: 2.0,
                    },
                },
                TenantPlan {
                    capacity: 512,
                    plan: TalusPlan::Shadow(ShadowConfig {
                        total: 512.0,
                        alpha: 128.0,
                        beta: 1024.0,
                        rho: 0.5,
                        ideal_rho: 0.5,
                        s1: 64.0,
                        s2: 448.0,
                        expected_misses: 3.0,
                    }),
                },
            ],
        },
    });
    assert_eq!(
        bytes,
        framed(&[
            1, 0x05, // version, tag
            13, 0, 0, 0, 0, 0, 0, 0, // seq
            5, 0, 0, 0, 0, 0, 0, 0, // id
            4, 0, 0, 0, 0, 0, 0, 0, // epoch
            2, 0, 0, 0, 0, 0, 0, 0, // version
            6, 0, 0, 0, 0, 0, 0, 0, // updates
            1, 0, 0, 0, 0, 0, 0, 0, // round
            2, 0, 0, 0, // tenant count
            0x00, 0x02, 0, 0, 0, 0, 0, 0, // tenant 0 capacity = 512
            0, // plan tag: unpartitioned
            0, 0, 0, 0, 0, 0, 0x80, 0x40, // size 512.0
            0, 0, 0, 0, 0, 0, 0x00, 0x40, // expected_misses 2.0
            0x00, 0x02, 0, 0, 0, 0, 0, 0, // tenant 1 capacity = 512
            1, // plan tag: shadow
            0, 0, 0, 0, 0, 0, 0x80, 0x40, // total 512.0
            0, 0, 0, 0, 0, 0, 0x60, 0x40, // alpha 128.0
            0, 0, 0, 0, 0, 0, 0x90, 0x40, // beta 1024.0
            0, 0, 0, 0, 0, 0, 0xE0, 0x3F, // rho 0.5
            0, 0, 0, 0, 0, 0, 0xE0, 0x3F, // ideal_rho 0.5
            0, 0, 0, 0, 0, 0, 0x50, 0x40, // s1 64.0
            0, 0, 0, 0, 0, 0, 0x7C, 0x40, // s2 448.0
            0, 0, 0, 0, 0, 0, 0x08, 0x40, // expected_misses 3.0
        ])
    );
}

// ---------------------------------------------------------------------
// Store-level recovery: reopen, torn tails, shard layout, history.
// ---------------------------------------------------------------------

#[test]
fn reopened_store_resumes_history_and_sequence() {
    let dir = temp_dir("reopen");
    let planner = Planner::new(64);
    let c0 = curve_from_seed(1);
    let c1 = curve_from_seed(2);
    {
        let store = Store::open(&dir, 2).unwrap();
        store.register(7, 1024, 1, &planner);
        store.submit(7, 0, &c0);
        assert_eq!(store.last_error(), None);
    }
    let store = Store::open(&dir, 2).unwrap();
    assert_eq!(store.recovery().records(), 2);
    assert_eq!(store.recovery().torn_bytes(), 0);
    store.submit(7, 0, &c1);
    drop(store);

    let store = Store::open(&dir, 2).unwrap();
    let history = store.history(7).unwrap();
    assert_eq!(history.len(), 2);
    assert_eq!(history[0].curve, c0);
    assert_eq!(history[1].curve, c1);
    // The sequence clock resumed: the second submission sorts after
    // everything from the first process lifetime.
    assert!(history[1].seq > history[0].seq);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_tail_is_truncated_on_open_and_intact_records_survive() {
    let dir = temp_dir("torn");
    let planner = Planner::new(64);
    {
        let store = Store::open(&dir, 1).unwrap();
        store.register(1, 512, 1, &planner);
        store.submit(1, 0, &curve_from_seed(3));
    }
    // Simulate a crash mid-append: a partial record at the end of the
    // file (here: a plausible header with only half its payload).
    let path = dir.join("shard-000.talus");
    let intact = std::fs::read(&path).unwrap();
    let torn = encode_record(&Record::Deregister { seq: 99, id: 1 });
    let mut bytes = intact.clone();
    bytes.extend_from_slice(&torn[..torn.len() - 5]);
    std::fs::write(&path, &bytes).unwrap();

    let store = Store::open(&dir, 1).unwrap();
    assert_eq!(store.recovery().records(), 2);
    assert_eq!(store.recovery().torn_bytes(), torn.len() - 5);
    assert!(store.recovery().shards[0].tail.is_some());
    drop(store);
    // The torn bytes are gone from disk; a second open is clean.
    assert_eq!(std::fs::read(&path).unwrap(), intact);
    let store = Store::open(&dir, 1).unwrap();
    assert_eq!(store.recovery().torn_bytes(), 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn appends_after_recovery_continue_the_journal() {
    let dir = temp_dir("resume");
    let planner = Planner::new(64);
    {
        let store = Store::open(&dir, 1).unwrap();
        store.register(1, 512, 1, &planner);
    }
    // Tear the file mid-record, reopen, and keep appending.
    let path = dir.join("shard-000.talus");
    let mut bytes = std::fs::read(&path).unwrap();
    let torn = encode_record(&Record::Deregister { seq: 50, id: 1 });
    bytes.extend_from_slice(&torn[..7]);
    std::fs::write(&path, &bytes).unwrap();

    let store = Store::open(&dir, 1).unwrap();
    store.submit(1, 0, &curve_from_seed(4));
    assert_eq!(store.last_error(), None);
    drop(store);

    let store = Store::open(&dir, 1).unwrap();
    assert_eq!(store.recovery().records(), 2);
    assert_eq!(store.recovery().torn_bytes(), 0);
    assert_eq!(store.history(1).unwrap().len(), 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shard_layout_mismatch_is_rejected() {
    let dir = temp_dir("layout");
    {
        let _store = Store::open(&dir, 4).unwrap();
    }
    match Store::open(&dir, 2) {
        Err(StoreError::ShardLayout { found, expected }) => {
            assert_eq!((found, expected), (4, 2));
        }
        other => panic!("expected ShardLayout error, got {other:?}"),
    }
    // The matching count still opens.
    assert!(Store::open(&dir, 4).is_ok());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn records_route_to_the_canonical_shard_file() {
    let dir = temp_dir("route");
    let planner = Planner::new(64);
    let shards = 4;
    let store = Store::open(&dir, shards).unwrap();
    for id in 0..32u64 {
        store.register(id, 1024, 1, &planner);
    }
    assert_eq!(store.last_error(), None);
    for shard in 0..shards {
        let scanned = store.replay_shard(shard).unwrap();
        for rec in &scanned.records {
            let Record::Register { id, .. } = rec else {
                panic!("only registers were journaled");
            };
            assert_eq!(talus_core::shard_of(*id, shards), shard);
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
