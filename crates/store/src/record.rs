//! The v1 journal record format: length-prefixed, checksummed,
//! little-endian binary records.
//!
//! Every record on disk is
//!
//! ```text
//! offset  size  field
//! 0       4     payload length N (LE u32), 2 ≤ N ≤ STORE_MAX_RECORD_LEN
//! 4       8     FNV-1a 64 checksum of the payload (LE u64)
//! 12      N     payload = [format version (STORE_VERSION = 1)][tag][body]
//! ```
//!
//! The length prefix counts the payload only (version + tag + body).
//! Integers are little-endian; `f64`s are IEEE-754 bit patterns (LE), so
//! curves and plans round-trip bit-exactly. A miss curve encodes as a
//! point count followed by `(size, misses)` pairs; id lists encode as a
//! `u32` count followed by elements — the same conventions as
//! `talus-serve`'s wire protocol, and the same caps from
//! [`talus_core::limits`].
//!
//! ## Decoding is total
//!
//! [`decode_record`] and [`scan`] never panic and never allocate
//! proportionally to untrusted fields:
//!
//! - the length prefix is bounded by [`STORE_MAX_RECORD_LEN`]
//!   *before* anything is read past the header;
//! - every element count is checked against its cap (`WIRE_MAX_*`,
//!   `STORE_MAX_*`) **and** the bytes actually remaining in the payload
//!   *before* any `Vec` is reserved;
//! - curve payloads are re-validated through
//!   [`MissCurve::from_samples`], so a decoded curve upholds every
//!   invariant a locally built one does;
//! - trailing bytes after a well-formed body are an error, so every byte
//!   of an accepted record is accounted for.
//!
//! ## Torn tails
//!
//! A record is appended with a single `write_all`, so a crash leaves at
//! most one *prefix* of a record at the end of a journal file. [`scan`]
//! stops at the first record that fails to decode (truncated header,
//! short payload, checksum mismatch, …) and reports the valid prefix
//! length; [`crate::Store::open`] truncates the file there. Torn tails
//! are therefore detected and cleanly ignored, never replayed.
//!
//! ## Versioning rules
//!
//! Every payload starts with the format version byte. Any change to the
//! record layout, a tag's body, or the limits it relies on bumps
//! [`STORE_VERSION`]; the golden-bytes fixtures in `tests/journal.rs`
//! pin the v1 encoding so accidental format drift fails CI.

use talus_core::limits::{
    STORE_MAX_CUT_IDS, STORE_MAX_RECORD_LEN, WIRE_MAX_CURVE_POINTS, WIRE_MAX_TENANTS,
};
use talus_core::{CurveError, MissCurve, ShadowConfig, TalusOptions, TalusPlan};
use talus_partition::{AllocPolicy, CachePlan, Planner, TenantPlan};

/// On-disk format version carried in every record payload.
pub const STORE_VERSION: u8 = 1;

/// Bytes of framing before a record's payload (length prefix + checksum).
pub const RECORD_HEADER_LEN: usize = 12;

// Record tags.
const TAG_REGISTER: u8 = 0x01;
const TAG_DEREGISTER: u8 = 0x02;
const TAG_CURVE: u8 = 0x03;
const TAG_EPOCH_CUT: u8 = 0x04;
const TAG_PLAN: u8 = 0x05;

// AllocPolicy tags (Plan/Register bodies).
const POLICY_HILL: u8 = 0;
const POLICY_LOOKAHEAD: u8 = 1;
const POLICY_FAIR: u8 = 2;
const POLICY_IMBALANCED: u8 = 3;

// TalusPlan tags (Plan bodies).
const PLAN_UNPARTITIONED: u8 = 0;
const PLAN_SHADOW: u8 = 1;

/// Everything that can go wrong reading or decoding a journal record (or
/// a whole journal). Decode functions return these; they never panic on
/// any input.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// The buffer (or file) ended before the declared record length was
    /// satisfied — the signature of a torn tail.
    Truncated,
    /// The length prefix exceeds [`STORE_MAX_RECORD_LEN`]; rejected
    /// before any allocation.
    Oversized {
        /// The declared payload length.
        len: u32,
    },
    /// The payload's format version is not [`STORE_VERSION`].
    BadVersion {
        /// The version byte read.
        got: u8,
    },
    /// The record tag is not one this decoder knows.
    BadTag {
        /// The tag byte read.
        got: u8,
    },
    /// An element count exceeds its cap (or the bytes remaining in the
    /// payload could not possibly hold that many elements).
    BadCount {
        /// The declared count.
        count: u32,
        /// The cap it violated.
        max: u32,
    },
    /// The payload does not hash to the stored checksum — bit rot or a
    /// torn write inside a pre-existing record.
    Checksum {
        /// Checksum stored in the record header.
        expected: u64,
        /// Checksum of the bytes actually read.
        got: u64,
    },
    /// A curve payload violates [`MissCurve`]'s invariants.
    Curve(CurveError),
    /// A structurally invalid body: bad enum tag, zero field that must
    /// be positive, or trailing bytes after the message.
    Malformed(&'static str),
    /// The underlying file operation failed.
    Io(std::io::ErrorKind),
    /// The on-disk journal directory holds a different number of shard
    /// files than the opener expects.
    ShardLayout {
        /// Highest shard index found on disk, plus one.
        found: usize,
        /// Shard count the opener asked for.
        expected: usize,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Truncated => write!(f, "record truncated"),
            StoreError::Oversized { len } => {
                write!(f, "record length {len} exceeds {STORE_MAX_RECORD_LEN}")
            }
            StoreError::BadVersion { got } => {
                write!(
                    f,
                    "unsupported store version {got} (expected {STORE_VERSION})"
                )
            }
            StoreError::BadTag { got } => write!(f, "unknown record tag {got:#04x}"),
            StoreError::BadCount { count, max } => {
                write!(f, "element count {count} exceeds bound {max}")
            }
            StoreError::Checksum { expected, got } => {
                write!(
                    f,
                    "checksum mismatch: stored {expected:#018x}, computed {got:#018x}"
                )
            }
            StoreError::Curve(e) => write!(f, "invalid curve payload: {e}"),
            StoreError::Malformed(what) => write!(f, "malformed record: {what}"),
            StoreError::Io(kind) => write!(f, "journal io error: {kind}"),
            StoreError::ShardLayout { found, expected } => {
                write!(f, "journal has {found} shard files, expected {expected}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Curve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            StoreError::Truncated
        } else {
            StoreError::Io(e.kind())
        }
    }
}

/// One journaled event. Every variant carries `seq`, the store-global
/// append sequence number — the journal's logical clock. `seq` is
/// monotone within a shard file and unique across the whole store, so
/// interleaving events from different shards by `seq` reconstructs the
/// plane-wide order.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A cache was registered under `id` with the given shape.
    Register {
        /// Store-global append sequence number.
        seq: u64,
        /// Raw cache id.
        id: u64,
        /// Capacity budget in lines (positive).
        capacity: u64,
        /// Tenant count (1..=[`WIRE_MAX_TENANTS`]).
        tenants: u32,
        /// The planner configuration the cache was registered with.
        planner: Planner,
    },
    /// A cache was deregistered.
    Deregister {
        /// Store-global append sequence number.
        seq: u64,
        /// Raw cache id.
        id: u64,
    },
    /// One tenant submitted a miss curve.
    Curve {
        /// Store-global append sequence number.
        seq: u64,
        /// Raw cache id.
        id: u64,
        /// Tenant index within the cache.
        tenant: u32,
        /// The submitted curve, bit-exact.
        curve: MissCurve,
    },
    /// One shard drained its dirty queue for one epoch. Written every
    /// epoch, even when nothing was drained, so the plane-wide epoch
    /// counter restores exactly; `drained` lists the popped ids in pop
    /// order (including ids deregistered while queued).
    EpochCut {
        /// Store-global append sequence number.
        seq: u64,
        /// Index of the shard that drained.
        shard: u32,
        /// The plane-wide epoch number.
        epoch: u64,
        /// Cache ids popped from the dirty queue, in order.
        drained: Vec<u64>,
    },
    /// A plan was published for a cache. The full plan body is stored —
    /// not recomputed at restore — because newer curves may already have
    /// been journaled after this plan was computed.
    Plan {
        /// Store-global append sequence number.
        seq: u64,
        /// Raw cache id.
        id: u64,
        /// Epoch that published the plan.
        epoch: u64,
        /// Per-cache plan version after this publication.
        version: u64,
        /// Curve updates folded into the plan.
        updates: u64,
        /// The published plan, bit-exact.
        plan: CachePlan,
    },
}

impl Record {
    /// The store-global append sequence number.
    pub fn seq(&self) -> u64 {
        match self {
            Record::Register { seq, .. }
            | Record::Deregister { seq, .. }
            | Record::Curve { seq, .. }
            | Record::EpochCut { seq, .. }
            | Record::Plan { seq, .. } => *seq,
        }
    }

    /// Short human label for dumps.
    pub fn label(&self) -> &'static str {
        match self {
            Record::Register { .. } => "register",
            Record::Deregister { .. } => "deregister",
            Record::Curve { .. } => "curve",
            Record::EpochCut { .. } => "epoch-cut",
            Record::Plan { .. } => "plan",
        }
    }
}

/// FNV-1a 64 over `bytes` — the per-record checksum. Cheap, dependency
/// free, and plenty to distinguish a torn or rotted payload from a valid
/// one (this is corruption *detection*, not authentication).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

/// Builds one payload (version + tag + body); framed by
/// [`PayloadWriter::finish`].
struct PayloadWriter {
    buf: Vec<u8>,
}

impl PayloadWriter {
    fn new(tag: u8) -> Self {
        let mut buf = Vec::with_capacity(64);
        buf.push(STORE_VERSION);
        buf.push(tag);
        PayloadWriter { buf }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    fn curve(&mut self, curve: &MissCurve) {
        self.u32(curve.len() as u32);
        for p in curve.iter() {
            self.f64(p.size);
            self.f64(p.misses);
        }
    }

    fn policy(&mut self, policy: AllocPolicy) {
        self.u8(match policy {
            AllocPolicy::Hill => POLICY_HILL,
            AllocPolicy::Lookahead => POLICY_LOOKAHEAD,
            AllocPolicy::Fair => POLICY_FAIR,
            AllocPolicy::Imbalanced => POLICY_IMBALANCED,
        });
    }

    fn plan(&mut self, plan: &CachePlan) {
        self.u64(plan.round);
        self.u32(plan.tenants.len() as u32);
        for t in &plan.tenants {
            self.u64(t.capacity);
            match &t.plan {
                TalusPlan::Unpartitioned {
                    size,
                    expected_misses,
                } => {
                    self.u8(PLAN_UNPARTITIONED);
                    self.f64(*size);
                    self.f64(*expected_misses);
                }
                TalusPlan::Shadow(cfg) => {
                    self.u8(PLAN_SHADOW);
                    self.f64(cfg.total);
                    self.f64(cfg.alpha);
                    self.f64(cfg.beta);
                    self.f64(cfg.rho);
                    self.f64(cfg.ideal_rho);
                    self.f64(cfg.s1);
                    self.f64(cfg.s2);
                    self.f64(cfg.expected_misses);
                }
            }
        }
    }

    /// Frames the payload: `[len][fnv1a64][payload]`.
    fn finish(self) -> Vec<u8> {
        let len = self.buf.len() as u32;
        debug_assert!(len <= STORE_MAX_RECORD_LEN, "encoded record exceeds cap");
        let mut out = Vec::with_capacity(RECORD_HEADER_LEN + self.buf.len());
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&fnv1a64(&self.buf).to_le_bytes());
        out.extend_from_slice(&self.buf);
        out
    }
}

/// Encodes one record as a complete framed byte string (length prefix
/// and checksum included).
pub fn encode_record(rec: &Record) -> Vec<u8> {
    match rec {
        Record::Register {
            seq,
            id,
            capacity,
            tenants,
            planner,
        } => encode_register(*seq, *id, *capacity, *tenants, planner),
        Record::Deregister { seq, id } => encode_deregister(*seq, *id),
        Record::Curve {
            seq,
            id,
            tenant,
            curve,
        } => encode_curve(*seq, *id, *tenant, curve),
        Record::EpochCut {
            seq,
            shard,
            epoch,
            drained,
        } => encode_epoch_cut(*seq, *shard, *epoch, drained),
        Record::Plan {
            seq,
            id,
            epoch,
            version,
            updates,
            plan,
        } => encode_plan(*seq, *id, *epoch, *version, *updates, plan),
    }
}

// The by-parts encoders below let the live sink journal straight from
// borrowed service state without cloning curves or plans into a Record.

pub(crate) fn encode_register(
    seq: u64,
    id: u64,
    capacity: u64,
    tenants: u32,
    planner: &Planner,
) -> Vec<u8> {
    let mut w = PayloadWriter::new(TAG_REGISTER);
    w.u64(seq);
    w.u64(id);
    w.u64(capacity);
    w.u32(tenants);
    w.u64(planner.grain);
    w.f64(planner.options.safety_margin);
    w.f64(planner.options.vertex_tolerance);
    w.policy(planner.policy);
    w.u8(planner.convexify as u8);
    w.finish()
}

pub(crate) fn encode_deregister(seq: u64, id: u64) -> Vec<u8> {
    let mut w = PayloadWriter::new(TAG_DEREGISTER);
    w.u64(seq);
    w.u64(id);
    w.finish()
}

pub(crate) fn encode_curve(seq: u64, id: u64, tenant: u32, curve: &MissCurve) -> Vec<u8> {
    let mut w = PayloadWriter::new(TAG_CURVE);
    w.u64(seq);
    w.u64(id);
    w.u32(tenant);
    w.curve(curve);
    w.finish()
}

pub(crate) fn encode_epoch_cut(seq: u64, shard: u32, epoch: u64, drained: &[u64]) -> Vec<u8> {
    let mut w = PayloadWriter::new(TAG_EPOCH_CUT);
    w.u64(seq);
    w.u32(shard);
    w.u64(epoch);
    w.u32(drained.len() as u32);
    for id in drained {
        w.u64(*id);
    }
    w.finish()
}

pub(crate) fn encode_plan(
    seq: u64,
    id: u64,
    epoch: u64,
    version: u64,
    updates: u64,
    plan: &CachePlan,
) -> Vec<u8> {
    let mut w = PayloadWriter::new(TAG_PLAN);
    w.u64(seq);
    w.u64(id);
    w.u64(epoch);
    w.u64(version);
    w.u64(updates);
    w.plan(plan);
    w.finish()
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// A bounds-checked cursor over one record payload. Every read method
/// fails with [`StoreError::Truncated`] instead of slicing out of range.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, StoreError> {
        // take(4) returned exactly 4 bytes, so the array conversion
        // below is infallible.
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4"))) // audited: slice is 4 bytes
    }

    fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8"))) // audited: slice is 8 bytes
    }

    fn f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads an element count, rejecting it if it exceeds `cap` or if
    /// the payload cannot possibly hold `count` elements of at least
    /// `min_elem_bytes` each — checked *before* any allocation, so a
    /// hostile count never reserves memory.
    fn count(&mut self, cap: u32, min_elem_bytes: usize) -> Result<usize, StoreError> {
        let count = self.u32()?;
        if count > cap {
            return Err(StoreError::BadCount { count, max: cap });
        }
        if (count as usize).saturating_mul(min_elem_bytes) > self.remaining() {
            return Err(StoreError::Truncated);
        }
        Ok(count as usize)
    }

    fn curve(&mut self) -> Result<MissCurve, StoreError> {
        let points = self.count(WIRE_MAX_CURVE_POINTS, 16)?;
        if points == 0 {
            return Err(StoreError::Curve(CurveError::Empty));
        }
        let mut sizes = Vec::with_capacity(points);
        let mut misses = Vec::with_capacity(points);
        for _ in 0..points {
            sizes.push(self.f64()?);
            misses.push(self.f64()?);
        }
        MissCurve::from_samples(&sizes, &misses).map_err(StoreError::Curve)
    }

    fn policy(&mut self) -> Result<AllocPolicy, StoreError> {
        match self.u8()? {
            POLICY_HILL => Ok(AllocPolicy::Hill),
            POLICY_LOOKAHEAD => Ok(AllocPolicy::Lookahead),
            POLICY_FAIR => Ok(AllocPolicy::Fair),
            POLICY_IMBALANCED => Ok(AllocPolicy::Imbalanced),
            _ => Err(StoreError::Malformed("unknown policy tag")),
        }
    }

    fn plan(&mut self) -> Result<CachePlan, StoreError> {
        let round = self.u64()?;
        // Each tenant is at least capacity + tag + two f64 fields.
        let count = self.count(WIRE_MAX_TENANTS, 8 + 1 + 16)?;
        if count == 0 {
            return Err(StoreError::Malformed("plan with zero tenants"));
        }
        let mut tenants = Vec::with_capacity(count);
        for _ in 0..count {
            let capacity = self.u64()?;
            let plan = match self.u8()? {
                PLAN_UNPARTITIONED => TalusPlan::Unpartitioned {
                    size: self.f64()?,
                    expected_misses: self.f64()?,
                },
                PLAN_SHADOW => TalusPlan::Shadow(ShadowConfig {
                    total: self.f64()?,
                    alpha: self.f64()?,
                    beta: self.f64()?,
                    rho: self.f64()?,
                    ideal_rho: self.f64()?,
                    s1: self.f64()?,
                    s2: self.f64()?,
                    expected_misses: self.f64()?,
                }),
                _ => return Err(StoreError::Malformed("unknown plan tag")),
            };
            tenants.push(TenantPlan { capacity, plan });
        }
        Ok(CachePlan { round, tenants })
    }

    /// Asserts the payload was fully consumed: accepted records account
    /// for every byte.
    fn end(self) -> Result<(), StoreError> {
        if self.remaining() != 0 {
            return Err(StoreError::Malformed("trailing bytes after record"));
        }
        Ok(())
    }
}

/// Decodes the record framed at the head of `buf`; returns it and the
/// total bytes it occupied (header + payload). Total: returns a typed
/// error on any input, [`StoreError::Truncated`] when `buf` ends before
/// the record does.
pub fn decode_record(buf: &[u8]) -> Result<(Record, usize), StoreError> {
    if buf.len() < RECORD_HEADER_LEN {
        return Err(StoreError::Truncated);
    }
    // The length check above guarantees RECORD_HEADER_LEN bytes, so
    // both fixed-width header slices convert infallibly.
    let len = u32::from_le_bytes(buf[0..4].try_into().expect("4")); // audited: header present
    if len > STORE_MAX_RECORD_LEN {
        return Err(StoreError::Oversized { len });
    }
    if len < 2 {
        return Err(StoreError::Malformed("record shorter than its header"));
    }
    let expected = u64::from_le_bytes(buf[4..12].try_into().expect("8")); // audited: header present
    let total = RECORD_HEADER_LEN + len as usize;
    if buf.len() < total {
        return Err(StoreError::Truncated);
    }
    let payload = &buf[RECORD_HEADER_LEN..total];
    let got = fnv1a64(payload);
    if got != expected {
        return Err(StoreError::Checksum { expected, got });
    }
    Ok((decode_payload(payload)?, total))
}

/// Decodes one payload (version byte onward, checksum already verified).
fn decode_payload(payload: &[u8]) -> Result<Record, StoreError> {
    // `decode_record` guarantees at least the version byte and tag.
    if payload[0] != STORE_VERSION {
        return Err(StoreError::BadVersion { got: payload[0] });
    }
    let tag = payload[1];
    let mut r = Reader::new(&payload[2..]);
    let rec = match tag {
        TAG_REGISTER => {
            let seq = r.u64()?;
            let id = r.u64()?;
            let capacity = r.u64()?;
            let tenants = r.u32()?;
            if capacity == 0 {
                return Err(StoreError::Malformed("zero capacity"));
            }
            if tenants == 0 {
                return Err(StoreError::Malformed("zero tenants"));
            }
            if tenants > WIRE_MAX_TENANTS {
                return Err(StoreError::BadCount {
                    count: tenants,
                    max: WIRE_MAX_TENANTS,
                });
            }
            let grain = r.u64()?;
            if grain == 0 {
                return Err(StoreError::Malformed("zero planner grain"));
            }
            let options = TalusOptions {
                safety_margin: r.f64()?,
                vertex_tolerance: r.f64()?,
            };
            let policy = r.policy()?;
            let convexify = match r.u8()? {
                0 => false,
                1 => true,
                _ => return Err(StoreError::Malformed("convexify flag not 0/1")),
            };
            let mut planner = Planner::new(grain)
                .with_policy(policy)
                .with_options(options);
            if !convexify {
                planner = planner.raw_curves();
            }
            Record::Register {
                seq,
                id,
                capacity,
                tenants,
                planner,
            }
        }
        TAG_DEREGISTER => Record::Deregister {
            seq: r.u64()?,
            id: r.u64()?,
        },
        TAG_CURVE => {
            let seq = r.u64()?;
            let id = r.u64()?;
            let tenant = r.u32()?;
            if tenant >= WIRE_MAX_TENANTS {
                return Err(StoreError::BadCount {
                    count: tenant,
                    max: WIRE_MAX_TENANTS - 1,
                });
            }
            Record::Curve {
                seq,
                id,
                tenant,
                curve: r.curve()?,
            }
        }
        TAG_EPOCH_CUT => {
            let seq = r.u64()?;
            let shard = r.u32()?;
            let epoch = r.u64()?;
            let count = r.count(STORE_MAX_CUT_IDS, 8)?;
            let mut drained = Vec::with_capacity(count);
            for _ in 0..count {
                drained.push(r.u64()?);
            }
            Record::EpochCut {
                seq,
                shard,
                epoch,
                drained,
            }
        }
        TAG_PLAN => Record::Plan {
            seq: r.u64()?,
            id: r.u64()?,
            epoch: r.u64()?,
            version: r.u64()?,
            updates: r.u64()?,
            plan: r.plan()?,
        },
        got => return Err(StoreError::BadTag { got }),
    };
    r.end()?;
    Ok(rec)
}

/// The result of scanning a journal byte stream with [`scan`].
#[derive(Debug, Clone, PartialEq)]
pub struct Scan {
    /// Every record in the valid prefix, in file order.
    pub records: Vec<Record>,
    /// Bytes of the valid prefix (where a recovering opener truncates).
    pub consumed: usize,
    /// Why the scan stopped before the end of the stream, if it did
    /// (`None` = the stream ended exactly at a record boundary).
    pub tail: Option<StoreError>,
}

/// Scans a journal byte stream record by record, stopping at the first
/// undecodable byte. Never panics; the valid prefix plus the tail
/// diagnosis is the recovery contract — everything before `consumed` is
/// intact, everything after is a torn tail to drop.
pub fn scan(buf: &[u8]) -> Scan {
    let mut records = Vec::new();
    let mut consumed = 0;
    while consumed < buf.len() {
        match decode_record(&buf[consumed..]) {
            Ok((rec, used)) => {
                records.push(rec);
                consumed += used;
            }
            Err(e) => {
                return Scan {
                    records,
                    consumed,
                    tail: Some(e),
                };
            }
        }
    }
    Scan {
        records,
        consumed,
        tail: None,
    }
}
