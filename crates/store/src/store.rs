//! The sharded store: N journal files behind the canonical shard
//! placement, a store-global sequence clock, and the [`StoreSink`] seam
//! the serving plane journals through.

use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use talus_core::{MissCurve, ShardTopology};
use talus_partition::{CachePlan, Planner};

use crate::journal::{ShardJournal, ShardRecovery};
use crate::record::{
    encode_curve, encode_deregister, encode_epoch_cut, encode_plan, encode_register, scan, Record,
    StoreError,
};

/// The event-journaling seam between the serving plane and persistence.
///
/// `talus-serve` calls these while holding the relevant shard's registry
/// lock, in the exact order events take effect, so the journal is a
/// faithful serialization of each shard's history. Implementations must
/// not call back into the service (they run under its locks) and must
/// not panic; [`Store`] satisfies both, and tests wrap it to inject
/// crashes at chosen points.
pub trait StoreSink: Send + Sync + fmt::Debug {
    /// Number of shards the sink journals into. A plane only attaches a
    /// sink whose layout matches its own, so each service shard maps 1:1
    /// onto a journal shard.
    fn shards(&self) -> usize;

    /// A cache was registered.
    fn register(&self, id: u64, capacity: u64, tenants: u32, planner: &Planner);

    /// A cache was deregistered.
    fn deregister(&self, id: u64);

    /// A tenant submitted a curve.
    fn submit(&self, id: u64, tenant: u32, curve: &MissCurve);

    /// Shard `shard` drained `drained` (in pop order) for `epoch`.
    /// Called every epoch, even when nothing was drained.
    fn epoch_cut(&self, shard: usize, epoch: u64, drained: &[u64]);

    /// A plan was published for cache `id`.
    fn plan(&self, id: u64, epoch: u64, version: u64, updates: u64, plan: &CachePlan);

    /// Whether the sink has hit a write fault and is dropping appends.
    /// The plane polls this into its health report, so a silently
    /// dropped journal becomes an observable event. Defaults to `false`
    /// for sinks that cannot fail (in-memory recorders in tests).
    fn is_faulted(&self) -> bool {
        false
    }

    /// Which slice of the global shard layout this sink's files are. A
    /// plane attaching a sink checks the sink's topology matches its
    /// own, so a cluster member never journals into files laid out for
    /// a different slice. Defaults to the single-process layout (every
    /// shard local).
    fn topology(&self) -> ShardTopology {
        ShardTopology::solo(self.shards())
    }
}

/// What opening a store found and recovered, per shard.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RecoveryReport {
    /// One entry per shard file, in shard order.
    pub shards: Vec<ShardRecovery>,
}

impl RecoveryReport {
    /// Total intact records across all shards.
    pub fn records(&self) -> usize {
        self.shards.iter().map(|s| s.records).sum()
    }

    /// Total torn-tail bytes truncated across all shards.
    pub fn torn_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.torn_bytes).sum()
    }
}

/// One historical curve submission, as returned by [`Store::history`].
/// `seq` is the journal's logical clock: updates for one cache are
/// ordered by it, newest last.
#[derive(Debug, Clone, PartialEq)]
pub struct CurveUpdate {
    /// Store-global sequence number of the submission.
    pub seq: u64,
    /// Tenant that submitted.
    pub tenant: u32,
    /// The curve, bit-exact as submitted.
    pub curve: MissCurve,
}

/// A crash-safe, sharded, append-only journal of reconfiguration events.
///
/// One directory holds `shards` files (`shard-NNN.talus`); cache `id`'s
/// records live in file [`talus_core::shard_of`]`(id, shards)` — the
/// same placement the serving plane's router uses, so a store written by
/// an N-shard plane restores file-by-file into an N-shard plane.
///
/// Appends go through the [`StoreSink`] impl. After the first write
/// error the store trips a fault flag and silently drops every later
/// append (on every shard), so each file always ends at a record
/// boundary of a consistent prefix; check [`last_error`](Store::last_error)
/// to surface the fault.
///
/// ```no_run
/// use talus_store::Store;
///
/// let store = Store::open("/var/lib/talus/journal", 4)?;
/// assert_eq!(store.shards(), 4);
/// assert_eq!(store.recovery().torn_bytes(), 0);
/// # Ok::<(), talus_store::StoreError>(())
/// ```
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    journals: Vec<Mutex<ShardJournal>>,
    /// Which slice of the global layout these files hold (solo unless
    /// [`with_topology`](Store::with_topology) was called): file `i` is
    /// global shard `topology.first() + i`.
    topology: ShardTopology,
    /// Next append sequence number (resumes past everything recovered).
    seq: AtomicU64,
    /// Set on the first append failure; checked before every append.
    faulted: AtomicBool,
    fault: Mutex<Option<StoreError>>,
    /// Deterministic fault-injection seam, consulted at `"store.append"`
    /// (key = shard index) before each append. `None` outside tests.
    script: Option<std::sync::Arc<talus_core::FaultScript>>,
    recovery: RecoveryReport,
}

impl Store {
    /// Opens (creating if needed) the journal directory with `shards`
    /// shard files, recovering each: torn tails are truncated and the
    /// sequence clock resumes after the largest recovered `seq`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure, or
    /// [`StoreError::ShardLayout`] if the directory already holds shard
    /// files laid out for a different shard count (records do not move
    /// between files; re-sharding requires an explicit migration).
    pub fn open(dir: impl AsRef<Path>, shards: usize) -> Result<Store, StoreError> {
        assert!(shards > 0, "need at least one shard");
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let found = existing_shard_files(&dir)?;
        if found > 0 && found != shards {
            return Err(StoreError::ShardLayout {
                found,
                expected: shards,
            });
        }
        let mut journals = Vec::with_capacity(shards);
        let mut report = RecoveryReport::default();
        let mut max_seq = None;
        for i in 0..shards {
            let (journal, _records, recovery) = ShardJournal::open(&shard_path(&dir, i))?;
            max_seq = max_seq.max(recovery.max_seq);
            report.shards.push(recovery);
            journals.push(Mutex::new(journal));
        }
        Ok(Store {
            dir,
            journals,
            topology: ShardTopology::solo(shards),
            seq: AtomicU64::new(max_seq.map_or(0, |s| s + 1)),
            faulted: AtomicBool::new(false),
            fault: Mutex::new(None),
            script: None,
            recovery: report,
        })
    }

    /// Attaches a deterministic [`FaultScript`](talus_core::FaultScript):
    /// the store consults it at the `"store.append"` site (key = shard
    /// index) before each append; a `Fail` directive trips the fault
    /// flag exactly as a real write error would.
    pub fn with_fault_script(mut self, script: std::sync::Arc<talus_core::FaultScript>) -> Self {
        self.script = Some(script);
        self
    }

    /// Declares these files a cluster member's slice of the global
    /// layout: file `i` holds global shard `topology.first() + i`, and
    /// ids are placed by `shard_of(id, topology.total())`. Set it to
    /// the same topology as the plane the store serves (the plane's
    /// `with_sink` checks they agree).
    ///
    /// # Panics
    ///
    /// Panics if `topology.count()` differs from the store's shard-file
    /// count.
    pub fn with_topology(mut self, topology: ShardTopology) -> Self {
        assert_eq!(
            topology.count(),
            self.shards(),
            "topology range must match the store's shard-file count"
        );
        self.topology = topology;
        self
    }

    /// Number of journal shards (fixed at open).
    pub fn shards(&self) -> usize {
        self.journals.len()
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// What opening this store recovered, per shard.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// The first append error, if any. Once set, every subsequent append
    /// (on every shard) is dropped, so the on-disk journals stay valid
    /// prefixes of the plane's history up to the fault.
    pub fn last_error(&self) -> Option<StoreError> {
        self.lock_fault().clone()
    }

    /// Whether the store has tripped its fault flag and is dropping
    /// appends. Cheap (one atomic load): the plane polls this on every
    /// health request.
    pub fn faulted(&self) -> bool {
        self.faulted.load(Ordering::Acquire)
    }

    /// Flushes every shard file to stable storage (`fsync`). Appends
    /// survive process death without this; call it when the journal must
    /// also survive OS or power failure.
    ///
    /// # Errors
    ///
    /// The first [`StoreError::Io`] hit; remaining shards are still
    /// attempted.
    pub fn sync(&self) -> Result<(), StoreError> {
        let mut first = None;
        for journal in &self.journals {
            if let Err(e) = journal.lock().unwrap_or_else(|e| e.into_inner()).sync() {
                first.get_or_insert(e);
            }
        }
        match first {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Re-reads shard `shard`'s file from disk and decodes it. The valid
    /// prefix comes back as records; a torn tail (possible only if the
    /// file was modified outside this store) is diagnosed in the scan,
    /// not an error.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn replay_shard(&self, shard: usize) -> Result<crate::record::Scan, StoreError> {
        assert!(shard < self.shards(), "shard index out of range");
        // Lock the journal so the read doesn't race an in-flight append
        // (a half-written record would misread as a torn tail).
        let _guard = self.lock_journal(shard);
        let buf = std::fs::read(shard_path(&self.dir, shard))?;
        Ok(scan(&buf))
    }

    /// Every curve ever journaled for cache `id`, in submission order
    /// (the timed miss-curve history of the cache — `seq` is the time
    /// axis). Reads the shard file from disk. For a cluster-slice store,
    /// an id owned by another member has no records here: empty history.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the shard file cannot be read.
    pub fn history(&self, id: u64) -> Result<Vec<CurveUpdate>, StoreError> {
        let Some(local) = self.topology.local_shard(id) else {
            return Ok(Vec::new());
        };
        let scanned = self.replay_shard(local)?;
        Ok(scanned
            .records
            .into_iter()
            .filter_map(|rec| match rec {
                Record::Curve {
                    seq,
                    id: rid,
                    tenant,
                    curve,
                } if rid == id => Some(CurveUpdate { seq, tenant, curve }),
                _ => None,
            })
            .collect())
    }

    /// Allocates the next sequence number and appends the record
    /// `make(seq)` builds to `shard`. Serialized per shard by the
    /// journal lock (so `seq` is monotone within each file); dropped
    /// silently once the store is faulted.
    fn append_with(&self, shard: usize, make: impl FnOnce(u64) -> Vec<u8>) {
        if self.faulted.load(Ordering::Acquire) {
            return;
        }
        if let Some(script) = &self.script {
            if script.check("store.append", shard as u64) == talus_core::FaultDirective::Fail {
                // Trip the fault exactly as a real write error would.
                self.faulted.store(true, Ordering::Release);
                self.lock_fault()
                    .get_or_insert(StoreError::Malformed("injected append fault"));
                return;
            }
        }
        let mut journal = self.lock_journal(shard);
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        if let Err(e) = journal.append(&make(seq)) {
            self.faulted.store(true, Ordering::Release);
            self.lock_fault().get_or_insert(e);
        }
    }

    /// Appends the record for id-placed events, tripping the fault flag
    /// if `id` is not owned by this store's topology slice (a plane
    /// checks ownership before journaling, so reaching this means the
    /// plane and store disagree on topology — data loss, made visible).
    fn append_for_id(&self, id: u64, make: impl FnOnce(u64) -> Vec<u8>) {
        match self.topology.local_shard(id) {
            Some(shard) => self.append_with(shard, make),
            None => {
                self.faulted.store(true, Ordering::Release);
                self.lock_fault()
                    .get_or_insert(StoreError::Malformed("record for an unowned shard"));
            }
        }
    }

    // Lock poisoning: journal and fault locks guard single-step writes
    // (one append, one error slot) — no partial multi-field state can
    // survive a panic mid-critical-section — so recovery takes the data
    // as-is rather than poisoning the whole store (matching the serving
    // plane's shard locks).
    fn lock_journal(&self, shard: usize) -> std::sync::MutexGuard<'_, ShardJournal> {
        self.journals[shard]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    fn lock_fault(&self) -> std::sync::MutexGuard<'_, Option<StoreError>> {
        self.fault.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl StoreSink for Store {
    fn shards(&self) -> usize {
        self.journals.len()
    }

    fn register(&self, id: u64, capacity: u64, tenants: u32, planner: &Planner) {
        self.append_for_id(id, |seq| {
            encode_register(seq, id, capacity, tenants, planner)
        });
    }

    fn deregister(&self, id: u64) {
        self.append_for_id(id, |seq| encode_deregister(seq, id));
    }

    fn submit(&self, id: u64, tenant: u32, curve: &MissCurve) {
        self.append_for_id(id, |seq| encode_curve(seq, id, tenant, curve));
    }

    fn epoch_cut(&self, shard: usize, epoch: u64, drained: &[u64]) {
        if shard >= self.shards() {
            self.faulted.store(true, Ordering::Release);
            self.lock_fault()
                .get_or_insert(StoreError::Malformed("epoch cut for unknown shard"));
            return;
        }
        self.append_with(shard, |seq| {
            encode_epoch_cut(seq, shard as u32, epoch, drained)
        });
    }

    fn plan(&self, id: u64, epoch: u64, version: u64, updates: u64, plan: &CachePlan) {
        self.append_for_id(id, |seq| {
            encode_plan(seq, id, epoch, version, updates, plan)
        });
    }

    fn is_faulted(&self) -> bool {
        self.faulted()
    }

    fn topology(&self) -> ShardTopology {
        self.topology
    }
}

/// `dir/shard-NNN.talus`.
fn shard_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard:03}.talus"))
}

/// Counts contiguous shard files already present in `dir` (highest index
/// found, plus one; gaps count up to the highest).
fn existing_shard_files(dir: &Path) -> Result<usize, StoreError> {
    let mut found = 0;
    for entry in std::fs::read_dir(dir)? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(n) = name
            .strip_prefix("shard-")
            .and_then(|rest| rest.strip_suffix(".talus"))
            .and_then(|digits| digits.parse::<usize>().ok())
        {
            found = found.max(n + 1);
        }
    }
    Ok(found)
}
