//! # talus-store — crash-safe persistence for the reconfiguration plane
//!
//! The serving plane (`talus-serve`) replans every epoch but, on its
//! own, forgets everything on restart: every cache cold-starts with no
//! curves and no plans. This crate is the L4½ persistence layer that
//! closes the gap — an **append-only binary journal** of reconfiguration
//! events (registrations, curve submissions, epoch cuts, published
//! plans), sharded exactly like the plane itself, with torn-tail
//! recovery and a replay path that warm-restarts a plane bit-for-bit.
//!
//! ## Shape
//!
//! - [`Record`] / [`encode_record`] / [`decode_record`] / [`scan`]: the
//!   v1 on-disk format — length-prefixed, checksummed, little-endian
//!   records with a *total* (never-panicking) decoder. See the
//!   [`record`] module docs for the byte layout and recovery rules.
//! - [`Store`]: N journal files (`shard-NNN.talus`) in one directory,
//!   cache `id` in file [`talus_core::shard_of`]`(id, N)` — the same
//!   placement the serve router uses, so restore never moves records
//!   across shards. Opening recovers each file (torn tails truncated,
//!   reported via [`Store::recovery`]).
//! - [`StoreSink`]: the seam `talus-serve` journals through, called
//!   under the owning shard's lock in exact event order. [`Store`]
//!   implements it; tests wrap it to inject crashes.
//! - [`Store::history`]: the timed miss-curve history of one cache
//!   (every submission ever journaled, in order) — the persistent
//!   analogue of periodically re-monitored miss curves.
//!
//! ## Crash consistency
//!
//! Appends are single `write_all`s, so process death leaves at most a
//! partial record at the end of one file; the next open detects it (via
//! the length prefix and per-record FNV-1a checksum) and truncates it.
//! A restored plane replays the valid prefix: `talus-serve`'s
//! `ShardedReconfigService::restore` re-registers caches, re-submits
//! latest curves, re-queues dirty ones, and republishes the last plan
//! snapshots — property-tested to be bit-identical to a plane that
//! never restarted (see `crates/serve/tests/restore_equivalence.rs`).
//! A crash *between* a shard's epoch cut and its plan records loses at
//! most that epoch's plans for that shard; affected caches simply
//! re-plan on their next curve update, exactly as if the epoch had
//! failed mid-publish.
//!
//! ## Quickstart
//!
//! ```
//! use talus_core::MissCurve;
//! use talus_store::{Store, StoreSink};
//! use talus_partition::Planner;
//!
//! let dir = std::env::temp_dir().join(format!("talus-store-doc-{}", std::process::id()));
//! let store = Store::open(&dir, 2)?;
//!
//! // Journal a registration and a curve submission (talus-serve does
//! // this automatically once the store is attached as its sink).
//! store.register(7, 1024, 1, &Planner::new(64));
//! let curve = MissCurve::from_samples(&[0.0, 512.0, 1024.0], &[10.0, 4.0, 1.0])?;
//! store.submit(7, 0, &curve);
//! assert_eq!(store.last_error(), None);
//!
//! // Reopen: the history survives, bit-exact.
//! drop(store);
//! let store = Store::open(&dir, 2)?;
//! let history = store.history(7)?;
//! assert_eq!(history.len(), 1);
//! assert_eq!(history[0].curve, curve);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod journal;
pub mod record;
mod store;

pub use journal::ShardRecovery;
pub use record::{
    decode_record, encode_record, fnv1a64, scan, Record, Scan, StoreError, RECORD_HEADER_LEN,
    STORE_VERSION,
};
pub use store::{CurveUpdate, RecoveryReport, Store, StoreSink};
