//! One shard's journal file: open-with-recovery, append, sync.
//!
//! A [`ShardJournal`] owns one append-only file. Opening scans the whole
//! file with [`scan`](crate::record::scan), truncates any torn tail (a
//! partial record left by a crash mid-append), and leaves the handle
//! positioned at the end of the valid prefix; every append is a single
//! `write_all` of one framed record, so a crash can only ever tear the
//! *last* record — which the next open drops.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::record::{scan, Record, StoreError};

/// What opening one shard file found and did.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ShardRecovery {
    /// Intact records replayed from the valid prefix.
    pub records: usize,
    /// Largest `seq` seen in the valid prefix (`None` if empty).
    pub max_seq: Option<u64>,
    /// Torn-tail bytes truncated off the end of the file.
    pub torn_bytes: usize,
    /// Why the tail failed to decode, if it did.
    pub tail: Option<StoreError>,
}

/// One shard's append-only journal file (always opened with recovery).
#[derive(Debug)]
pub(crate) struct ShardJournal {
    file: File,
}

impl ShardJournal {
    /// Opens (creating if absent) and recovers the journal at `path`:
    /// scans the existing contents, truncates any torn tail, and seeks
    /// to the end of the valid prefix. Returns the journal, the intact
    /// records, and the recovery report.
    pub(crate) fn open(path: &Path) -> Result<(Self, Vec<Record>, ShardRecovery), StoreError> {
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(path)?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        let scanned = scan(&buf);
        let torn_bytes = buf.len() - scanned.consumed;
        if torn_bytes > 0 {
            file.set_len(scanned.consumed as u64)?;
        }
        file.seek(SeekFrom::Start(scanned.consumed as u64))?;
        let recovery = ShardRecovery {
            records: scanned.records.len(),
            max_seq: scanned.records.iter().map(Record::seq).max(),
            torn_bytes,
            tail: scanned.tail,
        };
        Ok((ShardJournal { file }, scanned.records, recovery))
    }

    /// Appends one pre-framed record with a single `write_all`, so a
    /// crash mid-append leaves at most a torn tail.
    pub(crate) fn append(&mut self, framed: &[u8]) -> Result<(), StoreError> {
        self.file.write_all(framed)?;
        Ok(())
    }

    /// Flushes the file to stable storage (`fsync`). Appends survive
    /// *process* death without this; call it when the journal must also
    /// survive OS or power failure.
    pub(crate) fn sync(&mut self) -> Result<(), StoreError> {
        self.file.sync_data()?;
        Ok(())
    }
}
