//! Reconfiguration-plane ingest throughput: submissions + epochs.
//!
//! The serving claim behind `ShardedReconfigService`: per-cache state
//! behind one registry lock bounds miss-curve ingest, so hash-sharding by
//! cache id (and planning each shard's epochs on its own worker) should
//! scale submissions and replanning across cores with zero plan change.
//! These benches measure exactly that claim on the `multi_tenant`
//! interference workload: four producer threads stream monitor-measured
//! curve updates for 32 logical caches (striped across producers), then
//! the plane drains its dirty queues — one iteration is the full
//! submissions + epochs cycle.
//!
//! Variants:
//! - `single`: the unsharded [`ReconfigService`] (one registry lock);
//! - `sharded_1`: [`ShardedReconfigService`] with one shard — measures
//!   pure router overhead, expected within noise of `single`;
//! - `sharded_4`: four shards, epochs on the calling thread — measures
//!   ingest-contention relief alone;
//! - `sharded_4_threaded`: four shards, each planning on its own worker —
//!   the full scale-out configuration. Speedup vs `single` is bounded by
//!   available cores; on a single-core machine expect parity, not gain.
//! - `rpc`: the same cycle through the network layer — each producer is
//!   a persistent `RpcClient` staging its round into one framed batch
//!   over a loopback socket, and epochs are driven by a remote
//!   `run_epoch`. The delta vs `sharded_4` prices the wire protocol
//!   (encode + TCP + decode) on the ingest hot path.
//! - `analytic`: the `sharded_4` cycle with the analytic curve backend in
//!   the loop — producers *synthesise* each curve from a workload spec at
//!   submission time instead of cloning a monitor-measured fixture. The
//!   delta vs `sharded_4` prices in-loop curve synthesis, the mode the
//!   `AnalyticCurveSource` backend enables (no monitors anywhere).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::{Arc, Mutex};
use std::thread;
use talus_core::MissCurve;
use talus_serve::{
    CacheId, CacheSpec, ReconfigService, RpcClient, RpcServer, ShardedReconfigService,
};
use talus_sim::monitor::{MonitorSource, SampledMattson};
use talus_sim::LineAddr;
use talus_workloads::{multi_tenant, AccessGenerator, AnalyticModel, ComponentKind};

/// Logical caches on the plane.
const CACHES: usize = 32;
/// Tenants per cache (each cache hosts one multi-tenant interference
/// workload).
const TENANTS: usize = 4;
/// Producer threads, striped over caches.
const PRODUCERS: usize = 4;
/// Curve-update rounds per iteration: each (cache, tenant) submits this
/// many successive monitor-measured updates. Epochs coalesce them (only
/// the latest curve is planned), so rounds weight the mix toward ingest —
/// the contended path sharding is for.
const ROUNDS: usize = 8;
/// Lines per logical cache.
const CAPACITY: u64 = 512;
/// Accesses per monitoring interval per tenant (feeding the fixture).
const INTERVAL: u64 = 10_000;
/// Footprint shrink factor for the interference profile.
const SCALE: f64 = 1.0 / 256.0;

/// Monitor-measured curves for every (cache, tenant, round), produced
/// once: the benches measure the serving plane, not the monitors.
struct Fixture {
    /// `curves[cache][tenant][round]`.
    curves: Vec<Vec<Vec<MissCurve>>>,
}

impl Fixture {
    fn build() -> Self {
        let profile = multi_tenant(TENANTS).scaled(SCALE);
        let curves = (0..CACHES)
            .map(|c| {
                (0..TENANTS)
                    .map(|t| {
                        let mut gen = profile.tenant_generator(t, 7 + c as u64);
                        let next: Box<dyn FnMut() -> LineAddr> = Box::new(move || gen.next_line());
                        let monitor =
                            SampledMattson::new(2 * CAPACITY, 8, 0xCAFE + (c * TENANTS + t) as u64);
                        let mut source = MonitorSource::new(monitor, INTERVAL, next);
                        source.warm_up(INTERVAL / 2);
                        (0..ROUNDS)
                            .map(|_| {
                                talus_core::CurveSource::next_curve(&mut source)
                                    .expect("monitors never exhaust")
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();
        Fixture { curves }
    }
}

/// The two plane configurations under one face, so the measured loop is
/// shared verbatim.
enum Plane {
    Single(ReconfigService),
    Sharded(ShardedReconfigService),
}

impl Plane {
    fn register(&self, spec: CacheSpec) -> CacheId {
        match self {
            Plane::Single(s) => s.register(spec),
            Plane::Sharded(s) => s.register(spec),
        }
    }

    fn submit(&self, id: CacheId, tenant: usize, curve: MissCurve) {
        match self {
            Plane::Single(s) => s.submit(id, tenant, curve),
            Plane::Sharded(s) => s.submit(id, tenant, curve),
        }
        .expect("cache registered and tenant in range")
    }

    fn drain(&self) -> usize {
        let reports = match self {
            Plane::Single(s) => s.run_until_clean(),
            Plane::Sharded(s) => s.run_until_clean(),
        };
        reports.iter().map(|r| r.planned.len()).sum()
    }
}

/// One full ingest cycle: `PRODUCERS` threads submit every round's curves
/// for their cache stripes, then the plane drains its dirty queues.
fn ingest_cycle(plane: &Plane, ids: &[CacheId], fixture: &Fixture) -> usize {
    thread::scope(|scope| {
        for p in 0..PRODUCERS {
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    for (c, id) in ids.iter().enumerate() {
                        if c % PRODUCERS != p {
                            continue;
                        }
                        for (t, rounds) in fixture.curves[c].iter().enumerate() {
                            plane.submit(*id, t, rounds[round].clone());
                        }
                    }
                }
            });
        }
    });
    plane.drain()
}

/// One full ingest cycle with curve *synthesis* in the loop: producers
/// derive each tenant's curve from its workload spec at submission time —
/// no fixture, no monitors. The Zipf exponent drifts per round so every
/// submission is a genuine plan-changing update rather than a
/// bit-identical no-op (which the plane dedupes).
fn analytic_cycle(plane: &Plane, ids: &[CacheId]) -> usize {
    thread::scope(|scope| {
        for p in 0..PRODUCERS {
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    for (c, id) in ids.iter().enumerate() {
                        if c % PRODUCERS != p {
                            continue;
                        }
                        for t in 0..TENANTS {
                            let q = 0.85 + 0.01 * ((round + t) % ROUNDS) as f64;
                            let model = AnalyticModel::from_components(&[(
                                ComponentKind::Zipf(q),
                                4 * CAPACITY,
                                1.0,
                            )]);
                            plane.submit(*id, t, model.curve(2 * CAPACITY));
                        }
                    }
                }
            });
        }
    });
    plane.drain()
}

fn bench_analytic(c: &mut Criterion) {
    let plane = Plane::Sharded(ShardedReconfigService::new(4));
    let ids: Vec<CacheId> = (0..CACHES)
        .map(|_| plane.register(CacheSpec::new(CAPACITY, TENANTS)))
        .collect();
    assert_eq!(analytic_cycle(&plane, &ids), CACHES);
    c.bench_function("serve_ingest/analytic", |b| {
        b.iter(|| black_box(analytic_cycle(&plane, &ids)))
    });
}

fn bench_plane(c: &mut Criterion, name: &str, plane: Plane, fixture: &Fixture) {
    let ids: Vec<CacheId> = (0..CACHES)
        .map(|_| plane.register(CacheSpec::new(CAPACITY, TENANTS)))
        .collect();
    // Warm the plane into steady state (every cache has a published plan).
    assert_eq!(ingest_cycle(&plane, &ids, fixture), CACHES);
    c.bench_function(name, |b| {
        b.iter(|| black_box(ingest_cycle(&plane, &ids, fixture)))
    });
}

/// One full ingest cycle over the wire: each producer thread holds a
/// persistent connection, stages its stripe's curves round by round
/// (one framed batch per round), and a control client drains the dirty
/// queues with remote epochs.
fn rpc_cycle(
    service: &ShardedReconfigService,
    control: &mut RpcClient,
    clients: &[Mutex<RpcClient>],
    ids: &[CacheId],
    fixture: &Fixture,
) -> usize {
    thread::scope(|scope| {
        for (p, client) in clients.iter().enumerate() {
            scope.spawn(move || {
                let mut client = client.lock().expect("client not poisoned");
                for round in 0..ROUNDS {
                    for (c, id) in ids.iter().enumerate() {
                        if c % PRODUCERS != p {
                            continue;
                        }
                        for (t, rounds) in fixture.curves[c].iter().enumerate() {
                            client
                                .stage(*id, t, rounds[round].clone())
                                .expect("staged within frame budget");
                        }
                    }
                    client.flush().expect("flush over rpc");
                }
            });
        }
    });
    let mut planned = 0;
    while service.pending() > 0 {
        planned += control.run_epoch().expect("epoch over rpc").planned.len();
    }
    planned
}

fn bench_rpc(c: &mut Criterion, fixture: &Fixture) {
    let service = Arc::new(ShardedReconfigService::new(4));
    let handle = RpcServer::bind("127.0.0.1:0", Arc::clone(&service))
        .expect("bind loopback")
        .spawn()
        .expect("spawn accept loop");
    let addr = handle.local_addr();
    let mut control = RpcClient::connect(addr).expect("connect control");
    let ids: Vec<CacheId> = (0..CACHES)
        .map(|_| {
            control
                .register(CAPACITY, TENANTS as u32)
                .expect("register over rpc")
        })
        .collect();
    let clients: Vec<Mutex<RpcClient>> = (0..PRODUCERS)
        .map(|_| Mutex::new(RpcClient::connect(addr).expect("connect producer")))
        .collect();
    assert_eq!(
        rpc_cycle(&service, &mut control, &clients, &ids, fixture),
        CACHES
    );
    c.bench_function("serve_ingest/rpc", |b| {
        b.iter(|| black_box(rpc_cycle(&service, &mut control, &clients, &ids, fixture)))
    });
    handle.shutdown();
}

fn bench_serve_ingest(c: &mut Criterion) {
    let fixture = Fixture::build();
    bench_plane(
        c,
        "serve_ingest/single",
        Plane::Single(ReconfigService::new()),
        &fixture,
    );
    bench_plane(
        c,
        "serve_ingest/sharded_1",
        Plane::Sharded(ShardedReconfigService::new(1)),
        &fixture,
    );
    bench_plane(
        c,
        "serve_ingest/sharded_4",
        Plane::Sharded(ShardedReconfigService::new(4)),
        &fixture,
    );
    bench_plane(
        c,
        "serve_ingest/sharded_4_threaded",
        Plane::Sharded(ShardedReconfigService::new(4).with_threads()),
        &fixture,
    );
    bench_rpc(c, &fixture);
    bench_analytic(c);
}

criterion_group!(name = benches; config = fast_criterion();
    targets = bench_serve_ingest);

fn fast_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200))
}

criterion_main!(benches);
