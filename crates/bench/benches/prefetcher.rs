//! Stream-prefetcher overhead (the §VII-B substrate): what does tracking
//! streams and injecting prefetches cost relative to the raw generator,
//! and how does the combined stream affect LLC access throughput?

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use talus_sim::policy::Lru;
use talus_sim::{AccessCtx, CacheModel, SetAssocCache};
use talus_workloads::{AccessGenerator, Scan, StreamPrefetcher, UniformRandom};

const ACCESSES: usize = 20_000;

fn bench_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("prefetcher_generate");
    g.throughput(Throughput::Elements(ACCESSES as u64));

    g.bench_function("raw_scan", |b| {
        let mut gen = Scan::new(0, 65_536);
        b.iter(|| {
            for _ in 0..ACCESSES {
                black_box(gen.next_line());
            }
        })
    });

    g.bench_function("prefetched_scan", |b| {
        // Worst case for the prefetcher: every access extends a stream.
        let mut pf = StreamPrefetcher::new(Scan::new(0, 65_536), 7);
        b.iter(|| {
            for _ in 0..ACCESSES {
                black_box(pf.next_tagged());
            }
        })
    });

    g.bench_function("prefetched_random", |b| {
        // Best case: no streams detected, trackers churn.
        let mut pf = StreamPrefetcher::new(UniformRandom::new(0, 1 << 20, 3), 7);
        b.iter(|| {
            for _ in 0..ACCESSES {
                black_box(pf.next_tagged());
            }
        })
    });

    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("prefetcher_llc");
    g.throughput(Throughput::Elements(ACCESSES as u64));

    g.bench_function("scan_through_llc", |b| {
        let mut pf = StreamPrefetcher::new(Scan::new(0, 65_536), 7);
        let mut cache = SetAssocCache::new(16_384, 16, Lru::new(), 2);
        let ctx = AccessCtx::new();
        b.iter(|| {
            let mut demand = 0usize;
            while demand < ACCESSES {
                let (line, kind) = pf.next_tagged();
                black_box(cache.access(line, &ctx));
                if kind.is_demand() {
                    demand += 1;
                }
            }
        })
    });

    g.finish();
}

criterion_group!(name = benches; config = fast_criterion();
    targets = bench_generation, bench_end_to_end);

fn fast_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_main!(benches);
