//! Monitor overheads: what it costs to *observe* miss curves — the
//! trade-off behind the paper's §VI-C monitoring discussion.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use talus_bench::synthetic_stream;
use talus_core::CurveSource;
use talus_sim::monitor::{
    CurveSampler, MattsonMonitor, Monitor, SampledMattson, ThreePointMonitor, Umon, UmonPair,
};
use talus_sim::policy::PolicyKind;
use talus_sim::LineAddr;
use talus_workloads::{multi_tenant, profile, AnalyticCurveSource, AnalyticModel, ComponentKind};

const STREAM: usize = 20_000;

fn bench_record(c: &mut Criterion) {
    let stream = synthetic_stream(STREAM, 8192, 32768, 11);
    let mut g = c.benchmark_group("monitor_record");
    g.throughput(Throughput::Elements(STREAM as u64));

    g.bench_function("mattson_exact", |b| {
        let mut m = MattsonMonitor::new(65536);
        b.iter(|| {
            for &l in &stream {
                m.record(black_box(LineAddr(l)));
            }
        })
    });

    let lines: Vec<LineAddr> = stream.iter().map(|&l| LineAddr(l)).collect();

    g.bench_function("mattson_exact_block", |b| {
        let mut m = MattsonMonitor::new(65536);
        b.iter(|| m.record_block(black_box(&lines)))
    });

    // The issue's headline target: ≥5× the exact monitor's recorded-access
    // throughput at a sampling rate of 1/16.
    g.bench_function("sampled_mattson", |b| {
        let mut m = SampledMattson::new(65536, 16, 5);
        b.iter(|| {
            for &l in &stream {
                m.record(black_box(LineAddr(l)));
            }
        })
    });

    g.bench_function("sampled_mattson_block", |b| {
        let mut m = SampledMattson::new(65536, 16, 5);
        b.iter(|| m.record_block(black_box(&lines)))
    });

    g.bench_function("umon_1k", |b| {
        let mut m = Umon::new(65536, 16, 64, 5);
        b.iter(|| {
            for &l in &stream {
                m.record(black_box(LineAddr(l)));
            }
        })
    });

    g.bench_function("umon_pair", |b| {
        let mut m = UmonPair::new(65536, 5);
        b.iter(|| {
            for &l in &stream {
                m.record(black_box(LineAddr(l)));
            }
        })
    });

    g.bench_function("three_point_cruise", |b| {
        let mut m = ThreePointMonitor::new(16384, 9);
        b.iter(|| {
            for &l in &stream {
                m.record(LineAddr(l));
            }
            black_box(m.sampled_accesses())
        })
    });

    // The §VI-C bank, as the sweeps now run it: one mix64 hash per access
    // compared against nested per-point thresholds, enum-dispatched SRRIP.
    g.bench_function("curve_sampler_srrip_16pt", |b| {
        let sizes: Vec<u64> = (1..=16).map(|i| i * 4096).collect();
        let mut m = CurveSampler::new(PolicyKind::Srrip, &sizes, 1024, 16, 5);
        b.iter(|| {
            for &l in &stream {
                m.record(black_box(LineAddr(l)));
            }
        })
    });

    g.bench_function("curve_sampler_srrip_16pt_block", |b| {
        let sizes: Vec<u64> = (1..=16).map(|i| i * 4096).collect();
        let mut m = CurveSampler::new(PolicyKind::Srrip, &sizes, 1024, 16, 5);
        b.iter(|| m.record_block(black_box(&lines)))
    });

    // The `Custom` escape hatch (boxed dispatch inside the same
    // single-hash bank): what user-defined policies pay.
    g.bench_function("curve_sampler_srrip_16pt_custom", |b| {
        use talus_sim::policy::{ReplacementPolicy, Srrip};
        let sizes: Vec<u64> = (1..=16).map(|i| i * 4096).collect();
        let mut m = CurveSampler::with_policy(
            |_s| Box::new(Srrip::new()) as Box<dyn ReplacementPolicy>,
            &sizes,
            1024,
            16,
            5,
        );
        b.iter(|| {
            for &l in &stream {
                m.record(black_box(LineAddr(l)));
            }
        })
    });

    g.finish();
}

fn bench_curve_extraction(c: &mut Criterion) {
    let stream = synthetic_stream(200_000, 8192, 32768, 11);
    let mut g = c.benchmark_group("monitor_curve");

    let mut mattson = MattsonMonitor::new(65536);
    let mut sampled = SampledMattson::new(65536, 16, 5);
    let mut pair = UmonPair::new(65536, 5);
    for &l in &stream {
        mattson.record(LineAddr(l));
        sampled.record(LineAddr(l));
        pair.record(LineAddr(l));
    }
    g.bench_function("mattson_curve", |b| b.iter(|| black_box(mattson.curve())));
    g.bench_function("sampled_mattson_curve", |b| {
        b.iter(|| black_box(sampled.curve()))
    });
    g.bench_function("umon_pair_curve", |b| b.iter(|| black_box(pair.curve())));
    g.finish();
}

/// The analytic backend: each iteration is the *entire* measurement cost
/// of one tenant — model construction plus curve synthesis from the
/// workload spec — with no address stream generated or recorded. The
/// price point to beat is one simulated monitoring pass of equivalent
/// fidelity: `monitor_record/sampled_mattson` (a 20k-access stream) plus
/// `monitor_curve/sampled_mattson_curve`.
fn bench_analytic_curve(c: &mut Criterion) {
    let mut g = c.benchmark_group("analytic_curve");

    // The headline: a skewed Zipf tenant over the same 32k-line footprint
    // and 64k-line resolution the monitor benches above observe.
    g.bench_function("zipf_tenant", |b| {
        b.iter(|| {
            let model = AnalyticModel::from_components(&[(
                black_box(ComponentKind::Zipf(0.9)),
                32768,
                1.0,
            )]);
            black_box(model.curve(65536))
        })
    });

    // One tenant of the interference workload the serve driver runs:
    // rotating shared-window scan superposed on a private Zipf hot set.
    let mt = multi_tenant(4).scaled(1.0 / 64.0);
    g.bench_function("multi_tenant", |b| {
        b.iter(|| {
            let model = AnalyticModel::from_multi_tenant(black_box(&mt));
            black_box(model.curve(2 * mt.tenant_footprint_lines()))
        })
    });

    // A mixed SPEC-shaped profile: scan plateaus + Zipf components.
    let omnetpp = profile("omnetpp")
        .expect("roster profile")
        .scaled(1.0 / 256.0);
    g.bench_function("mixed_spec", |b| {
        b.iter(|| {
            let model = AnalyticModel::from_profile(black_box(&omnetpp));
            black_box(model.curve(65536))
        })
    });

    // Steady state: the source synthesises once and replays; next_curve
    // is a clone — what the serving plane pays per interval after warmup.
    let mut source = AnalyticCurveSource::from_multi_tenant(&mt, 2 * mt.tenant_footprint_lines());
    g.bench_function("steady_state_next", |b| {
        b.iter(|| black_box(source.next_curve()))
    });

    g.finish();
}

criterion_group!(name = benches; config = fast_criterion();
    targets = bench_record, bench_curve_extraction, bench_analytic_curve);

fn fast_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_main!(benches);
