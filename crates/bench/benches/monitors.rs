//! Monitor overheads: what it costs to *observe* miss curves — the
//! trade-off behind the paper's §VI-C monitoring discussion.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use talus_bench::synthetic_stream;
use talus_sim::monitor::{
    CurveSampler, MattsonMonitor, Monitor, SampledMattson, ThreePointMonitor, Umon, UmonPair,
};
use talus_sim::policy::PolicyKind;
use talus_sim::LineAddr;

const STREAM: usize = 20_000;

fn bench_record(c: &mut Criterion) {
    let stream = synthetic_stream(STREAM, 8192, 32768, 11);
    let mut g = c.benchmark_group("monitor_record");
    g.throughput(Throughput::Elements(STREAM as u64));

    g.bench_function("mattson_exact", |b| {
        let mut m = MattsonMonitor::new(65536);
        b.iter(|| {
            for &l in &stream {
                m.record(black_box(LineAddr(l)));
            }
        })
    });

    let lines: Vec<LineAddr> = stream.iter().map(|&l| LineAddr(l)).collect();

    g.bench_function("mattson_exact_block", |b| {
        let mut m = MattsonMonitor::new(65536);
        b.iter(|| m.record_block(black_box(&lines)))
    });

    // The issue's headline target: ≥5× the exact monitor's recorded-access
    // throughput at a sampling rate of 1/16.
    g.bench_function("sampled_mattson", |b| {
        let mut m = SampledMattson::new(65536, 16, 5);
        b.iter(|| {
            for &l in &stream {
                m.record(black_box(LineAddr(l)));
            }
        })
    });

    g.bench_function("sampled_mattson_block", |b| {
        let mut m = SampledMattson::new(65536, 16, 5);
        b.iter(|| m.record_block(black_box(&lines)))
    });

    g.bench_function("umon_1k", |b| {
        let mut m = Umon::new(65536, 16, 64, 5);
        b.iter(|| {
            for &l in &stream {
                m.record(black_box(LineAddr(l)));
            }
        })
    });

    g.bench_function("umon_pair", |b| {
        let mut m = UmonPair::new(65536, 5);
        b.iter(|| {
            for &l in &stream {
                m.record(black_box(LineAddr(l)));
            }
        })
    });

    g.bench_function("three_point_cruise", |b| {
        let mut m = ThreePointMonitor::new(16384, 9);
        b.iter(|| {
            for &l in &stream {
                m.record(LineAddr(l));
            }
            black_box(m.sampled_accesses())
        })
    });

    // The §VI-C bank, as the sweeps now run it: one mix64 hash per access
    // compared against nested per-point thresholds, enum-dispatched SRRIP.
    g.bench_function("curve_sampler_srrip_16pt", |b| {
        let sizes: Vec<u64> = (1..=16).map(|i| i * 4096).collect();
        let mut m = CurveSampler::new(PolicyKind::Srrip, &sizes, 1024, 16, 5);
        b.iter(|| {
            for &l in &stream {
                m.record(black_box(LineAddr(l)));
            }
        })
    });

    g.bench_function("curve_sampler_srrip_16pt_block", |b| {
        let sizes: Vec<u64> = (1..=16).map(|i| i * 4096).collect();
        let mut m = CurveSampler::new(PolicyKind::Srrip, &sizes, 1024, 16, 5);
        b.iter(|| m.record_block(black_box(&lines)))
    });

    // The `Custom` escape hatch (boxed dispatch inside the same
    // single-hash bank): what user-defined policies pay.
    g.bench_function("curve_sampler_srrip_16pt_custom", |b| {
        use talus_sim::policy::{ReplacementPolicy, Srrip};
        let sizes: Vec<u64> = (1..=16).map(|i| i * 4096).collect();
        let mut m = CurveSampler::with_policy(
            |_s| Box::new(Srrip::new()) as Box<dyn ReplacementPolicy>,
            &sizes,
            1024,
            16,
            5,
        );
        b.iter(|| {
            for &l in &stream {
                m.record(black_box(LineAddr(l)));
            }
        })
    });

    g.finish();
}

fn bench_curve_extraction(c: &mut Criterion) {
    let stream = synthetic_stream(200_000, 8192, 32768, 11);
    let mut g = c.benchmark_group("monitor_curve");

    let mut mattson = MattsonMonitor::new(65536);
    let mut sampled = SampledMattson::new(65536, 16, 5);
    let mut pair = UmonPair::new(65536, 5);
    for &l in &stream {
        mattson.record(LineAddr(l));
        sampled.record(LineAddr(l));
        pair.record(LineAddr(l));
    }
    g.bench_function("mattson_curve", |b| b.iter(|| black_box(mattson.curve())));
    g.bench_function("sampled_mattson_curve", |b| {
        b.iter(|| black_box(sampled.curve()))
    });
    g.bench_function("umon_pair_curve", |b| b.iter(|| black_box(pair.curve())));
    g.finish();
}

criterion_group!(name = benches; config = fast_criterion();
    targets = bench_record, bench_curve_extraction);

fn fast_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_main!(benches);
