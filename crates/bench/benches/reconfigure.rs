//! End-to-end reconfiguration cost: the paper's §VI-D claim that Talus's
//! software steps cost "a few thousand cycles per reconfiguration".

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use talus_bench::synthetic_curve;
use talus_core::MissCurve;
use talus_partition::hill_climb;
use talus_sim::part::VantageLike;
use talus_sim::{TalusCache, TalusCacheConfig};

const LLC_LINES: u64 = 131_072; // 8 MB

fn bench_full_interval_software(c: &mut Criterion) {
    // The whole software path for 8 logical partitions: hulls →
    // hill climbing → shadow planning → hardware grant.
    let curves: Vec<MissCurve> = (0..8).map(|i| synthetic_curve(64, 77 + i)).collect();
    c.bench_function("interval_software_8apps", |b| {
        let cache = VantageLike::new(LLC_LINES, 16, 16, 3);
        let mut talus = TalusCache::new(cache, 8, TalusCacheConfig::for_vantage());
        b.iter(|| {
            let hulls: Vec<MissCurve> = curves.iter().map(|c| c.convex_hull().to_curve()).collect();
            let sizes = hill_climb(&hulls, LLC_LINES, LLC_LINES / 64);
            black_box(talus.reconfigure(&sizes, &curves).expect("valid plan"));
        })
    });
}

fn bench_talus_reconfigure_only(c: &mut Criterion) {
    let curves: Vec<MissCurve> = (0..8).map(|i| synthetic_curve(64, 77 + i)).collect();
    let sizes = vec![LLC_LINES / 8; 8];
    c.bench_function("talus_reconfigure_8apps", |b| {
        let cache = VantageLike::new(LLC_LINES, 16, 16, 3);
        let mut talus = TalusCache::new(cache, 8, TalusCacheConfig::for_vantage());
        b.iter(|| black_box(talus.reconfigure(&sizes, &curves).expect("valid plan")))
    });
}

criterion_group!(name = benches; config = fast_criterion();
    targets = bench_full_interval_software, bench_talus_reconfigure_only);

fn fast_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_main!(benches);
