//! Access-path throughput for every cache organisation: the simulator's
//! hot loop, and a proxy for relative hardware complexity.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use talus_bench::synthetic_stream;
use talus_core::MissCurve;
use talus_sim::part::{
    FutilityScaled, IdealPartitioned, PartitionedCacheModel, VantageLike, WayPartitioned,
};
use talus_sim::policy::{Lru, PolicyKind};
use talus_sim::{
    AccessCtx, CacheModel, FullyAssocLru, LineAddr, PartitionId, SetAssocCache, TalusCache,
    TalusCacheConfig,
};

const CACHE_LINES: u64 = 16384;
const STREAM: usize = 20_000;

const BENCH_POLICIES: [PolicyKind; 7] = [
    PolicyKind::Lru,
    PolicyKind::Srrip,
    PolicyKind::Drrip,
    PolicyKind::Dip,
    PolicyKind::Pdp,
    PolicyKind::Ship,
    PolicyKind::Random,
];

fn bench_policies(c: &mut Criterion) {
    let stream = synthetic_stream(STREAM, 8192, 32768, 7);
    // The simulator's hot loop as the rest of the workspace now runs it:
    // enum-dispatched (`AnyPolicy`) policies, one access at a time.
    let mut g = c.benchmark_group("set_assoc_access");
    g.throughput(Throughput::Elements(STREAM as u64));
    for kind in BENCH_POLICIES {
        g.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, &kind| {
                let mut cache = SetAssocCache::new(CACHE_LINES, 16, kind.build_any(1), 2);
                let ctx = AccessCtx::new();
                b.iter(|| {
                    for &l in &stream {
                        black_box(cache.access(LineAddr(l), &ctx));
                    }
                })
            },
        );
    }
    g.finish();

    // The old construction — `Box<dyn ReplacementPolicy>` virtual dispatch
    // — kept as the reference the enum-dispatch win is measured against.
    let mut g = c.benchmark_group("set_assoc_access_boxed");
    g.throughput(Throughput::Elements(STREAM as u64));
    for kind in [PolicyKind::Lru, PolicyKind::Srrip] {
        g.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, &kind| {
                let mut cache = SetAssocCache::new(CACHE_LINES, 16, kind.build(1), 2);
                let ctx = AccessCtx::new();
                b.iter(|| {
                    for &l in &stream {
                        black_box(cache.access(LineAddr(l), &ctx));
                    }
                })
            },
        );
    }
    g.finish();

    // Block-at-a-time ingest through `CacheModel::access_block`.
    let lines: Vec<LineAddr> = stream.iter().map(|&l| LineAddr(l)).collect();
    let mut g = c.benchmark_group("set_assoc_access_block");
    g.throughput(Throughput::Elements(STREAM as u64));
    for kind in BENCH_POLICIES {
        g.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, &kind| {
                let mut cache = SetAssocCache::new(CACHE_LINES, 16, kind.build_any(1), 2);
                let ctx = AccessCtx::new();
                b.iter(|| {
                    for chunk in lines.chunks(256) {
                        cache.access_block(black_box(chunk), &ctx);
                    }
                })
            },
        );
    }
    g.finish();
}

fn bench_organisations(c: &mut Criterion) {
    let stream = synthetic_stream(STREAM, 8192, 32768, 7);
    let ctx = AccessCtx::new();
    let mut g = c.benchmark_group("organisation_access");
    g.throughput(Throughput::Elements(STREAM as u64));

    g.bench_function("fully_assoc_lru", |b| {
        let mut cache = FullyAssocLru::new(CACHE_LINES);
        b.iter(|| {
            for &l in &stream {
                black_box(cache.access(LineAddr(l), &ctx));
            }
        })
    });

    g.bench_function("way_partitioned_lru", |b| {
        let mut cache = WayPartitioned::new(CACHE_LINES, 16, 2, Lru::new(), 3);
        cache.set_partition_sizes(&[CACHE_LINES / 2, CACHE_LINES / 2]);
        b.iter(|| {
            for &l in &stream {
                black_box(cache.access(PartitionId((l & 1) as u32), LineAddr(l), &ctx));
            }
        })
    });

    g.bench_function("vantage_like", |b| {
        let mut cache = VantageLike::new(CACHE_LINES, 16, 2, 3);
        cache.set_partition_sizes(&[CACHE_LINES / 2, CACHE_LINES / 2]);
        b.iter(|| {
            for &l in &stream {
                black_box(cache.access(PartitionId((l & 1) as u32), LineAddr(l), &ctx));
            }
        })
    });

    g.bench_function("futility_scaled", |b| {
        let mut cache = FutilityScaled::new(CACHE_LINES, 16, 2, 3);
        cache.set_partition_sizes(&[CACHE_LINES / 2, CACHE_LINES / 2]);
        b.iter(|| {
            for &l in &stream {
                black_box(cache.access(PartitionId((l & 1) as u32), LineAddr(l), &ctx));
            }
        })
    });

    // The partitioned block seam: same streams, ingested as per-partition
    // runs through `PartitionedCacheModel::access_block`.
    g.bench_function("vantage_like_block", |b| {
        let mut cache = VantageLike::new(CACHE_LINES, 16, 2, 3);
        cache.set_partition_sizes(&[CACHE_LINES / 2, CACHE_LINES / 2]);
        let per_part: Vec<Vec<LineAddr>> = (0..2u64)
            .map(|p| {
                stream
                    .iter()
                    .filter(|&&l| l & 1 == p)
                    .map(|&l| LineAddr(l))
                    .collect()
            })
            .collect();
        b.iter(|| {
            for (p, lines) in per_part.iter().enumerate() {
                for chunk in lines.chunks(256) {
                    cache.access_block(PartitionId(p as u32), black_box(chunk), &ctx);
                }
            }
        })
    });

    g.bench_function("talus_on_ideal", |b| {
        // Includes the sampling-function overhead (hash + limit compare).
        let cache = IdealPartitioned::new(CACHE_LINES, 2);
        let mut talus = TalusCache::new(cache, 1, TalusCacheConfig::new());
        let curve = MissCurve::from_samples(
            &[0.0, 4096.0, 8192.0, 12288.0, 16384.0, 32768.0],
            &[1.0, 0.8, 0.8, 0.8, 0.2, 0.2],
        )
        .expect("static bench curve");
        talus
            .reconfigure(&[CACHE_LINES], &[curve])
            .expect("reconfigure succeeds");
        b.iter(|| {
            for &l in &stream {
                black_box(talus.access(PartitionId(0), LineAddr(l), &ctx));
            }
        })
    });

    g.finish();
}

criterion_group!(name = benches; config = fast_criterion();
    targets = bench_policies, bench_organisations);

fn fast_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_main!(benches);
