//! Journal hot paths: append throughput and warm-restart replay cost.
//!
//! The store rides the serving plane's ingest path — every `submit` adds
//! one encode + checksum + `write_all` under the shard's journal lock —
//! so appends must stay cheap relative to the planning work they shadow.
//! Replay bounds restart time: a plane is offline for exactly one
//! journal scan plus one state rebuild.
//!
//! Groups:
//! - `store_journal/append_*`: one iteration journals a full curve round
//!   for 32 caches (encode + checksum + file append per record), with
//!   and without the serving plane in front — the delta prices the plane
//!   itself, the `curve` variant prices the dominant record type alone.
//! - `store_journal/replay_*`: one iteration scans a journal of N
//!   records back into `Record`s (the decode half of a warm restart);
//!   `restore_plane` also rebuilds the full service state, which is what
//!   an operator actually waits for after a crash.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use talus_core::MissCurve;
use talus_partition::Planner;
use talus_serve::{CacheSpec, ShardedReconfigService};
use talus_store::{Store, StoreSink};

/// Logical caches journaling per iteration.
const CACHES: u64 = 32;
/// Shards (journal files) the records spread over.
const SHARDS: usize = 4;
/// Points per synthetic miss curve (the production-shaped size: the
/// serve ingest benches and driver run 65-point monitor curves).
const POINTS: usize = 65;

static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "talus-store-bench-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create bench dir");
    dir
}

/// A monotone miss curve with the production point count.
fn curve(seed: u64) -> MissCurve {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut m = 100.0 + (next() % 50) as f64;
    let sizes: Vec<f64> = (0..POINTS).map(|i| i as f64 * 64.0).collect();
    let misses: Vec<f64> = sizes
        .iter()
        .map(|_| {
            let v = m;
            m = (m - (next() % 4) as f64).max(0.0);
            v
        })
        .collect();
    MissCurve::from_samples(&sizes, &misses).expect("valid curve")
}

/// Journals `rounds` curve rounds for CACHES caches through a sinked
/// plane (including one epoch per round), leaving a realistic mixed
/// journal on disk. Returns the store.
fn populate(dir: &PathBuf, rounds: u64) -> Arc<Store> {
    let store = Arc::new(Store::open(dir, SHARDS).expect("open store"));
    let plane =
        ShardedReconfigService::new(SHARDS).with_sink(Arc::clone(&store) as Arc<dyn StoreSink>);
    let ids: Vec<_> = (0..CACHES)
        .map(|_| plane.register(CacheSpec::new(4096, 1).with_planner(Planner::new(64))))
        .collect();
    for round in 0..rounds {
        for (c, id) in ids.iter().enumerate() {
            plane
                .submit(*id, 0, curve(round * CACHES + c as u64))
                .expect("registered");
        }
        plane.run_epoch();
    }
    assert_eq!(store.last_error(), None, "journaling must not fault");
    store
}

fn bench_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_journal");

    // The raw sink path: one iteration appends a full curve round (one
    // 65-point curve per cache) straight into the store — encode,
    // checksum, length-prefix, write_all, no plane in front.
    let dir = bench_dir("append-curve");
    let store = Store::open(&dir, SHARDS).expect("open store");
    let planner = Planner::new(64);
    for id in 0..CACHES {
        store.register(id, 4096, 1, &planner);
    }
    let curves: Vec<MissCurve> = (0..CACHES).map(curve).collect();
    let mut round = 0u64;
    group.bench_function("append_curve_round", |b| {
        b.iter(|| {
            round += 1;
            for (id, curve) in curves.iter().enumerate() {
                store.submit(id as u64, 0, black_box(curve));
            }
        })
    });
    assert_eq!(store.last_error(), None);
    drop(store);
    std::fs::remove_dir_all(&dir).ok();

    // The same round through a journaling plane — what `submit` actually
    // costs a producer once persistence is on (registry lock + store
    // append under it).
    let dir = bench_dir("append-plane");
    let store = Arc::new(Store::open(&dir, SHARDS).expect("open store"));
    let plane =
        ShardedReconfigService::new(SHARDS).with_sink(Arc::clone(&store) as Arc<dyn StoreSink>);
    let ids: Vec<_> = (0..CACHES)
        .map(|_| plane.register(CacheSpec::new(4096, 1).with_planner(Planner::new(64))))
        .collect();
    group.bench_function("append_plane_round", |b| {
        b.iter(|| {
            for (id, curve) in ids.iter().zip(&curves) {
                plane
                    .submit(*id, 0, black_box(curve).clone())
                    .expect("registered");
            }
            // Keep the dirty queue bounded without planning work: the
            // cut record is part of the journaled cycle anyway.
            black_box(plane.run_epoch());
        })
    });
    assert_eq!(store.last_error(), None);
    drop(plane);
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
    group.finish();
}

fn bench_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_journal");

    for rounds in [4u64, 16] {
        let dir = bench_dir(&format!("replay-{rounds}"));
        let store = populate(&dir, rounds);
        let records: usize = (0..SHARDS)
            .map(|s| store.replay_shard(s).expect("scan").records.len())
            .sum();

        // Decode half only: scan every shard file back into Records.
        group.bench_function(format!("replay_scan_{records}_records"), |b| {
            b.iter(|| {
                let mut total = 0usize;
                for shard in 0..SHARDS {
                    total += store.replay_shard(shard).expect("scan").records.len();
                }
                black_box(total)
            })
        });

        // The full warm restart an operator waits for: scan + rebuild
        // the whole plane state.
        group.bench_function(format!("restore_plane_{records}_records"), |b| {
            b.iter(|| {
                let plane = ShardedReconfigService::new(SHARDS);
                let summary = plane.restore(&store).expect("restore");
                black_box((plane, summary))
            })
        });
        drop(store);
        std::fs::remove_dir_all(&dir).ok();
    }
    group.finish();
}

criterion_group!(benches, bench_append, bench_replay);
criterion_main!(benches);
