//! Allocation-algorithm cost (the Fig. 12 simplicity argument): hill
//! climbing is linear, Lookahead quadratic, the DP oracle worse — Talus's
//! convexity guarantee is what lets a system run the cheapest one.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use talus_bench::synthetic_curve;
use talus_core::MissCurve;
use talus_partition::{hill_climb, imbalanced, lookahead, optimal_dp};

fn curves(n: usize) -> Vec<MissCurve> {
    (0..n)
        .map(|i| synthetic_curve(64, 1000 + i as u64))
        .collect()
}

fn bench_algorithms(c: &mut Criterion) {
    let capacity = 64 * 64u64; // 64 grains of 64 lines
    for apps in [4usize, 8, 16] {
        let cs = curves(apps);
        let hulls: Vec<MissCurve> = cs.iter().map(|c| c.convex_hull().to_curve()).collect();
        let mut g = c.benchmark_group(format!("alloc_{apps}_apps"));
        g.bench_with_input(BenchmarkId::new("hill_climb", apps), &cs, |b, cs| {
            b.iter(|| black_box(hill_climb(cs, capacity, 64)))
        });
        g.bench_with_input(
            BenchmarkId::new("hill_climb_on_hulls", apps),
            &hulls,
            |b, hs| b.iter(|| black_box(hill_climb(hs, capacity, 64))),
        );
        g.bench_with_input(BenchmarkId::new("lookahead", apps), &cs, |b, cs| {
            b.iter(|| black_box(lookahead(cs, capacity, 64)))
        });
        g.bench_with_input(BenchmarkId::new("optimal_dp", apps), &cs, |b, cs| {
            b.iter(|| black_box(optimal_dp(cs, capacity, 64)))
        });
        g.bench_with_input(BenchmarkId::new("imbalanced", apps), &cs, |b, cs| {
            b.iter(|| black_box(imbalanced(cs, capacity, 64, 0)))
        });
        g.finish();
    }
}

fn bench_preprocessing(c: &mut Criterion) {
    // Talus's pre-processing step: hulls for 8 apps at 64 points each.
    let cs = curves(8);
    c.bench_function("preprocess_hulls_8x64pt", |b| {
        b.iter(|| {
            let hulls: Vec<MissCurve> = cs.iter().map(|c| c.convex_hull().to_curve()).collect();
            black_box(hulls)
        })
    });
}

criterion_group!(name = benches; config = fast_criterion();
    targets = bench_algorithms, bench_preprocessing);

fn fast_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_main!(benches);
