//! Benchmarks for the pure Talus math: hull construction (the §VI-D
//! "linear time via three-coins" claim), shadow planning (the "few
//! arithmetic operations" claim), and the bypass solver.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use talus_bench::synthetic_curve;
use talus_core::bypass::optimal_bypass;
use talus_core::{plan, plan_with_hull, talus_curve, TalusOptions};

fn bench_convex_hull(c: &mut Criterion) {
    let mut g = c.benchmark_group("convex_hull");
    for points in [64usize, 256, 1024, 4096] {
        let curve = synthetic_curve(points, 42);
        g.bench_with_input(BenchmarkId::from_parameter(points), &curve, |b, curve| {
            b.iter(|| black_box(curve.convex_hull()))
        });
    }
    g.finish();
}

fn bench_plan(c: &mut Criterion) {
    let mut g = c.benchmark_group("plan");
    let curve = synthetic_curve(64, 42);
    // Planning from scratch (hull + solve), the per-reconfiguration cost.
    g.bench_function("curve_64pt", |b| {
        b.iter(|| plan(black_box(&curve), black_box(1234.0), TalusOptions::new()))
    });
    // Planning against a precomputed hull (the post-processing step only).
    let hull = curve.convex_hull();
    g.bench_function("hull_only", |b| {
        b.iter(|| plan_with_hull(black_box(&hull), black_box(1234.0), TalusOptions::new()))
    });
    g.finish();
}

fn bench_bypass_solver(c: &mut Criterion) {
    let curve = synthetic_curve(64, 42);
    c.bench_function("optimal_bypass_64pt", |b| {
        b.iter(|| optimal_bypass(black_box(&curve), black_box(1234.0)))
    });
}

fn bench_talus_curve(c: &mut Criterion) {
    let curve = synthetic_curve(256, 42);
    c.bench_function("talus_curve_256pt", |b| {
        b.iter(|| talus_curve(black_box(&curve)))
    });
}

fn bench_theorem4_transform(c: &mut Criterion) {
    let curve = synthetic_curve(256, 42);
    c.bench_function("sampled_transform_256pt", |b| {
        b.iter(|| black_box(&curve).sampled(black_box(0.37)))
    });
}

criterion_group!(name = benches; config = fast_criterion();
    targets =
    bench_convex_hull,
    bench_plan,
    bench_bypass_solver,
    bench_talus_curve,
    bench_theorem4_transform
);

fn fast_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_main!(benches);
