//! Shared fixtures for the Criterion benches.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod compare;

use talus_core::{CurvePoint, MissCurve};

/// A deterministic pseudo-random miss curve with `points` samples and a
/// handful of plateaus/cliffs, for hull and planning benches.
pub fn synthetic_curve(points: usize, seed: u64) -> MissCurve {
    assert!(points >= 2, "need at least two points");
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut m = 200.0 + (next() % 100) as f64;
    let pts: Vec<CurvePoint> = (0..points)
        .map(|i| {
            // Mostly plateaus with occasional cliffs.
            if next() % 7 == 0 {
                m = (m - (next() % 40) as f64).max(0.0);
            } else {
                m = (m - (next() % 3) as f64).max(0.0);
            }
            CurvePoint::new(i as f64 * 64.0, m)
        })
        .collect();
    MissCurve::new(pts).expect("synthetic curve is valid")
}

/// A deterministic mixed access stream (hot set + scan) of `len` lines.
pub fn synthetic_stream(len: usize, hot_lines: u64, scan_lines: u64, seed: u64) -> Vec<u64> {
    let mut state = seed | 1;
    let mut scan = 0u64;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if state >> 63 == 0 {
                (state >> 33) % hot_lines
            } else {
                scan += 1;
                (1 << 40) + (scan % scan_lines)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_curve_is_valid_and_sized() {
        let c = synthetic_curve(64, 9);
        assert_eq!(c.len(), 64);
        assert!(c.is_monotone(1e-9));
    }

    #[test]
    fn synthetic_stream_mixes_components() {
        let s = synthetic_stream(10_000, 100, 1000, 3);
        assert!(s.iter().any(|&l| l < 100));
        assert!(s.iter().any(|&l| l >= 1 << 40));
    }
}
