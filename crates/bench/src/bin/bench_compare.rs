//! Diff two bench baselines and flag hot-path regressions.
//!
//! ```text
//! bench_compare OLD.json NEW.json [--threshold PCT] [--warn-only]
//! ```
//!
//! Exits 1 if any hot-path bench (see
//! [`HOT_PREFIXES`](talus_bench::compare::HOT_PREFIXES)) regressed more
//! than the threshold (default 10%), unless `--warn-only` is given — the
//! CI mode, where shared-runner noise makes failing the build on timing
//! unreasonable but the report is still worth reading.

use std::process::ExitCode;
use talus_bench::compare::{compare, DEFAULT_THRESHOLD};

fn usage() -> ExitCode {
    eprintln!("usage: bench_compare OLD.json NEW.json [--threshold PCT] [--warn-only]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut files = Vec::new();
    let mut threshold = DEFAULT_THRESHOLD;
    let mut warn_only = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--warn-only" => warn_only = true,
            "--threshold" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(pct) if pct > 0.0 => threshold = pct / 100.0,
                _ => return usage(),
            },
            "--help" | "-h" => return usage(),
            _ => files.push(arg),
        }
    }
    let [old_path, new_path] = files.as_slice() else {
        return usage();
    };

    let read =
        |path: &str| std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"));
    let report = match (|| compare(&read(old_path)?, &read(new_path)?))() {
        Ok(report) => report,
        Err(e) => {
            eprintln!("bench_compare: {e}");
            return ExitCode::from(2);
        }
    };

    println!(
        "bench_compare: {old_path} -> {new_path} ({} shared benches)",
        report.diffs.len()
    );
    for diff in &report.diffs {
        println!("  {diff}");
    }
    for name in &report.only_new {
        println!("  {name:<48} (new bench, no baseline)");
    }
    for name in &report.only_old {
        println!("  {name:<48} (missing from new run)");
    }

    let regressions = report.regressions(threshold);
    if regressions.is_empty() {
        println!("no hot-path regressions beyond {:.0}%.", threshold * 100.0);
        return ExitCode::SUCCESS;
    }
    println!(
        "{} hot-path regression(s) beyond {:.0}%:",
        regressions.len(),
        threshold * 100.0
    );
    for diff in &regressions {
        println!("  REGRESSED {diff}");
    }
    if warn_only {
        println!("(--warn-only: not failing)");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
