//! Baseline comparison: diff two `results/bench_baseline.json` files and
//! flag regressions on the hot paths.
//!
//! `scripts/bench_baseline.sh` emits a flat `{name: median ns/iter}` map;
//! this module parses that format (no JSON dependency — the format is a
//! two-level object this workspace itself generates), joins two baselines
//! by bench name, and classifies changes. The `bench_compare` binary (and
//! `scripts/bench_compare.sh`) wrap it for the command line; CI runs it
//! warn-only against the committed baseline, since shared-runner numbers
//! are too noisy to gate on.

use std::collections::BTreeMap;
use std::fmt;

/// Bench-name prefixes considered hot paths: the planning pipeline the
/// online service leans on (hulls, plan, allocation), the serving plane's
/// ingest cycle (`serve_ingest/` covers the local variants, the
/// `serve_ingest/rpc` loopback wire-protocol cycle, and the
/// `serve_ingest/analytic` synthesis-in-the-loop cycle alike), the journal
/// append/replay paths riding that cycle (`store_journal/`), the monitor
/// record/curve paths, the analytic curve-synthesis backend
/// (`analytic_curve/` — its price point is what makes monitor-free
/// serving viable), and the per-access cache loops. A regression
/// beyond threshold on these fails the comparison (unless warn-only).
pub const HOT_PREFIXES: &[&str] = &[
    "convex_hull/",
    "plan/",
    "alloc_",
    "preprocess_hulls",
    "talus_reconfigure",
    "interval_software",
    "serve_ingest/",
    "store_journal/",
    "monitor_record/",
    "monitor_curve/",
    "analytic_curve/",
    "set_assoc_access/",
    "set_assoc_access_block/",
    "organisation_access/",
];

/// Relative change flagged as a regression by default (10%).
pub const DEFAULT_THRESHOLD: f64 = 0.10;

/// One bench present in both baselines.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDiff {
    /// The bench name (`group/function` as reported by the harness).
    pub name: String,
    /// Median ns/iter in the old baseline.
    pub old_ns: f64,
    /// Median ns/iter in the new baseline.
    pub new_ns: f64,
}

impl BenchDiff {
    /// Relative change: `+0.25` means 25% slower, `-0.5` twice as fast.
    pub fn change(&self) -> f64 {
        self.new_ns / self.old_ns - 1.0
    }

    /// Whether this bench sits on a hot path (see [`HOT_PREFIXES`]).
    pub fn is_hot(&self) -> bool {
        HOT_PREFIXES.iter().any(|p| self.name.starts_with(p))
    }
}

impl fmt::Display for BenchDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<48} {:>12.2} -> {:>12.2} ns  {:>+8.1}%{}",
            self.name,
            self.old_ns,
            self.new_ns,
            self.change() * 100.0,
            if self.is_hot() { "  [hot]" } else { "" }
        )
    }
}

/// The joined result of comparing two baselines.
#[derive(Debug, Clone, Default)]
pub struct CompareReport {
    /// Benches in both files, sorted worst regression first.
    pub diffs: Vec<BenchDiff>,
    /// Benches only in the old baseline (removed or filtered out).
    pub only_old: Vec<String>,
    /// Benches only in the new baseline (newly added).
    pub only_new: Vec<String>,
}

impl CompareReport {
    /// Hot-path benches slower than `threshold` (relative, e.g. `0.10`).
    pub fn regressions(&self, threshold: f64) -> Vec<&BenchDiff> {
        self.diffs
            .iter()
            .filter(|d| d.is_hot() && d.change() > threshold)
            .collect()
    }
}

/// Parses a `bench_baseline.json` into a name → ns/iter map.
///
/// Accepts exactly the shape `scripts/bench_baseline.sh` writes: string
/// keys mapping to bare numbers inside the `"benches"` object; the
/// `_note` string and all braces are skipped.
///
/// # Errors
///
/// Returns a message naming the offending line if a benches entry does
/// not parse as `"name": number`.
pub fn parse_baseline(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut map = BTreeMap::new();
    let mut in_benches = false;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim().trim_end_matches(',');
        if !in_benches {
            in_benches = line.starts_with("\"benches\"");
            continue;
        }
        if line == "}" || line.is_empty() {
            in_benches = false;
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| format!("line {}: expected \"name\": value, got {raw:?}", lineno + 1))?;
        let name = name.trim().trim_matches('"');
        let ns: f64 = value
            .trim()
            .parse()
            .map_err(|e| format!("line {}: bad number for {name}: {e}", lineno + 1))?;
        map.insert(name.to_string(), ns);
    }
    if map.is_empty() {
        return Err("no benches found (is this a bench_baseline.json?)".into());
    }
    Ok(map)
}

/// Joins two parsed baselines into a [`CompareReport`].
///
/// # Errors
///
/// Propagates [`parse_baseline`] errors, prefixed with which file failed.
pub fn compare(old_text: &str, new_text: &str) -> Result<CompareReport, String> {
    let old = parse_baseline(old_text).map_err(|e| format!("old baseline: {e}"))?;
    let new = parse_baseline(new_text).map_err(|e| format!("new baseline: {e}"))?;
    let mut report = CompareReport::default();
    for (name, &old_ns) in &old {
        match new.get(name) {
            Some(&new_ns) => report.diffs.push(BenchDiff {
                name: name.clone(),
                old_ns,
                new_ns,
            }),
            None => report.only_old.push(name.clone()),
        }
    }
    report
        .only_new
        .extend(new.keys().filter(|n| !old.contains_key(*n)).cloned());
    report
        .diffs
        .sort_by(|a, b| b.change().total_cmp(&a.change()));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline(entries: &[(&str, f64)]) -> String {
        let mut s =
            String::from("{\n  \"_note\": \"median ns/iter per bench\",\n  \"benches\": {\n");
        for (i, (name, ns)) in entries.iter().enumerate() {
            s.push_str(&format!(
                "    \"{name}\": {ns}{}\n",
                if i + 1 < entries.len() { "," } else { "" }
            ));
        }
        s.push_str("  }\n}\n");
        s
    }

    #[test]
    fn parses_the_generated_format() {
        let text = baseline(&[("plan/hull_only", 22.47), ("convex_hull/256", 745.05)]);
        let map = parse_baseline(&text).unwrap();
        assert_eq!(map.len(), 2);
        assert_eq!(map["plan/hull_only"], 22.47);
    }

    #[test]
    fn rejects_garbage_and_empty() {
        assert!(parse_baseline("{}").is_err());
        let bad = "{\n\"benches\": {\n\"x\": notanumber\n}\n}";
        assert!(parse_baseline(bad).unwrap_err().contains("bad number"));
    }

    #[test]
    fn flags_hot_regressions_only() {
        let old = baseline(&[
            ("plan/hull_only", 100.0),
            ("monitor_record/mattson_exact", 100.0),
            ("prefetcher_generate/raw_scan", 100.0),
        ]);
        let new = baseline(&[
            ("plan/hull_only", 105.0),                // hot, within threshold
            ("monitor_record/mattson_exact", 150.0),  // hot, regressed
            ("prefetcher_generate/raw_scan", 1000.0), // cold, ignored
        ]);
        let report = compare(&old, &new).unwrap();
        let regs = report.regressions(DEFAULT_THRESHOLD);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].name, "monitor_record/mattson_exact");
        assert!((regs[0].change() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reports_added_and_removed_benches() {
        let old = baseline(&[("plan/hull_only", 10.0), ("gone/bench", 1.0)]);
        let new = baseline(&[
            ("plan/hull_only", 9.0),
            ("monitor_record/sampled_mattson", 2.0),
        ]);
        let report = compare(&old, &new).unwrap();
        assert_eq!(report.only_old, vec!["gone/bench"]);
        assert_eq!(report.only_new, vec!["monitor_record/sampled_mattson"]);
        assert_eq!(report.diffs.len(), 1);
        assert!(report.regressions(DEFAULT_THRESHOLD).is_empty());
    }

    #[test]
    fn diffs_sort_worst_first() {
        let old = baseline(&[("plan/a", 100.0), ("plan/b", 100.0), ("plan/c", 100.0)]);
        let new = baseline(&[("plan/a", 90.0), ("plan/b", 200.0), ("plan/c", 120.0)]);
        let report = compare(&old, &new).unwrap();
        let names: Vec<&str> = report.diffs.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["plan/b", "plan/c", "plan/a"]);
        assert!(!report.diffs[0].to_string().is_empty());
    }
}
