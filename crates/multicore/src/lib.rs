//! # talus-multicore — shared-LLC experiments for the Talus reproduction
//!
//! The paper's §VII-D evaluates Talus on an 8-core CMP with a shared,
//! partitioned LLC. This crate provides that harness:
//!
//! - [`SystemConfig`]: the Table-I system parameters;
//! - [`CoreModel`]: the analytic MPKI→IPC substitute for zsim's OOO cores
//!   (see DESIGN.md), plus the paper's metrics (weighted/harmonic speedup,
//!   CoV-of-IPC fairness);
//! - [`system`]: the scheme roster — unpartitioned LRU, TA-DRRIP,
//!   partitioned LRU (hill climbing / Lookahead / fair), and Talus+V/LRU;
//! - [`run_mix`]: the fixed-work mix runner.
//!
//! ```no_run
//! use talus_multicore::{run_mix, RunConfig, SchemeKind, SystemConfig};
//! use talus_multicore::system::AllocAlgo;
//! use talus_workloads::profile;
//!
//! let apps: Vec<_> = ["mcf", "omnetpp"].iter().map(|n| profile(n).unwrap()).collect();
//! let cfg = RunConfig::new(SystemConfig::eight_core());
//! let result = run_mix(&apps, SchemeKind::TalusLru(AllocAlgo::Hill), &cfg);
//! println!("{}: {:?}", result.scheme, result.ipcs());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod config;
mod coremodel;
mod runner;
pub mod system;

pub use config::SystemConfig;
pub use coremodel::{
    coefficient_of_variation, gmean, harmonic_speedup, weighted_speedup, CoreModel,
};
pub use runner::{run_mix, run_mix_on, AppResult, RunConfig, RunResult};
pub use system::{AllocAlgo, SchemeKind};
