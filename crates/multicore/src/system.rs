//! Shared-LLC systems: the schemes compared in the paper's §VII-D.
//!
//! Each [`LlcSystem`] owns the cache (and, for partitioned schemes, the
//! per-app monitors and allocation algorithm) and is driven by the mix
//! runner: one [`access`](LlcSystem::access) per LLC reference and one
//! [`reconfigure`](LlcSystem::reconfigure) per interval.

use talus_core::MissCurve;
use talus_partition::{fair, Planner};
use talus_sim::monitor::{Monitor, UmonPair};
use talus_sim::part::{PartitionedCacheModel, VantageLike};
use talus_sim::policy::{Lru, PolicyKind, ReplacementPolicy, TaDrrip};
use talus_sim::{
    AccessCtx, AccessResult, CacheModel, CacheStats, LineAddr, PartitionId, SetAssocCache,
    TalusCache, TalusCacheConfig, ThreadId,
};

/// Allocation algorithms available to partitioned schemes.
///
/// This is `talus-partition`'s [`AllocPolicy`](talus_partition::AllocPolicy)
/// under its historical multicore name: the dispatch lives one layer down
/// so the offline tools and the online service run the identical code.
pub use talus_partition::AllocPolicy as AllocAlgo;

/// The scheme roster of Fig. 12/13.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// Unpartitioned shared LRU (the baseline).
    SharedLru,
    /// Unpartitioned thread-aware DRRIP.
    TaDrrip,
    /// Unpartitioned shared cache running any built-in policy, selected
    /// at runtime but statically dispatched on the access path
    /// (`SharedLlc<AnyPolicy>`) — the roster hook for policy ablations
    /// beyond the paper's two shared baselines.
    Shared(PolicyKind),
    /// Partitioned LRU (no Talus) with the given algorithm on raw curves.
    PartitionedLru(AllocAlgo),
    /// Talus on Vantage-like partitioning over LRU, with the given
    /// algorithm running on convex hulls (the paper's Talus+V/LRU).
    TalusLru(AllocAlgo),
}

impl SchemeKind {
    /// Display label matching the paper's legends.
    pub fn label(self) -> String {
        match self {
            SchemeKind::SharedLru => "LRU".into(),
            SchemeKind::TaDrrip => "TA-DRRIP".into(),
            SchemeKind::Shared(kind) => kind.label().into(),
            SchemeKind::PartitionedLru(a) => format!("{}/LRU", a.label()),
            SchemeKind::TalusLru(a) => format!("Talus+V/LRU ({})", a.label()),
        }
    }

    /// Builds the system for `apps` cores sharing `llc_lines`.
    pub fn build(self, llc_lines: u64, apps: usize, seed: u64) -> Box<dyn LlcSystem> {
        match self {
            SchemeKind::SharedLru => Box::new(SharedLlc::new(llc_lines, apps, Lru::new(), seed)),
            SchemeKind::TaDrrip => {
                Box::new(SharedLlc::new(llc_lines, apps, TaDrrip::new(seed), seed))
            }
            SchemeKind::Shared(kind) => {
                Box::new(SharedLlc::new(llc_lines, apps, kind.build_any(seed), seed))
            }
            SchemeKind::PartitionedLru(algo) => {
                Box::new(PartitionedLlc::new(llc_lines, apps, algo, seed))
            }
            SchemeKind::TalusLru(algo) => Box::new(TalusLlc::new(llc_lines, apps, algo, seed)),
        }
    }
}

/// A shared LLC serving multiple applications.
pub trait LlcSystem: std::fmt::Debug {
    /// One access issued by application `app`.
    fn access(&mut self, app: usize, line: LineAddr) -> AccessResult;

    /// Interval boundary: `interval_accesses[a]` is how many LLC accesses
    /// app `a` issued since the previous call (used to weight miss curves).
    fn reconfigure(&mut self, interval_accesses: &[u64]);

    /// Per-application hit/miss counters since the last reset.
    fn app_stats(&self, app: usize) -> CacheStats;

    /// Clears the per-application counters.
    fn reset_stats(&mut self);

    /// Human-readable scheme name.
    fn name(&self) -> String;
}

/// Unpartitioned shared cache (LRU baseline and TA-DRRIP).
#[derive(Debug)]
pub struct SharedLlc<P> {
    cache: SetAssocCache<P>,
    stats: Vec<CacheStats>,
}

impl<P: ReplacementPolicy> SharedLlc<P> {
    /// Builds an unpartitioned `llc_lines` cache shared by `apps` cores.
    pub fn new(llc_lines: u64, apps: usize, policy: P, seed: u64) -> Self {
        SharedLlc {
            cache: SetAssocCache::new(llc_lines, 16, policy, seed),
            stats: vec![CacheStats::new(); apps],
        }
    }
}

impl<P: ReplacementPolicy + std::fmt::Debug> LlcSystem for SharedLlc<P> {
    fn access(&mut self, app: usize, line: LineAddr) -> AccessResult {
        let ctx = AccessCtx::from_thread(ThreadId(app as u16));
        let r = self.cache.access(line, &ctx);
        self.stats[app].record(r);
        r
    }

    fn reconfigure(&mut self, _interval_accesses: &[u64]) {}

    fn app_stats(&self, app: usize) -> CacheStats {
        self.stats[app]
    }

    fn reset_stats(&mut self) {
        for s in &mut self.stats {
            s.reset();
        }
        self.cache.reset_stats();
    }

    fn name(&self) -> String {
        self.cache.policy().name().to_string()
    }
}

/// How many grains the allocation algorithms work in.
const ALLOC_GRAINS: u64 = 64;

/// Monitor sets per UMON array: the paper uses 16 sets for an 8 MB LLC;
/// scaled-down LLCs get proportionally denser monitors so per-interval
/// sample counts (curve fidelity) match full scale.
fn umon_sets(llc_lines: u64) -> usize {
    ((131_072 / llc_lines.max(1)) as usize * 16).clamp(16, 128)
}

/// Partitioned LRU without Talus: per-app UMON pairs, raw (cliffy) curves
/// handed to the allocation algorithm, one Vantage-like partition per app.
#[derive(Debug)]
pub struct PartitionedLlc {
    cache: VantageLike,
    monitors: Vec<UmonPair>,
    planner: Planner,
    rounds: u64,
}

impl PartitionedLlc {
    /// Builds the system.
    pub fn new(llc_lines: u64, apps: usize, algo: AllocAlgo, seed: u64) -> Self {
        let mut cache = VantageLike::new(llc_lines, 16, apps, seed);
        // Start fair so the first interval is sane.
        let init: Vec<u64> = fair(apps, llc_lines, 1);
        cache.set_partition_sizes(&init);
        PartitionedLlc {
            cache,
            monitors: (0..apps)
                .map(|a| {
                    UmonPair::with_sets(
                        llc_lines,
                        umon_sets(llc_lines),
                        seed.wrapping_add(100 + a as u64),
                    )
                })
                .collect(),
            // No Talus: the allocator sees the raw (cliffy) curves.
            planner: Planner::new((llc_lines / ALLOC_GRAINS).max(1))
                .with_policy(algo)
                .raw_curves(),
            rounds: 0,
        }
    }
}

/// Weights each app's miss-per-access curve by its interval access count,
/// giving commensurable misses-per-interval curves.
fn weighted_curves(monitors: &[UmonPair], interval_accesses: &[u64]) -> Vec<MissCurve> {
    monitors
        .iter()
        .zip(interval_accesses)
        .map(|(m, &n)| m.curve().scaled(n as f64))
        .collect()
}

impl LlcSystem for PartitionedLlc {
    fn access(&mut self, app: usize, line: LineAddr) -> AccessResult {
        self.monitors[app].record(line);
        self.cache
            .access(PartitionId(app as u32), line, &AccessCtx::new())
    }

    fn reconfigure(&mut self, interval_accesses: &[u64]) {
        let curves = weighted_curves(&self.monitors, interval_accesses);
        let sizes = self
            .planner
            .allocate(&curves, self.cache.capacity_lines(), self.rounds);
        self.rounds += 1;
        self.cache.set_partition_sizes(&sizes);
        for m in &mut self.monitors {
            m.reset();
        }
    }

    fn app_stats(&self, app: usize) -> CacheStats {
        *self.cache.partition_stats(PartitionId(app as u32))
    }

    fn reset_stats(&mut self) {
        self.cache.reset_stats();
    }

    fn name(&self) -> String {
        format!("{}/LRU", self.planner.policy.label())
    }
}

/// Talus+V/LRU: the paper's headline configuration. Pre-processing hands
/// *convex hulls* to the allocation algorithm; post-processing turns the
/// resulting sizes into shadow-partition configurations.
#[derive(Debug)]
pub struct TalusLlc {
    talus: TalusCache<VantageLike>,
    monitors: Vec<UmonPair>,
    planner: Planner,
    apps: usize,
    rounds: u64,
}

impl TalusLlc {
    /// Builds the system.
    pub fn new(llc_lines: u64, apps: usize, algo: AllocAlgo, seed: u64) -> Self {
        let cache = VantageLike::new(llc_lines, 16, 2 * apps, seed);
        let config = TalusCacheConfig::for_vantage().with_seed(seed);
        let mut talus = TalusCache::new(cache, apps, config);
        // Fair, unpartitioned start until the first interval's curves land.
        talus.set_unpartitioned(&fair(apps, llc_lines, 1));
        TalusLlc {
            talus,
            monitors: (0..apps)
                .map(|a| {
                    UmonPair::with_sets(
                        llc_lines,
                        umon_sets(llc_lines),
                        seed.wrapping_add(200 + a as u64),
                    )
                })
                .collect(),
            // Talus's §VI-A pre-processing: the allocator sees hulls.
            planner: Planner::new((llc_lines / ALLOC_GRAINS).max(1)).with_policy(algo),
            apps,
            rounds: 0,
        }
    }
}

impl LlcSystem for TalusLlc {
    fn access(&mut self, app: usize, line: LineAddr) -> AccessResult {
        self.monitors[app].record(line);
        self.talus
            .access(PartitionId(app as u32), line, &AccessCtx::new())
    }

    fn reconfigure(&mut self, interval_accesses: &[u64]) {
        let raw = weighted_curves(&self.monitors, interval_accesses);
        // Pre-processing (§VI-A) + allocation via the shared planner (the
        // allocator sees convex hulls only).
        let sizes = self
            .planner
            .allocate(&raw, self.talus.capacity_lines(), self.rounds);
        self.rounds += 1;
        // Post-processing: shadow partition sizes and sampling rates.
        let _ = self.talus.reconfigure(&sizes, &raw);
        for m in &mut self.monitors {
            m.reset();
        }
    }

    fn app_stats(&self, app: usize) -> CacheStats {
        self.talus.logical_stats(PartitionId(app as u32))
    }

    fn reset_stats(&mut self) {
        self.talus.reset_stats();
    }

    fn name(&self) -> String {
        format!("Talus+V/LRU ({})", self.planner.policy.label())
    }

    // Keep `apps` used even in release builds.
}

impl TalusLlc {
    /// Number of applications sharing the cache.
    pub fn apps(&self) -> usize {
        self.apps
    }
}

impl TalusLlc {
    /// Prints internal planning state (debug helper for examples).
    #[doc(hidden)]
    pub fn debug_dump(&self) {
        for p in 0..self.apps {
            let pid = PartitionId(p as u32);
            let plan = self.talus.plan(pid);
            println!(
                "  app {p}: rate {:.3} plan {:?}",
                self.talus.sampling_rate(pid),
                plan.map(|pl| match pl {
                    talus_core::TalusPlan::Unpartitioned {
                        size,
                        expected_misses,
                    } => format!("unpart size {size} exp {expected_misses:.3}"),
                    talus_core::TalusPlan::Shadow(c) => format!(
                        "shadow a {:.0} b {:.0} rho {:.3} s1 {:.0} s2 {:.0} exp {:.3}",
                        c.alpha, c.beta, c.rho, c.s1, c.s2, c.expected_misses
                    ),
                })
            );
            let a = self
                .talus
                .inner()
                .partition_stats(PartitionId(2 * p as u32));
            let b = self
                .talus
                .inner()
                .partition_stats(PartitionId(2 * p as u32 + 1));
            println!(
                "    shadow alpha: acc {} hr {:.3} occ {} | shadow beta: acc {} hr {:.3} occ {}",
                a.accesses(),
                a.hit_rate(),
                self.talus.inner().occupancy(PartitionId(2 * p as u32)),
                b.accesses(),
                b.hit_rate(),
                self.talus.inner().occupancy(PartitionId(2 * p as u32 + 1)),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(system: &mut dyn LlcSystem, apps: usize, accesses: usize, seed: u64) {
        let mut state = seed | 1;
        let mut interval = vec![0u64; apps];
        for i in 0..accesses {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
            let app = ((state >> 60) as usize) % apps;
            // Each app touches its own 2048-line working set.
            let line = LineAddr(((app as u64) << 44) | ((state >> 30) % 2048));
            system.access(app, line);
            interval[app] += 1;
            if (i + 1) % 20_000 == 0 {
                system.reconfigure(&interval);
                interval.fill(0);
            }
        }
    }

    #[test]
    fn all_schemes_build_and_run() {
        let schemes = [
            SchemeKind::SharedLru,
            SchemeKind::TaDrrip,
            SchemeKind::PartitionedLru(AllocAlgo::Hill),
            SchemeKind::PartitionedLru(AllocAlgo::Lookahead),
            SchemeKind::PartitionedLru(AllocAlgo::Fair),
            SchemeKind::PartitionedLru(AllocAlgo::Imbalanced),
            SchemeKind::TalusLru(AllocAlgo::Hill),
            SchemeKind::TalusLru(AllocAlgo::Fair),
        ];
        for kind in schemes {
            let mut sys = kind.build(8192, 4, 42);
            drive(sys.as_mut(), 4, 100_000, 1);
            let total: u64 = (0..4).map(|a| sys.app_stats(a).accesses()).sum();
            assert_eq!(total, 100_000, "{}", kind.label());
            assert!(!sys.name().is_empty());
            sys.reset_stats();
            assert_eq!(sys.app_stats(0).accesses(), 0);
        }
    }

    #[test]
    fn shared_any_policy_matches_concrete_baselines() {
        // `Shared(kind)` must reproduce the dedicated SharedLru/TaDrrip
        // schemes access for access: AnyPolicy changes dispatch, never
        // behaviour.
        for (concrete, any) in [
            (SchemeKind::SharedLru, SchemeKind::Shared(PolicyKind::Lru)),
            (SchemeKind::TaDrrip, SchemeKind::Shared(PolicyKind::TaDrrip)),
        ] {
            let mut a = concrete.build(8192, 4, 42);
            let mut b = any.build(8192, 4, 42);
            drive(a.as_mut(), 4, 60_000, 9);
            drive(b.as_mut(), 4, 60_000, 9);
            for app in 0..4 {
                assert_eq!(
                    a.app_stats(app).misses(),
                    b.app_stats(app).misses(),
                    "{} vs {} app {app}",
                    concrete.label(),
                    any.label()
                );
            }
            assert_eq!(a.name(), b.name());
        }
    }

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(SchemeKind::SharedLru.label(), "LRU");
        assert_eq!(SchemeKind::TaDrrip.label(), "TA-DRRIP");
        assert_eq!(
            SchemeKind::PartitionedLru(AllocAlgo::Lookahead).label(),
            "Lookahead/LRU"
        );
        assert_eq!(
            SchemeKind::TalusLru(AllocAlgo::Hill).label(),
            "Talus+V/LRU (Hill)"
        );
    }

    #[test]
    fn partitioned_hill_gives_capacity_to_the_needy() {
        // App 0 has a small convex working set; app 1 streams uselessly.
        let mut sys = PartitionedLlc::new(8192, 2, AllocAlgo::Hill, 7);
        let mut interval = [0u64; 2];
        let mut scan = 0u64;
        let mut state = 1u64;
        for i in 0..400_000 {
            let app = (i % 2) as usize;
            let line = if app == 0 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
                LineAddr((state >> 33) % 4096)
            } else {
                scan += 1;
                LineAddr((1 << 44) | (scan % 1_000_000))
            };
            sys.access(app, line);
            interval[app] += 1;
            if (i + 1) % 50_000 == 0 {
                sys.reconfigure(&interval);
                interval.fill(0);
            }
        }
        // After convergence, app 0 should hit much more than app 1.
        assert!(
            sys.app_stats(0).hit_rate() > 0.5,
            "app 0 hit rate {}",
            sys.app_stats(0).hit_rate()
        );
        assert!(sys.app_stats(1).hit_rate() < 0.05);
    }

    #[test]
    fn talus_system_reconfigures_samplers() {
        let mut sys = TalusLlc::new(4096, 2, AllocAlgo::Fair, 3);
        assert_eq!(sys.apps(), 2);
        // Both apps scan over 3072 lines — a cliff no 2048-line fair share
        // can contain. Talus should set non-trivial sampling rates.
        let mut interval = [0u64; 2];
        for i in 0..600_000u64 {
            let app = (i % 2) as usize;
            let line = LineAddr(((app as u64) << 44) | ((i / 2) % 3072));
            sys.access(app, line);
            interval[app] += 1;
            if (i + 1) % 100_000 == 0 {
                sys.reconfigure(&interval);
                interval.fill(0);
            }
        }
        // Fair Talus should let both apps hit well above LRU's ~0%.
        for a in 0..2 {
            let hr = sys.app_stats(a).hit_rate();
            assert!(hr > 0.3, "app {a} hit rate {hr}");
        }
    }
}
