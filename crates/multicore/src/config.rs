//! Simulated system configuration, mirroring the paper's Table I.

use std::fmt;
use talus_sim::mb_to_lines;

/// The simulated system parameters (paper Table I).
///
/// The trace-driven substrate honours the LLC geometry, line size, memory
/// latency, and core count directly; the OOO-core microarchitecture rows
/// are represented by each profile's `base_ipc` plus the [`CoreModel`]'s
/// overlap factor (see DESIGN.md's substitution table).
///
/// [`CoreModel`]: crate::CoreModel
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemConfig {
    /// Number of cores (1 for single-threaded runs, 8 for multi-programmed).
    pub cores: usize,
    /// Shared LLC capacity in megabytes (Table I: 1 MB per core).
    pub llc_mb: f64,
    /// LLC associativity (Table I: 32-way with way partitioning, or a
    /// 4/52 zcache under Vantage; this substrate uses a hashed array).
    pub llc_ways: usize,
    /// Main-memory latency in cycles (Table I: 200).
    pub mem_latency_cycles: f64,
    /// Reconfiguration interval in LLC accesses (stands in for the paper's
    /// 10 ms interval).
    pub reconfig_accesses: u64,
}

impl SystemConfig {
    /// Single-threaded configuration (Table I "ST"): 1 core.
    pub fn single_core(llc_mb: f64) -> Self {
        SystemConfig {
            cores: 1,
            llc_mb,
            llc_ways: 32,
            mem_latency_cycles: 200.0,
            reconfig_accesses: 250_000,
        }
    }

    /// Multi-programmed configuration (Table I "MP"): 8 cores, 1 MB/core.
    pub fn eight_core() -> Self {
        SystemConfig {
            cores: 8,
            llc_mb: 8.0,
            llc_ways: 32,
            mem_latency_cycles: 200.0,
            reconfig_accesses: 500_000,
        }
    }

    /// LLC capacity in cache lines.
    pub fn llc_lines(&self) -> u64 {
        mb_to_lines(self.llc_mb)
    }
}

impl fmt::Display for SystemConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Cores      {} OOO cores (analytic model; per-app base IPC)",
            self.cores
        )?;
        writeln!(
            f,
            "L1/L2      folded into each profile's APKI (LLC accesses/kilo-instr)"
        )?;
        writeln!(
            f,
            "L3 cache   shared, {} MB, {}-way hashed array, partitioned",
            self.llc_mb, self.llc_ways
        )?;
        writeln!(f, "Lines      64 B")?;
        writeln!(f, "Main mem   {} cycles", self.mem_latency_cycles)?;
        write!(
            f,
            "Reconfig   every {} LLC accesses (~10 ms)",
            self.reconfig_accesses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_defaults() {
        let st = SystemConfig::single_core(1.0);
        assert_eq!(st.cores, 1);
        assert_eq!(st.llc_lines(), 16384);
        let mp = SystemConfig::eight_core();
        assert_eq!(mp.cores, 8);
        assert_eq!(mp.llc_mb, 8.0);
        assert_eq!(mp.mem_latency_cycles, 200.0);
    }

    #[test]
    fn display_mentions_key_rows() {
        let s = SystemConfig::eight_core().to_string();
        assert!(s.contains("8 MB"));
        assert!(s.contains("200 cycles"));
        assert!(s.contains("64 B"));
    }
}
