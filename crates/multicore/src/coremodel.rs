//! Analytic core model: MPKI → IPC.
//!
//! The paper simulates Silvermont-like OOO cores in zsim. This substrate
//! replaces them with the standard first-order analytic model used in
//! cache-partitioning studies:
//!
//! ```text
//! CPI = CPI_base + MPKI/1000 × mem_latency × blocking_factor
//! ```
//!
//! `CPI_base` comes from each profile's `base_ipc` (the IPC with a perfect
//! LLC); the blocking factor models how much of the memory latency a
//! modest OOO core fails to hide (memory-level parallelism). The model is
//! *monotone* in MPKI, which is the property all of the paper's
//! comparative claims need: fewer misses ⇒ more IPC, with diminishing
//! returns preserved. See DESIGN.md's substitution table.

use talus_workloads::AppProfile;

/// Analytic MPKI→IPC converter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreModel {
    /// Main-memory latency in cycles.
    pub mem_latency_cycles: f64,
    /// Fraction of the miss latency that stalls the core (1 = fully
    /// blocking in-order; Silvermont-like 2-wide OOO hides a modest part).
    pub blocking_factor: f64,
}

impl CoreModel {
    /// The default model: 200-cycle memory, 0.7 blocking factor.
    pub fn new() -> Self {
        CoreModel {
            mem_latency_cycles: 200.0,
            blocking_factor: 0.7,
        }
    }

    /// Model with an explicit memory latency.
    pub fn with_latency(mut self, cycles: f64) -> Self {
        self.mem_latency_cycles = cycles;
        self
    }

    /// IPC of `app` when its LLC misses at `mpki`.
    ///
    /// # Panics
    ///
    /// Panics if `mpki` is negative.
    pub fn ipc(&self, app: &AppProfile, mpki: f64) -> f64 {
        assert!(mpki >= 0.0, "MPKI must be non-negative");
        let base_cpi = 1.0 / app.base_ipc;
        let stall_cpi = mpki / 1000.0 * self.mem_latency_cycles * self.blocking_factor;
        1.0 / (base_cpi + stall_cpi)
    }

    /// IPC from a raw LLC miss *rate* (misses per access).
    pub fn ipc_from_miss_rate(&self, app: &AppProfile, miss_rate: f64) -> f64 {
        self.ipc(app, app.mpki(miss_rate))
    }

    /// Cycles for `app` to execute `instructions` at the given MPKI.
    pub fn cycles(&self, app: &AppProfile, mpki: f64, instructions: f64) -> f64 {
        instructions / self.ipc(app, mpki)
    }
}

impl Default for CoreModel {
    fn default() -> Self {
        Self::new()
    }
}

/// Weighted speedup over a baseline: `Σᵢ (IPCᵢ / IPC_base,ᵢ) / N`
/// (paper §VII-A). Accounts for throughput and, partially, fairness.
///
/// # Panics
///
/// Panics if the slices differ in length, are empty, or a baseline IPC is
/// not positive.
pub fn weighted_speedup(ipcs: &[f64], baseline: &[f64]) -> f64 {
    assert_eq!(ipcs.len(), baseline.len(), "need matching IPC vectors");
    assert!(!ipcs.is_empty(), "need at least one app");
    assert!(
        baseline.iter().all(|&b| b > 0.0),
        "baseline IPCs must be positive"
    );
    let sum: f64 = ipcs.iter().zip(baseline).map(|(i, b)| i / b).sum();
    sum / ipcs.len() as f64
}

/// Harmonic speedup over a baseline: `N / Σᵢ (IPC_base,ᵢ / IPCᵢ)`
/// (paper §VII-A; emphasises fairness).
///
/// # Panics
///
/// Same conditions as [`weighted_speedup`], plus non-positive IPCs.
pub fn harmonic_speedup(ipcs: &[f64], baseline: &[f64]) -> f64 {
    assert_eq!(ipcs.len(), baseline.len(), "need matching IPC vectors");
    assert!(!ipcs.is_empty(), "need at least one app");
    assert!(ipcs.iter().all(|&i| i > 0.0), "IPCs must be positive");
    let sum: f64 = ipcs.iter().zip(baseline).map(|(i, b)| b / i).sum();
    ipcs.len() as f64 / sum
}

/// Coefficient of variation of per-core IPC (paper Fig. 13's unfairness
/// metric): standard deviation divided by mean. Zero = perfectly fair.
///
/// # Panics
///
/// Panics if `ipcs` is empty or the mean is zero.
pub fn coefficient_of_variation(ipcs: &[f64]) -> f64 {
    assert!(!ipcs.is_empty(), "need at least one IPC");
    let n = ipcs.len() as f64;
    let mean = ipcs.iter().sum::<f64>() / n;
    assert!(mean > 0.0, "mean IPC must be positive");
    let var = ipcs.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / n;
    var.sqrt() / mean
}

/// Geometric mean of a slice of positive values (used for figure
/// summaries).
///
/// # Panics
///
/// Panics if `values` is empty or contains non-positive entries.
pub fn gmean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "need at least one value");
    assert!(
        values.iter().all(|&v| v > 0.0),
        "gmean needs positive values"
    );
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use talus_workloads::profile;

    #[test]
    fn zero_mpki_gives_base_ipc() {
        let m = CoreModel::new();
        let app = profile("mcf").unwrap();
        assert!((m.ipc(&app, 0.0) - app.base_ipc).abs() < 1e-12);
    }

    #[test]
    fn ipc_is_monotone_decreasing_in_mpki() {
        let m = CoreModel::new();
        let app = profile("libquantum").unwrap();
        let mut prev = f64::INFINITY;
        for mpki in [0.0, 1.0, 5.0, 10.0, 20.0, 33.0] {
            let ipc = m.ipc(&app, mpki);
            assert!(ipc < prev);
            assert!(ipc > 0.0);
            prev = ipc;
        }
    }

    #[test]
    fn heavy_missing_is_memory_bound() {
        // At 33 MPKI × 200 cycles × 0.7 ≈ 4.6 CPI of stalls, IPC collapses.
        let m = CoreModel::new();
        let app = profile("libquantum").unwrap();
        let ipc = m.ipc(&app, 33.0);
        assert!(ipc < 0.25, "got {ipc}");
    }

    #[test]
    fn cycles_scale_with_instructions() {
        let m = CoreModel::new();
        let app = profile("gcc").unwrap();
        let c1 = m.cycles(&app, 2.0, 1e6);
        let c2 = m.cycles(&app, 2.0, 2e6);
        assert!((c2 / c1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_metrics_identity() {
        let ipcs = [1.0, 2.0, 0.5];
        assert!((weighted_speedup(&ipcs, &ipcs) - 1.0).abs() < 1e-12);
        assert!((harmonic_speedup(&ipcs, &ipcs) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_speedup_averages_ratios() {
        let base = [1.0, 1.0];
        let now = [2.0, 1.0];
        assert!((weighted_speedup(&now, &base) - 1.5).abs() < 1e-12);
        // Harmonic penalises imbalance: below the arithmetic 1.5.
        let h = harmonic_speedup(&now, &base);
        assert!(h < 1.5 && h > 1.0);
        assert!((h - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn cov_zero_for_equal_ipcs() {
        assert_eq!(coefficient_of_variation(&[1.0, 1.0, 1.0]), 0.0);
        let cov = coefficient_of_variation(&[1.0, 3.0]);
        assert!((cov - 0.5).abs() < 1e-12);
    }

    #[test]
    fn gmean_of_constant_is_constant() {
        assert!((gmean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((gmean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_mpki_rejected() {
        CoreModel::new().ipc(&profile("gcc").unwrap(), -1.0);
    }
}
