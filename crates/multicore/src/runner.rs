//! The fixed-work mix runner (paper §VII-A methodology).
//!
//! Runs N applications against a shared LLC system. Time is virtual
//! cycles: each access advances its core by `1000/APKI / base_ipc` cycles
//! of compute plus a memory stall on every miss, so cores that miss more
//! fall behind and (as in real CMPs) issue LLC accesses more slowly. All
//! apps run until every one has finished its instruction quota; statistics
//! are snapshotted at each app's own finish line (the paper's fixed-work
//! methodology).

use crate::config::SystemConfig;
use crate::coremodel::CoreModel;
use crate::system::{LlcSystem, SchemeKind};
use talus_sim::LineAddr;
use talus_workloads::{AccessGenerator, AppProfile};

/// Per-run configuration.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Instructions each application must complete (fixed work).
    pub work_instructions: f64,
    /// System parameters (LLC size, reconfiguration cadence, latency).
    pub system: SystemConfig,
    /// The MPKI→IPC model.
    pub core_model: CoreModel,
    /// Master seed; per-app seeds derive from it.
    pub seed: u64,
}

impl RunConfig {
    /// A configuration with sane defaults for the given system.
    pub fn new(system: SystemConfig) -> Self {
        RunConfig {
            work_instructions: 20e6,
            system,
            core_model: CoreModel::new().with_latency(system.mem_latency_cycles),
            seed: 0xBEEF,
        }
    }

    /// Overrides the fixed work per application.
    pub fn with_work(mut self, instructions: f64) -> Self {
        self.work_instructions = instructions;
        self
    }

    /// Overrides the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Outcome for one application in a mix.
#[derive(Debug, Clone)]
pub struct AppResult {
    /// Profile name.
    pub name: String,
    /// Instructions completed at the snapshot (the work quota).
    pub instructions: f64,
    /// Virtual cycles to finish the quota.
    pub cycles: f64,
    /// LLC accesses issued within the quota.
    pub accesses: u64,
    /// LLC misses within the quota.
    pub misses: u64,
}

impl AppResult {
    /// Achieved instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.instructions / self.cycles
    }

    /// Misses per kilo-instruction.
    pub fn mpki(&self) -> f64 {
        self.misses as f64 * 1000.0 / self.instructions
    }
}

/// Outcome of one mix under one scheme.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Scheme label.
    pub scheme: String,
    /// Per-application results, in mix order.
    pub apps: Vec<AppResult>,
}

impl RunResult {
    /// Per-app IPCs, in mix order.
    pub fn ipcs(&self) -> Vec<f64> {
        self.apps.iter().map(AppResult::ipc).collect()
    }

    /// The longest per-app completion time (overall makespan).
    pub fn makespan_cycles(&self) -> f64 {
        self.apps.iter().map(|a| a.cycles).fold(0.0, f64::max)
    }
}

struct AppRun {
    gen: Box<dyn AccessGenerator>,
    apki: f64,
    base_cpi: f64,
    vtime: f64,
    instructions: f64,
    accesses: u64,
    misses: u64,
    finished: Option<AppResult>,
    name: String,
}

/// Runs `apps` under `scheme` with fixed work per app.
///
/// # Panics
///
/// Panics if `apps` is empty or any profile has a non-positive APKI (an
/// app that never touches the LLC has no LLC schedule; model it with a
/// tiny APKI instead).
pub fn run_mix(apps: &[AppProfile], scheme: SchemeKind, cfg: &RunConfig) -> RunResult {
    assert!(!apps.is_empty(), "need at least one application");
    assert!(
        apps.iter().all(|a| a.apki > 0.0),
        "profiles must access the LLC (positive APKI)"
    );
    let mut system = scheme.build(cfg.system.llc_lines(), apps.len(), cfg.seed);
    run_mix_on(apps, system.as_mut(), cfg)
}

/// Runs `apps` on an already-built system (for custom schemes/ablations).
pub fn run_mix_on(apps: &[AppProfile], system: &mut dyn LlcSystem, cfg: &RunConfig) -> RunResult {
    let stall = cfg.core_model.mem_latency_cycles * cfg.core_model.blocking_factor;
    let mut runs: Vec<AppRun> = apps
        .iter()
        .enumerate()
        .map(|(i, p)| AppRun {
            gen: Box::new(p.generator(cfg.seed.wrapping_add(i as u64 * 7717), (i as u64) << 44)),
            apki: p.apki,
            base_cpi: 1.0 / p.base_ipc,
            vtime: 0.0,
            instructions: 0.0,
            accesses: 0,
            misses: 0,
            finished: None,
            name: p.name.to_string(),
        })
        .collect();
    let mut interval = vec![0u64; apps.len()];
    let mut since_reconfig = 0u64;
    let mut remaining = apps.len();

    while remaining > 0 {
        // Next app in virtual time (linear scan: N ≤ 8).
        let (idx, _) = runs
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.vtime.partial_cmp(&b.vtime).expect("vtime is finite"))
            .expect("at least one app");
        let run = &mut runs[idx];
        let line: LineAddr = run.gen.next_line();
        let result = system.access(idx, line);
        let instr_per_access = 1000.0 / run.apki;
        run.instructions += instr_per_access;
        run.accesses += 1;
        run.vtime += instr_per_access * run.base_cpi;
        if result.is_miss() {
            run.misses += 1;
            run.vtime += stall;
        }
        interval[idx] += 1;
        if run.finished.is_none() && run.instructions >= cfg.work_instructions {
            run.finished = Some(AppResult {
                name: run.name.clone(),
                instructions: run.instructions,
                cycles: run.vtime,
                accesses: run.accesses,
                misses: run.misses,
            });
            remaining -= 1;
        }
        since_reconfig += 1;
        if since_reconfig >= cfg.system.reconfig_accesses {
            system.reconfigure(&interval);
            interval.fill(0);
            since_reconfig = 0;
        }
    }

    RunResult {
        scheme: system.name(),
        apps: runs
            .into_iter()
            .map(|r| r.finished.expect("loop exits only when every app finished"))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coremodel::{coefficient_of_variation, weighted_speedup};
    use talus_workloads::profile;

    fn tiny_cfg(llc_mb: f64) -> RunConfig {
        let mut system = SystemConfig::single_core(llc_mb);
        system.cores = 2;
        system.reconfig_accesses = 50_000;
        RunConfig::new(system).with_work(2e6)
    }

    /// Scaled-down profiles so tests run in milliseconds.
    fn small(name: &str) -> AppProfile {
        profile(name).unwrap().scaled(1.0 / 64.0)
    }

    #[test]
    fn fixed_work_completes_every_app() {
        let apps = vec![small("gcc"), small("mcf")];
        let r = run_mix(&apps, SchemeKind::SharedLru, &tiny_cfg(0.25));
        assert_eq!(r.apps.len(), 2);
        for a in &r.apps {
            assert!(a.instructions >= 2e6);
            assert!(a.cycles > 0.0);
            assert!(a.ipc() > 0.0);
        }
    }

    #[test]
    fn results_are_deterministic() {
        let apps = vec![small("gcc"), small("omnetpp")];
        let a = run_mix(&apps, SchemeKind::SharedLru, &tiny_cfg(0.25));
        let b = run_mix(&apps, SchemeKind::SharedLru, &tiny_cfg(0.25));
        for (x, y) in a.apps.iter().zip(&b.apps) {
            assert_eq!(x.cycles, y.cycles);
            assert_eq!(x.misses, y.misses);
        }
    }

    #[test]
    fn missing_more_runs_slower() {
        // The same app with a bigger LLC must finish no slower.
        let apps = vec![small("omnetpp"), small("omnetpp")];
        let small_llc = run_mix(&apps, SchemeKind::SharedLru, &tiny_cfg(1.0 / 64.0));
        let big_llc = run_mix(&apps, SchemeKind::SharedLru, &tiny_cfg(0.25));
        assert!(big_llc.apps[0].cycles <= small_llc.apps[0].cycles);
        assert!(big_llc.apps[0].mpki() <= small_llc.apps[0].mpki() + 0.5);
    }

    #[test]
    fn ipc_matches_core_model_identity() {
        // cycles = instr × base_cpi + misses × stall, so IPC reconstructed
        // from MPKI must match the analytic model.
        let apps = vec![small("gcc")];
        let cfg = tiny_cfg(0.25);
        let r = run_mix(&apps, SchemeKind::SharedLru, &cfg);
        let a = &r.apps[0];
        let model_ipc = cfg.core_model.ipc(&apps[0], a.mpki());
        assert!(
            (a.ipc() - model_ipc).abs() / model_ipc < 0.01,
            "run {} vs model {}",
            a.ipc(),
            model_ipc
        );
    }

    #[test]
    fn homogeneous_copies_have_low_cov_under_fair_talus() {
        use crate::system::AllocAlgo;
        let apps = vec![small("omnetpp"), small("omnetpp")];
        let r = run_mix(
            &apps,
            SchemeKind::TalusLru(AllocAlgo::Fair),
            &tiny_cfg(1.0 / 32.0),
        );
        let cov = coefficient_of_variation(&r.ipcs());
        assert!(cov < 0.12, "CoV {cov}");
    }

    #[test]
    fn talus_hill_beats_plain_hill_on_cliff_mix() {
        use crate::system::AllocAlgo;
        // The paper's §II-D scenario at test scale: two copies of a pure
        // scan (libquantum-like) sharing an LLC half their combined size.
        // Plain hill climbing sees zero marginal utility everywhere and
        // both copies thrash; Talus convexifies, so the fair split gives
        // each copy about half its scan resident.
        let apps = vec![small("libquantum"), small("libquantum")];
        let cfg = tiny_cfg(0.5).with_work(6e6); // LLC = one scaled scan (0.5 MB)
        let base = run_mix(&apps, SchemeKind::SharedLru, &cfg);
        let hill = run_mix(&apps, SchemeKind::PartitionedLru(AllocAlgo::Hill), &cfg);
        let talus = run_mix(&apps, SchemeKind::TalusLru(AllocAlgo::Hill), &cfg);
        let ws_hill = weighted_speedup(&hill.ipcs(), &base.ipcs());
        let ws_talus = weighted_speedup(&talus.ipcs(), &base.ipcs());
        assert!(
            ws_talus > ws_hill + 0.10,
            "Talus hill ({ws_talus:.3}) should clearly beat plain hill ({ws_hill:.3})"
        );
        // And Talus actually converts misses into hits.
        let talus_mpki = talus.apps[0].mpki();
        let base_mpki = base.apps[0].mpki();
        assert!(
            talus_mpki < 0.75 * base_mpki,
            "Talus MPKI {talus_mpki:.1} vs LRU {base_mpki:.1}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one application")]
    fn empty_mix_rejected() {
        run_mix(&[], SchemeKind::SharedLru, &tiny_cfg(1.0));
    }
}
