//! Property tests for the §VII-A metrics: weighted/harmonic speedup,
//! gmean, and the coefficient of variation satisfy their mathematical
//! identities on arbitrary inputs.

use proptest::prelude::*;
use talus_multicore::{coefficient_of_variation, gmean, harmonic_speedup, weighted_speedup};

/// Positive, finite IPC vectors.
fn arb_ipcs() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.01f64..10.0, 1..12)
}

/// A matched pair of IPC vectors (same length).
fn arb_ipc_pair() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (1usize..12).prop_flat_map(|n| {
        (
            proptest::collection::vec(0.01f64..10.0, n),
            proptest::collection::vec(0.01f64..10.0, n),
        )
    })
}

proptest! {
    /// A system identical to the baseline has both speedups exactly 1.
    #[test]
    fn speedups_are_one_on_identity(ipcs in arb_ipcs()) {
        prop_assert!((weighted_speedup(&ipcs, &ipcs) - 1.0).abs() < 1e-12);
        prop_assert!((harmonic_speedup(&ipcs, &ipcs) - 1.0).abs() < 1e-12);
    }

    /// Harmonic speedup never exceeds weighted speedup (HM ≤ AM on the
    /// per-app speedup ratios).
    #[test]
    fn harmonic_is_at_most_weighted((ipcs, base) in arb_ipc_pair()) {
        let w = weighted_speedup(&ipcs, &base);
        let h = harmonic_speedup(&ipcs, &base);
        prop_assert!(h <= w + 1e-9, "harmonic {h} > weighted {w}");
    }

    /// Scaling every IPC by the same factor scales both speedups by it.
    #[test]
    fn speedups_are_homogeneous(ipcs in arb_ipcs(), k in 0.1f64..10.0) {
        let scaled: Vec<f64> = ipcs.iter().map(|&x| x * k).collect();
        let w = weighted_speedup(&scaled, &ipcs);
        let h = harmonic_speedup(&scaled, &ipcs);
        prop_assert!((w - k).abs() < 1e-9, "weighted {w} vs k {k}");
        prop_assert!((h - k).abs() < 1e-9, "harmonic {h} vs k {k}");
    }

    /// The gmean lies between the min and max, and is exact on constants.
    #[test]
    fn gmean_bounds(vals in proptest::collection::vec(0.01f64..100.0, 1..12)) {
        let g = gmean(&vals);
        let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(g >= lo - 1e-9 && g <= hi + 1e-9, "gmean {g} outside [{lo}, {hi}]");
    }

    #[test]
    fn gmean_of_constant_is_constant(c in 0.01f64..100.0, n in 1usize..12) {
        let vals = vec![c; n];
        prop_assert!((gmean(&vals) - c).abs() < 1e-9);
    }

    /// CoV is zero exactly for constant vectors and scale-invariant.
    #[test]
    fn cov_identities(ipcs in arb_ipcs(), k in 0.1f64..10.0) {
        let constant = vec![ipcs[0]; ipcs.len()];
        prop_assert!(coefficient_of_variation(&constant) < 1e-12);
        let cov = coefficient_of_variation(&ipcs);
        prop_assert!(cov >= 0.0);
        let scaled: Vec<f64> = ipcs.iter().map(|&x| x * k).collect();
        let cov_scaled = coefficient_of_variation(&scaled);
        prop_assert!((cov - cov_scaled).abs() < 1e-9, "CoV not scale-invariant: {cov} vs {cov_scaled}");
    }

    /// Unfairness shows up in the gap: slowing one app down reduces the
    /// harmonic speedup at least as much as the weighted one.
    #[test]
    fn slowdowns_hit_harmonic_harder(base in arb_ipcs(), victim_frac in 0.05f64..0.95) {
        prop_assume!(base.len() >= 2);
        let mut ipcs = base.clone();
        ipcs[0] *= victim_frac; // one unlucky core, everyone else unchanged
        let w = weighted_speedup(&ipcs, &base);
        let h = harmonic_speedup(&ipcs, &base);
        prop_assert!(h <= w + 1e-9);
    }
}
