//! Measurement helpers: miss curves of policies and Talus configurations
//! swept over cache sizes.

use crate::Scale;
use talus_sim::monitor::{CurveSampler, MattsonMonitor, Monitor, MonitorSource, UmonPair};
use talus_sim::part::{
    FutilityScaled, IdealPartitioned, PartitionedCacheModel, VantageLike, WayPartitioned,
};
use talus_sim::policy::{PolicyKind, Srrip};
use talus_sim::LineAddr;
use talus_sim::{AccessCtx, CacheModel, SetAssocCache, TalusCacheConfig, TalusSingleCache};
use talus_workloads::{AccessGenerator, AppProfile};

/// A measured curve point: paper-scale megabytes and MPKI.
pub type CurvePointMb = (f64, f64);

/// A warmed-up, Mattson-backed [`CurveSource`](talus_core::CurveSource)
/// for a profile: each `next_curve` simulates `scale.accesses` further
/// references and yields the updated exact-LRU curve (lines →
/// misses/access, resolving capacities up to `cap_lines`).
///
/// This is the profile-to-curve producer the sweeps are built on; the
/// online reconfiguration service consumes the same shape of source when
/// replaying synthetic tenants.
pub fn profile_curve_source(
    profile: &AppProfile,
    cap_lines: u64,
    scale: &Scale,
    seed: u64,
) -> MonitorSource<MattsonMonitor, impl FnMut() -> LineAddr> {
    let scaled = profile.scaled(scale.footprint);
    let mut gen = scaled.generator(seed, 0);
    let mut source =
        MonitorSource::new(MattsonMonitor::new(cap_lines), scale.accesses, move || {
            gen.next_line()
        });
    source.warm_up(scale.warmup);
    source
}

/// Exact LRU miss curve via one Mattson stack-distance pass, evaluated on
/// a grid of paper-scale megabyte sizes.
pub fn lru_curve(
    profile: &AppProfile,
    grid_paper_mb: &[f64],
    scale: &Scale,
    seed: u64,
) -> Vec<CurvePointMb> {
    let grid_lines: Vec<u64> = grid_paper_mb
        .iter()
        .map(|&mb| scale.mb_to_lines(mb))
        .collect();
    let cap = *grid_lines.iter().max().expect("non-empty grid");
    let mut source = profile_curve_source(profile, cap, scale, seed);
    // Drive one monitoring interval record-only, then evaluate on the
    // exact requested grid (`next_curve`'s generic result uses the
    // monitor's default 64-point grid, too coarse for paper-figure
    // cliffs, so building it would be wasted work).
    source.advance(scale.accesses);
    let curve = source.monitor().curve_on_grid(&grid_lines);
    grid_paper_mb
        .iter()
        .zip(&grid_lines)
        .map(|(&mb, &l)| (mb, profile.mpki(curve.value_at(l as f64))))
        .collect()
}

/// Miss curve of an arbitrary policy, simulating one 16-way cache per grid
/// size. The cache runs the statically dispatched `AnyPolicy` form of
/// `kind` and ingests the stream block-at-a-time (`access_block`), both
/// bit-for-bit identical to the boxed per-access loop.
pub fn policy_curve(
    profile: &AppProfile,
    kind: PolicyKind,
    grid_paper_mb: &[f64],
    scale: &Scale,
    seed: u64,
) -> Vec<CurvePointMb> {
    const BLOCK: usize = 1024;
    let scaled = profile.scaled(scale.footprint);
    let ctx = AccessCtx::new();
    let mut buf = Vec::with_capacity(BLOCK);
    grid_paper_mb
        .iter()
        .map(|&mb| {
            let lines = round_to(scale.mb_to_lines(mb), 16);
            let mut cache = SetAssocCache::new(lines, 16, kind.build_any(seed), seed ^ 0xACCE55);
            let mut gen = scaled.generator(seed, 0);
            let mut drive = |cache: &mut SetAssocCache<_>, accesses: u64| {
                let mut left = accesses;
                while left > 0 {
                    let n = left.min(BLOCK as u64) as usize;
                    buf.clear();
                    buf.extend((0..n).map(|_| gen.next_line()));
                    cache.access_block(&buf, &ctx);
                    left -= n as u64;
                }
            };
            drive(&mut cache, scale.warmup);
            cache.reset_stats();
            drive(&mut cache, scale.accesses);
            (mb, profile.mpki(cache.stats().miss_rate()))
        })
        .collect()
}

/// The Talus hardware configurations of Figs. 8 and 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TalusScheme {
    /// Talus + idealised partitioning over LRU (Talus+I/LRU).
    IdealLru,
    /// Talus + Vantage-like partitioning over LRU (Talus+V/LRU).
    VantageLru,
    /// Talus + Futility Scaling over LRU (Talus+F/LRU) — the §VI-B
    /// alternative without an unmanaged region.
    FutilityLru,
    /// Talus + way partitioning over LRU (Talus+W/LRU).
    WayLru,
    /// Talus + way partitioning over SRRIP with multi-monitor curve
    /// sampling (Talus+W/SRRIP).
    WaySrrip,
}

impl TalusScheme {
    /// Figure legend label.
    pub fn label(self) -> &'static str {
        match self {
            TalusScheme::IdealLru => "Talus+I/LRU",
            TalusScheme::VantageLru => "Talus+V/LRU",
            TalusScheme::FutilityLru => "Talus+F/LRU",
            TalusScheme::WayLru => "Talus+W/LRU",
            TalusScheme::WaySrrip => "Talus+W/SRRIP",
        }
    }
}

fn round_to(lines: u64, multiple: u64) -> u64 {
    ((lines + multiple / 2) / multiple).max(1) * multiple
}

/// Measured Talus miss curve: one `TalusSingleCache` per grid size, driven
/// by the hardware-style monitors the scheme would use.
pub fn talus_curve(
    profile: &AppProfile,
    scheme: TalusScheme,
    grid_paper_mb: &[f64],
    scale: &Scale,
    seed: u64,
) -> Vec<CurvePointMb> {
    let scaled = profile.scaled(scale.footprint);
    let interval = (scale.accesses / 6).clamp(20_000, 500_000);
    grid_paper_mb
        .iter()
        .map(|&mb| {
            let miss_rate = match scheme {
                TalusScheme::IdealLru => {
                    let lines = scale.mb_to_lines(mb);
                    let cache = IdealPartitioned::new(lines, 2);
                    let mon = UmonPair::new(lines, seed ^ 0x111);
                    run_talus_point(
                        cache,
                        mon,
                        interval,
                        TalusCacheConfig::new(),
                        &scaled,
                        scale,
                        seed,
                    )
                }
                TalusScheme::VantageLru => {
                    let lines = round_to(scale.mb_to_lines(mb), 16);
                    let cache = VantageLike::new(lines, 16, 2, seed ^ 0x222);
                    let mon = UmonPair::new(lines, seed ^ 0x333);
                    run_talus_point(
                        cache,
                        mon,
                        interval,
                        TalusCacheConfig::for_vantage(),
                        &scaled,
                        scale,
                        seed,
                    )
                }
                TalusScheme::FutilityLru => {
                    let lines = round_to(scale.mb_to_lines(mb), 16);
                    let cache = FutilityScaled::new(lines, 16, 2, seed ^ 0x888);
                    let mon = UmonPair::new(lines, seed ^ 0x999);
                    // Full planning scale: the whole cache is managed.
                    run_talus_point(
                        cache,
                        mon,
                        interval,
                        TalusCacheConfig::new(),
                        &scaled,
                        scale,
                        seed,
                    )
                }
                TalusScheme::WayLru => {
                    let lines = round_to(scale.mb_to_lines(mb), 32);
                    let cache = WayPartitioned::new(
                        lines,
                        32,
                        2,
                        talus_sim::policy::Lru::new(),
                        seed ^ 0x444,
                    );
                    let mon = UmonPair::new(lines, seed ^ 0x555);
                    run_talus_point(
                        cache,
                        mon,
                        interval,
                        TalusCacheConfig::new(),
                        &scaled,
                        scale,
                        seed,
                    )
                }
                TalusScheme::WaySrrip => {
                    let lines = round_to(scale.mb_to_lines(mb), 32);
                    let cache = WayPartitioned::new(lines, 32, 2, Srrip::new(), seed ^ 0x666);
                    let mon = srrip_monitor(lines, scale, seed ^ 0x777);
                    run_talus_point(
                        cache,
                        mon,
                        interval,
                        TalusCacheConfig::new(),
                        &scaled,
                        scale,
                        seed,
                    )
                }
            };
            (mb, profile.mpki(miss_rate))
        })
        .collect()
}

/// The impractically large multi-monitor bank the paper uses for SRRIP
/// (§VI-C): one sampled monitor per curve point, covering up to 4× the
/// cache size.
fn srrip_monitor(cache_lines: u64, scale: &Scale, seed: u64) -> CurveSampler {
    let points = if scale.quick { 16 } else { 64 };
    let max = 4 * cache_lines;
    let min = (max / 64).max(64);
    let mut sizes: Vec<u64> = (1..=points)
        .map(|i| min + (max - min) * i as u64 / points as u64)
        .collect();
    sizes.dedup();
    CurveSampler::new(PolicyKind::Srrip, &sizes, 1024.min(cache_lines), 16, seed)
}

fn run_talus_point<C, M>(
    cache: C,
    monitor: M,
    interval: u64,
    config: TalusCacheConfig,
    scaled_profile: &AppProfile,
    scale: &Scale,
    seed: u64,
) -> f64
where
    C: PartitionedCacheModel,
    M: Monitor,
{
    // Generate in blocks so the monitor takes its amortized
    // `record_block` path; `access_block` splits at interval boundaries,
    // keeping results identical to the per-access loop.
    const BLOCK: usize = 1024;
    let ctx = AccessCtx::new();
    let mut talus = TalusSingleCache::new(cache, monitor, interval, config);
    let mut gen = scaled_profile.generator(seed, 0);
    let mut buf = Vec::with_capacity(BLOCK);
    let mut drive = |talus: &mut TalusSingleCache<C, M>, accesses: u64| {
        let mut left = accesses;
        while left > 0 {
            let n = left.min(BLOCK as u64) as usize;
            buf.clear();
            buf.extend((0..n).map(|_| gen.next_line()));
            talus.access_block(&buf, &ctx);
            left -= n as u64;
        }
    };
    drive(&mut talus, scale.warmup);
    talus.reset_stats();
    drive(&mut talus, scale.accesses);
    talus.stats().miss_rate()
}

/// A standard paper-style size grid in megabytes: `points` evenly spaced
/// sizes from `from_mb` to `to_mb` (inclusive).
pub fn mb_grid(from_mb: f64, to_mb: f64, points: usize) -> Vec<f64> {
    assert!(points >= 2, "need at least two grid points");
    (0..points)
        .map(|i| from_mb + (to_mb - from_mb) * i as f64 / (points - 1) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use talus_workloads::profile;

    fn test_scale() -> Scale {
        Scale {
            footprint: 1.0 / 256.0,
            accesses: 120_000,
            warmup: 60_000,
            mixes: 1,
            work_instructions: 1e5,
            quick: true,
        }
    }

    #[test]
    fn mb_grid_is_inclusive_and_even() {
        let g = mb_grid(0.0, 4.0, 5);
        assert_eq!(g, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn lru_curve_shows_libquantum_cliff() {
        let p = profile("libquantum").unwrap();
        let s = test_scale();
        let curve = lru_curve(&p, &[8.0, 16.0, 24.0, 31.0, 33.0, 40.0], &s, 1);
        let at31 = curve.iter().find(|(mb, _)| *mb == 31.0).unwrap().1;
        let at33 = curve.iter().find(|(mb, _)| *mb == 33.0).unwrap().1;
        assert!(at31 > 30.0, "below the cliff: {at31}");
        assert!(at33 < 3.0, "above the cliff: {at33}");
    }

    #[test]
    fn talus_ideal_bridges_the_cliff() {
        let p = profile("libquantum").unwrap();
        let s = test_scale();
        let talus = talus_curve(&p, TalusScheme::IdealLru, &[16.0], &s, 1);
        // Hull value at 16 MB is ~half of the 33 MPKI plateau.
        let mid = talus[0].1;
        assert!(mid < 28.0, "Talus at 16 MB should be well below 33: {mid}");
        assert!(mid > 8.0, "Talus at 16 MB can't beat the hull: {mid}");
    }

    #[test]
    fn talus_futility_bridges_the_cliff() {
        let p = profile("libquantum").unwrap();
        let s = test_scale();
        let talus = talus_curve(&p, TalusScheme::FutilityLru, &[16.0], &s, 1);
        let mid = talus[0].1;
        assert!(
            mid < 28.0,
            "Talus+F at 16 MB should be well below 33: {mid}"
        );
        assert!(mid > 8.0, "Talus+F at 16 MB can't beat the hull: {mid}");
    }

    #[test]
    fn policy_curve_runs_for_srrip() {
        let p = profile("libquantum").unwrap();
        let s = test_scale();
        let c = policy_curve(&p, PolicyKind::Srrip, &[16.0, 40.0], &s, 1);
        assert_eq!(c.len(), 2);
        // SRRIP also thrashes below the scan size and fits above it.
        assert!(c[0].1 > 25.0);
        assert!(c[1].1 < 5.0);
    }
}
