//! Multi-programmed figures: Fig. 12 (random mixes) and Fig. 13 (fairness
//! case studies).

use crate::chart::{render_default, Series};
use crate::{results_dir, write_csv, Scale};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use talus_multicore::{
    coefficient_of_variation, gmean, harmonic_speedup, run_mix, weighted_speedup, AllocAlgo,
    RunConfig, SchemeKind, SystemConfig,
};
use talus_workloads::{memory_intensive, profile, AppProfile};

fn scaled_run_config(scale: &Scale, llc_paper_mb: f64, cores: usize) -> RunConfig {
    let mut system = SystemConfig::eight_core();
    system.cores = cores;
    system.llc_mb = llc_paper_mb * scale.footprint;
    system.reconfig_accesses = if scale.quick { 60_000 } else { 2_000_000 };
    RunConfig::new(system).with_work(scale.work_instructions)
}

/// Fig. 12: weighted and harmonic speedup quantile curves over random
/// 8-app mixes of the 18 most memory-intensive profiles.
pub fn fig12(scale: &Scale) {
    println!(
        "== Fig. 12: {} random 8-app mixes on an 8-core, 8 MB LLC ==",
        scale.mixes
    );
    let pool = memory_intensive();
    let schemes = [
        SchemeKind::TalusLru(AllocAlgo::Hill),
        SchemeKind::PartitionedLru(AllocAlgo::Lookahead),
        SchemeKind::TaDrrip,
        SchemeKind::PartitionedLru(AllocAlgo::Hill),
    ];
    let mut weighted: Vec<(String, Vec<f64>)> =
        schemes.iter().map(|s| (s.label(), Vec::new())).collect();
    let mut harmonic = weighted.clone();
    let mut rng = SmallRng::seed_from_u64(2015);
    for mix_idx in 0..scale.mixes {
        let mix: Vec<AppProfile> = pool
            .choose_multiple(&mut rng, 8)
            .map(|p| p.scaled(scale.footprint))
            .collect();
        let cfg = scaled_run_config(scale, 8.0, 8).with_seed(1000 + mix_idx as u64);
        let base = run_mix(&mix, SchemeKind::SharedLru, &cfg);
        for (si, &scheme) in schemes.iter().enumerate() {
            let r = run_mix(&mix, scheme, &cfg);
            weighted[si]
                .1
                .push(weighted_speedup(&r.ipcs(), &base.ipcs()));
            harmonic[si]
                .1
                .push(harmonic_speedup(&r.ipcs(), &base.ipcs()));
        }
        print!(".");
        use std::io::Write;
        std::io::stdout().flush().ok();
    }
    println!();
    for (metric, data) in [("weighted", &mut weighted), ("harmonic", &mut harmonic)] {
        let mut series = Vec::new();
        let mut rows: Vec<Vec<String>> = (0..scale.mixes).map(|i| vec![format!("{i}")]).collect();
        for (name, vals) in data.iter_mut() {
            vals.sort_by(|a, b| a.partial_cmp(b).expect("speedups are finite"));
            series.push(Series::new(
                name.clone(),
                vals.iter()
                    .enumerate()
                    .map(|(i, &v)| (i as f64, v))
                    .collect(),
            ));
            for (i, v) in vals.iter().enumerate() {
                rows[i].push(format!("{v:.4}"));
            }
            println!(
                "  {metric} gmean {:24} {:+.1}%",
                name,
                (gmean(vals) - 1.0) * 100.0
            );
        }
        let chart = render_default(
            &format!("Fig. 12: {metric} speedup over LRU (sorted mixes)"),
            "Workload mix (sorted)",
            "Speedup",
            &series,
        );
        println!("{chart}");
        write_csv(
            &results_dir().join(format!("fig12_{metric}.csv")),
            "mix,talus_hill,lookahead,ta_drrip,hill",
            &rows,
        );
    }
    println!("  expectation (paper gmeans): weighted — Talus+hill 12.5% > Lookahead 10.2% > TA-DRRIP 6.3% > hill 3.8%;");
    println!("  harmonic — Talus+hill 8.0% ≥ Lookahead 7.8% > TA-DRRIP 5.2% > hill -1.8%.");
}

/// Fig. 13: eight copies of one benchmark; execution time and CoV of IPC
/// vs LLC size under fair partitioning, Lookahead, and TA-DRRIP.
pub fn fig13(scale: &Scale) {
    println!("== Fig. 13: fairness case studies (8 copies) ==");
    let cases: [(&str, Vec<f64>); 3] = [
        ("libquantum", vec![8.0, 16.0, 32.0, 40.0, 56.0, 72.0]),
        ("omnetpp", vec![1.0, 2.0, 4.0, 8.0, 16.0, 24.0]),
        ("xalancbmk", vec![2.0, 4.0, 6.0, 8.0, 16.0, 32.0]),
    ];
    let schemes = [
        SchemeKind::TalusLru(AllocAlgo::Fair),
        SchemeKind::PartitionedLru(AllocAlgo::Lookahead),
        SchemeKind::TaDrrip,
        SchemeKind::PartitionedLru(AllocAlgo::Fair),
        // The pre-Talus answer to homogeneous cliffs (§II-D): rotate an
        // unfair allocation across intervals.
        SchemeKind::PartitionedLru(AllocAlgo::Imbalanced),
    ];
    for (name, sizes) in cases {
        let app = profile(name)
            .expect("roster has the app")
            .scaled(scale.footprint);
        let mix: Vec<AppProfile> = (0..8).map(|_| app.clone()).collect();
        // Baseline: unpartitioned LRU at the smallest size in the sweep.
        let base_cfg = scaled_run_config(scale, 1.0, 8);
        let base = run_mix(&mix, SchemeKind::SharedLru, &base_cfg);
        let base_time = base.makespan_cycles();
        let mut time_series: Vec<Series> = Vec::new();
        let mut cov_series: Vec<Series> = Vec::new();
        let mut rows = Vec::new();
        for &scheme in &schemes {
            let mut times = Vec::new();
            let mut covs = Vec::new();
            for &mb in &sizes {
                let cfg = scaled_run_config(scale, mb, 8);
                let r = run_mix(&mix, scheme, &cfg);
                times.push((mb, r.makespan_cycles() / base_time));
                covs.push((mb, coefficient_of_variation(&r.ipcs())));
                print!(".");
                use std::io::Write;
                std::io::stdout().flush().ok();
            }
            for ((&mb, t), c) in sizes.iter().zip(&times).zip(&covs) {
                rows.push(vec![
                    scheme.label(),
                    format!("{mb}"),
                    format!("{:.4}", t.1),
                    format!("{:.4}", c.1),
                ]);
            }
            time_series.push(Series::new(scheme.label(), times));
            cov_series.push(Series::new(scheme.label(), covs));
        }
        println!();
        let tchart = render_default(
            &format!("Fig. 13: {name} — makespan vs LRU@1MB (lower is better)"),
            "Cache size (MB)",
            "Rel. time",
            &time_series,
        );
        println!("{tchart}");
        let cchart = render_default(
            &format!("Fig. 13: {name} — CoV of per-core IPC (lower is fairer)"),
            "Cache size (MB)",
            "CoV",
            &cov_series,
        );
        println!("{cchart}");
        write_csv(
            &results_dir().join(format!("fig13_{name}.csv")),
            "scheme,mb,rel_makespan,cov_ipc",
            &rows,
        );
    }
    println!("  note: time is the MAKESPAN (slowest copy's completion) — the fixed-work");
    println!("  metric where unfairness cannot hide: Lookahead's one-fed-copy gains vanish.");
    println!("  expectation: Talus+fair gives steady gains with near-zero CoV; Lookahead");
    println!("  sacrifices fairness (CoV spikes past the cliff); fair LRU is flat until fits;");
    println!("  Imbalanced/LRU trades instantaneous fairness (high CoV) for throughput, the");
    println!("  time-multiplexing workaround Talus's convexity makes unnecessary.");
}
