//! Ablations of the design choices DESIGN.md §5 calls out.

use crate::sweep::{lru_curve, mb_grid};
use crate::{results_dir, write_csv, Scale};
use talus_core::{plan_with_hull, MissCurve, TalusOptions, TalusPlan};
use talus_sim::monitor::{ThreePointMonitor, UmonPair};
use talus_sim::part::{FutilityScaled, IdealPartitioned, VantageLike};
use talus_sim::{AccessCtx, TalusCacheConfig, TalusSingleCache};
use talus_workloads::{profile, AccessGenerator, AppProfile};

/// Runs all ablations.
pub fn run(scale: &Scale) {
    safety_margin(scale);
    hull_resolution(scale);
    monitor_design(scale);
    adaptive_monitor(scale);
    unmanaged_fraction(scale);
    futility_vs_vantage(scale);
    interval_length(scale);
}

fn measure_talus_vantage(
    app: &AppProfile,
    paper_mb: f64,
    scale: &Scale,
    config: TalusCacheConfig,
    unmanaged: f64,
    interval: u64,
) -> f64 {
    let scaled = app.scaled(scale.footprint);
    let lines = (scale.mb_to_lines(paper_mb) / 16) * 16;
    let cache = VantageLike::with_unmanaged_fraction(lines, 16, 2, 7, unmanaged);
    let mon = UmonPair::new(lines, 13);
    let mut talus = TalusSingleCache::new(cache, mon, interval, config);
    let mut gen = scaled.generator(21, 0);
    let ctx = AccessCtx::new();
    for _ in 0..scale.warmup {
        talus.access(gen.next_line(), &ctx);
    }
    talus.reset_stats();
    for _ in 0..scale.accesses {
        talus.access(gen.next_line(), &ctx);
    }
    app.mpki(talus.stats().miss_rate())
}

/// Ablation 1 (§VI-B): the ρ safety margin. Too little margin pushes the
/// β shadow partition back up the cliff; too much wastes hull quality.
fn safety_margin(scale: &Scale) {
    println!("== Ablation: safety margin (libquantum @ 16 MB, Talus+V/LRU) ==");
    let app = profile("libquantum").expect("roster has libquantum");
    let interval = (scale.accesses / 6).clamp(20_000, 500_000);
    let mut rows = Vec::new();
    for margin in [0.0, 0.02, 0.05, 0.10, 0.15] {
        let config = TalusCacheConfig::for_vantage()
            .with_options(TalusOptions::new().with_safety_margin(margin));
        let mpki = measure_talus_vantage(&app, 16.0, scale, config, 0.10, interval);
        println!("  margin {margin:>5.2}: {mpki:6.2} MPKI (hull ≈ 16.5)");
        rows.push(vec![format!("{margin}"), format!("{mpki:.3}")]);
    }
    write_csv(
        &results_dir().join("ablate_margin.csv"),
        "margin,mpki",
        &rows,
    );
    println!("  expectation: 0 margin is fragile (above hull); ≈5% matches the hull; larger margins drift slowly upward.");
}

/// Ablation 2: miss-curve resolution available to the planner.
fn hull_resolution(scale: &Scale) {
    println!("== Ablation: miss-curve resolution (planning quality on the example app) ==");
    let app = crate::figs::example::example_profile();
    // Ground truth curve at high resolution.
    let fine = lru_curve(&app, &mb_grid(0.0, 10.0, 81), scale, 31);
    let fine_curve = MissCurve::new(fine.iter().copied()).expect("grid sorted");
    let exact_hull = fine_curve.convex_hull();
    let target = 4.0;
    let mut rows = Vec::new();
    for points in [5usize, 9, 17, 33, 65] {
        let coarse = fine_curve
            .resampled(&mb_grid(0.0, 10.0, points))
            .expect("grid is valid");
        let hull = coarse.convex_hull();
        let plan = plan_with_hull(&hull, target, TalusOptions::exact()).expect("4 MB in range");
        let expected = plan.expected_misses();
        let ideal = exact_hull.value_at(target);
        println!(
            "  {points:3}-point curve: planned {expected:6.2} MPKI at 4 MB (exact hull {ideal:6.2})"
        );
        rows.push(vec![
            points.to_string(),
            format!("{expected:.3}"),
            format!("{ideal:.3}"),
        ]);
    }
    write_csv(
        &results_dir().join("ablate_resolution.csv"),
        "points,planned_mpki,exact_hull_mpki",
        &rows,
    );
    println!("  expectation: plans converge to the exact hull once the resolution resolves the cliff (the paper uses 64-point curves).");
}

/// Ablation 3: Vantage's unmanaged region vs deviation from the hull.
fn unmanaged_fraction(scale: &Scale) {
    println!("== Ablation: unmanaged region (libquantum @ 16 MB) ==");
    let app = profile("libquantum").expect("roster has libquantum");
    let interval = (scale.accesses / 6).clamp(20_000, 500_000);
    let mut rows = Vec::new();
    for unmanaged in [0.0, 0.05, 0.10, 0.20] {
        // Planning scale must match what the scheme can guarantee.
        let mut config = TalusCacheConfig::for_vantage();
        config.planning_scale = 1.0 - unmanaged;
        let mpki = measure_talus_vantage(&app, 16.0, scale, config, unmanaged, interval);
        println!("  unmanaged {unmanaged:>5.2}: {mpki:6.2} MPKI");
        rows.push(vec![format!("{unmanaged}"), format!("{mpki:.3}")]);
    }
    write_csv(
        &results_dir().join("ablate_unmanaged.csv"),
        "unmanaged,mpki",
        &rows,
    );
    println!("  expectation: larger unmanaged regions push Talus+V further above the hull (paper Fig. 8's deviation).");
}

/// Ablation 2b (§VI-C): monitor design — the paper's UMON pair (64-point
/// curves, 4× coverage) vs CRUISE-style 3-point monitors. Three points
/// are cheap but starve Talus twice over: the hull has almost no
/// vertices, and a cliff beyond the modeled range (libquantum's 32 MB
/// cliff seen from 16 MB) is invisible, so there is nothing to bridge.
fn monitor_design(scale: &Scale) {
    println!("== Ablation: monitor design (libquantum @ 16 MB, Talus+I/LRU) ==");
    let app = profile("libquantum").expect("roster has libquantum");
    let scaled = app.scaled(scale.footprint);
    let lines = scale.mb_to_lines(16.0);
    let interval = (scale.accesses / 6).clamp(20_000, 500_000);
    let ctx = AccessCtx::new();
    let run = |label: &str, monitor: Box<dyn FnOnce() -> f64>| {
        let mpki = monitor();
        println!("  {label:<28} {mpki:6.2} MPKI");
        (label.to_string(), mpki)
    };
    fn measure<M: talus_sim::monitor::Monitor>(
        mon: M,
        lines: u64,
        interval: u64,
        scaled: &AppProfile,
        app: &AppProfile,
        scale: &Scale,
        ctx: &AccessCtx,
    ) -> f64 {
        let cache = IdealPartitioned::new(lines, 2);
        let mut talus = TalusSingleCache::new(cache, mon, interval, TalusCacheConfig::new());
        let mut gen = scaled.generator(21, 0);
        for _ in 0..scale.warmup {
            talus.access(gen.next_line(), ctx);
        }
        talus.reset_stats();
        for _ in 0..scale.accesses {
            talus.access(gen.next_line(), ctx);
        }
        app.mpki(talus.stats().miss_rate())
    }
    let mut rows = Vec::new();
    for (label, mpki) in [
        run(
            "UMON pair (64-pt, 4x)",
            Box::new(|| {
                measure(
                    UmonPair::new(lines, 13),
                    lines,
                    interval,
                    &scaled,
                    &app,
                    scale,
                    &ctx,
                )
            }),
        ),
        run(
            "3-point (coverage 1x)",
            Box::new(|| {
                measure(
                    ThreePointMonitor::new(lines, 13),
                    lines,
                    interval,
                    &scaled,
                    &app,
                    scale,
                    &ctx,
                )
            }),
        ),
        run(
            "3-point (coverage 4x)",
            Box::new(|| {
                measure(
                    ThreePointMonitor::with_coverage(lines, 4.0, 13),
                    lines,
                    interval,
                    &scaled,
                    &app,
                    scale,
                    &ctx,
                )
            }),
        ),
    ] {
        rows.push(vec![label, format!("{mpki:.3}")]);
    }
    write_csv(
        &results_dir().join("ablate_monitor.csv"),
        "monitor,mpki",
        &rows,
    );
    println!(
        "  expectation: CRUISE-style 1x coverage cannot see the 32 MB cliff (stays at LRU's ~33);"
    );
    println!("  4x coverage bridges it crudely; the UMON pair traces the hull (~16.5).");
}

/// Ablation 2c (§VI-C future work): fixed multi-monitor banks vs the
/// adaptive bank. The paper calls 64 monitors per core "too large to be
/// practical" and suggests "fewer monitors and dynamically adapting
/// sampling rates"; this measures what that buys on Talus+W/SRRIP.
fn adaptive_monitor(scale: &Scale) {
    use talus_sim::monitor::{AdaptiveCurveSampler, CurveSampler};
    use talus_sim::part::WayPartitioned;
    use talus_sim::policy::{PolicyKind, Srrip};

    println!("== Ablation: adaptive monitor bank (libquantum @ 16 MB, Talus+W/SRRIP) ==");
    let app = profile("libquantum").expect("roster has libquantum");
    let scaled = app.scaled(scale.footprint);
    let lines = (scale.mb_to_lines(16.0) / 32) * 32;
    let interval = (scale.accesses / 6).clamp(20_000, 500_000);
    let ctx = AccessCtx::new();
    let span = 4 * lines;
    let measure = |label: &str, monitor: Box<dyn talus_sim::monitor::Monitor>, cost: u64| {
        let cache = WayPartitioned::new(lines, 32, 2, Srrip::new(), 7);
        let mut talus = TalusSingleCache::new(cache, monitor, interval, TalusCacheConfig::new());
        let mut gen = scaled.generator(21, 0);
        for _ in 0..scale.warmup {
            talus.access(gen.next_line(), &ctx);
        }
        talus.reset_stats();
        for _ in 0..scale.accesses {
            talus.access(gen.next_line(), &ctx);
        }
        let mpki = app.mpki(talus.stats().miss_rate());
        println!("  {label:<28} {mpki:6.2} MPKI   ({cost} monitor lines)");
        vec![label.to_string(), format!("{mpki:.3}"), cost.to_string()]
    };
    let fixed_sizes = |points: u64| -> Vec<u64> {
        (1..=points)
            .map(|i| (i * span / points / 32).max(1) * 32)
            .collect::<Vec<_>>()
    };
    let mut rows = Vec::new();
    for points in [64u64, 16] {
        let sizes = fixed_sizes(points);
        let bank = CurveSampler::new(PolicyKind::Srrip, &sizes, 1024.min(lines), 16, 5);
        let cost = bank.monitor_lines_total();
        rows.push(measure(
            &format!("fixed {points}-monitor bank"),
            Box::new(bank),
            cost,
        ));
    }
    let adaptive =
        AdaptiveCurveSampler::from_kind(PolicyKind::Srrip, 8, span, 1024.min(lines), 16, 5);
    let cost = adaptive.monitor_lines_total();
    rows.push(measure("adaptive 8-monitor bank", Box::new(adaptive), cost));
    write_csv(
        &results_dir().join("ablate_adaptive_monitor.csv"),
        "monitor,mpki,monitor_lines",
        &rows,
    );
    println!(
        "  expectation: the adaptive bank tracks the 64-monitor bank's MPKI at ~1/8 the state;"
    );
    println!("  the fixed 16-monitor bank sits between (resolution-limited near the cliff).");
}

/// Ablation 3b (§VI-B): Vantage's unmanaged region vs Futility Scaling.
/// The paper notes Futility Scaling "would avoid this complication";
/// this ablation quantifies the claim: Talus+F plans over 100% of each
/// allocation and should land closer to the hull than Talus+V.
fn futility_vs_vantage(scale: &Scale) {
    println!("== Ablation: Vantage (10% unmanaged) vs Futility Scaling (fully managed) ==");
    let app = profile("libquantum").expect("roster has libquantum");
    let scaled = app.scaled(scale.footprint);
    let interval = (scale.accesses / 6).clamp(20_000, 500_000);
    let ctx = AccessCtx::new();
    let mut rows = Vec::new();
    for paper_mb in [8.0, 16.0, 24.0] {
        let lines = (scale.mb_to_lines(paper_mb) / 16) * 16;
        let vantage = measure_talus_vantage(
            &app,
            paper_mb,
            scale,
            TalusCacheConfig::for_vantage(),
            0.10,
            interval,
        );
        let futility = {
            let cache = FutilityScaled::new(lines, 16, 2, 7);
            let mon = UmonPair::new(lines, 13);
            let mut talus = TalusSingleCache::new(cache, mon, interval, TalusCacheConfig::new());
            let mut gen = scaled.generator(21, 0);
            for _ in 0..scale.warmup {
                talus.access(gen.next_line(), &ctx);
            }
            talus.reset_stats();
            for _ in 0..scale.accesses {
                talus.access(gen.next_line(), &ctx);
            }
            app.mpki(talus.stats().miss_rate())
        };
        // Hull reference: libquantum's hull is the chord from (0, peak)
        // to (cliff, ~0), so hull(s) ≈ peak·(1 − s/cliff).
        println!("  {paper_mb:>4} MB: Talus+V {vantage:6.2} MPKI, Talus+F {futility:6.2} MPKI");
        rows.push(vec![
            format!("{paper_mb}"),
            format!("{vantage:.3}"),
            format!("{futility:.3}"),
        ]);
    }
    write_csv(
        &results_dir().join("ablate_futility.csv"),
        "mb,talus_vantage_mpki,talus_futility_mpki",
        &rows,
    );
    println!("  expectation: Talus+F at or below Talus+V at every size (no unmanaged region to plan around).");
}

/// Ablation 4: reconfiguration interval vs adaptation (Assumption 1).
fn interval_length(scale: &Scale) {
    println!("== Ablation: reconfiguration interval (omnetpp @ 4 MB, ideal) ==");
    let app = profile("omnetpp").expect("roster has omnetpp");
    let scaled = app.scaled(scale.footprint);
    let lines = scale.mb_to_lines(4.0);
    let mut rows = Vec::new();
    for interval in [10_000u64, 25_000, 50_000, 100_000, 400_000] {
        let cache = IdealPartitioned::new(lines, 2);
        let mon = UmonPair::new(lines, 3);
        let mut talus = TalusSingleCache::new(cache, mon, interval, TalusCacheConfig::new());
        let mut gen = scaled.generator(17, 0);
        let ctx = AccessCtx::new();
        for _ in 0..scale.warmup {
            talus.access(gen.next_line(), &ctx);
        }
        talus.reset_stats();
        for _ in 0..scale.accesses {
            talus.access(gen.next_line(), &ctx);
        }
        let mpki = app.mpki(talus.stats().miss_rate());
        println!(
            "  interval {interval:>7}: {mpki:6.2} MPKI ({} reconfigs)",
            talus.reconfigurations()
        );
        rows.push(vec![interval.to_string(), format!("{mpki:.3}")]);
    }
    write_csv(
        &results_dir().join("ablate_interval.csv"),
        "interval,mpki",
        &rows,
    );
    println!("  expectation: stable curves tolerate long intervals; very short intervals add sampling noise.");
}

/// A plan's expected misses (exposed for the resolution ablation's tests).
#[allow(dead_code)]
fn expected(plan: &TalusPlan) -> f64 {
    plan.expected_misses()
}
