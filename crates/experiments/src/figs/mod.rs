//! One module per paper figure/table; see DESIGN.md §4 for the index.

pub(crate) mod ablate;
pub(crate) mod example;
mod misc;
mod multi;
mod prefetch;
mod single;

use crate::Scale;

/// All experiment names, in `all` execution order.
pub const ALL: &[&str] = &[
    "table1",
    "fig1",
    "fig2",
    "fig3",
    "fig5",
    "fig6",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "overheads",
    "ablate",
    "prefetch",
    "corollary7",
];

/// Runs one experiment by name. Returns `false` for unknown names.
pub fn run(name: &str, scale: &Scale) -> bool {
    match name {
        "table1" => misc::table1(scale),
        "fig1" => single::fig1(scale),
        "fig2" => example::fig2(scale),
        "fig3" => example::fig3(scale),
        "fig5" => example::fig5(scale),
        "fig6" => example::fig6(scale),
        "fig8" => single::fig8(scale),
        "fig9" => single::fig9(scale),
        "fig10" => single::fig10(scale),
        "fig11" => single::fig11(scale),
        "fig12" => multi::fig12(scale),
        "fig13" => multi::fig13(scale),
        "overheads" => misc::overheads(scale),
        "ablate" => ablate::run(scale),
        "prefetch" => prefetch::prefetch(scale),
        "corollary7" => misc::corollary7(scale),
        _ => return false,
    }
    true
}
