//! §VII-B: "Talus is agnostic to prefetching."
//!
//! The paper reproduces its results with L2 adaptive stream prefetchers
//! and reports that prefetching changes miss curves somewhat but does not
//! affect Talus's assumptions. This experiment reproduces that check:
//! an L2-style [`StreamPrefetcher`] feeds the LLC, and we compare
//!
//! 1. the demand-miss LRU curve without prefetching,
//! 2. the demand-miss LRU curve with prefetching (the "changed somewhat"
//!    curve), and
//! 3. Talus running on the prefetched stream.
//!
//! Talus should trace the convex hull of curve 2 — the prefetched miss
//! curve — showing the assumptions survive prefetching.

use crate::chart::{render_default, Series};
use crate::sweep::mb_grid;
use crate::{results_dir, write_csv, Scale};
use talus_sim::monitor::UmonPair;
use talus_sim::part::IdealPartitioned;
use talus_sim::policy::Lru;
use talus_sim::{AccessCtx, CacheModel, SetAssocCache, TalusCacheConfig, TalusSingleCache};
use talus_workloads::{profile, AppProfile, StreamPrefetcher};

/// Demand-miss MPKI of plain LRU fed through the stream prefetcher.
fn lru_prefetched_point(app: &AppProfile, lines: u64, scale: &Scale, seed: u64) -> f64 {
    let scaled = app.scaled(scale.footprint);
    let mut pf = StreamPrefetcher::new(scaled.generator(seed, 0), seed);
    let mut cache = SetAssocCache::new(lines.max(16), 16, Lru::new(), seed ^ 0xFE7C);
    let ctx = AccessCtx::new();
    let (mut demand, mut demand_misses) = (0u64, 0u64);
    let total_demand = scale.warmup + scale.accesses;
    while demand < total_demand {
        let (line, kind) = pf.next_tagged();
        let r = cache.access(line, &ctx);
        if kind.is_demand() {
            demand += 1;
            if demand > scale.warmup && r.is_miss() {
                demand_misses += 1;
            }
        }
    }
    app.mpki(demand_misses as f64 / scale.accesses as f64)
}

/// Demand-miss MPKI of Talus (ideal partitioning, LRU) on the prefetched
/// stream. The monitor sees every LLC access — demand and prefetch — just
/// as a hardware UMON would.
fn talus_prefetched_point(app: &AppProfile, lines: u64, scale: &Scale, seed: u64) -> f64 {
    let scaled = app.scaled(scale.footprint);
    let mut pf = StreamPrefetcher::new(scaled.generator(seed, 0), seed);
    let cache = IdealPartitioned::new(lines.max(16), 2);
    let mon = UmonPair::new(lines.max(16), seed ^ 0x1234);
    let interval = (scale.accesses / 6).clamp(20_000, 500_000);
    let mut talus = TalusSingleCache::new(cache, mon, interval, TalusCacheConfig::new());
    let ctx = AccessCtx::new();
    let (mut demand, mut demand_misses) = (0u64, 0u64);
    let total_demand = scale.warmup + scale.accesses;
    while demand < total_demand {
        let (line, kind) = pf.next_tagged();
        let r = talus.access(line, &ctx);
        if kind.is_demand() {
            demand += 1;
            if demand > scale.warmup && r.is_miss() {
                demand_misses += 1;
            }
        }
    }
    app.mpki(demand_misses as f64 / scale.accesses as f64)
}

/// Demand-miss MPKI of plain LRU with no prefetcher (reference).
fn lru_plain_point(app: &AppProfile, lines: u64, scale: &Scale, seed: u64) -> f64 {
    let scaled = app.scaled(scale.footprint);
    let mut gen = scaled.generator(seed, 0);
    let mut cache = SetAssocCache::new(lines.max(16), 16, Lru::new(), seed ^ 0xFE7C);
    let ctx = AccessCtx::new();
    for _ in 0..scale.warmup {
        cache.access(talus_workloads::AccessGenerator::next_line(&mut gen), &ctx);
    }
    cache.reset_stats();
    for _ in 0..scale.accesses {
        cache.access(talus_workloads::AccessGenerator::next_line(&mut gen), &ctx);
    }
    app.mpki(cache.stats().miss_rate())
}

/// Runs the prefetching-agnosticism experiment.
pub fn prefetch(scale: &Scale) {
    println!("== §VII-B: Talus is agnostic to prefetching ==");
    for (name, grid) in [
        ("libquantum", vec![2.0, 8.0, 16.0, 24.0, 31.0, 33.0, 40.0]),
        ("omnetpp", mb_grid(0.25, 4.0, 7)),
    ] {
        let app = profile(name).expect("roster has the app");
        let mut lru = Vec::new();
        let mut lru_pf = Vec::new();
        let mut talus_pf = Vec::new();
        for &mb in &grid {
            let lines = (scale.mb_to_lines(mb) / 16) * 16;
            lru.push((mb, lru_plain_point(&app, lines, scale, 11)));
            lru_pf.push((mb, lru_prefetched_point(&app, lines, scale, 11)));
            talus_pf.push((mb, talus_prefetched_point(&app, lines, scale, 11)));
        }
        let chart = render_default(
            &format!("Prefetching: {name} (demand MPKI)"),
            "LLC size (MB)",
            "MPKI",
            &[
                Series::new("LRU", lru.clone()),
                Series::new("LRU+PF", lru_pf.clone()),
                Series::new("Talus+PF", talus_pf.clone()),
            ],
        );
        println!("{chart}");
        let rows: Vec<Vec<String>> = grid
            .iter()
            .enumerate()
            .map(|(i, &mb)| {
                vec![
                    format!("{mb:.3}"),
                    format!("{:.4}", lru[i].1),
                    format!("{:.4}", lru_pf[i].1),
                    format!("{:.4}", talus_pf[i].1),
                ]
            })
            .collect();
        write_csv(
            &results_dir().join(format!("prefetch_{name}.csv")),
            "mb,lru,lru_prefetch,talus_prefetch",
            &rows,
        );
    }
    println!("  expectation: prefetching shifts the LRU curve (scans are partially covered) but Talus still bridges the remaining cliff — it traces the hull of the *prefetched* curve.");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_scale() -> Scale {
        Scale {
            footprint: 1.0 / 256.0,
            accesses: 120_000,
            warmup: 60_000,
            mixes: 1,
            work_instructions: 1e5,
            quick: true,
        }
    }

    #[test]
    fn prefetching_reduces_demand_misses_on_scans() {
        // libquantum is a pure scan: a stream prefetcher must cover a
        // sizeable fraction of its demand misses below the cliff.
        let app = profile("libquantum").unwrap();
        let s = test_scale();
        let lines = s.mb_to_lines(16.0);
        let plain = lru_plain_point(&app, lines, &s, 1);
        let pf = lru_prefetched_point(&app, lines, &s, 1);
        assert!(
            pf < plain * 0.7,
            "prefetching should cover much of a scan: {pf:.1} vs {plain:.1} MPKI"
        );
        assert!(
            pf > plain * 0.05,
            "default coverage is imperfect: {pf:.1} vs {plain:.1}"
        );
    }

    #[test]
    fn talus_still_improves_under_prefetching() {
        // The §VII-B claim at one point: Talus on the prefetched stream
        // is at or below prefetched LRU (it traces the prefetched hull).
        let app = profile("libquantum").unwrap();
        let s = test_scale();
        let lines = s.mb_to_lines(16.0);
        let lru_pf = lru_prefetched_point(&app, lines, &s, 1);
        let talus_pf = talus_prefetched_point(&app, lines, &s, 1);
        assert!(
            talus_pf <= lru_pf * 1.1,
            "Talus must not regress under prefetching: {talus_pf:.1} vs {lru_pf:.1} MPKI"
        );
    }
}
