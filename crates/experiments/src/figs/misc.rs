//! Table I and the §VI-D overhead analysis.

use crate::{results_dir, write_csv, Scale};
use talus_multicore::SystemConfig;
use talus_sim::mb_to_lines;
use talus_sim::overhead::OverheadReport;

/// Table I: the simulated system configuration.
pub fn table1(scale: &Scale) {
    println!("== Table I: simulated system configuration ==");
    println!("-- single-threaded (ST) --");
    println!("{}", SystemConfig::single_core(1.0));
    println!("-- multi-programmed (MP) --");
    println!("{}", SystemConfig::eight_core());
    if scale.quick {
        println!(
            "(quick scale: footprints and cache sizes shrunk {:.0}x; axes relabelled to paper MB)",
            1.0 / scale.footprint
        );
    }
    println!("See DESIGN.md for which rows the analytic substrate honours directly.");
}

/// §VI-D: hardware overhead accounting.
pub fn overheads(_scale: &Scale) {
    println!("== §VI-D: Talus hardware overheads (8-core, 8 MB LLC) ==");
    let lines = mb_to_lines(8.0);
    let r = OverheadReport::vantage(lines, 8);
    let rows = vec![
        vec!["partition_id_tag_bits".into(), r.tag_bits_bytes.to_string()],
        vec![
            "vantage_partition_state".into(),
            r.partition_state_bytes.to_string(),
        ],
        vec!["sampling_functions".into(), r.sampler_bytes.to_string()],
        vec![
            "talus_monitors_(sampled_umon)".into(),
            r.monitor_bytes.to_string(),
        ],
        vec!["total_talus_specific".into(), r.total_bytes().to_string()],
        vec![
            "conventional_umons_(not_counted)".into(),
            r.baseline_monitor_bytes.to_string(),
        ],
    ];
    for row in &rows {
        println!("  {:28} {:>8} B", row[0], row[1]);
    }
    println!(
        "  total {:.1} KB = {:.2}% of the LLC (paper: 24.2 KB, 0.3%)",
        r.total_bytes() as f64 / 1024.0,
        100.0 * r.fraction_of_llc(lines)
    );
    write_csv(
        &results_dir().join("overheads.csv"),
        "component,bytes",
        &rows,
    );
}

/// Corollary 7: optimal replacement (Belady's MIN) is convex. The paper
/// proves this as a consequence of Theorem 6; here we verify it
/// empirically with the offline oracle on the §III example app — whose
/// *LRU* curve has a large cliff — and quantify the distance between
/// MIN's measured curve and its own convex hull.
pub fn corollary7(scale: &Scale) {
    use crate::chart::{render_default, Series};
    use crate::sweep::mb_grid;
    use talus_core::MissCurve;
    use talus_sim::policy::{annotate_next_uses, AccessCtx, Belady};
    use talus_sim::{CacheModel, SetAssocCache};
    use talus_workloads::collect_trace;

    println!("== Corollary 7: optimal replacement (MIN) is convex ==");
    let app = super::example::example_profile().scaled(scale.footprint);
    let total = (scale.warmup + scale.accesses) as usize;
    let mut gen = app.generator(17, 0);
    let trace = collect_trace(&mut gen, total);
    let next = annotate_next_uses(&trace);
    let grid = mb_grid(0.5, 8.0, 16);
    let mut lru_pts = Vec::new();
    let mut min_pts = Vec::new();
    for &mb in &grid {
        let lines = (scale.mb_to_lines(mb) / 16) * 16;
        let mut min_cache = SetAssocCache::new(lines, 16, Belady::new(), 3);
        let mut lru_cache = SetAssocCache::new(lines, 16, talus_sim::policy::Lru::new(), 3);
        for (i, &l) in trace.iter().enumerate() {
            if i == scale.warmup as usize {
                min_cache.reset_stats();
                lru_cache.reset_stats();
            }
            let ctx = AccessCtx::new().with_next_use(next[i]);
            min_cache.access(l, &ctx);
            lru_cache.access(l, &ctx);
        }
        min_pts.push((mb, app.mpki(min_cache.stats().miss_rate())));
        lru_pts.push((mb, app.mpki(lru_cache.stats().miss_rate())));
    }
    let chart = render_default(
        "Corollary 7: LRU vs Belady MIN on the example app",
        "LLC size (MB)",
        "MPKI",
        &[
            Series::new("LRU", lru_pts.clone()),
            Series::new("MIN", min_pts.clone()),
        ],
    );
    println!("{chart}");
    // Quantify non-convexity: worst gap between the measured curve and
    // its own hull, relative to the curve's range.
    let gap_of = |pts: &[(f64, f64)]| {
        let curve = MissCurve::new(pts.iter().copied()).expect("grid is sorted");
        let hull = curve.convex_hull();
        let range = pts.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max)
            - pts.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
        pts.iter()
            .map(|&(s, m)| m - hull.value_at(s))
            .fold(0.0f64, f64::max)
            / range.max(1e-9)
    };
    let lru_gap = gap_of(&lru_pts);
    let min_gap = gap_of(&min_pts);
    println!(
        "  worst hull gap, relative to curve range: LRU {:.1}%, MIN {:.1}%",
        lru_gap * 100.0,
        min_gap * 100.0
    );
    let rows: Vec<Vec<String>> = grid
        .iter()
        .enumerate()
        .map(|(i, &mb)| {
            vec![
                format!("{mb:.3}"),
                format!("{:.4}", lru_pts[i].1),
                format!("{:.4}", min_pts[i].1),
            ]
        })
        .collect();
    write_csv(&results_dir().join("corollary7.csv"), "mb,lru,min", &rows);
    println!("  expectation: LRU shows a pronounced cliff (large hull gap); MIN's curve is");
    println!(
        "  convex up to simulation noise — the Corollary-7 claim the paper proves via Theorem 6."
    );
}
