//! The §III worked example: Figs. 2, 3, 5, and 6.
//!
//! The example application accesses 2 MB at random plus 3 MB sequentially,
//! with a background stream that keeps 3 MPKI missing at every size —
//! reproducing the paper's example curve: 24 APKI, m(0) = 24 MPKI,
//! m(2 MB) = 12, a plateau to the cliff at 5 MB, and m(≥5 MB) = 3.

use crate::chart::{render_default, Series};
use crate::sweep::{lru_curve, mb_grid};
use crate::{results_dir, write_csv, Scale};
use talus_core::bypass::{optimal_bypass, optimal_bypass_curve};
use talus_core::{plan, MissCurve, TalusOptions};
use talus_sim::part::{PartitionedCacheModel, SetPartitioned};
use talus_sim::policy::Lru;
use talus_sim::{AccessCtx, LineAddr, PartitionId, ShadowSampler};
use talus_workloads::{AccessGenerator, AppProfile, Component, ComponentKind};

/// The §III example application (paper Fig. 3).
///
/// The paper's curve is an idealised sketch; under real LRU the components
/// of a mixture inflate each other's reuse distances (a random line's
/// stack distance includes the scan lines touched in between). Component
/// footprints are therefore chosen so the *effective* LRU fit points land
/// on the paper's anchors: the random set fits at ≈2 MB (m = 12 MPKI) and
/// the scan at ≈5 MB (the cliff, m = 3 MPKI), with the background stream
/// providing the 3 MPKI floor.
pub fn example_profile() -> AppProfile {
    AppProfile {
        name: "fig3-example",
        apki: 24.0,
        base_ipc: 1.0,
        components: vec![
            // Random working set: half the accesses; fits by ≈2 MB once
            // interleaved scan/stream lines are counted.
            Component {
                kind: ComponentKind::Random,
                mb: 0.75,
                weight: 0.5,
            },
            // Sequential scan: stack distance ≈ 2.8 MB + interleaved lines
            // ⇒ the cliff completes just below 5 MB.
            Component {
                kind: ComponentKind::Scan,
                mb: 2.8,
                weight: 0.375,
            },
            // Endless background stream: the 3 MPKI floor.
            Component {
                kind: ComponentKind::Scan,
                mb: 256.0,
                weight: 0.125,
            },
        ],
    }
}

/// Measures the example's LRU miss curve on a 0–10 MB grid (paper MB and
/// MPKI), returning both the plot points and the `MissCurve` (in MPKI over
/// paper MB) for planning.
fn measured_example_curve(scale: &Scale) -> (Vec<(f64, f64)>, MissCurve) {
    let grid = mb_grid(0.0, 10.0, 41);
    let pts = lru_curve(&example_profile(), &grid, scale, 42);
    let curve = MissCurve::new(pts.iter().map(|&(mb, mpki)| (mb, mpki))).expect("grid is sorted");
    (pts, curve)
}

/// Fig. 2: the three panels of the worked example, simulated with set
/// partitioning and the 1:2 access split.
pub fn fig2(scale: &Scale) {
    println!("== Fig. 2: worked example (set partitioning, 1:2 split) ==");
    let profile = example_profile().scaled(scale.footprint);
    let apki = 24.0;
    // Panel (c)'s shadow configuration comes from the measured curve's
    // hull, exactly as Talus would plan it (the paper's idealised curve
    // yields alpha = 2 MB, beta = 5 MB, rho = 1/3; the measured curve's
    // vertices differ slightly).
    let (_, curve) = measured_example_curve(scale);
    let talus_plan = plan(&curve, 4.0, TalusOptions::new()).expect("4 MB is in range");
    let cfg = talus_plan
        .shadow()
        .expect("4 MB sits on the example plateau");
    println!(
        "  Talus plan at 4 MB: alpha {:.1} MB, beta {:.1} MB, rho {:.2}, s1 {:.2} MB (paper: 2, 5, 1/3, 2/3)",
        cfg.alpha, cfg.beta, cfg.rho, cfg.s1
    );
    // Panels: (total MB, rho into top partition, top share of sets).
    // (a) 2 MB and (b) 5 MB split 1:2 with proportional (1/3) sampling.
    let panels: [(&str, f64, f64, f64); 3] = [
        ("(a) original 2 MB, sets 1:2", 2.0, 1.0 / 3.0, 1.0 / 3.0),
        ("(b) original 5 MB, sets 1:2", 5.0, 1.0 / 3.0, 1.0 / 3.0),
        ("(c) Talus 4 MB (planned)  ", 4.0, cfg.rho, cfg.s1 / 4.0),
    ];
    let mut rows = Vec::new();
    for (label, total_mb, rho, top_frac) in panels {
        let lines = round16(scale.mb_to_lines(total_mb));
        let top = round16((lines as f64 * top_frac) as u64).min(lines - 16);
        let mut cache = SetPartitioned::new(lines, 16, 2, Lru::new(), 7);
        cache.set_partition_sizes(&[top, lines - top]);
        let mut sampler = ShadowSampler::new(99);
        sampler.set_rate(rho);
        let mut gen = profile.generator(11, 0);
        let ctx = AccessCtx::new();
        let total_acc = scale.accesses + scale.warmup;
        for i in 0..total_acc {
            let line: LineAddr = gen.next_line();
            let part = if sampler.goes_to_alpha(line) { 0u32 } else { 1 };
            cache.access(PartitionId(part), line, &ctx);
            if i == scale.warmup {
                cache.reset_stats();
            }
        }
        let s0 = cache.partition_stats(PartitionId(0));
        let s1 = cache.partition_stats(PartitionId(1));
        let n = (s0.accesses() + s1.accesses()) as f64;
        let (a0, a1) = (
            apki * s0.accesses() as f64 / n,
            apki * s1.accesses() as f64 / n,
        );
        let (m0, m1) = (apki * s0.misses() as f64 / n, apki * s1.misses() as f64 / n);
        println!(
            "  {label}: top {:4.1} APKI / {:4.2} MPKI   bottom {:4.1} APKI / {:4.2} MPKI   total {:5.2} MPKI",
            a0, m0, a1, m1, m0 + m1
        );
        rows.push(vec![
            label.to_string(),
            format!("{a0:.2}"),
            format!("{m0:.2}"),
            format!("{a1:.2}"),
            format!("{m1:.2}"),
            format!("{:.2}", m0 + m1),
        ]);
    }
    println!("  paper: (a) 8/4 + 16/8 = 12  (b) 8/1 + 16/2 = 3  (c) 8/4 + 16/2 = 6 MPKI");
    println!("  note: set partitioning has the weakest Assumption-2 fidelity (16-way conflict");
    println!("  variance at ~95% utilisation keeps panel (c) above the hull); Fig. 8 shows the");
    println!("  Vantage-like and ideal schemes tracing the hull closely.");
    write_csv(
        &results_dir().join("fig02_worked_example.csv"),
        "panel,top_apki,top_mpki,bottom_apki,bottom_mpki,total_mpki",
        &rows,
    );
}

fn round16(lines: u64) -> u64 {
    ((lines + 8) / 16).max(1) * 16
}

/// Fig. 3: the example miss curve and its convex hull.
pub fn fig3(scale: &Scale) {
    println!("== Fig. 3: example miss curve with a cliff at 5 MB ==");
    let (pts, curve) = measured_example_curve(scale);
    let hull = curve.convex_hull();
    let hull_pts: Vec<(f64, f64)> = pts.iter().map(|&(mb, _)| (mb, hull.value_at(mb))).collect();
    let chart = render_default(
        "Fig. 3: example app, LRU vs Talus (hull)",
        "Cache size (MB)",
        "MPKI",
        &[
            Series::new("Original (LRU)", pts.clone()),
            Series::new("Talus (hull)", hull_pts.clone()),
        ],
    );
    println!("{chart}");
    let m2 = curve.value_at(2.0);
    let m4 = curve.value_at(4.0);
    let t4 = hull.value_at(4.0);
    println!("  m(2 MB) = {m2:.1} MPKI (paper: 12)   m(4 MB) = {m4:.1} (paper: 12, plateau)");
    println!("  Talus at 4 MB = {t4:.1} MPKI (paper: 6)");
    let rows: Vec<Vec<String>> = pts
        .iter()
        .zip(&hull_pts)
        .map(|(&(mb, lru), &(_, t))| {
            vec![format!("{mb:.2}"), format!("{lru:.3}"), format!("{t:.3}")]
        })
        .collect();
    write_csv(
        &results_dir().join("fig03_example_curve.csv"),
        "mb,lru_mpki,talus_mpki",
        &rows,
    );
}

/// Fig. 5: optimal bypassing at 4 MB, decomposed.
pub fn fig5(scale: &Scale) {
    println!("== Fig. 5: optimal bypassing at 4 MB ==");
    let (pts, curve) = measured_example_curve(scale);
    let plan5 = optimal_bypass(&curve, 4.0).expect("4 MB is a valid size");
    println!(
        "  optimal bypass at 4 MB: rho = {:.2} (paper: 0.80), emulates {:.1} MB",
        plan5.rho, plan5.emulated_size
    );
    println!(
        "  non-bypassed misses {:.2} + bypassed {:.2} = {:.2} MPKI (paper: ~7.2, \"roughly 8\")",
        plan5.admitted_misses(&curve),
        plan5.bypassed_misses(&curve),
        plan5.expected_misses
    );
    let talus = plan(&curve, 4.0, TalusOptions::exact()).expect("plan at 4 MB");
    println!(
        "  Talus at 4 MB: {:.2} MPKI (paper: 6) — bypassing cannot beat the hull",
        talus.expected_misses()
    );
    // Decomposition across sizes for the plot: admitted + bypassed of the
    // per-size optimal plan.
    let mut rows = Vec::new();
    let mut admitted = Vec::new();
    let mut bypassed = Vec::new();
    for &(mb, _) in &pts {
        let p = optimal_bypass(&curve, mb).expect("grid size");
        admitted.push((mb, p.admitted_misses(&curve)));
        bypassed.push((mb, p.bypassed_misses(&curve)));
        rows.push(vec![
            format!("{mb:.2}"),
            format!("{:.3}", p.rho),
            format!("{:.3}", p.admitted_misses(&curve)),
            format!("{:.3}", p.bypassed_misses(&curve)),
            format!("{:.3}", p.expected_misses),
        ]);
    }
    let chart = render_default(
        "Fig. 5: bypassing decomposition (optimal rho per size)",
        "Cache size (MB)",
        "MPKI",
        &[
            Series::new("Original", pts),
            Series::new("Non-bypassed", admitted),
            Series::new("Bypassed", bypassed),
        ],
    );
    println!("{chart}");
    write_csv(
        &results_dir().join("fig05_bypass_decomposition.csv"),
        "mb,rho,admitted_mpki,bypassed_mpki,total_mpki",
        &rows,
    );
}

/// Fig. 6: Talus (hull) vs optimal bypassing across sizes.
pub fn fig6(scale: &Scale) {
    println!("== Fig. 6: Talus vs optimal bypassing ==");
    let (pts, curve) = measured_example_curve(scale);
    let hull = curve.convex_hull();
    let bypass = optimal_bypass_curve(&curve);
    let talus_pts: Vec<(f64, f64)> = pts.iter().map(|&(mb, _)| (mb, hull.value_at(mb))).collect();
    let bypass_pts: Vec<(f64, f64)> = pts
        .iter()
        .map(|&(mb, _)| (mb, bypass.value_at(mb)))
        .collect();
    let chart = render_default(
        "Fig. 6: Talus (hull) vs optimal bypassing",
        "Cache size (MB)",
        "MPKI",
        &[
            Series::new("Original", pts.clone()),
            Series::new("Talus", talus_pts.clone()),
            Series::new("Bypassing", bypass_pts.clone()),
        ],
    );
    println!("{chart}");
    // Shape check: hull <= bypass <= original everywhere.
    let mut ok = true;
    for ((&(mb, orig), &(_, t)), &(_, b)) in pts.iter().zip(&talus_pts).zip(&bypass_pts) {
        if t > b + 1e-6 || b > orig + 1e-6 {
            ok = false;
            println!("  ordering violated at {mb} MB: talus {t:.2} bypass {b:.2} lru {orig:.2}");
        }
    }
    println!(
        "  hull ≤ bypass ≤ original at every size: {}",
        if ok { "yes" } else { "NO" }
    );
    let rows: Vec<Vec<String>> = pts
        .iter()
        .zip(&talus_pts)
        .zip(&bypass_pts)
        .map(|((&(mb, o), &(_, t)), &(_, b))| {
            vec![
                format!("{mb:.2}"),
                format!("{o:.3}"),
                format!("{t:.3}"),
                format!("{b:.3}"),
            ]
        })
        .collect();
    write_csv(
        &results_dir().join("fig06_talus_vs_bypass.csv"),
        "mb,lru_mpki,talus_mpki,bypass_mpki",
        &rows,
    );
}
