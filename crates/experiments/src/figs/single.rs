//! Single-program figures: Figs. 1, 8, 9, 10, and 11.

use crate::chart::{render_default, Series};
use crate::sweep::{policy_curve, talus_curve, TalusScheme};
use crate::{results_dir, write_csv, Scale};
use talus_multicore::{gmean, CoreModel};
use talus_sim::policy::PolicyKind;
use talus_workloads::{all_profiles, profile};

/// Fig. 1: libquantum under LRU vs Talus, 0–40 MB.
pub fn fig1(scale: &Scale) {
    println!("== Fig. 1: libquantum, LRU vs Talus ==");
    let app = profile("libquantum").expect("roster has libquantum");
    let grid = vec![
        1.0, 4.0, 8.0, 12.0, 16.0, 20.0, 24.0, 28.0, 31.0, 32.0, 33.0, 36.0, 40.0,
    ];
    let lru = policy_curve(&app, PolicyKind::Lru, &grid, scale, 1);
    let talus = talus_curve(&app, TalusScheme::VantageLru, &grid, scale, 1);
    let chart = render_default(
        "Fig. 1: libquantum MPKI vs LLC size",
        "Cache size (MB)",
        "MPKI",
        &[
            Series::new("LRU", lru.clone()),
            Series::new("Talus", talus.clone()),
        ],
    );
    println!("{chart}");
    let lru16 = lru
        .iter()
        .find(|p| p.0 == 16.0)
        .expect("16 MB is on the grid")
        .1;
    let t16 = talus
        .iter()
        .find(|p| p.0 == 16.0)
        .expect("16 MB is on the grid")
        .1;
    println!(
        "  at 16 MB: LRU {lru16:.1} MPKI (paper ≈ 33, flat), Talus {t16:.1} (paper ≈ 16, half)"
    );
    let rows = zip_rows(&grid, &[("lru", &lru), ("talus", &talus)]);
    write_csv(
        &results_dir().join("fig01_libquantum.csv"),
        "mb,lru,talus",
        &rows,
    );
}

fn zip_rows(grid: &[f64], series: &[(&str, &Vec<(f64, f64)>)]) -> Vec<Vec<String>> {
    grid.iter()
        .enumerate()
        .map(|(i, &mb)| {
            let mut row = vec![format!("{mb:.3}")];
            for (_, s) in series {
                row.push(format!("{:.4}", s[i].1));
            }
            row
        })
        .collect()
}

/// Fig. 8: Talus on LRU across partitioning schemes (Vantage, way, ideal).
pub fn fig8(scale: &Scale) {
    println!("== Fig. 8: Talus on LRU across partitioning schemes ==");
    for (name, grid) in [
        ("libquantum", vec![2.0, 8.0, 16.0, 24.0, 31.0, 33.0, 40.0]),
        ("gobmk", vec![0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 12.0]),
    ] {
        let app = profile(name).expect("roster has the app");
        let lru = policy_curve(&app, PolicyKind::Lru, &grid, scale, 2);
        let v = talus_curve(&app, TalusScheme::VantageLru, &grid, scale, 2);
        let f = talus_curve(&app, TalusScheme::FutilityLru, &grid, scale, 2);
        let w = talus_curve(&app, TalusScheme::WayLru, &grid, scale, 2);
        let i = talus_curve(&app, TalusScheme::IdealLru, &grid, scale, 2);
        let chart = render_default(
            &format!("Fig. 8: {name}"),
            "LLC size (MB)",
            "MPKI",
            &[
                Series::new("LRU", lru.clone()),
                Series::new("Talus+V/LRU", v.clone()),
                Series::new("Talus+F/LRU", f.clone()),
                Series::new("Talus+W/LRU", w.clone()),
                Series::new("Talus+I/LRU", i.clone()),
            ],
        );
        println!("{chart}");
        let rows = zip_rows(
            &grid,
            &[("lru", &lru), ("v", &v), ("f", &f), ("w", &w), ("i", &i)],
        );
        write_csv(
            &results_dir().join(format!("fig08_{name}.csv")),
            "mb,lru,talus_vantage,talus_futility,talus_way,talus_ideal",
            &rows,
        );
    }
    println!("  expectation: all Talus variants track the hull; Talus+V sits slightly above it (unmanaged region), Talus+F (Futility Scaling extension) closes that gap.");
}

/// Fig. 9: Talus on SRRIP with way partitioning.
pub fn fig9(scale: &Scale) {
    println!("== Fig. 9: Talus on SRRIP (64-point sampled monitors) ==");
    for (name, grid) in [
        ("libquantum", vec![2.0, 8.0, 16.0, 24.0, 31.0, 33.0, 40.0]),
        ("mcf", vec![0.5, 2.0, 4.0, 8.0, 12.0, 16.0]),
    ] {
        let app = profile(name).expect("roster has the app");
        let srrip = policy_curve(&app, PolicyKind::Srrip, &grid, scale, 3);
        let talus = talus_curve(&app, TalusScheme::WaySrrip, &grid, scale, 3);
        let chart = render_default(
            &format!("Fig. 9: {name}"),
            "LLC size (MB)",
            "MPKI",
            &[
                Series::new("SRRIP", srrip.clone()),
                Series::new("Talus+W/SRRIP", talus.clone()),
            ],
        );
        println!("{chart}");
        let rows = zip_rows(&grid, &[("srrip", &srrip), ("talus", &talus)]);
        write_csv(
            &results_dir().join(format!("fig09_{name}.csv")),
            "mb,srrip,talus_w_srrip",
            &rows,
        );
    }
}

/// The Fig. 10 policy roster.
fn fig10_policies() -> Vec<(String, PolicyKind)> {
    vec![
        ("PDP".into(), PolicyKind::Pdp),
        ("DRRIP".into(), PolicyKind::Drrip),
        ("SRRIP".into(), PolicyKind::Srrip),
        ("SHiP".into(), PolicyKind::Ship),
    ]
}

/// Fig. 10: MPKI from 128 KB to 16 MB for six benchmarks × five policies.
pub fn fig10(scale: &Scale) {
    println!("== Fig. 10: Talus+V/LRU vs high-performance policies ==");
    let apps = [
        "perlbench",
        "mcf",
        "cactusADM",
        "libquantum",
        "lbm",
        "xalancbmk",
    ];
    let grid = vec![0.125, 0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 12.0, 16.0];
    for name in apps {
        let app = profile(name).expect("roster has the app");
        let lru = policy_curve(&app, PolicyKind::Lru, &grid, scale, 4);
        let talus = talus_curve(&app, TalusScheme::VantageLru, &grid, scale, 4);
        let mut series = vec![
            Series::new("Talus+V/LRU", talus.clone()),
            Series::new("LRU", lru.clone()),
        ];
        let mut named: Vec<(String, Vec<(f64, f64)>)> =
            vec![("talus".into(), talus.clone()), ("lru".into(), lru.clone())];
        for (label, kind) in fig10_policies() {
            let c = policy_curve(&app, kind, &grid, scale, 4);
            series.push(Series::new(label.clone(), c.clone()));
            named.push((label.to_lowercase(), c));
        }
        let chart = render_default(
            &format!("Fig. 10: {name}"),
            "LLC size (MB)",
            "MPKI",
            &series,
        );
        println!("{chart}");
        let refs: Vec<(&str, &Vec<(f64, f64)>)> =
            named.iter().map(|(n, c)| (n.as_str(), c)).collect();
        let rows = zip_rows(&grid, &refs);
        write_csv(
            &results_dir().join(format!("fig10_{name}.csv")),
            "mb,talus,lru,pdp,drrip,srrip,ship",
            &rows,
        );
    }
    println!("  expectation: Talus tracks or beats LRU everywhere; RRIP wins where reuse classification matters (mcf, cactusADM); PDP loses on convex-then-cliff apps (perlbench, cactusADM).");
}

/// Fig. 11: IPC over LRU at 1 MB and 8 MB across the roster.
pub fn fig11(scale: &Scale) {
    println!("== Fig. 11: IPC over LRU at 1 MB and 8 MB ==");
    let model = CoreModel::new();
    for size_mb in [1.0f64, 8.0] {
        println!("  --- {size_mb} MB LLC ---");
        let grid = vec![size_mb];
        let mut rows = Vec::new();
        let mut ratios: Vec<(String, Vec<f64>)> = vec![
            ("Talus+V/LRU".into(), Vec::new()),
            ("PDP".into(), Vec::new()),
            ("DRRIP".into(), Vec::new()),
            ("SRRIP".into(), Vec::new()),
            ("SHiP".into(), Vec::new()),
        ];
        for app in all_profiles() {
            let lru = policy_curve(&app, PolicyKind::Lru, &grid, scale, 5)[0].1;
            let ipc_lru = model.ipc(&app, lru);
            let talus = talus_curve(&app, TalusScheme::VantageLru, &grid, scale, 5)[0].1;
            let mut mpkis = vec![talus];
            for (_, kind) in fig10_policies() {
                mpkis.push(policy_curve(&app, kind, &grid, scale, 5)[0].1);
            }
            let pct: Vec<f64> = mpkis
                .iter()
                .map(|&m| (model.ipc(&app, m) / ipc_lru - 1.0) * 100.0)
                .collect();
            for (r, &p) in ratios.iter_mut().zip(&pct) {
                r.1.push(p / 100.0 + 1.0);
            }
            if pct.iter().any(|p| p.abs() >= 1.0) {
                println!(
                    "  {:12} Talus {:+6.1}%  PDP {:+6.1}%  DRRIP {:+6.1}%  SRRIP {:+6.1}%  SHiP {:+6.1}%",
                    app.name, pct[0], pct[1], pct[2], pct[3], pct[4]
                );
            }
            rows.push(vec![
                app.name.to_string(),
                format!("{:.3}", pct[0]),
                format!("{:.3}", pct[1]),
                format!("{:.3}", pct[2]),
                format!("{:.3}", pct[3]),
                format!("{:.3}", pct[4]),
            ]);
        }
        for (name, r) in &ratios {
            println!("  gmean {:12} {:+.2}%", name, (gmean(r) - 1.0) * 100.0);
        }
        write_csv(
            &results_dir().join(format!("fig11_ipc_{size_mb}mb.csv")),
            "app,talus_pct,pdp_pct,drrip_pct,srrip_pct,ship_pct",
            &rows,
        );
    }
    println!("  expectation: Talus never causes large degradations; competitive gmean at both sizes (paper: 1.9%@1MB, 1.0%@8MB).");
}
