//! Minimal ASCII line charts for terminal output.

/// A named data series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// `(x, y)` points, unsorted is fine.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            name: name.into(),
            points,
        }
    }
}

const GLYPHS: [char; 8] = ['*', 'o', '+', 'x', '#', '@', '%', '&'];

/// Renders series into a text chart of the given dimensions.
///
/// # Panics
///
/// Panics if `width`/`height` are tiny (< 8).
pub fn render(
    title: &str,
    xlabel: &str,
    ylabel: &str,
    series: &[Series],
    width: usize,
    height: usize,
) -> String {
    assert!(width >= 8 && height >= 8, "chart too small");
    let pts: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    if pts.is_empty() {
        return format!("{title}\n  (no data)\n");
    }
    let xmin = pts.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
    let xmax = pts.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
    let ymin = 0.0f64.min(pts.iter().map(|p| p.1).fold(f64::INFINITY, f64::min));
    let ymax = pts
        .iter()
        .map(|p| p.1)
        .fold(f64::NEG_INFINITY, f64::max)
        .max(1e-9);
    let xspan = (xmax - xmin).max(1e-9);
    let yspan = (ymax - ymin).max(1e-9);

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        let mut sorted = s.points.clone();
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite x"));
        // Dense sampling along segments so lines look connected.
        for w in sorted.windows(2) {
            let steps = width * 2;
            for t in 0..=steps {
                let f = t as f64 / steps as f64;
                let x = w[0].0 + f * (w[1].0 - w[0].0);
                let y = w[0].1 + f * (w[1].1 - w[0].1);
                let col = (((x - xmin) / xspan) * (width - 1) as f64).round() as usize;
                let row = (((y - ymin) / yspan) * (height - 1) as f64).round() as usize;
                let row = height - 1 - row.min(height - 1);
                grid[row][col.min(width - 1)] = glyph;
            }
        }
        if sorted.len() == 1 {
            let (x, y) = sorted[0];
            let col = (((x - xmin) / xspan) * (width - 1) as f64).round() as usize;
            let row = height
                - 1
                - ((((y - ymin) / yspan) * (height - 1) as f64).round() as usize).min(height - 1);
            grid[row][col.min(width - 1)] = glyph;
        }
    }

    let mut out = String::new();
    out.push_str(&format!("  {title}\n"));
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, s)| format!("{} {}", GLYPHS[i % GLYPHS.len()], s.name))
        .collect();
    out.push_str(&format!("  [{}]\n", legend.join("  ")));
    for (r, row) in grid.iter().enumerate() {
        let yv = ymax - (r as f64 / (height - 1) as f64) * yspan;
        let label = if r % 4 == 0 {
            format!("{yv:8.2}")
        } else {
            " ".repeat(8)
        };
        out.push_str(&format!("{label} |{}\n", row.iter().collect::<String>()));
    }
    out.push_str(&format!("{:>8} +{}\n", "", "-".repeat(width)));
    out.push_str(&format!(
        "{:>8}  {:<12}{:^width$}{:>12}\n",
        ylabel,
        format!("{xmin:.2}"),
        xlabel,
        format!("{xmax:.2}"),
        width = width.saturating_sub(24)
    ));
    out
}

/// Renders with default dimensions (72×20).
pub fn render_default(title: &str, xlabel: &str, ylabel: &str, series: &[Series]) -> String {
    render(title, xlabel, ylabel, series, 72, 20)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_two_series() {
        let s = vec![
            Series::new("a", vec![(0.0, 10.0), (5.0, 0.0)]),
            Series::new("b", vec![(0.0, 5.0), (5.0, 5.0)]),
        ];
        let out = render_default("test", "MB", "MPKI", &s);
        assert!(out.contains('*'));
        assert!(out.contains('o'));
        assert!(out.contains("a"));
        assert!(out.contains("MPKI"));
        assert!(out.lines().count() > 20);
    }

    #[test]
    fn handles_single_point_series() {
        let s = vec![Series::new("dot", vec![(1.0, 1.0)])];
        let out = render_default("t", "x", "y", &s);
        assert!(out.contains('*'));
    }

    #[test]
    fn handles_empty() {
        let out = render_default("t", "x", "y", &[]);
        assert!(out.contains("no data"));
    }
}
