//! # talus-experiments — figure and table regeneration
//!
//! One driver per table/figure of the paper (see DESIGN.md §4 for the
//! experiment index). Each driver measures the relevant configurations on
//! the synthetic workload substrate, writes a CSV into `results/`, and
//! prints an ASCII rendition plus a shape summary to stdout.
//!
//! ## Scale
//!
//! The paper runs 10-billion-instruction SPEC slices against caches up to
//! 72 MB. The default **quick** scale shrinks every working set (and the
//! cache sizes swept) by 16× and simulates fewer accesses; since LRU/RRIP
//! behaviour depends on the *ratio* of working set to cache size, curve
//! shapes — cliffs, plateaus, crossovers — are preserved, and the x-axes
//! are relabelled back to paper megabytes. `--full` runs at paper scale.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chart;
pub mod figs;
pub mod sweep;

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Global experiment scale.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Multiplier applied to every profile footprint and cache size.
    pub footprint: f64,
    /// Accesses simulated per sweep point (after warmup).
    pub accesses: u64,
    /// Warmup accesses per sweep point (excluded from statistics).
    pub warmup: u64,
    /// Mixes for Fig. 12.
    pub mixes: usize,
    /// Fixed work per app (instructions) for multi-programmed runs.
    pub work_instructions: f64,
    /// Whether this is the quick configuration.
    pub quick: bool,
}

impl Scale {
    /// Quick scale: 16× smaller footprints, minutes for the full suite.
    pub fn quick() -> Self {
        Scale {
            footprint: 1.0 / 16.0,
            accesses: 300_000,
            warmup: 150_000,
            mixes: 12,
            work_instructions: 8e6,
            quick: true,
        }
    }

    /// Paper scale (hours).
    pub fn full() -> Self {
        Scale {
            footprint: 1.0,
            accesses: 20_000_000,
            warmup: 10_000_000,
            mixes: 100,
            work_instructions: 1e9,
            quick: false,
        }
    }

    /// Converts a paper-scale megabyte figure to simulated lines.
    pub fn mb_to_lines(&self, paper_mb: f64) -> u64 {
        talus_sim::mb_to_lines(paper_mb * self.footprint).max(16)
    }

    /// Converts simulated lines back to paper-scale megabytes for axes.
    pub fn lines_to_paper_mb(&self, lines: u64) -> f64 {
        talus_sim::lines_to_mb(lines) / self.footprint
    }
}

/// Where result CSVs are written.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    fs::create_dir_all(&dir).expect("can create results directory");
    dir
}

/// Writes a CSV file with a header row.
///
/// # Panics
///
/// Panics on I/O errors (experiments are developer tools).
pub fn write_csv(path: &Path, header: &str, rows: &[Vec<String>]) {
    let mut out = String::with_capacity(rows.len() * 32 + header.len() + 1);
    out.push_str(header);
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    let mut f = fs::File::create(path).expect("can create CSV");
    f.write_all(out.as_bytes()).expect("can write CSV");
    println!("  wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_roundtrips_sizes() {
        let s = Scale::quick();
        let lines = s.mb_to_lines(32.0);
        assert!((s.lines_to_paper_mb(lines) - 32.0).abs() < 0.01);
        // 32 MB at 1/16 scale = 2 MB = 32768 lines.
        assert_eq!(lines, 32768);
    }

    #[test]
    fn full_scale_is_identity() {
        let s = Scale::full();
        assert_eq!(s.mb_to_lines(1.0), 16384);
    }

    #[test]
    fn tiny_sizes_are_floored() {
        let s = Scale::quick();
        assert!(s.mb_to_lines(0.0001) >= 16);
    }
}
