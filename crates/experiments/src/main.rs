//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p talus-experiments --release -- all
//! cargo run -p talus-experiments --release -- fig1 fig12 --full
//! ```

use std::time::Instant;
use talus_experiments::{figs, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let names: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    if names.is_empty() {
        eprintln!(
            "usage: experiments [--full] <all | {}>",
            figs::ALL.join(" | ")
        );
        std::process::exit(2);
    }
    let scale = if full { Scale::full() } else { Scale::quick() };
    println!(
        "Talus reproduction experiments — {} scale (footprints x{:.3}, {} accesses/point)\n",
        if full { "FULL" } else { "quick" },
        scale.footprint,
        scale.accesses
    );
    let list: Vec<&str> = if names == ["all"] {
        figs::ALL.to_vec()
    } else {
        names
    };
    let total = Instant::now();
    for name in list {
        let t = Instant::now();
        if !figs::run(name, &scale) {
            eprintln!(
                "unknown experiment: {name} (known: all {})",
                figs::ALL.join(" ")
            );
            std::process::exit(2);
        }
        println!("  [{name} done in {:.1}s]\n", t.elapsed().as_secs_f64());
    }
    println!("all done in {:.1}s", total.elapsed().as_secs_f64());
}
