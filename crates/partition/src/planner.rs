//! The shared planning path: convexify, allocate, shadow-plan.
//!
//! Every consumer of Talus — the offline experiment drivers, the 8-core
//! simulated system, and the online reconfiguration service — performs the
//! same three steps each reconfiguration (paper §VI-A):
//!
//! 1. **Pre-process**: replace each tenant's miss curve by its lower
//!    convex hull, so the allocator never sees a cliff;
//! 2. **Allocate**: divide the cache's capacity across tenants with an
//!    [`AllocPolicy`] (on convex curves the trivial hill climb is optimal);
//! 3. **Post-process**: for each tenant, turn its allocation into a
//!    Talus shadow-partition configuration with
//!    [`talus_core::plan_with_hull`].
//!
//! [`Planner`] packages those steps behind one call so all layers share
//! one code path — a plan computed online is bit-for-bit the plan the
//! offline tools would compute from the same curves.
//!
//! ```
//! use talus_core::MissCurve;
//! use talus_partition::Planner;
//!
//! // Two tenants: a cliff at 256 lines and a gentle convex decay.
//! let cliff = MissCurve::from_samples(
//!     &[0.0, 128.0, 256.0, 512.0],
//!     &[10.0, 10.0, 1.0, 1.0],
//! )?;
//! let convex = MissCurve::from_samples(
//!     &[0.0, 128.0, 256.0, 512.0],
//!     &[6.0, 3.0, 2.0, 1.5],
//! )?;
//!
//! let planner = Planner::new(32);
//! let plan = planner.plan(&[cliff, convex], 384, 0)?;
//!
//! // Capacity is fully spent, in grains.
//! assert_eq!(plan.allocations().iter().sum::<u64>(), 384);
//! // Each tenant gets a Talus plan at its allocated size.
//! assert_eq!(plan.tenants.len(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::{fair, hill_climb, imbalanced, lookahead};
use talus_core::{plan_with_hull, MissCurve, PlanError, TalusOptions, TalusPlan};

/// Which algorithm divides capacity across tenants.
///
/// These are the policies of the paper's §VII-D scheme roster; the
/// variants dispatch to the crate's free functions ([`hill_climb`],
/// [`lookahead`], [`fair`], [`imbalanced`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllocPolicy {
    /// Greedy marginal-utility hill climbing (optimal on convex curves).
    Hill,
    /// UCP Lookahead.
    Lookahead,
    /// Equal allocations.
    Fair,
    /// Imbalanced partitioning (Pan & Pai): fund one favored partition's
    /// cliff and rotate the favored slot across rounds.
    Imbalanced,
}

impl AllocPolicy {
    /// Runs the policy. `round` selects the favored partition for
    /// [`AllocPolicy::Imbalanced`] (rotated round-robin) and is ignored by
    /// the other policies.
    ///
    /// # Panics
    ///
    /// Panics if `curves` is empty or `grain` is zero (as the underlying
    /// algorithms do).
    pub fn allocate(self, curves: &[MissCurve], capacity: u64, grain: u64, round: u64) -> Vec<u64> {
        match self {
            AllocPolicy::Hill => hill_climb(curves, capacity, grain),
            AllocPolicy::Lookahead => lookahead(curves, capacity, grain),
            AllocPolicy::Fair => fair(curves.len(), capacity, grain),
            AllocPolicy::Imbalanced => {
                imbalanced(curves, capacity, grain, (round as usize) % curves.len())
            }
        }
    }

    /// Display label matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            AllocPolicy::Hill => "Hill",
            AllocPolicy::Lookahead => "Lookahead",
            AllocPolicy::Fair => "Fair",
            AllocPolicy::Imbalanced => "Imbalanced",
        }
    }
}

/// One tenant's share of a [`CachePlan`].
#[derive(Debug, Clone, PartialEq)]
pub struct TenantPlan {
    /// Lines allocated to this tenant (a multiple of the planner's grain).
    pub capacity: u64,
    /// The Talus shadow-partition configuration at that size.
    pub plan: TalusPlan,
}

/// A complete plan for one cache: per-tenant allocations and shadow
/// configurations, as produced by [`Planner::plan`].
#[derive(Debug, Clone, PartialEq)]
pub struct CachePlan {
    /// The reconfiguration round this plan was computed in (drives the
    /// favored-slot rotation of [`AllocPolicy::Imbalanced`]).
    pub round: u64,
    /// One entry per tenant, in input order.
    pub tenants: Vec<TenantPlan>,
}

impl CachePlan {
    /// Per-tenant allocated sizes, in input order.
    pub fn allocations(&self) -> Vec<u64> {
        self.tenants.iter().map(|t| t.capacity).collect()
    }

    /// Total miss metric the plan expects (sum of hull values at the
    /// allocated sizes) — comparable across candidate plans for the same
    /// curves.
    pub fn expected_total_misses(&self) -> f64 {
        self.tenants.iter().map(|t| t.plan.expected_misses()).sum()
    }
}

/// The shared convexify → allocate → shadow-plan pipeline.
///
/// Construct once per cache (it is `Copy`-cheap to rebuild) and call
/// [`plan`](Planner::plan) each reconfiguration. By default curves are
/// convexified before allocation — Talus's §VI-A pre-processing; disable
/// with [`raw_curves`](Planner::raw_curves) to model a non-Talus
/// partitioned system (the paper's "X/LRU" baselines).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Planner {
    /// Allocation granularity in lines.
    pub grain: u64,
    /// Shadow-planning options (safety margin, vertex tolerance).
    pub options: TalusOptions,
    /// Capacity-division policy.
    pub policy: AllocPolicy,
    /// Whether the allocator sees convex hulls (Talus) or raw curves.
    pub convexify: bool,
}

impl Planner {
    /// A Talus planner with the paper's defaults: hill climbing on convex
    /// hulls with a 5% safety margin.
    pub fn new(grain: u64) -> Self {
        Planner {
            grain,
            options: TalusOptions::new(),
            policy: AllocPolicy::Hill,
            convexify: true,
        }
    }

    /// Replaces the allocation policy.
    pub fn with_policy(mut self, policy: AllocPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the shadow-planning options.
    pub fn with_options(mut self, options: TalusOptions) -> Self {
        self.options = options;
        self
    }

    /// Hands the allocator the raw (possibly cliffy) curves instead of
    /// their hulls — the non-Talus baseline configuration.
    pub fn raw_curves(mut self) -> Self {
        self.convexify = false;
        self
    }

    /// Steps 1–2 only: divide `capacity` across `curves`, convexifying
    /// first unless [`raw_curves`](Planner::raw_curves) was set. Returns
    /// per-tenant sizes in lines (multiples of the grain).
    ///
    /// Used by systems whose hardware layer re-derives shadow
    /// configurations itself (e.g. `TalusCache` in `talus-sim`).
    ///
    /// # Panics
    ///
    /// Panics if `curves` is empty or the grain is zero.
    pub fn allocate(&self, curves: &[MissCurve], capacity: u64, round: u64) -> Vec<u64> {
        if self.convexify {
            let hulls: Vec<MissCurve> = curves.iter().map(|c| c.convex_hull().to_curve()).collect();
            self.policy.allocate(&hulls, capacity, self.grain, round)
        } else {
            self.policy.allocate(curves, capacity, self.grain, round)
        }
    }

    /// The full pipeline: allocate `capacity` across `curves`, then plan a
    /// Talus shadow configuration for every tenant at its allocated size.
    ///
    /// # Errors
    ///
    /// Returns the first [`PlanError`] hit while shadow-planning a tenant
    /// (e.g. an allocation below the curve's monitored domain).
    ///
    /// # Panics
    ///
    /// Panics if `curves` is empty or the grain is zero.
    pub fn plan(
        &self,
        curves: &[MissCurve],
        capacity: u64,
        round: u64,
    ) -> Result<CachePlan, PlanError> {
        let hulls: Vec<talus_core::ConvexHull> = curves.iter().map(|c| c.convex_hull()).collect();
        let sizes = if self.convexify {
            let hull_curves: Vec<MissCurve> = hulls.iter().map(|h| h.to_curve()).collect();
            self.policy
                .allocate(&hull_curves, capacity, self.grain, round)
        } else {
            self.policy.allocate(curves, capacity, self.grain, round)
        };
        let tenants = hulls
            .iter()
            .zip(&sizes)
            .map(|(hull, &size)| {
                Ok(TenantPlan {
                    capacity: size,
                    plan: plan_with_hull(hull, size as f64, self.options)?,
                })
            })
            .collect::<Result<Vec<_>, PlanError>>()?;
        Ok(CachePlan { round, tenants })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::total_misses;

    fn cliff(at: f64, high: f64, low: f64) -> MissCurve {
        let sizes: Vec<f64> = (0..=16).map(|i| i as f64 * 64.0).collect();
        let misses: Vec<f64> = sizes
            .iter()
            .map(|&s| if s < at { high } else { low })
            .collect();
        MissCurve::from_samples(&sizes, &misses).unwrap()
    }

    fn convex(knee: f64, floor: f64) -> MissCurve {
        let sizes: Vec<f64> = (0..=16).map(|i| i as f64 * 64.0).collect();
        let misses: Vec<f64> = sizes
            .iter()
            .map(|&s| floor + 30.0 * (-s / knee).exp())
            .collect();
        MissCurve::from_samples(&sizes, &misses).unwrap()
    }

    #[test]
    fn plan_matches_manual_pipeline() {
        // The planner must be exactly hulls → hill_climb → plan_with_hull.
        let curves = vec![cliff(512.0, 12.0, 1.0), convex(300.0, 0.5)];
        let planner = Planner::new(64);
        let plan = planner.plan(&curves, 1024, 0).unwrap();

        let hulls: Vec<MissCurve> = curves.iter().map(|c| c.convex_hull().to_curve()).collect();
        let sizes = hill_climb(&hulls, 1024, 64);
        assert_eq!(plan.allocations(), sizes);
        for (i, t) in plan.tenants.iter().enumerate() {
            let expect = plan_with_hull(
                &curves[i].convex_hull(),
                sizes[i] as f64,
                TalusOptions::new(),
            )
            .unwrap();
            assert_eq!(t.plan, expect, "tenant {i}");
        }
    }

    #[test]
    fn convexified_hill_beats_raw_hill_on_cliffs() {
        // Two identical cliffs, capacity for one: raw hill climbing stalls,
        // hull-based hill climbing matches what lookahead finds.
        let curves = vec![cliff(512.0, 10.0, 1.0), cliff(512.0, 10.0, 1.0)];
        let talus = Planner::new(64).plan(&curves, 512, 0).unwrap();
        let raw = Planner::new(64).raw_curves().allocate(&curves, 512, 0);
        let hulls: Vec<MissCurve> = curves.iter().map(|c| c.convex_hull().to_curve()).collect();
        assert!(
            total_misses(&hulls, &talus.allocations()) <= total_misses(&hulls, &raw) + 1e-9,
            "hull-aware allocation can't lose on the hulls"
        );
        // And the expected total tracks the hull values.
        let manual: f64 = talus
            .tenants
            .iter()
            .zip(&curves)
            .map(|(t, c)| c.convex_hull().value_at(t.capacity as f64))
            .sum();
        assert!((talus.expected_total_misses() - manual).abs() < 1e-9);
    }

    #[test]
    fn imbalanced_rotates_with_round() {
        // Imbalanced is the pre-Talus baseline: it sees raw cliffy curves
        // (on hulls its cliff-funding step has nothing to fund).
        let curves = vec![cliff(512.0, 10.0, 1.0), cliff(512.0, 10.0, 1.0)];
        let planner = Planner::new(64)
            .with_policy(AllocPolicy::Imbalanced)
            .raw_curves();
        let r0 = planner.plan(&curves, 768, 0).unwrap();
        let r1 = planner.plan(&curves, 768, 1).unwrap();
        assert!(r0.allocations()[0] > r0.allocations()[1]);
        assert!(r1.allocations()[1] > r1.allocations()[0]);
        assert_eq!(r0.round, 0);
        assert_eq!(r1.round, 1);
    }

    #[test]
    fn fair_policy_splits_evenly() {
        let curves = vec![convex(100.0, 1.0); 4];
        let plan = Planner::new(64)
            .with_policy(AllocPolicy::Fair)
            .plan(&curves, 1024, 0)
            .unwrap();
        assert_eq!(plan.allocations(), vec![256; 4]);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(AllocPolicy::Hill.label(), "Hill");
        assert_eq!(AllocPolicy::Lookahead.label(), "Lookahead");
        assert_eq!(AllocPolicy::Fair.label(), "Fair");
        assert_eq!(AllocPolicy::Imbalanced.label(), "Imbalanced");
    }

    #[test]
    fn shadow_plans_appear_inside_bridges() {
        // One tenant, capacity parked mid-plateau: the plan must be a
        // shadow split bridging the cliff.
        let curves = vec![cliff(512.0, 10.0, 1.0)];
        let plan = Planner::new(64).plan(&curves, 256, 0).unwrap();
        let cfg = plan.tenants[0]
            .plan
            .shadow()
            .expect("mid-plateau sizes shadow-partition");
        assert!(cfg.rho > 0.0 && cfg.rho < 1.0);
    }
}
