//! # talus-partition — allocation algorithms over miss curves
//!
//! The algorithms the paper compares in §VII-D, all minimising total
//! misses `Σᵢ mᵢ(sᵢ)` subject to `Σᵢ sᵢ ≤ capacity`:
//!
//! - [`hill_climb`]: the trivial linear-time greedy — give the next grain
//!   of capacity to whoever benefits most. **Optimal on convex curves**,
//!   and therefore optimal under Talus; stuck in local optima on cliffs.
//! - [`lookahead`]: Qureshi & Patt's UCP Lookahead — quadratic, considers
//!   multi-grain extensions so it can leap across plateaus, but is forced
//!   into all-or-nothing allocations at cliffs.
//! - [`fair`]: equal allocations — what a fairness-first system wants;
//!   only effective when curves are convex (paper §II-D).
//! - [`optimal_dp`]: exact dynamic program over the discretised problem —
//!   the oracle the others are measured against in tests (exponential-ish
//!   state but pseudo-polynomial: `O(N·C²)` in capacity grains).
//!
//! The [`planner`] module packages these behind [`Planner`] — the shared
//! convexify → allocate → shadow-plan pipeline that the simulated 8-core
//! system (`talus-multicore`) and the online reconfiguration service
//! (`talus-serve`) both run, so online plans provably match offline ones.
//!
//! All functions take curves in arbitrary (but mutually comparable) linear
//! miss units — MPKI or misses-per-access × access weight — with sizes in
//! lines, and allocate in multiples of `grain` lines.
//!
//! ```
//! use talus_core::MissCurve;
//! use talus_partition::{hill_climb, total_misses};
//! let a = MissCurve::from_samples(&[0.0, 64.0, 128.0], &[10.0, 2.0, 1.0])?;
//! let b = MissCurve::from_samples(&[0.0, 64.0, 128.0], &[4.0, 3.0, 2.9])?;
//! // App a benefits much more from capacity: hill climbing favours it.
//! let alloc = hill_climb(&[a.clone(), b.clone()], 128, 32);
//! assert!(alloc[0] > alloc[1]);
//! assert_eq!(alloc.iter().sum::<u64>(), 128);
//! # Ok::<(), talus_core::CurveError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod planner;

pub use planner::{AllocPolicy, CachePlan, Planner, TenantPlan};

use talus_core::MissCurve;

/// Total misses of an allocation: `Σᵢ curves[i](alloc[i])`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn total_misses(curves: &[MissCurve], alloc: &[u64]) -> f64 {
    assert_eq!(curves.len(), alloc.len(), "one allocation per curve");
    curves
        .iter()
        .zip(alloc)
        .map(|(c, &s)| c.value_at(s as f64))
        .sum()
}

fn check_inputs(curves: &[MissCurve], capacity: u64, grain: u64) -> u64 {
    assert!(!curves.is_empty(), "need at least one partition");
    assert!(grain > 0, "allocation grain must be positive");
    capacity / grain
}

/// Hill climbing: repeatedly grant one grain to the partition with the
/// largest marginal miss reduction. Linear time in capacity grains.
///
/// On convex curves the greedy choice is globally optimal (the classic
/// result the paper leans on); on non-convex curves it stalls at plateaus
/// — which is exactly what Fig. 12's "Hill" baseline shows.
///
/// Capacity that no partition benefits from (all marginal utilities zero)
/// is still handed out round-robin, mirroring hardware where ways cannot
/// be left unpowered.
///
/// # Panics
///
/// Panics if `curves` is empty or `grain` is zero.
pub fn hill_climb(curves: &[MissCurve], capacity: u64, grain: u64) -> Vec<u64> {
    let grains = check_inputs(curves, capacity, grain);
    let n = curves.len();
    let mut alloc = vec![0u64; n];
    for _ in 0..grains {
        let mut best = 0usize;
        let mut best_gain = f64::NEG_INFINITY;
        for (i, c) in curves.iter().enumerate() {
            let here = c.value_at(alloc[i] as f64);
            let there = c.value_at((alloc[i] + grain) as f64);
            let gain = here - there;
            if gain > best_gain {
                best_gain = gain;
                best = i;
            }
        }
        // Tie-break zero-gain grants round-robin so plateaus don't dogpile
        // partition 0.
        if best_gain <= 0.0 {
            let min = *alloc.iter().min().expect("non-empty");
            best = alloc.iter().position(|&a| a == min).expect("non-empty");
        }
        alloc[best] += grain;
    }
    alloc
}

/// UCP Lookahead (Qureshi & Patt, MICRO 2006): at each step, for every
/// partition find the extension (any number of grains) with the highest
/// *utility per grain*, grant the winner its whole extension, repeat.
///
/// Looking ahead lets it cross plateaus that trap [`hill_climb`], at
/// quadratic cost — and at the price of all-or-nothing behaviour on
/// cliffs (the fairness failure the paper's Fig. 13 shows).
///
/// # Panics
///
/// Panics if `curves` is empty or `grain` is zero.
pub fn lookahead(curves: &[MissCurve], capacity: u64, grain: u64) -> Vec<u64> {
    let mut grains_left = check_inputs(curves, capacity, grain);
    let n = curves.len();
    let mut alloc = vec![0u64; n];
    while grains_left > 0 {
        let mut best: Option<(usize, u64, f64)> = None; // (who, grains, utility/grain)
        for (i, c) in curves.iter().enumerate() {
            let here = c.value_at(alloc[i] as f64);
            for k in 1..=grains_left {
                let there = c.value_at((alloc[i] + k * grain) as f64);
                let per_grain = (here - there) / k as f64;
                if best.is_none_or(|(_, _, b)| per_grain > b) {
                    best = Some((i, k, per_grain));
                }
            }
        }
        let (who, k, util) = best.expect("grains_left > 0 and curves non-empty");
        if util <= 0.0 {
            // Nobody benefits: hand the rest out evenly (round-robin).
            let mut i = 0;
            while grains_left > 0 {
                alloc[i % n] += grain;
                grains_left -= 1;
                i += 1;
            }
            break;
        }
        alloc[who] += k * grain;
        grains_left -= k;
    }
    alloc
}

/// Equal allocations: `capacity / n` each (rounded down to grains, with
/// leftover grains handed out from partition 0).
///
/// # Panics
///
/// Panics if `curves_or_n` is zero or `grain` is zero.
pub fn fair(n: usize, capacity: u64, grain: u64) -> Vec<u64> {
    assert!(n > 0, "need at least one partition");
    assert!(grain > 0, "allocation grain must be positive");
    let grains = capacity / grain;
    let per = grains / n as u64;
    let mut extra = grains % n as u64;
    (0..n)
        .map(|_| {
            let bonus = if extra > 0 {
                extra -= 1;
                1
            } else {
                0
            };
            (per + bonus) * grain
        })
        .collect()
}

/// Imbalanced partitioning (Pan & Pai, MICRO-46 2013): give one *favored*
/// partition the allocation with the best utility-per-grain (typically
/// enough to cross its cliff) and split the remainder evenly among the
/// others.
///
/// The paper's §II-D and §VII-D cite this as the pre-Talus answer to
/// cliffs in homogeneous workloads: since no fair split can cross
/// anyone's cliff, speed up one thread at a time and *time-multiplex* the
/// favored slot across intervals for long-run fairness. Talus makes this
/// machinery unnecessary — with convex curves, plain equal allocations
/// are both fair and utility-maximal. The `imbalanced` experiment and
/// Fig. 13 quantify that comparison; rotate `favored` across
/// reconfiguration intervals to reproduce the time-multiplexing.
///
/// # Examples
///
/// ```
/// use talus_core::MissCurve;
/// use talus_partition::imbalanced;
/// // Two identical cliff apps needing 512 lines; capacity for one.
/// let cliff = MissCurve::from_samples(
///     &[0.0, 256.0, 512.0, 1024.0],
///     &[10.0, 10.0, 1.0, 1.0],
/// )?;
/// let alloc = imbalanced(&[cliff.clone(), cliff], 640, 64, 0);
/// assert!(alloc[0] >= 512); // the favored app crosses its cliff
/// # Ok::<(), talus_core::CurveError>(())
/// ```
///
/// # Panics
///
/// Panics if `curves` is empty, `grain` is zero, or `favored` is out of
/// range.
pub fn imbalanced(curves: &[MissCurve], capacity: u64, grain: u64, favored: usize) -> Vec<u64> {
    let grains = check_inputs(curves, capacity, grain);
    let n = curves.len();
    assert!(
        favored < n,
        "favored partition {favored} out of range (n = {n})"
    );
    let mut alloc = vec![0u64; n];
    if grains == 0 {
        return alloc;
    }
    // The favored partition takes its best extension (lookahead's first
    // step from zero): the size with the highest utility per grain.
    let c = &curves[favored];
    let here = c.value_at(0.0);
    let mut best_k = 1u64;
    let mut best_per_grain = f64::NEG_INFINITY;
    for k in 1..=grains {
        let per_grain = (here - c.value_at((k * grain) as f64)) / k as f64;
        if per_grain > best_per_grain {
            best_per_grain = per_grain;
            best_k = k;
        }
    }
    alloc[favored] = best_k * grain;
    // Everyone else splits the leftovers evenly. Leftover grains are
    // handed out in rotation order starting after the favored index, so a
    // full favored-slot rotation gives every partition the same total
    // (the time-multiplexed fairness the scheme relies on).
    let rest = grains - best_k;
    if n > 1 {
        let others = n as u64 - 1;
        let per = rest / others;
        let mut extra = rest % others;
        for step in 1..n {
            let i = (favored + step) % n;
            let bonus = if extra > 0 {
                extra -= 1;
                1
            } else {
                0
            };
            alloc[i] = (per + bonus) * grain;
        }
    } else {
        alloc[favored] = grains * grain;
    }
    alloc
}

/// Exact optimum of the discretised problem by dynamic programming:
/// `O(N · C²)` in capacity grains. Used as the oracle in tests and to
/// quantify how far heuristics fall from optimal (the NP-completeness the
/// paper cites concerns richer formulations; the discrete single-resource
/// problem is pseudo-polynomial).
///
/// # Panics
///
/// Panics if `curves` is empty or `grain` is zero.
pub fn optimal_dp(curves: &[MissCurve], capacity: u64, grain: u64) -> Vec<u64> {
    let grains = check_inputs(curves, capacity, grain) as usize;
    let n = curves.len();
    // dp[c] = best total misses using partitions 0..=i with c grains.
    let mut dp = vec![0.0f64; grains + 1];
    let mut choice = vec![vec![0u32; grains + 1]; n];
    // Initialise with partition 0 alone.
    for c in 0..=grains {
        dp[c] = curves[0].value_at((c as u64 * grain) as f64);
        choice[0][c] = c as u32;
    }
    for i in 1..n {
        let mut next = vec![f64::INFINITY; grains + 1];
        for c in 0..=grains {
            for k in 0..=c {
                let total = dp[c - k] + curves[i].value_at((k as u64 * grain) as f64);
                if total < next[c] {
                    next[c] = total;
                    choice[i][c] = k as u32;
                }
            }
        }
        dp = next;
    }
    // Backtrack. The optimum may leave capacity unused only when curves are
    // non-increasing; spend everything for comparability.
    let mut alloc = vec![0u64; n];
    let mut c = grains;
    for i in (1..n).rev() {
        let k = choice[i][c] as usize;
        alloc[i] = (k as u64) * grain;
        c -= k;
    }
    alloc[0] = (c as u64) * grain;
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn convex(knee: f64, floor: f64) -> MissCurve {
        // Exponential-ish decay sampled on a grid: strictly convex.
        let sizes: Vec<f64> = (0..=16).map(|i| i as f64 * 64.0).collect();
        let misses: Vec<f64> = sizes
            .iter()
            .map(|&s| floor + 30.0 * (-s / knee).exp())
            .collect();
        MissCurve::from_samples(&sizes, &misses).unwrap()
    }

    fn cliff(at: f64, high: f64, low: f64) -> MissCurve {
        // Flat at `high` until `at`, then `low` (libquantum shape).
        let sizes: Vec<f64> = (0..=16).map(|i| i as f64 * 64.0).collect();
        let misses: Vec<f64> = sizes
            .iter()
            .map(|&s| if s < at { high } else { low })
            .collect();
        MissCurve::from_samples(&sizes, &misses).unwrap()
    }

    #[test]
    fn hill_climb_optimal_on_convex_curves() {
        let curves = vec![convex(200.0, 1.0), convex(400.0, 0.5), convex(100.0, 2.0)];
        let hc = hill_climb(&curves, 1024, 64);
        let dp = optimal_dp(&curves, 1024, 64);
        let m_hc = total_misses(&curves, &hc);
        let m_dp = total_misses(&curves, &dp);
        assert!(
            (m_hc - m_dp).abs() < 1e-9,
            "hill climbing should be optimal on convex curves: {m_hc} vs {m_dp}"
        );
    }

    #[test]
    fn hill_climb_stalls_on_cliffs() {
        // Two cliff apps, each needing 512 lines; capacity for exactly one.
        let curves = vec![cliff(512.0, 10.0, 1.0), cliff(512.0, 10.0, 1.0)];
        let hc = hill_climb(&curves, 512, 64);
        let la = lookahead(&curves, 512, 64);
        // Hill climbing sees zero marginal gain everywhere and splits
        // evenly — nobody crosses their cliff.
        assert!(
            total_misses(&curves, &hc) > total_misses(&curves, &la),
            "hill climbing should lose to lookahead on cliffs"
        );
        // Lookahead gives everything to one app.
        assert!(
            la.contains(&512) && la.contains(&0),
            "lookahead alloc: {la:?}"
        );
    }

    #[test]
    fn lookahead_crosses_plateaus() {
        // One cliff app and one barely-benefiting app.
        let curves = vec![cliff(768.0, 20.0, 0.5), convex(50.0, 5.0)];
        let la = lookahead(&curves, 1024, 64);
        assert!(la[0] >= 768, "lookahead should fund the cliff: {la:?}");
    }

    #[test]
    fn lookahead_matches_dp_on_paper_style_mixes() {
        let curves = vec![
            cliff(512.0, 15.0, 2.0),
            convex(300.0, 1.0),
            cliff(256.0, 8.0, 0.2),
            convex(150.0, 0.5),
        ];
        let la = lookahead(&curves, 1024, 64);
        let dp = optimal_dp(&curves, 1024, 64);
        let gap = total_misses(&curves, &la) - total_misses(&curves, &dp);
        // Lookahead is a good heuristic: within a few percent of optimal.
        assert!(gap <= 0.05 * total_misses(&curves, &dp) + 1e-9, "gap {gap}");
    }

    #[test]
    fn hill_climb_on_hulls_matches_dp_on_hulls() {
        // Talus's pitch: convexify first, then trivial hill climbing is
        // optimal. Compare on the *hulls*.
        let raw = [
            cliff(512.0, 15.0, 2.0),
            cliff(320.0, 9.0, 1.0),
            convex(200.0, 1.0),
        ];
        let hulls: Vec<MissCurve> = raw.iter().map(|c| c.convex_hull().to_curve()).collect();
        let hc = hill_climb(&hulls, 1024, 64);
        let dp = optimal_dp(&hulls, 1024, 64);
        let diff = total_misses(&hulls, &hc) - total_misses(&hulls, &dp);
        assert!(
            diff.abs() < 1e-9,
            "hill climb on hulls must be optimal: {diff}"
        );
    }

    #[test]
    fn allocations_respect_capacity_and_grain() {
        let curves = vec![convex(100.0, 1.0), cliff(512.0, 9.0, 1.0)];
        for alloc in [
            hill_climb(&curves, 960, 64),
            lookahead(&curves, 960, 64),
            optimal_dp(&curves, 960, 64),
            fair(2, 960, 64),
        ] {
            assert_eq!(alloc.iter().sum::<u64>(), 960, "{alloc:?}");
            assert!(alloc.iter().all(|a| a % 64 == 0), "{alloc:?}");
        }
    }

    #[test]
    fn fair_splits_evenly_with_remainder() {
        assert_eq!(fair(3, 960, 64), vec![320, 320, 320]);
        // 10 grains across 3: 4,3,3 grains.
        assert_eq!(fair(3, 640, 64), vec![256, 192, 192]);
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn fair_rejects_zero_partitions() {
        fair(0, 100, 10);
    }

    #[test]
    fn single_partition_gets_everything() {
        let curves = vec![convex(100.0, 1.0)];
        assert_eq!(hill_climb(&curves, 512, 64), vec![512]);
        assert_eq!(lookahead(&curves, 512, 64), vec![512]);
        assert_eq!(optimal_dp(&curves, 512, 64), vec![512]);
    }

    #[test]
    fn dp_beats_or_ties_everyone() {
        let curves = vec![
            cliff(448.0, 12.0, 1.5),
            convex(250.0, 0.8),
            cliff(128.0, 5.0, 0.3),
        ];
        let dp = total_misses(&curves, &optimal_dp(&curves, 768, 64));
        for alloc in [
            hill_climb(&curves, 768, 64),
            lookahead(&curves, 768, 64),
            fair(3, 768, 64),
        ] {
            assert!(total_misses(&curves, &alloc) >= dp - 1e-9);
        }
    }

    #[test]
    fn zero_capacity_allocates_nothing() {
        let curves = vec![convex(100.0, 1.0), convex(50.0, 1.0)];
        assert_eq!(hill_climb(&curves, 0, 64), vec![0, 0]);
        assert_eq!(lookahead(&curves, 0, 64), vec![0, 0]);
        assert_eq!(optimal_dp(&curves, 0, 64), vec![0, 0]);
        assert_eq!(imbalanced(&curves, 0, 64, 0), vec![0, 0]);
    }

    #[test]
    fn imbalanced_funds_the_favored_cliff() {
        // Three identical cliff apps needing 512 lines; 1024 available.
        // Fair gives everyone 341 (nobody crosses); imbalanced funds the
        // favored app's cliff and splits the rest.
        let curves = vec![
            cliff(512.0, 10.0, 1.0),
            cliff(512.0, 10.0, 1.0),
            cliff(512.0, 10.0, 1.0),
        ];
        let alloc = imbalanced(&curves, 1024, 64, 1);
        assert!(alloc[1] >= 512, "favored app crosses its cliff: {alloc:?}");
        assert_eq!(alloc[0], alloc[2], "others split evenly: {alloc:?}");
        assert!(
            total_misses(&curves, &alloc) < total_misses(&curves, &fair(3, 1024, 64)),
            "imbalanced beats fair on homogeneous cliffs"
        );
    }

    #[test]
    fn imbalanced_rotation_is_fair_over_a_full_cycle() {
        let curves = vec![cliff(512.0, 10.0, 1.0), cliff(512.0, 10.0, 1.0)];
        let mut totals = vec![0u64; 2];
        for round in 0..2 {
            let alloc = imbalanced(&curves, 768, 64, round % 2);
            for (t, a) in totals.iter_mut().zip(&alloc) {
                *t += a;
            }
        }
        assert_eq!(
            totals[0], totals[1],
            "time-multiplexing evens out: {totals:?}"
        );
    }

    #[test]
    fn imbalanced_single_partition_gets_everything() {
        let curves = vec![cliff(512.0, 10.0, 1.0)];
        assert_eq!(imbalanced(&curves, 1024, 64, 0), vec![1024]);
    }

    #[test]
    fn imbalanced_respects_capacity_and_grain() {
        let curves = vec![
            cliff(448.0, 12.0, 1.5),
            convex(250.0, 0.8),
            convex(100.0, 2.0),
        ];
        let alloc = imbalanced(&curves, 960, 64, 0);
        assert!(alloc.iter().sum::<u64>() <= 960);
        assert!(alloc.iter().all(|a| a % 64 == 0), "{alloc:?}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn imbalanced_rejects_bad_favored_index() {
        let curves = vec![convex(100.0, 1.0)];
        imbalanced(&curves, 100, 10, 3);
    }
}
