//! Property tests for the allocation algorithms.

use proptest::prelude::*;
use talus_core::MissCurve;
use talus_partition::{fair, hill_climb, imbalanced, lookahead, optimal_dp, total_misses};

/// Random monotone-ish miss curve on a 0..=16 × 64-line grid.
fn arb_curve() -> impl Strategy<Value = MissCurve> {
    any::<u64>().prop_map(|seed| {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut m = 10.0 + (next() % 40) as f64;
        let sizes: Vec<f64> = (0..=16).map(|i| i as f64 * 64.0).collect();
        let misses: Vec<f64> = sizes
            .iter()
            .map(|_| {
                let v = m;
                m = (m - (next() % 12) as f64).max(0.0);
                v
            })
            .collect();
        MissCurve::from_samples(&sizes, &misses).expect("valid curve")
    })
}

fn arb_curves() -> impl Strategy<Value = Vec<MissCurve>> {
    proptest::collection::vec(arb_curve(), 1..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_algorithms_spend_exactly_capacity(curves in arb_curves(), grains in 1u64..16) {
        let capacity = grains * 64;
        for alloc in [
            hill_climb(&curves, capacity, 64),
            lookahead(&curves, capacity, 64),
            optimal_dp(&curves, capacity, 64),
            fair(curves.len(), capacity, 64),
        ] {
            prop_assert_eq!(alloc.len(), curves.len());
            prop_assert_eq!(alloc.iter().sum::<u64>(), capacity);
            prop_assert!(alloc.iter().all(|a| a % 64 == 0));
        }
    }

    #[test]
    fn dp_is_a_lower_bound(curves in arb_curves(), grains in 1u64..16) {
        let capacity = grains * 64;
        let dp = total_misses(&curves, &optimal_dp(&curves, capacity, 64));
        for alloc in [
            hill_climb(&curves, capacity, 64),
            lookahead(&curves, capacity, 64),
            fair(curves.len(), capacity, 64),
        ] {
            prop_assert!(total_misses(&curves, &alloc) >= dp - 1e-7);
        }
    }

    #[test]
    fn hill_climb_is_optimal_on_hulls(curves in arb_curves(), grains in 1u64..16) {
        // The Talus guarantee: convexify, then greedy == optimal.
        let capacity = grains * 64;
        let hulls: Vec<MissCurve> =
            curves.iter().map(|c| c.convex_hull().to_curve()).collect();
        let hc = total_misses(&hulls, &hill_climb(&hulls, capacity, 64));
        let dp = total_misses(&hulls, &optimal_dp(&hulls, capacity, 64));
        prop_assert!((hc - dp).abs() < 1e-7, "hill {hc} vs dp {dp}");
    }

    #[test]
    fn convexification_never_hurts_the_optimum(curves in arb_curves(), grains in 1u64..16) {
        // Optimal misses evaluated on hulls lower-bound those on the raw
        // curves (hulls minorise the curves pointwise).
        let capacity = grains * 64;
        let hulls: Vec<MissCurve> =
            curves.iter().map(|c| c.convex_hull().to_curve()).collect();
        let dp_raw = total_misses(&curves, &optimal_dp(&curves, capacity, 64));
        let dp_hull = total_misses(&hulls, &optimal_dp(&hulls, capacity, 64));
        prop_assert!(dp_hull <= dp_raw + 1e-7);
    }

    #[test]
    fn imbalanced_respects_capacity_for_any_favored(
        curves in arb_curves(),
        grains in 1u64..16,
        favored_seed in any::<usize>(),
    ) {
        let capacity = grains * 64;
        let favored = favored_seed % curves.len();
        let alloc = imbalanced(&curves, capacity, 64, favored);
        prop_assert_eq!(alloc.len(), curves.len());
        prop_assert!(alloc.iter().sum::<u64>() <= capacity);
        prop_assert!(alloc.iter().all(|a| a % 64 == 0));
        // The favored partition gets at least one grain whenever any exist.
        prop_assert!(alloc[favored] >= 64);
    }

    #[test]
    fn imbalanced_rotation_hands_everyone_the_same_total(
        curve in arb_curve(),
        n in 2usize..6,
        grains in 2u64..16,
    ) {
        // Homogeneous apps + a full rotation cycle = equal cumulative
        // capacity (the time-multiplexed fairness Pan & Pai rely on).
        let curves: Vec<MissCurve> = (0..n).map(|_| curve.clone()).collect();
        let capacity = grains * 64;
        let mut totals = vec![0u64; n];
        for round in 0..n {
            let alloc = imbalanced(&curves, capacity, 64, round);
            for (t, a) in totals.iter_mut().zip(&alloc) {
                *t += a;
            }
        }
        let first = totals[0];
        prop_assert!(totals.iter().all(|&t| t == first), "{totals:?}");
    }

    #[test]
    fn imbalanced_beats_fair_on_homogeneous_cliffs(need in 2u64..14) {
        // Identical cliff apps, capacity for exactly one to cross: the
        // motivating case from §II-D.
        let at = need * 64;
        let sizes: Vec<f64> = (0..=16).map(|i| i as f64 * 64.0).collect();
        let misses: Vec<f64> =
            sizes.iter().map(|&s| if s < at as f64 { 10.0 } else { 1.0 }).collect();
        let curve = MissCurve::from_samples(&sizes, &misses).expect("valid");
        let curves = vec![curve.clone(), curve.clone(), curve];
        let capacity = at + 64; // one can cross, fair split cannot
        if capacity / 3 >= at {
            return Ok(()); // fair also crosses; not the regime of interest
        }
        let im = total_misses(&curves, &imbalanced(&curves, capacity, 64, 0));
        let fa = total_misses(&curves, &fair(3, capacity, 64));
        prop_assert!(im < fa, "imbalanced {im} vs fair {fa}");
    }
}
