//! The partial-failure battery: every scripted fault the
//! [`talus_core::FaultScript`] seam can inject, asserted against the
//! plane's containment contracts.
//!
//! The discipline mirrors the equivalence suites: a faulted plane is
//! always compared against a fault-free twin fed the same operations,
//! and the assertion is *bit-identical* state for everything a fault
//! did not touch — a planner panic loses exactly one cache, a severed
//! connection loses exactly nothing (retries converge), a duplicated
//! batch changes exactly nothing (submission is idempotent), and every
//! degradation shows up in the health report.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use talus_core::{FaultAction, FaultScript, MissCurve, ShardState, StoreHealth};
use talus_serve::{
    CacheId, CacheSpec, PlanSnapshot, RetryPolicy, RpcClient, RpcError, RpcServer, ServeError,
    ServerHandle, ShardedReconfigService,
};
use talus_store::{Store, StoreSink};

/// Wire opcodes faults key on at the `server.handle` site (pinned by
/// the golden bytes in `tests/wire.rs`).
const OP_SUBMIT: u64 = 0x03;
const OP_RUN_EPOCH: u64 = 0x04;
const OP_PING: u64 = 0x06;

/// Random monotone miss curve derived deterministically from a seed —
/// the same family as the equivalence suites, so faulted and fault-free
/// planes receive identical inputs.
fn curve_from_seed(seed: u64) -> MissCurve {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut m = 10.0 + (next() % 40) as f64;
    let sizes: Vec<f64> = (0..=8).map(|i| i as f64 * 64.0).collect();
    let misses: Vec<f64> = sizes
        .iter()
        .map(|_| {
            let v = m;
            m = (m - (next() % 12) as f64).max(0.0);
            v
        })
        .collect();
    MissCurve::from_samples(&sizes, &misses).expect("valid curve")
}

/// Bit-level snapshot equality: the plan, its version, and its update
/// count. (Not the epoch stamp: a retried `RunEpoch` legitimately runs
/// an extra, empty epoch, shifting later stamps without changing any
/// published plan.)
fn assert_same_plan(a: &PlanSnapshot, b: &PlanSnapshot, context: &str) {
    assert_eq!(a.plan, b.plan, "{context}: plans diverge");
    assert_eq!(a.allocations(), b.allocations(), "{context}: allocations");
    assert_eq!(a.version, b.version, "{context}: versions diverge");
    assert_eq!(a.updates, b.updates, "{context}: update counts diverge");
}

fn loopback(service: Arc<ShardedReconfigService>, fault: Option<Arc<FaultScript>>) -> ServerHandle {
    let mut server = RpcServer::bind("127.0.0.1:0", service).expect("bind loopback");
    if let Some(script) = fault {
        server = server.with_fault_script(script);
    }
    server.spawn().expect("spawn accept loop")
}

// ---------------------------------------------------------------------
// Planner panics: quarantine exactly the victim.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The headline containment property: with a scripted panic on one
    /// cache's planner, that cache — and only that cache — is
    /// quarantined. Its last-good snapshot keeps serving, every other
    /// cache's snapshot is bit-identical to a fault-free twin's, the
    /// quarantine is visible in both the `EpochReport` and the health
    /// report, and subsequent submissions bounce with a typed error.
    #[test]
    fn planner_panic_quarantines_exactly_the_victim(
        caches in 2usize..8,
        shards in 1usize..4,
        victim_index in 0usize..8,
        seed in any::<u64>(),
    ) {
        let faulted = ShardedReconfigService::new(shards);
        let clean = ShardedReconfigService::new(shards);
        let script = Arc::new(FaultScript::new());
        let faulted = faulted.with_fault_script(Arc::clone(&script));

        let ids: Vec<CacheId> = (0..caches)
            .map(|_| {
                let id = faulted.register(CacheSpec::new(512, 1));
                prop_assert_eq!(id, clean.register(CacheSpec::new(512, 1)));
                Ok(id)
            })
            .collect::<Result<_, _>>()?;
        let victim = ids[victim_index % ids.len()];

        // Round 1, fault-free: every cache gets a last-good snapshot.
        // (Round tags live above the generator's low-bit mangling so
        // round-2 curves are guaranteed distinct — an identical
        // resubmission would dedup to a no-op and never replan.)
        for (i, id) in ids.iter().enumerate() {
            let curve = curve_from_seed(seed ^ ((i as u64) << 8) ^ (1 << 32));
            faulted.submit(*id, 0, curve.clone()).expect("registered");
            clean.submit(*id, 0, curve).expect("registered");
        }
        faulted.run_until_clean();
        clean.run_until_clean();
        let last_good = faulted.snapshot(victim).expect("round-1 plan");

        // Round 2: fresh curves everywhere, and the victim's planner is
        // scripted to panic on its next plan.
        script.inject("shard.plan", Some(victim.value()), 0, 1, FaultAction::Panic);
        for (i, id) in ids.iter().enumerate() {
            let curve = curve_from_seed(seed ^ ((i as u64) << 8) ^ (2 << 32));
            faulted.submit(*id, 0, curve.clone()).expect("pre-quarantine");
            clean.submit(*id, 0, curve).expect("registered");
        }
        let faulted_reports = faulted.run_until_clean();
        clean.run_until_clean();
        prop_assert_eq!(script.fired("shard.plan"), 1, "the scripted panic fired");

        // The quarantine is reported exactly once, for exactly the victim.
        let reported: Vec<CacheId> = faulted_reports
            .iter()
            .flat_map(|r| r.quarantined.iter().copied())
            .collect();
        prop_assert_eq!(reported, vec![victim]);
        prop_assert_eq!(faulted.quarantined(), vec![victim]);

        // ... and in the health report, with the owning shard's count.
        let health = faulted.health();
        prop_assert_eq!(&health.quarantined, &vec![victim.value()]);
        prop_assert!(!health.is_healthy());
        let owner = faulted.shard_index(victim);
        prop_assert_eq!(health.shards[owner].quarantined, 1);

        // The victim still serves its last-good snapshot, bit-for-bit.
        let still_serving = faulted.snapshot(victim).expect("last-good survives");
        assert_same_plan(&still_serving, &last_good, "victim last-good");

        // Every sibling is bit-identical to the fault-free twin.
        for id in ids.iter().filter(|id| **id != victim) {
            let a = faulted.snapshot(*id).expect("sibling planned");
            let b = clean.snapshot(*id).expect("twin planned");
            assert_same_plan(&a, &b, "sibling");
        }

        // Submissions to the victim bounce with the typed rejection.
        prop_assert_eq!(
            faulted.submit(victim, 0, curve_from_seed(seed | 3)),
            Err(ServeError::Quarantined(victim))
        );
        // The plane is drained: the quarantined cache is not stuck in
        // the dirty queue burning every future epoch.
        prop_assert_eq!(faulted.pending(), 0);
    }
}

/// The quarantine protocol crosses the wire: a remote client sees the
/// victim in the epoch report, the typed submit rejection, and the
/// health report — all through `RpcClient`.
#[test]
fn quarantine_is_visible_over_rpc() {
    let script = Arc::new(FaultScript::new());
    let service = Arc::new(ShardedReconfigService::new(2).with_fault_script(Arc::clone(&script)));
    let handle = loopback(Arc::clone(&service), None);
    let mut client = RpcClient::connect(handle.local_addr()).expect("connect");

    let victim = client.register(512, 1).expect("register");
    let bystander = client.register(512, 1).expect("register");
    client
        .submit(victim, 0, curve_from_seed(1))
        .expect("submit");
    client
        .submit(bystander, 0, curve_from_seed(2))
        .expect("submit");
    script.inject("shard.plan", Some(victim.value()), 0, 1, FaultAction::Panic);

    let mut quarantined = Vec::new();
    while service.pending() > 0 {
        let report = client.run_epoch().expect("epoch over rpc");
        quarantined.extend(report.quarantined);
    }
    assert_eq!(quarantined, vec![victim], "epoch report, over the wire");

    match client.submit(victim, 0, curve_from_seed(3)) {
        Err(RpcError::Serve(ServeError::Quarantined(id))) => assert_eq!(id, victim),
        other => panic!("expected the typed quarantine rejection, got {other:?}"),
    }
    assert!(
        client.report(bystander).expect("report").is_some(),
        "the bystander planned normally"
    );

    let health = client.health().expect("health over rpc");
    assert_eq!(health.quarantined, vec![victim.value()]);
    assert!(!health.is_healthy());
    assert_eq!(health.caches, 2);
    handle.shutdown();
}

// ---------------------------------------------------------------------
// Deadlines: a hung server never blocks the client.
// ---------------------------------------------------------------------

/// A server scripted to sit on a request for far longer than the client
/// is willing to wait fails the call with [`RpcError::Deadline`] in
/// bounded time — the client never hangs on a hung server.
#[test]
fn deadline_bounds_a_hung_server() {
    let script = Arc::new(FaultScript::new());
    script.inject(
        "server.handle",
        Some(OP_PING),
        0,
        1,
        FaultAction::DelayMs(3_000),
    );
    let service = Arc::new(ShardedReconfigService::new(1));
    let handle = loopback(Arc::clone(&service), Some(Arc::clone(&script)));
    let mut client = RpcClient::connect(handle.local_addr())
        .expect("connect")
        .with_deadline(Duration::from_millis(100))
        .expect("deadline applies");

    let start = Instant::now();
    match client.ping() {
        Err(RpcError::Deadline) => {}
        other => panic!("expected Deadline, got {other:?}"),
    }
    assert!(
        start.elapsed() < Duration::from_millis(1_500),
        "the deadline bounded the wait (took {:?})",
        start.elapsed()
    );
    handle.shutdown();
}

// ---------------------------------------------------------------------
// Retry: connection chaos converges to the fault-free plane.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Through scripted kill-connections, truncated replies, and busy
    /// sheds, a retrying client completes every idempotent operation
    /// and the plane converges to published state bit-identical to a
    /// fault-free local twin fed the same curves. Zero panics, zero
    /// surfaced transport errors.
    #[test]
    fn retry_converges_through_connection_chaos(
        seed in any::<u64>(),
        kill_skip in 0u64..3,
        truncate_skip in 0u64..2,
    ) {
        let script = Arc::new(FaultScript::new());
        // A severed connection mid-submit-stream, a truncated epoch
        // reply, and one mid-stream busy shed. Each fires once, at a
        // case-dependent point in the schedule.
        script.inject(
            "server.handle",
            Some(OP_SUBMIT),
            kill_skip,
            1,
            FaultAction::KillConnection,
        );
        script.inject(
            "server.handle",
            Some(OP_RUN_EPOCH),
            truncate_skip,
            1,
            FaultAction::TruncateFrame,
        );
        script.inject("server.handle", Some(OP_SUBMIT), 3, 1, FaultAction::Fail);

        let remote = Arc::new(ShardedReconfigService::new(2));
        let local = ShardedReconfigService::new(2);
        let handle = loopback(Arc::clone(&remote), Some(Arc::clone(&script)));
        let mut client = RpcClient::connect(handle.local_addr())
            .expect("connect")
            .with_deadline(Duration::from_secs(5))
            .expect("deadline applies")
            .with_retry(RetryPolicy {
                attempts: 5,
                base: Duration::from_millis(1),
                cap: Duration::from_millis(20),
                seed,
            });

        let ids: Vec<CacheId> = (0..4)
            .map(|_| {
                let id = client.register(512, 1).expect("register");
                prop_assert_eq!(id, local.register(CacheSpec::new(512, 1)));
                Ok(id)
            })
            .collect::<Result<_, _>>()?;

        for round in 0..3u64 {
            for (i, id) in ids.iter().enumerate() {
                let curve = curve_from_seed(seed ^ (round << 32) ^ (i as u64) << 8 | 1);
                client.submit(*id, 0, curve.clone()).expect("submit retries through chaos");
                local.submit(*id, 0, curve).expect("registered");
            }
            // Drain both planes (a retried epoch may leave the remote an
            // extra empty epoch ahead; published plans are unaffected).
            while remote.pending() > 0 {
                client.run_epoch().expect("epoch retries through chaos");
            }
            local.run_until_clean();
        }

        prop_assert!(
            script.fired("server.handle") >= 2,
            "the chaos schedule actually fired (fired {})",
            script.fired("server.handle")
        );
        for id in &ids {
            let a = remote.snapshot(*id).expect("published through chaos");
            let b = local.snapshot(*id).expect("published");
            assert_same_plan(&a, &b, "post-chaos");
        }
        prop_assert!(remote.quarantined().is_empty());
        prop_assert!(remote.health().quarantined.is_empty());
        handle.shutdown();
    }

    /// Submission is idempotent: a plane receiving every batch twice
    /// (duplicate delivery — exactly what an at-least-once retry
    /// produces) publishes state bit-identical to a plane receiving it
    /// once, *including* version and update counters, and both journals
    /// replay into planes bit-identical to their owners.
    #[test]
    fn duplicated_submission_batches_are_idempotent(
        seed in any::<u64>(),
        caches in 1usize..5,
        rounds in 1u64..4,
    ) {
        static CASE: AtomicU64 = AtomicU64::new(0);
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let dir_once = temp_dir(&format!("idem-once-{case}"));
        let dir_twice = temp_dir(&format!("idem-twice-{case}"));
        let store_once = Arc::new(Store::open(&dir_once, 2).expect("open"));
        let store_twice = Arc::new(Store::open(&dir_twice, 2).expect("open"));
        let once = ShardedReconfigService::new(2)
            .with_sink(Arc::clone(&store_once) as Arc<dyn StoreSink>);
        let twice = ShardedReconfigService::new(2)
            .with_sink(Arc::clone(&store_twice) as Arc<dyn StoreSink>);

        let ids: Vec<CacheId> = (0..caches)
            .map(|_| {
                let id = once.register(CacheSpec::new(512, 1));
                prop_assert_eq!(id, twice.register(CacheSpec::new(512, 1)));
                Ok(id)
            })
            .collect::<Result<_, _>>()?;

        for round in 0..rounds {
            for (i, id) in ids.iter().enumerate() {
                let curve = curve_from_seed(seed ^ (round << 32) ^ (i as u64) << 8 | 1);
                once.submit(*id, 0, curve.clone()).expect("registered");
                // Duplicate delivery: the same batch lands twice.
                twice.submit(*id, 0, curve.clone()).expect("registered");
                twice.submit(*id, 0, curve).expect("duplicate is accepted");
            }
            once.run_until_clean();
            twice.run_until_clean();
        }

        for id in &ids {
            let a = once.snapshot(*id).expect("published");
            let b = twice.snapshot(*id).expect("published");
            assert_same_plan(&a, &b, "duplicated delivery");
            prop_assert_eq!(a.epoch, b.epoch, "duplicates never cost an epoch");
        }
        prop_assert_eq!(once.epochs(), twice.epochs());

        // The journals agree too: each replays into a plane bit-identical
        // to its owner — the duplicate deliveries were never journaled.
        for (plane, store) in [(&once, &store_once), (&twice, &store_twice)] {
            let restored = ShardedReconfigService::new(2);
            restored.restore(store).expect("journal replays");
            prop_assert_eq!(restored.epochs(), plane.epochs());
            for id in &ids {
                let a = plane.snapshot(*id).expect("published");
                let b = restored.snapshot(*id).expect("restored");
                assert_same_plan(&a, &b, "restored");
                prop_assert_eq!(a.epoch, b.epoch);
            }
        }
        drop(once);
        drop(twice);
        std::fs::remove_dir_all(&dir_once).ok();
        std::fs::remove_dir_all(&dir_twice).ok();
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("talus-chaos-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

// ---------------------------------------------------------------------
// Worker death: one shard degrades, the epoch completes.
// ---------------------------------------------------------------------

/// A scripted panic kills shard 1's epoch worker mid-run. The epoch
/// still completes (the leader picks up the dead worker's shard after
/// the handoff deadline), every cache still gets its plan — identical
/// to an unthreaded twin's — and the health report shows exactly one
/// degraded shard.
#[test]
fn dead_worker_degrades_its_shard_not_the_epoch() {
    let script = Arc::new(FaultScript::new());
    script.inject("worker.epoch", Some(1), 0, 1, FaultAction::Panic);
    let threaded = ShardedReconfigService::new(3)
        .with_fault_script(Arc::clone(&script))
        .with_epoch_deadline(Duration::from_millis(250))
        .with_threads();
    let plain = ShardedReconfigService::new(3);

    let ids: Vec<CacheId> = (0..6)
        .map(|_| {
            let id = threaded.register(CacheSpec::new(512, 1));
            assert_eq!(id, plain.register(CacheSpec::new(512, 1)));
            id
        })
        .collect();
    for (i, id) in ids.iter().enumerate() {
        let curve = curve_from_seed(0xD00D ^ (i as u64) << 8);
        threaded.submit(*id, 0, curve.clone()).expect("registered");
        plain.submit(*id, 0, curve).expect("registered");
    }

    threaded.run_until_clean();
    plain.run_until_clean();
    assert_eq!(script.fired("worker.epoch"), 1, "the worker was killed");

    for id in &ids {
        let a = threaded
            .snapshot(*id)
            .expect("planned despite the dead worker");
        let b = plain.snapshot(*id).expect("planned");
        assert_same_plan(&a, &b, "degraded epoch");
    }
    let health = threaded.health();
    assert_eq!(health.degraded(), 1, "exactly the dead worker's shard");
    assert_eq!(health.shards[1].state, ShardState::Degraded);
    assert!(!health.is_healthy());

    // Degraded is sticky but not fatal: later epochs keep planning.
    for (i, id) in ids.iter().enumerate() {
        let curve = curve_from_seed(0xBEEF ^ (i as u64) << 8);
        threaded
            .submit(*id, 0, curve.clone())
            .expect("still serving");
        plain.submit(*id, 0, curve).expect("registered");
    }
    threaded.run_until_clean();
    plain.run_until_clean();
    for id in &ids {
        let a = threaded.snapshot(*id).expect("planned");
        let b = plain.snapshot(*id).expect("planned");
        assert_same_plan(&a, &b, "post-degradation epoch");
    }
}

// ---------------------------------------------------------------------
// Store faults and overload: every degradation is observable.
// ---------------------------------------------------------------------

/// A journal append failure trips the store's sticky fault flag, and
/// the plane's health report carries it — locally and over the wire.
#[test]
fn store_fault_surfaces_in_health() {
    let script = Arc::new(FaultScript::new());
    script.inject("store.append", None, 0, 1, FaultAction::Fail);
    let dir = temp_dir("store-fault");
    let store = Arc::new(
        Store::open(&dir, 1)
            .expect("open")
            .with_fault_script(Arc::clone(&script)),
    );
    let service = Arc::new(
        ShardedReconfigService::new(1).with_sink(Arc::clone(&store) as Arc<dyn StoreSink>),
    );
    assert_eq!(service.health().store, StoreHealth::Ok);

    // The next journaled event hits the scripted append failure.
    let id = service.register(CacheSpec::new(512, 1));
    assert!(store.faulted(), "the scripted append fault tripped");
    let health = service.health();
    assert_eq!(health.store, StoreHealth::Faulted);
    assert!(!health.is_healthy());

    // The plane itself keeps serving (journaling is best-effort by
    // design — the fault is observable, not fatal).
    service
        .submit(id, 0, curve_from_seed(5))
        .expect("still serving");
    service.run_until_clean();
    assert!(service.snapshot(id).is_some());

    // And the fault crosses the wire in a health reply.
    let handle = loopback(Arc::clone(&service), None);
    let mut client = RpcClient::connect(handle.local_addr()).expect("connect");
    assert_eq!(
        client.health().expect("health over rpc").store,
        StoreHealth::Faulted
    );
    handle.shutdown();
    drop(service);
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}

/// An over-cap connection receives a typed `Busy` frame — not a silent
/// drop — and the shed is counted on the server handle.
#[test]
fn overload_shed_is_typed_and_counted() {
    let service = Arc::new(ShardedReconfigService::new(1));
    let handle = RpcServer::bind("127.0.0.1:0", Arc::clone(&service))
        .expect("bind")
        .with_max_connections(1)
        .spawn()
        .expect("spawn");

    // Occupy the only slot (the ping proves the connection is serving,
    // not merely queued in the accept backlog).
    let mut occupant = RpcClient::connect(handle.local_addr()).expect("connect");
    occupant.ping().expect("ping");

    // The next connection is shed with the typed reply.
    let mut shed = RpcClient::connect(handle.local_addr()).expect("tcp connects");
    match shed.ping() {
        Err(RpcError::Busy) => {}
        other => panic!("expected the typed Busy shed, got {other:?}"),
    }
    assert_eq!(handle.rejected(), 1, "the shed was counted");

    // The occupant is unaffected, and the count reaches health reports.
    occupant.ping().expect("still serving");
    assert_eq!(handle.health().rejected, 1);
    assert!(
        handle.health().is_healthy(),
        "shedding load is admission control, not ill health"
    );
    handle.shutdown();
}
