//! The service's defining invariant: epoch replanning publishes exactly
//! the plan a direct offline `talus-core` + `talus-partition` computation
//! produces from the same curves — batching, versioning, and publication
//! add scheduling, never policy.

use proptest::prelude::*;
use talus_core::{plan_with_hull, CurveSource, MissCurve, TalusOptions};
use talus_partition::{fair, hill_climb, lookahead, AllocPolicy, Planner};
use talus_serve::{CacheSpec, ReconfigService};
use talus_sim::monitor::{MattsonMonitor, MonitorSource};
use talus_sim::LineAddr;
use talus_workloads::{profile, AccessGenerator};

/// Offline reference: hulls, allocation, per-tenant shadow planning —
/// spelled out with the low-level primitives, *not* the shared `Planner`,
/// so the test would catch the planner and the service drifting apart.
fn offline_plans(
    curves: &[MissCurve],
    capacity: u64,
    grain: u64,
    policy: AllocPolicy,
) -> (Vec<u64>, Vec<talus_core::TalusPlan>) {
    let hulls: Vec<MissCurve> = curves.iter().map(|c| c.convex_hull().to_curve()).collect();
    let sizes = match policy {
        AllocPolicy::Hill => hill_climb(&hulls, capacity, grain),
        AllocPolicy::Lookahead => lookahead(&hulls, capacity, grain),
        AllocPolicy::Fair => fair(hulls.len(), capacity, grain),
        AllocPolicy::Imbalanced => unreachable!("not exercised here"),
    };
    let plans = curves
        .iter()
        .zip(&sizes)
        .map(|(c, &s)| {
            plan_with_hull(&c.convex_hull(), s as f64, TalusOptions::new())
                .expect("offline planning succeeds")
        })
        .collect();
    (sizes, plans)
}

/// Random monotone miss curve on a 0..=16 × 64-line grid (the same family
/// the partition property tests use).
fn arb_curve() -> impl Strategy<Value = MissCurve> {
    any::<u64>().prop_map(|seed| {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut m = 10.0 + (next() % 40) as f64;
        let sizes: Vec<f64> = (0..=16).map(|i| i as f64 * 64.0).collect();
        let misses: Vec<f64> = sizes
            .iter()
            .map(|_| {
                let v = m;
                m = (m - (next() % 12) as f64).max(0.0);
                v
            })
            .collect();
        MissCurve::from_samples(&sizes, &misses).expect("valid curve")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Satellite property test: serve-epoch replanning == offline planning
    /// on identical curves, for random multi-tenant curve sets.
    #[test]
    fn epoch_replanning_matches_offline_planner(
        curves in proptest::collection::vec(arb_curve(), 1..6),
        grains in 4u64..16,
    ) {
        let capacity = grains * 64;
        let grain = 64u64;
        let service = ReconfigService::new();
        let spec = CacheSpec::new(capacity, curves.len())
            .with_planner(Planner::new(grain));
        let id = service.register(spec);
        for (t, c) in curves.iter().enumerate() {
            service.submit(id, t, c.clone()).expect("in range");
        }
        let report = service.run_epoch();
        prop_assert_eq!(&report.planned, &vec![id]);
        let snap = service.snapshot(id).expect("published");

        let (sizes, plans) = offline_plans(&curves, capacity, grain, AllocPolicy::Hill);
        prop_assert_eq!(snap.allocations(), sizes);
        for (t, offline) in plans.iter().enumerate() {
            prop_assert_eq!(&snap.plan.tenants[t].plan, offline, "tenant {}", t);
        }
    }

    /// The invariant holds for the other (round-free) allocation policies.
    #[test]
    fn equivalence_holds_across_policies(
        curves in proptest::collection::vec(arb_curve(), 2..5),
        policy_idx in 0usize..3,
    ) {
        let policy = [AllocPolicy::Hill, AllocPolicy::Lookahead, AllocPolicy::Fair][policy_idx];
        let capacity = 1024u64;
        let grain = 64u64;
        let service = ReconfigService::new();
        let id = service.register(
            CacheSpec::new(capacity, curves.len())
                .with_planner(Planner::new(grain).with_policy(policy)),
        );
        for (t, c) in curves.iter().enumerate() {
            service.submit(id, t, c.clone()).expect("in range");
        }
        service.run_epoch();
        let snap = service.snapshot(id).expect("published");
        let (sizes, plans) = offline_plans(&curves, capacity, grain, policy);
        prop_assert_eq!(snap.allocations(), sizes);
        for (t, offline) in plans.iter().enumerate() {
            prop_assert_eq!(&snap.plan.tenants[t].plan, offline, "tenant {}", t);
        }
    }
}

/// End-to-end replay: monitor-measured curves from SPEC-shaped workloads
/// stream through the service over multiple intervals; every published
/// epoch must match the offline planner on the same curves.
#[test]
fn multi_tenant_replay_matches_offline_every_epoch() {
    const CAPACITY: u64 = 2048;
    const INTERVAL: u64 = 30_000;
    let names = ["libquantum", "omnetpp", "xalancbmk"];

    let service = ReconfigService::new();
    let id = service.register(CacheSpec::new(CAPACITY, names.len()));
    let mut sources: Vec<_> = names
        .iter()
        .enumerate()
        .map(|(t, name)| {
            let app = profile(name).expect("roster profile").scaled(1.0 / 256.0);
            let mut gen = app.generator(11 + t as u64, 0);
            let next: Box<dyn FnMut() -> LineAddr> = Box::new(move || gen.next_line());
            let mut s = MonitorSource::new(MattsonMonitor::new(2 * CAPACITY), INTERVAL, next);
            s.warm_up(INTERVAL / 2);
            s
        })
        .collect();

    for interval in 1..=3u64 {
        let mut latest = Vec::new();
        for (t, source) in sources.iter_mut().enumerate() {
            let curve = source.next_curve().expect("monitors never exhaust");
            service.submit(id, t, curve.clone()).expect("in range");
            latest.push(curve);
        }
        let report = service.run_epoch();
        assert_eq!(report.planned, vec![id], "interval {interval}");

        let snap = service.snapshot(id).expect("published");
        assert_eq!(snap.version, interval);
        assert_eq!(snap.epoch, interval);
        let (sizes, plans) =
            offline_plans(&latest, CAPACITY, (CAPACITY / 64).max(1), AllocPolicy::Hill);
        assert_eq!(snap.allocations(), sizes, "interval {interval}");
        for (t, offline) in plans.iter().enumerate() {
            assert_eq!(
                &snap.plan.tenants[t].plan, offline,
                "interval {interval} tenant {t}"
            );
        }
        // The budget is always fully spent.
        assert_eq!(snap.allocations().iter().sum::<u64>(), CAPACITY);
    }
}

/// Concurrent producers + a planner loop: the published end state is the
/// plan of the last-submitted curves, identical to offline.
#[test]
fn threaded_producers_converge_to_offline_plan() {
    use std::sync::Arc;

    let service = Arc::new(ReconfigService::new());
    let capacity = 1024u64;
    let tenants = 4usize;
    let id = service.register(CacheSpec::new(capacity, tenants));

    // Each tenant's curves steepen over rounds; the *final* round is what
    // the converged plan must reflect.
    let curve_for = |tenant: usize, round: u64| {
        let knee = 64.0 * (tenant as f64 + 1.0) + 32.0 * round as f64;
        let sizes: Vec<f64> = (0..=16).map(|i| i as f64 * 64.0).collect();
        let misses: Vec<f64> = sizes
            .iter()
            .map(|&s| if s < knee { 10.0 } else { 1.0 })
            .collect();
        MissCurve::from_samples(&sizes, &misses).expect("valid")
    };

    let rounds = 5u64;
    let handles: Vec<_> = (0..tenants)
        .map(|t| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                for r in 0..rounds {
                    service.submit(id, t, curve_for(t, r)).expect("in range");
                    // Interleave with the planner.
                    if r % 2 == 0 {
                        std::thread::yield_now();
                    }
                }
            })
        })
        .collect();
    // Planner churns while producers run.
    for _ in 0..20 {
        service.run_epoch();
    }
    for h in handles {
        h.join().expect("producer");
    }
    // Drain whatever is still dirty, then replan once more with the final
    // curves to guarantee convergence.
    service.run_until_clean();
    let final_curves: Vec<MissCurve> = (0..tenants).map(|t| curve_for(t, rounds - 1)).collect();
    for (t, c) in final_curves.iter().enumerate() {
        service.submit(id, t, c.clone()).expect("in range");
    }
    service.run_until_clean();

    let snap = service.snapshot(id).expect("published");
    let (sizes, plans) = offline_plans(
        &final_curves,
        capacity,
        (capacity / 64).max(1),
        AllocPolicy::Hill,
    );
    assert_eq!(snap.allocations(), sizes);
    for (t, offline) in plans.iter().enumerate() {
        assert_eq!(&snap.plan.tenants[t].plan, offline, "tenant {t}");
    }
}
