//! The cluster's defining invariants, extending the equivalence
//! discipline across process boundaries:
//!
//! 1. **Equivalence.** For any op interleaving, a plane split across N
//!    cluster members (each an `RpcServer` owning a contiguous
//!    [`ShardTopology`] slice) produces bit-identical per-op results,
//!    `EpochReport`s, and published snapshots to a single-process
//!    sharded plane with the same global shard count.
//! 2. **Failover.** Killing one member trips only that member's
//!    breaker: ops on its ids fail fast with a typed
//!    [`ClusterError::ShardDown`] naming the unreachable slice, ops on
//!    surviving members keep succeeding, and the survivors keep
//!    *planning* — versions advance during the outage.
//! 3. **Resurrection.** A killed member restarted over its own journal
//!    slice rejoins through the handshake and the cluster converges to
//!    state bit-identical to a never-killed twin.
//! 4. **Rejoin safety.** A member that comes back with a different
//!    shard slice or a rolled-back epoch (fresh/stale journal) is
//!    rejected with a typed [`HandshakeError`] and its breaker stays
//!    open — the cluster never routes to forked state.

use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use talus_core::{FaultAction, FaultScript, MissCurve, ShardTopology};
use talus_serve::wire::SnapshotSummary;
use talus_serve::{
    CacheId, CacheSpec, ClusterClient, ClusterConfig, ClusterError, EpochReport, HandshakeError,
    RetryPolicy, RpcClient, RpcError, RpcServer, ServeError, ServerHandle, ShardedReconfigService,
};
use talus_store::{Store, StoreSink};

/// Random monotone miss curve on a 0..=16 × 64-line grid, derived
/// deterministically from a seed so every plane receives identical
/// curves (the same family as `tests/rpc_equivalence.rs`).
fn curve_from_seed(seed: u64) -> MissCurve {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut m = 10.0 + (next() % 40) as f64;
    let sizes: Vec<f64> = (0..=16).map(|i| i as f64 * 64.0).collect();
    let misses: Vec<f64> = sizes
        .iter()
        .map(|_| {
            let v = m;
            m = (m - (next() % 12) as f64).max(0.0);
            v
        })
        .collect();
    MissCurve::from_samples(&sizes, &misses).expect("valid curve")
}

/// A scratch directory unique to this process and tag, recreated empty.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("talus-cluster-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// One in-process cluster member: an `RpcServer` fronting a plane that
/// owns shards `first..first + count` of `total`, optionally journaling
/// into `dir`, with a fault script attached for deterministic kills.
struct TestMember {
    handle: ServerHandle,
    script: Arc<FaultScript>,
}

impl TestMember {
    fn spawn(total: usize, first: usize, count: usize, dir: Option<&Path>) -> TestMember {
        let topology = ShardTopology::range(total, first, count);
        let mut plane = ShardedReconfigService::new(count).with_topology(topology);
        if let Some(dir) = dir {
            let store = Arc::new(
                Store::open(dir, count)
                    .expect("open member store")
                    .with_topology(topology),
            );
            plane.restore(&store).expect("member journal restores");
            plane = plane.with_sink(store as Arc<dyn StoreSink>);
        }
        let script = Arc::new(FaultScript::new());
        let handle = RpcServer::bind("127.0.0.1:0", Arc::new(plane))
            .expect("bind member loopback")
            .with_fault_script(Arc::clone(&script))
            .spawn()
            .expect("spawn member accept loop");
        TestMember { handle, script }
    }

    fn addr(&self) -> SocketAddr {
        self.handle.local_addr()
    }

    fn plane(&self) -> &Arc<ShardedReconfigService> {
        self.handle.service()
    }

    /// Kills the member: every in-flight connection is severed at the
    /// next request and the listener closes, so reconnects are refused.
    fn kill(self) -> Arc<FaultScript> {
        self.script.inject(
            "server.handle",
            None,
            0,
            u64::MAX,
            FaultAction::KillConnection,
        );
        self.handle.shutdown();
        self.script
    }
}

/// Spawns `slices.len()` members covering `total` shards and connects a
/// cluster client with fast test-tuned retries.
fn spawn_cluster(total: usize, slices: &[(usize, usize)]) -> (Vec<TestMember>, ClusterClient) {
    let members: Vec<TestMember> = slices
        .iter()
        .map(|&(first, count)| TestMember::spawn(total, first, count, None))
        .collect();
    let addrs: Vec<SocketAddr> = members.iter().map(TestMember::addr).collect();
    let cluster = ClusterClient::connect_with(&addrs, test_config()).expect("cluster connects");
    (members, cluster)
}

fn test_config() -> ClusterConfig {
    ClusterConfig {
        deadline: Some(Duration::from_secs(5)),
        retry: RetryPolicy {
            attempts: 2,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(10),
            seed: 0xC1A5,
        },
        // Tests drive recovery explicitly through `reconnect_member`;
        // a large interval keeps fast-failures deterministic.
        probe_interval: 1_000,
    }
}

/// Flattens a cluster result into the local `submit`/`deregister` shape
/// so per-op outcomes compare directly; transport errors are bugs here.
fn as_serve_result(result: Result<(), ClusterError>) -> Result<(), ServeError> {
    match result {
        Ok(()) => Ok(()),
        Err(ClusterError::Serve(e)) => Err(e),
        Err(other) => panic!("cluster transport failed mid-property: {other}"),
    }
}

/// Asserts the cluster's published state for `id` is bit-identical to
/// the twin plane's: the wire summary a cluster reader sees, and the
/// owning member's server-side snapshot.
fn assert_snapshot_matches(
    cluster: &mut ClusterClient,
    members: &[TestMember],
    twin: &ShardedReconfigService,
    id: CacheId,
) {
    let ours = cluster.report(id).expect("report routes");
    let theirs = twin.snapshot(id);
    assert_eq!(
        ours,
        theirs.as_deref().map(SnapshotSummary::from),
        "{id}: wire summaries diverge"
    );
    let member = &members[cluster.member_for(id)];
    match (member.plane().snapshot(id), theirs) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            assert_eq!(a.plan, b.plan, "{id}: plans diverge across the cluster");
            assert_eq!(a.version, b.version, "{id}: versions diverge");
            assert_eq!(a.updates, b.updates, "{id}: update counts diverge");
        }
        (a, b) => panic!(
            "{id}: published on one plane only (cluster: {}, twin: {})",
            a.is_some(),
            b.is_some()
        ),
    }
}

/// One step of a random cluster history (same shape as the RPC
/// equivalence suite: slots index the ids registered so far).
#[derive(Debug, Clone)]
enum Op {
    Register {
        capacity_grains: u64,
        tenants: usize,
    },
    Submit {
        slot: usize,
        tenant: usize,
        curve_seed: u64,
    },
    Deregister {
        slot: usize,
    },
    RunEpoch,
}

fn arb_op() -> impl Strategy<Value = Op> {
    (any::<u64>(), any::<u64>(), any::<usize>(), any::<u64>()).prop_map(
        |(kind, shape, slot, curve_seed)| match kind % 11 {
            0 | 1 => Op::Register {
                capacity_grains: 4 + shape % 12,
                tenants: 1 + (shape % 3) as usize,
            },
            2..=7 => Op::Submit {
                slot,
                tenant: (shape >> 8) as usize,
                curve_seed,
            },
            8 => Op::Deregister { slot },
            _ => Op::RunEpoch,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole invariant: any op interleaving produces identical
    /// per-op results, identical merged `EpochReport`s, and
    /// bit-identical published snapshots whether the plane is one
    /// process with `total` shards or `total / 2` two-shard members
    /// assembled by a `ClusterClient`.
    #[test]
    fn cluster_plane_equals_single_process_plane(
        ops in proptest::collection::vec(arb_op(), 1..30),
        member_count in 2usize..4,
    ) {
        let per_member = 2usize;
        let total = member_count * per_member;
        let slices: Vec<(usize, usize)> = (0..member_count)
            .map(|m| (m * per_member, per_member))
            .collect();
        let (members, mut cluster) = spawn_cluster(total, &slices);
        let twin = ShardedReconfigService::new(total);

        let mut slots: Vec<(CacheId, usize)> = Vec::new();
        for op in &ops {
            match op {
                Op::Register { capacity_grains, tenants } => {
                    let capacity = capacity_grains * 64;
                    let id = twin.register(CacheSpec::new(capacity, *tenants));
                    let ours = cluster
                        .register(capacity, *tenants as u32)
                        .expect("register routes");
                    prop_assert_eq!(id, ours, "id minting must coincide");
                    slots.push((id, *tenants));
                }
                Op::Submit { slot, tenant, curve_seed } => {
                    if slots.is_empty() {
                        continue;
                    }
                    let (id, tenants) = slots[slot % slots.len()];
                    let tenant = tenant % tenants;
                    let curve = curve_from_seed(*curve_seed);
                    let a = twin.submit(id, tenant, curve.clone());
                    let b = as_serve_result(cluster.submit(id, tenant, curve));
                    prop_assert_eq!(a, b, "submit outcomes diverge");
                }
                Op::Deregister { slot } => {
                    if slots.is_empty() {
                        continue;
                    }
                    let (id, _) = slots[slot % slots.len()];
                    let a = twin.deregister(id);
                    let b = as_serve_result(cluster.deregister(id));
                    prop_assert_eq!(a, b, "deregister outcomes diverge");
                }
                Op::RunEpoch => {
                    let a = twin.run_epoch();
                    let b = cluster.run_epoch().expect("epoch routes");
                    prop_assert!(b.unreachable.is_empty(), "no member is down");
                    prop_assert_eq!(a, b.report, "epoch reports diverge");
                }
            }
        }

        // Drain both planes the same way, comparing the drain reports.
        while twin.pending() > 0 {
            let a = twin.run_epoch();
            let b = cluster.run_epoch().expect("drain epoch routes");
            prop_assert_eq!(a, b.report, "drain reports diverge");
        }
        for (id, _) in slots {
            assert_snapshot_matches(&mut cluster, &members, &twin, id);
        }
    }
}

/// Registers `caches` ids through both the cluster and the twin,
/// asserting the mints coincide, and returns them.
fn register_both(
    cluster: &mut ClusterClient,
    twin: &ShardedReconfigService,
    caches: usize,
    tenants: usize,
) -> Vec<CacheId> {
    (0..caches)
        .map(|_| {
            let id = twin.register(CacheSpec::new(1024, tenants));
            let ours = cluster.register(1024, tenants as u32).expect("register");
            assert_eq!(id, ours, "id minting must coincide");
            id
        })
        .collect()
}

/// Runs lockstep epochs on cluster and twin until both drain, asserting
/// each merged report is bit-identical.
fn drain_lockstep(cluster: &mut ClusterClient, twin: &ShardedReconfigService) -> Vec<EpochReport> {
    let mut reports = Vec::new();
    loop {
        let theirs = twin.run_epoch();
        let ours = cluster.run_epoch().expect("epoch routes");
        assert!(ours.unreachable.is_empty(), "all members reachable");
        assert_eq!(ours.report, theirs, "epoch reports diverge");
        let idle = theirs.is_idle();
        reports.push(theirs);
        if idle {
            return reports;
        }
    }
}

/// Killing one member opens exactly its breaker: its ids fail fast with
/// the typed unreachable slice, survivors keep serving *and planning*
/// (versions advance mid-outage), and the outage is named in cluster
/// health — no hangs, no panics, no collateral damage.
#[test]
fn dead_member_trips_only_its_own_breaker() {
    let (mut members, mut cluster) = spawn_cluster(4, &[(0, 2), (2, 2)]);
    let twin = ShardedReconfigService::new(4);

    // Eight ids straddle both members under the mix64 placement (ids
    // 0..6 all land on shards 0..2; ids 6 and 7 land on shards 3, 2).
    let ids = register_both(&mut cluster, &twin, 8, 1);
    for (i, id) in ids.iter().enumerate() {
        let curve = curve_from_seed(1 + i as u64);
        twin.submit(*id, 0, curve.clone()).expect("twin submit");
        cluster.submit(*id, 0, curve).expect("cluster submit");
    }
    drain_lockstep(&mut cluster, &twin);

    let victim = members.remove(1);
    let survivor_ids: Vec<CacheId> = ids
        .iter()
        .copied()
        .filter(|id| cluster.member_for(*id) == 0)
        .collect();
    let victim_ids: Vec<CacheId> = ids
        .iter()
        .copied()
        .filter(|id| cluster.member_for(*id) == 1)
        .collect();
    assert!(
        !survivor_ids.is_empty() && !victim_ids.is_empty(),
        "the workload must straddle both members"
    );
    victim.kill();

    // Victim ids: typed fast-failures naming the unreachable slice.
    for id in &victim_ids {
        match cluster.submit(*id, 0, curve_from_seed(99)) {
            Err(ClusterError::ShardDown {
                member,
                first_shard,
                shard_count,
                ..
            }) => {
                assert_eq!(member, 1);
                assert_eq!((first_shard, shard_count), (2, 2));
            }
            other => panic!("{id}: expected ShardDown, got {other:?}"),
        }
    }

    // Survivor ids: submissions and planning proceed mid-outage.
    let before: Vec<u64> = survivor_ids
        .iter()
        .map(|id| members[0].plane().snapshot(*id).expect("published").version)
        .collect();
    for (i, id) in survivor_ids.iter().enumerate() {
        cluster
            .submit(*id, 0, curve_from_seed(500 + i as u64))
            .expect("survivor submit succeeds mid-outage");
    }
    let report = cluster.run_epoch().expect("epoch mid-outage");
    assert_eq!(report.unreachable, vec![1], "the dead member is skipped");
    let mut planned = survivor_ids.clone();
    planned.sort();
    assert_eq!(report.report.planned, planned);
    for (id, before) in survivor_ids.iter().zip(before) {
        let after = members[0].plane().snapshot(*id).expect("published").version;
        assert_eq!(after, before + 1, "{id}: survivor kept planning");
    }

    // The outage is data: health names exactly the unreachable shards.
    let health = cluster.health();
    assert!(!health.is_healthy());
    assert_eq!(health.unreachable_shards(), vec![2, 3]);
    assert!(health.members[0].reachable);
    assert!(!health.members[1].reachable);
    assert_eq!(health.members[1].outages, 1);
}

/// The resurrection invariant: a member killed mid-run and restarted
/// over its own journal slice rejoins the cluster, and the final
/// published state is bit-identical to a never-killed single-process
/// twin fed the same stream.
#[test]
fn member_resurrects_from_its_journal_bit_identical() {
    let dir = scratch_dir("resurrect");
    let member_dirs: Vec<PathBuf> = (0..3).map(|m| dir.join(format!("member-{m}"))).collect();
    let mut members: Vec<TestMember> = member_dirs
        .iter()
        .enumerate()
        .map(|(m, d)| TestMember::spawn(6, m * 2, 2, Some(d)))
        .collect();
    let addrs: Vec<SocketAddr> = members.iter().map(TestMember::addr).collect();
    let mut cluster = ClusterClient::connect_with(&addrs, test_config()).expect("connect");
    let twin = ShardedReconfigService::new(6);

    // Phase 1: a healthy prefix, journaled by every member.
    let ids = register_both(&mut cluster, &twin, 8, 2);
    for (i, id) in ids.iter().enumerate() {
        for t in 0..2 {
            let curve = curve_from_seed((i as u64) << 8 | t as u64);
            twin.submit(*id, t as usize, curve.clone()).expect("twin");
            cluster.submit(*id, t as usize, curve).expect("cluster");
        }
    }
    drain_lockstep(&mut cluster, &twin);

    // Phase 2: kill member 1. Its caches are unreachable; the kill is
    // between operations, so its journal holds exactly the applied
    // prefix.
    let victim = members.remove(1);
    victim.kill();
    let down = ids
        .iter()
        .find(|id| cluster.member_for(**id) == 1)
        .expect("some cache lands on member 1");
    assert!(matches!(
        cluster.submit(*down, 0, curve_from_seed(7)),
        Err(ClusterError::ShardDown { member: 1, .. })
    ));

    // Phase 3: restart it from the same journal directory, rejoin, and
    // resume the stream. (`insert` keeps member indices aligned with
    // the cluster's.)
    let reborn = TestMember::spawn(6, 2, 2, Some(&member_dirs[1]));
    let addr = reborn.addr();
    members.insert(1, reborn);
    cluster
        .reconnect_member(1, Some(addr))
        .expect("journal-restored member rejoins");

    for (i, id) in ids.iter().enumerate() {
        let curve = curve_from_seed(0x9000 + i as u64);
        twin.submit(*id, i % 2, curve.clone()).expect("twin");
        cluster
            .submit(*id, i % 2, curve)
            .expect("cluster heals after rejoin");
    }
    drain_lockstep(&mut cluster, &twin);

    for id in &ids {
        assert_snapshot_matches(&mut cluster, &members, &twin, *id);
    }
    let health = cluster.health();
    assert!(health.is_healthy(), "the outage is over");
    assert_eq!(health.members[1].outages, 1, "and it was counted");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Rejoin safety: a member restarted from a *fresh* (lost) journal
/// advertises an epoch behind what the client already acknowledged and
/// is rejected with `StaleEpoch`; one restarted with a different shard
/// slice is rejected with `TopologyChanged`. Both leave the breaker
/// open.
#[test]
fn forked_rejoins_are_rejected_and_stay_down() {
    let (mut members, mut cluster) = spawn_cluster(4, &[(0, 2), (2, 2)]);
    let twin = ShardedReconfigService::new(4);

    let ids = register_both(&mut cluster, &twin, 8, 1);
    for (i, id) in ids.iter().enumerate() {
        let curve = curve_from_seed(i as u64);
        twin.submit(*id, 0, curve.clone()).expect("twin");
        cluster.submit(*id, 0, curve).expect("cluster");
    }
    drain_lockstep(&mut cluster, &twin);
    members.remove(1).kill();

    // A fresh plane at epoch 0 is behind the acknowledged epochs.
    let amnesiac = TestMember::spawn(4, 2, 2, None);
    match cluster.reconnect_member(1, Some(amnesiac.addr())) {
        Err(ClusterError::Handshake(HandshakeError::StaleEpoch {
            member,
            got,
            expected,
        })) => {
            assert_eq!(member, 1);
            assert_eq!(got, 0);
            assert!(expected > 0, "the healthy run acknowledged epochs");
        }
        other => panic!("expected StaleEpoch, got {other:?}"),
    }

    // A different slice would misroute ids, regardless of epoch.
    let misshaped = TestMember::spawn(4, 1, 3, None);
    assert!(matches!(
        cluster.reconnect_member(1, Some(misshaped.addr())),
        Err(ClusterError::Handshake(HandshakeError::TopologyChanged {
            member: 1
        }))
    ));

    // Both rejections leave the breaker open: victim ids still fail
    // fast and typed.
    let down = ids
        .iter()
        .find(|id| cluster.member_for(**id) == 1)
        .expect("some cache lands on member 1");
    assert!(matches!(
        cluster.submit(*down, 0, curve_from_seed(42)),
        Err(ClusterError::ShardDown { member: 1, .. })
    ));
}

/// Connect-time assembly is verified end-to-end through real `Hello`
/// frames: members whose slices overlap are rejected before any op.
#[test]
fn connect_rejects_overlapping_advertisements() {
    let a = TestMember::spawn(4, 0, 2, None);
    let b = TestMember::spawn(4, 1, 2, None);
    match ClusterClient::connect_with(&[a.addr(), b.addr()], test_config()) {
        Err(ClusterError::Handshake(HandshakeError::Overlap { shard: 1 })) => {}
        other => panic!("expected Overlap at shard 1, got {other:?}"),
    }
}

/// Servers on a cluster topology refuse server-side minting: two
/// members minting from the same sequence would collide, so `Register`
/// is rejected with the typed `ClusterMint` and the caller is pointed
/// at the cluster client's deterministic scheme.
#[test]
fn cluster_members_refuse_server_side_minting() {
    let member = TestMember::spawn(4, 0, 2, None);
    let mut direct = RpcClient::connect(member.addr()).expect("connect");
    assert!(matches!(
        direct.register(1024, 1),
        Err(RpcError::Serve(ServeError::ClusterMint))
    ));
}
