//! The sharded plane's defining invariant: for any submission sequence,
//! a [`ShardedReconfigService`] publishes exactly the plans a single
//! [`ReconfigService`] publishes — per cache, bit for bit — for every
//! shard count and in thread-pool mode. The router adds *placement*,
//! never *policy*, so callers migrate with zero semantic change.

use std::sync::Arc;

use proptest::prelude::*;
use talus_core::MissCurve;
use talus_partition::Planner;
use talus_serve::{
    CacheId, CacheSpec, EpochReport, PlanSnapshot, ReconfigService, ServeError,
    ShardedReconfigService,
};

/// The public surface both service configurations share, so one op
/// interpreter drives either. (Deliberately test-local: the library
/// promises identical inherent APIs, and this trait would hide a drift
/// in one of them — the impls below only compile while both match.)
trait Plane {
    fn register(&self, spec: CacheSpec) -> CacheId;
    fn deregister(&self, id: CacheId) -> Result<(), ServeError>;
    fn submit(&self, id: CacheId, tenant: usize, curve: MissCurve) -> Result<(), ServeError>;
    fn snapshot(&self, id: CacheId) -> Option<Arc<PlanSnapshot>>;
    fn run_epoch(&self) -> EpochReport;
    fn run_until_clean(&self) -> Vec<EpochReport>;
    fn registered(&self) -> usize;
}

macro_rules! impl_plane {
    ($ty:ty) => {
        impl Plane for $ty {
            fn register(&self, spec: CacheSpec) -> CacheId {
                <$ty>::register(self, spec)
            }
            fn deregister(&self, id: CacheId) -> Result<(), ServeError> {
                <$ty>::deregister(self, id)
            }
            fn submit(
                &self,
                id: CacheId,
                tenant: usize,
                curve: MissCurve,
            ) -> Result<(), ServeError> {
                <$ty>::submit(self, id, tenant, curve)
            }
            fn snapshot(&self, id: CacheId) -> Option<Arc<PlanSnapshot>> {
                <$ty>::snapshot(self, id)
            }
            fn run_epoch(&self) -> EpochReport {
                <$ty>::run_epoch(self)
            }
            fn run_until_clean(&self) -> Vec<EpochReport> {
                <$ty>::run_until_clean(self)
            }
            fn registered(&self) -> usize {
                <$ty>::registered(self)
            }
        }
    };
}

impl_plane!(ReconfigService);
impl_plane!(ShardedReconfigService);

/// One step of a random service history. Cache references are *slot*
/// indices into the list of ids registered so far (wrapped mod the live
/// count), so every generated sequence is meaningful on any service.
#[derive(Debug, Clone)]
enum Op {
    Register {
        capacity_grains: u64,
        tenants: usize,
    },
    Submit {
        slot: usize,
        tenant: usize,
        curve_seed: u64,
    },
    Deregister {
        slot: usize,
    },
    RunEpoch,
}

/// Random monotone miss curve on a 0..=16 × 64-line grid (the same family
/// the other serve property tests use), derived deterministically from a
/// seed so both services receive identical curves.
fn curve_from_seed(seed: u64) -> MissCurve {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut m = 10.0 + (next() % 40) as f64;
    let sizes: Vec<f64> = (0..=16).map(|i| i as f64 * 64.0).collect();
    let misses: Vec<f64> = sizes
        .iter()
        .map(|_| {
            let v = m;
            m = (m - (next() % 12) as f64).max(0.0);
            v
        })
        .collect();
    MissCurve::from_samples(&sizes, &misses).expect("valid curve")
}

fn arb_op() -> impl Strategy<Value = Op> {
    // Weighted mix by discriminant: 2/11 register, 6/11 submit,
    // 1/11 deregister, 2/11 run-epoch.
    (any::<u64>(), any::<u64>(), any::<usize>(), any::<u64>()).prop_map(
        |(kind, shape, slot, curve_seed)| match kind % 11 {
            0 | 1 => Op::Register {
                capacity_grains: 4 + shape % 12,
                tenants: 1 + (shape % 3) as usize,
            },
            2..=7 => Op::Submit {
                slot,
                tenant: (shape >> 8) as usize,
                curve_seed,
            },
            8 => Op::Deregister { slot },
            _ => Op::RunEpoch,
        },
    )
}

/// Replays `ops` against a service; returns every id ever registered and
/// whether it is still live, plus the report of every explicit epoch.
fn apply(plane: &dyn Plane, ops: &[Op]) -> (Vec<(CacheId, bool)>, Vec<EpochReport>) {
    let mut slots: Vec<(CacheId, bool, usize)> = Vec::new(); // (id, live, tenants)
    let mut reports = Vec::new();
    for op in ops {
        match op {
            Op::Register {
                capacity_grains,
                tenants,
            } => {
                let spec =
                    CacheSpec::new(capacity_grains * 64, *tenants).with_planner(Planner::new(64));
                slots.push((plane.register(spec), true, *tenants));
            }
            Op::Submit {
                slot,
                tenant,
                curve_seed,
            } => {
                if slots.is_empty() {
                    continue;
                }
                let (id, live, tenants) = slots[slot % slots.len()];
                let result = plane.submit(id, tenant % tenants, curve_from_seed(*curve_seed));
                // Dead caches error identically on both services.
                assert_eq!(result.is_err(), !live);
            }
            Op::Deregister { slot } => {
                if slots.is_empty() {
                    continue;
                }
                let index = slot % slots.len();
                let entry = &mut slots[index];
                let expect = entry.1;
                entry.1 = false;
                assert_eq!(plane.deregister(entry.0).is_ok(), expect);
            }
            Op::RunEpoch => reports.push(plane.run_epoch()),
        }
    }
    (
        slots.into_iter().map(|(id, live, _)| (id, live)).collect(),
        reports,
    )
}

/// Asserts the sharded service's final published state matches the
/// single service's, id by id. (Takes `dyn Plane` so the reader-side
/// trait methods are exercised through the same surface the op
/// interpreter uses.)
fn assert_same_final_state(single: &dyn Plane, sharded: &dyn Plane, ids: &[(CacheId, bool)]) {
    assert_eq!(single.registered(), sharded.registered());
    for &(id, live) in ids {
        let a = single.snapshot(id);
        let b = sharded.snapshot(id);
        if !live {
            assert!(a.is_none() && b.is_none(), "{id}: dead cache has no plan");
            continue;
        }
        match (a, b) {
            (None, None) => {} // never fully reported or planning failed
            (Some(a), Some(b)) => {
                assert_eq!(a.plan, b.plan, "{id}: plans diverge");
                assert_eq!(a.allocations(), b.allocations());
                assert_eq!(a.version, b.version, "{id}: versions diverge");
                assert_eq!(a.updates, b.updates, "{id}: update counts diverge");
            }
            (a, b) => panic!(
                "{id}: published on one service only (single: {}, sharded: {})",
                a.is_some(),
                b.is_some()
            ),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole invariant: random register/submit/deregister/epoch
    /// interleavings publish identical plans on the single service and on
    /// sharded planes of 1, 2, and 4 shards — including intermediate
    /// epoch reports, which are deterministic (CacheId order) on both.
    #[test]
    fn sharded_plans_equal_single_service_plans(
        ops in proptest::collection::vec(arb_op(), 1..60),
        shards in 1usize..5,
    ) {
        let single = ReconfigService::new();
        let sharded = ShardedReconfigService::new(shards);
        let (ids_single, reports_single) = apply(&single, &ops);
        let (ids_sharded, reports_sharded) = apply(&sharded, &ops);
        prop_assert_eq!(&ids_single, &ids_sharded, "id allocation must coincide");
        prop_assert_eq!(reports_single, reports_sharded, "epoch reports must coincide");

        // Drain whatever is still dirty, then compare final state.
        Plane::run_until_clean(&single);
        Plane::run_until_clean(&sharded);
        assert_same_final_state(&single, &sharded, &ids_single);
    }

    /// The same invariant with every shard planning on its own worker
    /// thread: thread-pool mode changes where plans are computed, never
    /// what is published.
    #[test]
    fn threaded_sharded_plans_equal_single_service_plans(
        ops in proptest::collection::vec(arb_op(), 1..40),
        shards in 2usize..5,
    ) {
        let single = ReconfigService::new();
        let sharded = ShardedReconfigService::new(shards).with_threads();
        let (ids_single, reports_single) = apply(&single, &ops);
        let (ids_sharded, reports_sharded) = apply(&sharded, &ops);
        prop_assert_eq!(&ids_single, &ids_sharded, "id allocation must coincide");
        prop_assert_eq!(reports_single, reports_sharded, "epoch reports must coincide");

        let drained_single = single.run_until_clean();
        let drained_sharded = sharded.run_until_clean();
        prop_assert_eq!(drained_single, drained_sharded, "drain reports must coincide");
        assert_same_final_state(&single, &sharded, &ids_single);
    }
}

/// Concurrent producers hammering a threaded 4-shard plane while it runs
/// epochs: after the dust settles, the final plans equal the single
/// service's plans for the same final curves.
#[test]
fn concurrent_producers_on_threaded_shards_converge_to_single_service_plans() {
    let shards = 4;
    let caches = 16usize;
    let tenants = 2usize;
    let rounds = 5u64;

    let sharded = Arc::new(ShardedReconfigService::new(shards).with_threads());
    let ids: Vec<CacheId> = (0..caches)
        .map(|_| sharded.register(CacheSpec::new(1024, tenants).with_planner(Planner::new(64))))
        .collect();

    let curve_for = |cache: usize, tenant: usize, round: u64| {
        curve_from_seed((cache as u64) << 24 | (tenant as u64) << 16 | round | 1)
    };

    // Four producer threads, striped over caches, racing the epoch loop.
    std::thread::scope(|scope| {
        for stripe in 0..4usize {
            let sharded = Arc::clone(&sharded);
            let ids = &ids;
            scope.spawn(move || {
                for round in 0..rounds {
                    for (c, id) in ids.iter().enumerate() {
                        if c % 4 != stripe {
                            continue;
                        }
                        for t in 0..tenants {
                            sharded
                                .submit(*id, t, curve_for(c, t, round))
                                .expect("registered");
                        }
                    }
                }
            });
        }
        for _ in 0..20 {
            sharded.run_epoch();
            std::thread::yield_now();
        }
    });
    // Converge on the final curves: resubmit them once and drain.
    for (c, id) in ids.iter().enumerate() {
        for t in 0..tenants {
            sharded
                .submit(*id, t, curve_for(c, t, rounds - 1))
                .expect("registered");
        }
    }
    sharded.run_until_clean();

    // The single-service reference sees only the final curves, and its
    // version counter must be aligned for the comparison: replay the
    // same number of successful replans. Plans depend only on the latest
    // curves (and round only via AllocPolicy::Imbalanced, unused here),
    // so comparing the published plan and allocations suffices.
    let single = ReconfigService::new();
    for (c, _) in ids.iter().enumerate() {
        let id = single.register(CacheSpec::new(1024, tenants).with_planner(Planner::new(64)));
        for t in 0..tenants {
            single
                .submit(id, t, curve_for(c, t, rounds - 1))
                .expect("registered");
        }
    }
    single.run_until_clean();

    for (c, id) in ids.iter().enumerate() {
        let got = sharded.snapshot(*id).expect("published");
        let want = single.snapshot(*id).expect("published");
        assert_eq!(got.plan.tenants, want.plan.tenants, "cache {c}");
        assert_eq!(got.allocations(), want.allocations(), "cache {c}");
    }
}
