//! The wire-protocol battery: round-trip properties for every message
//! type, a golden-bytes fixture pinning the v3 format, and an
//! adversarial suite proving the decoder is total — truncations,
//! hostile length fields, wrong versions, garbage opcodes, and random
//! byte soup all come back as typed errors, never panics, and never
//! cost allocation proportional to an attacker-controlled length.

use proptest::prelude::*;
use talus_core::limits::{WIRE_MAX_BATCH, WIRE_MAX_FRAME_LEN, WIRE_MAX_SHARDS, WIRE_MAX_TENANTS};
use talus_core::{MissCurve, PlanError, PlaneHealth, ShardHealth, ShardState, StoreHealth};
use talus_serve::wire::{
    decode_request, decode_response, encode_request, encode_response, read_frame, ClusterInfo,
    Request, Response, ShadowSummary, SnapshotSummary, SubmitEntry, TenantSummary, WireError,
    WIRE_VERSION,
};
use talus_serve::{CacheId, CacheSpec, EpochReport, ReconfigService, ServeError};

/// Real `CacheId`s from a throwaway service: the handle type is opaque
/// by design (only the plane mints ids), so tests that need ids in
/// decoded positions register real caches.
fn cache_ids(n: usize) -> Vec<CacheId> {
    let service = ReconfigService::new();
    (0..n)
        .map(|_| service.register(CacheSpec::new(64, 1)))
        .collect()
}

/// Random monotone miss curve derived deterministically from a seed
/// (the same family the sharding property tests use).
fn curve_from_seed(seed: u64) -> MissCurve {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let points = 2 + (next() % 15) as usize;
    let mut m = 10.0 + (next() % 40) as f64;
    let sizes: Vec<f64> = (0..points).map(|i| i as f64 * 64.0).collect();
    let misses: Vec<f64> = sizes
        .iter()
        .map(|_| {
            let v = m;
            m = (m - (next() % 12) as f64).max(0.0);
            v
        })
        .collect();
    MissCurve::from_samples(&sizes, &misses).expect("valid curve")
}

/// A `ServeError` in every variant, picked by seed, over a pool of ids.
fn serve_error_from_seed(seed: u64, ids: &[CacheId]) -> ServeError {
    let id = ids[(seed >> 8) as usize % ids.len()];
    match seed % 8 {
        0 => ServeError::UnknownCache(id),
        1 => ServeError::TenantOutOfRange {
            cache: id,
            tenant: (seed >> 16) as usize % 1000,
            tenants: (seed >> 24) as usize % 1000,
        },
        5 => ServeError::Misrouted {
            cache: id,
            shard: (seed >> 32) as usize % 4096,
        },
        6 => ServeError::DuplicateCache(id),
        7 => ServeError::ClusterMint,
        2 => ServeError::Plan {
            cache: id,
            source: PlanError::SizeOutOfRange {
                size: (seed % 1000) as f64 * 0.5,
                min: 0.0,
                max: (seed % 999) as f64,
            },
        },
        3 => ServeError::Plan {
            cache: id,
            source: PlanError::InvalidSize {
                size: -((seed % 17) as f64),
            },
        },
        _ => ServeError::Plan {
            cache: id,
            source: PlanError::InvalidMargin {
                margin: -0.25 * (seed % 9) as f64,
            },
        },
    }
}

/// Every request variant, picked by discriminant (the shim has no
/// `prop_oneof`, so weighting rides a modulus, as in `sharding.rs`).
fn arb_request() -> impl Strategy<Value = Request> {
    (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(kind, a, b, seed)| {
        match kind % 9 {
            0 => Request::Register {
                capacity: 1 + a % (1 << 32),
                tenants: 1 + (b % WIRE_MAX_TENANTS as u64) as u32,
            },
            1 => Request::Deregister { id: a },
            2 => {
                let entries = (0..1 + b % 5)
                    .map(|i| SubmitEntry {
                        id: a.wrapping_add(i),
                        tenant: (b >> 8) as u32 % 64,
                        curve: curve_from_seed(seed.wrapping_add(i)),
                    })
                    .collect();
                Request::Submit { entries }
            }
            3 => Request::RunEpoch,
            4 => Request::Report { id: a },
            5 => Request::Ping,
            6 => Request::Hello,
            7 => Request::RegisterAt {
                id: a,
                capacity: 1 + b % (1 << 32),
                tenants: 1 + (seed % WIRE_MAX_TENANTS as u64) as u32,
            },
            _ => Request::Health,
        }
    })
}

/// Every response variant. Ids come from a pool of real handles.
fn arb_response() -> impl Strategy<Value = Response> {
    (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(kind, a, b, seed)| {
        let ids = cache_ids(4);
        match kind % 10 {
            0 => Response::Registered { id: a },
            9 => {
                // A topology slice that always satisfies the decoder's
                // validation: count >= 1, first + count <= total.
                let total = 1 + a % 64;
                let count = 1 + b % total;
                let first = seed % (total - count + 1);
                Response::Hello(ClusterInfo {
                    total_shards: total as u32,
                    first_shard: first as u32,
                    shard_count: count as u32,
                    epoch: a >> 8,
                    next_id: b >> 8,
                    health: PlaneHealth {
                        epochs: a >> 8,
                        caches: b % 100,
                        pending: (b >> 4) % 100,
                        quarantined: (0..seed % 3).collect(),
                        shards: (0..1 + b % 3)
                            .map(|i| ShardHealth {
                                caches: (b >> i) % 50,
                                pending: 0,
                                quarantined: 0,
                                state: ShardState::Ok,
                            })
                            .collect(),
                        store: StoreHealth::Ok,
                        connections: 0,
                        rejected: 0,
                    },
                })
            }
            1 => Response::Deregistered,
            2 => Response::SubmitReply {
                results: (0..1 + b % 6)
                    .map(|i| {
                        if (seed >> i) & 1 == 0 {
                            Ok(())
                        } else {
                            Err(serve_error_from_seed(seed.wrapping_add(i), &ids))
                        }
                    })
                    .collect(),
            },
            3 => Response::Epoch(EpochReport {
                epoch: a,
                planned: ids[..(b % 3) as usize].to_vec(),
                deferred: ids[..(b >> 2) as usize % 3].to_vec(),
                failed: (0..(b >> 4) % 3)
                    .map(|i| {
                        let e = serve_error_from_seed(seed.wrapping_add(i), &ids);
                        (ids[i as usize], e)
                    })
                    .collect(),
                quarantined: ids[..(b >> 6) as usize % 3].to_vec(),
                remaining_dirty: (b >> 8) as usize % 1000,
            }),
            4 => {
                if b % 4 == 0 {
                    Response::Snapshot(None)
                } else {
                    Response::Snapshot(Some(SnapshotSummary {
                        cache: a,
                        epoch: seed % 1000,
                        version: 1 + seed % 50,
                        updates: seed % 200,
                        round: seed % 30,
                        tenants: (0..b % 4)
                            .map(|i| TenantSummary {
                                capacity: 64 * (1 + (seed >> i) % 16),
                                expected_misses: (seed % 997) as f64 * 0.125,
                                shadow: if (seed >> (8 + i)) & 1 == 0 {
                                    None
                                } else {
                                    Some(ShadowSummary {
                                        alpha: (seed % 89) as f64,
                                        beta: (seed % 91) as f64 + 128.0,
                                        rho: (seed % 100) as f64 / 100.0,
                                    })
                                },
                            })
                            .collect(),
                    }))
                }
            }
            5 => Response::Pong,
            6 => Response::Busy,
            7 => Response::Health(PlaneHealth {
                epochs: a % 10_000,
                caches: b % 1000,
                pending: (b >> 4) % 1000,
                quarantined: (0..(seed % 4))
                    .map(|i| (seed >> 8).wrapping_add(i))
                    .collect(),
                shards: (0..1 + b % 4)
                    .map(|i| ShardHealth {
                        caches: (b >> i) % 100,
                        pending: (seed >> i) % 100,
                        quarantined: (a >> i) % 4,
                        state: if (seed >> (16 + i)) & 1 == 0 {
                            ShardState::Ok
                        } else {
                            ShardState::Degraded
                        },
                    })
                    .collect(),
                store: match seed % 3 {
                    0 => StoreHealth::None,
                    1 => StoreHealth::Ok,
                    _ => StoreHealth::Faulted,
                },
                connections: a % 100,
                rejected: (a >> 8) % 100,
            }),
            _ => Response::Error(serve_error_from_seed(seed, &ids)),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `decode(encode(m)) == m` for every request variant — the frame
    /// also survives the stream reader, not just the payload decoder.
    #[test]
    fn requests_roundtrip(req in arb_request()) {
        let bytes = encode_request(&req);
        let payload = read_frame(&mut &bytes[..])
            .expect("valid frame")
            .expect("frame present");
        prop_assert_eq!(decode_request(&payload).expect("decodes"), req);
    }

    /// `decode(encode(m)) == m` for every response variant, including
    /// full `EpochReport`s and snapshot summaries with shadow configs.
    #[test]
    fn responses_roundtrip(resp in arb_response()) {
        let bytes = encode_response(&resp);
        let payload = read_frame(&mut &bytes[..])
            .expect("valid frame")
            .expect("frame present");
        prop_assert_eq!(decode_response(&payload).expect("decodes"), resp);
    }

    /// Random byte soup never panics any decoder entry point, and a
    /// stream of soup terminates (error or clean EOF) without panic.
    #[test]
    fn byte_soup_yields_typed_errors_not_panics(
        soup in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        // Direct payload decoding: any result is fine, panics are not.
        let _ = decode_request(&soup);
        let _ = decode_response(&soup);
        // Stream framing: drain until error or EOF, bounded.
        let mut reader = &soup[..];
        for _ in 0..soup.len() + 1 {
            match read_frame(&mut reader) {
                Ok(Some(payload)) => {
                    let _ = decode_request(&payload);
                    let _ = decode_response(&payload);
                }
                Ok(None) | Err(_) => break,
            }
        }
    }

    /// Every strict prefix of a valid frame is a typed failure: the
    /// stream reader reports truncation, and the payload decoder never
    /// succeeds on a shortened body (field boundaries don't align into
    /// an accidental smaller message).
    #[test]
    fn every_truncation_is_a_typed_error(req in arb_request()) {
        let bytes = encode_request(&req);
        for cut in 1..bytes.len() {
            let result = read_frame(&mut &bytes[..cut]);
            prop_assert_eq!(result, Err(WireError::Truncated), "cut at {}", cut);
        }
        let payload = &bytes[4..];
        for cut in 0..payload.len() {
            prop_assert!(decode_request(&payload[..cut]).is_err(), "cut at {}", cut);
        }
    }
}

/// A reader that panics if the transport reads past the length prefix —
/// proof that a hostile length field is rejected *before* any payload
/// read or allocation happens.
struct PanicPastHeader {
    header: Vec<u8>,
    pos: usize,
}

impl std::io::Read for PanicPastHeader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        assert!(
            self.pos < self.header.len(),
            "decoder read past the hostile length prefix"
        );
        let n = buf.len().min(self.header.len() - self.pos);
        buf[..n].copy_from_slice(&self.header[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

#[test]
fn oversized_length_prefix_is_rejected_before_any_payload_read() {
    for len in [
        WIRE_MAX_FRAME_LEN + 1,
        WIRE_MAX_FRAME_LEN * 2,
        u32::MAX,
        0xDEAD_BEEF,
    ] {
        let mut reader = PanicPastHeader {
            header: len.to_le_bytes().to_vec(),
            pos: 0,
        };
        assert_eq!(read_frame(&mut reader), Err(WireError::Oversized { len }));
    }
}

#[test]
fn undersized_length_prefix_is_malformed() {
    for len in [0u32, 1] {
        let mut bytes = len.to_le_bytes().to_vec();
        bytes.push(WIRE_VERSION);
        assert!(matches!(
            read_frame(&mut &bytes[..]),
            Err(WireError::Malformed(_))
        ));
    }
}

#[test]
fn wrong_version_is_rejected_on_every_opcode() {
    for version in [0u8, 1, 9, 0xFF] {
        for opcode in 0..=0xFFu8 {
            let payload = [version, opcode];
            assert_eq!(
                decode_request(&payload),
                Err(WireError::BadVersion { got: version })
            );
            assert_eq!(
                decode_response(&payload),
                Err(WireError::BadVersion { got: version })
            );
        }
    }
}

#[test]
fn garbage_opcodes_are_typed_errors() {
    let request_ops = [0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09];
    let response_ops = [0x81, 0x82, 0x83, 0x84, 0x85, 0x86, 0x87, 0x88, 0x8E, 0x8F];
    for opcode in 0..=0xFFu8 {
        let payload = [WIRE_VERSION, opcode];
        if !request_ops.contains(&opcode) {
            match decode_request(&payload) {
                // Known opcode, body missing: truncation is the right error.
                Err(WireError::Truncated) => assert!(request_ops.contains(&opcode)),
                Err(WireError::BadOpcode { got }) => assert_eq!(got, opcode),
                Err(WireError::Malformed(_)) | Err(WireError::BadCount { .. }) => {
                    panic!("empty body cannot produce counts")
                }
                other => panic!("opcode {opcode:#04x}: unexpected {other:?}"),
            }
        }
        if !response_ops.contains(&opcode) {
            assert_eq!(
                decode_response(&payload),
                Err(WireError::BadOpcode { got: opcode }),
                "opcode {opcode:#04x}"
            );
        }
    }
}

#[test]
fn hostile_counts_fail_before_allocation() {
    // u32::MAX submit entries would be ~100 GiB if the decoder trusted
    // the count; the test passing at all is the no-allocation proof.
    let mut payload = vec![WIRE_VERSION, 0x03];
    payload.extend_from_slice(&u32::MAX.to_le_bytes());
    assert_eq!(
        decode_request(&payload),
        Err(WireError::BadCount {
            count: u32::MAX,
            max: WIRE_MAX_BATCH
        })
    );
    // In-cap counts the frame can't hold fail the remaining-bytes check.
    let mut payload = vec![WIRE_VERSION, 0x03];
    payload.extend_from_slice(&WIRE_MAX_BATCH.to_le_bytes());
    assert_eq!(decode_request(&payload), Err(WireError::Truncated));
    // Same for id lists inside an epoch report.
    let mut payload = vec![WIRE_VERSION, 0x84];
    payload.extend_from_slice(&7u64.to_le_bytes());
    payload.extend_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        decode_response(&payload),
        Err(WireError::BadCount { .. })
    ));
}

#[test]
fn register_bounds_are_enforced_at_decode_time() {
    // The server builds a CacheSpec (which panics on zero) from decoded
    // fields, so the decoder must reject them first.
    let encode = |capacity: u64, tenants: u32| {
        let mut payload = vec![WIRE_VERSION, 0x01];
        payload.extend_from_slice(&capacity.to_le_bytes());
        payload.extend_from_slice(&tenants.to_le_bytes());
        payload
    };
    assert!(matches!(
        decode_request(&encode(0, 1)),
        Err(WireError::Malformed(_))
    ));
    assert!(matches!(
        decode_request(&encode(64, 0)),
        Err(WireError::Malformed(_))
    ));
    assert_eq!(
        decode_request(&encode(64, WIRE_MAX_TENANTS + 1)),
        Err(WireError::BadCount {
            count: WIRE_MAX_TENANTS + 1,
            max: WIRE_MAX_TENANTS
        })
    );
    assert!(decode_request(&encode(64, WIRE_MAX_TENANTS)).is_ok());
}

#[test]
fn invalid_curves_are_rejected_with_curve_errors() {
    let encode = |points: &[(f64, f64)]| {
        let mut payload = vec![WIRE_VERSION, 0x03];
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.extend_from_slice(&5u64.to_le_bytes());
        payload.extend_from_slice(&0u32.to_le_bytes());
        payload.extend_from_slice(&(points.len() as u32).to_le_bytes());
        for (size, misses) in points {
            payload.extend_from_slice(&size.to_bits().to_le_bytes());
            payload.extend_from_slice(&misses.to_bits().to_le_bytes());
        }
        payload
    };
    // Non-increasing sizes, NaN, negative misses: the decoder funnels
    // every curve through MissCurve::from_samples, so a decoded curve
    // upholds the same invariants as a locally built one.
    assert!(matches!(
        decode_request(&encode(&[(64.0, 4.0), (64.0, 2.0)])),
        Err(WireError::Curve(_))
    ));
    assert!(matches!(
        decode_request(&encode(&[(f64::NAN, 4.0)])),
        Err(WireError::Curve(_))
    ));
    assert!(matches!(
        decode_request(&encode(&[(0.0, -1.0)])),
        Err(WireError::Curve(_))
    ));
    assert!(decode_request(&encode(&[(0.0, 4.0), (64.0, 2.0)])).is_ok());
}

#[test]
fn trailing_bytes_are_malformed() {
    for req in [
        Request::Ping,
        Request::RunEpoch,
        Request::Deregister { id: 3 },
    ] {
        let mut bytes = encode_request(&req);
        bytes.push(0x00);
        assert!(
            matches!(decode_request(&bytes[4..]), Err(WireError::Malformed(_))),
            "{req:?} must not tolerate trailing bytes"
        );
    }
}

// ---------------------------------------------------------------------
// Golden bytes: the v3 format, pinned byte for byte. If any of these
// fail, the wire format changed — bump WIRE_VERSION and make the change
// deliberate. (v3 over v2: Hello handshake opcodes 0x08/0x88 carrying
// ClusterInfo, RegisterAt opcode 0x09 for client-minted ids, and
// serve-error tags 5/6/7 for cluster routing faults.)
// ---------------------------------------------------------------------

#[test]
fn golden_v3_constants() {
    assert_eq!(WIRE_VERSION, 3);
    // The limits are part of the format contract (decoders reject by
    // them), so drifting them silently is a wire change too.
    assert_eq!(WIRE_MAX_FRAME_LEN, 1 << 20);
    assert_eq!(WIRE_MAX_BATCH, 1024);
    assert_eq!(WIRE_MAX_TENANTS, 1024);
    assert_eq!(WIRE_MAX_SHARDS, 4096);
}

#[test]
fn golden_v3_fixed_frames() {
    // [len=2 LE] [version=3] [opcode]
    assert_eq!(encode_request(&Request::Ping), [2, 0, 0, 0, 3, 0x06]);
    assert_eq!(encode_request(&Request::RunEpoch), [2, 0, 0, 0, 3, 0x04]);
    assert_eq!(encode_request(&Request::Health), [2, 0, 0, 0, 3, 0x07]);
    assert_eq!(encode_response(&Response::Pong), [2, 0, 0, 0, 3, 0x86]);
    assert_eq!(encode_response(&Response::Busy), [2, 0, 0, 0, 3, 0x8E]);
    assert_eq!(
        encode_response(&Response::Deregistered),
        [2, 0, 0, 0, 3, 0x82]
    );
}

#[test]
fn golden_v3_register_frame() {
    // len=14: version + opcode + capacity u64 LE + tenants u32 LE.
    let bytes = encode_request(&Request::Register {
        capacity: 4096,
        tenants: 3,
    });
    assert_eq!(
        bytes,
        [
            14, 0, 0, 0, // length
            3, 0x01, // version, opcode
            0x00, 0x10, 0, 0, 0, 0, 0, 0, // capacity = 4096
            3, 0, 0, 0, // tenants
        ]
    );
}

#[test]
fn golden_v3_submit_frame() {
    // One entry, two-point curve; f64s are IEEE-754 bit patterns LE.
    let curve = MissCurve::from_samples(&[0.0, 64.0], &[8.0, 2.0]).unwrap();
    let bytes = encode_request(&Request::Submit {
        entries: vec![SubmitEntry {
            id: 7,
            tenant: 1,
            curve,
        }],
    });
    assert_eq!(
        bytes,
        [
            54, 0, 0, 0, // length = 2 + 4 + 8 + 4 + 4 + 2*16
            3, 0x03, // version, opcode
            1, 0, 0, 0, // entry count
            7, 0, 0, 0, 0, 0, 0, 0, // cache id
            1, 0, 0, 0, // tenant
            2, 0, 0, 0, // point count
            0, 0, 0, 0, 0, 0, 0, 0, // size 0.0
            0, 0, 0, 0, 0, 0, 0x20, 0x40, // misses 8.0
            0, 0, 0, 0, 0, 0, 0x50, 0x40, // size 64.0
            0, 0, 0, 0, 0, 0, 0x00, 0x40, // misses 2.0
        ]
    );
}

#[test]
fn golden_v3_epoch_report_frame() {
    let ids = cache_ids(2);
    let bytes = encode_response(&Response::Epoch(EpochReport {
        epoch: 3,
        planned: vec![ids[0]],
        deferred: vec![],
        failed: vec![(ids[1], ServeError::UnknownCache(ids[1]))],
        quarantined: vec![],
        remaining_dirty: 2,
    }));
    assert_eq!(
        bytes,
        [
            59, 0, 0, 0, // length
            3, 0x84, // version, opcode
            3, 0, 0, 0, 0, 0, 0, 0, // epoch
            1, 0, 0, 0, // planned count
            0, 0, 0, 0, 0, 0, 0, 0, // planned[0] = cache id 0
            0, 0, 0, 0, // deferred count
            1, 0, 0, 0, // failed count
            1, 0, 0, 0, 0, 0, 0, 0, // failed[0] cache id 1
            1, // serve-error tag: UnknownCache
            1, 0, 0, 0, 0, 0, 0, 0, // the unknown id
            0, 0, 0, 0, // quarantined count (v2)
            2, 0, 0, 0, 0, 0, 0, 0, // remaining_dirty
        ]
    );
}

#[test]
fn golden_v3_quarantined_error_frame() {
    // Serve-error tag 4 (v2): a submission rejected by quarantine.
    let ids = cache_ids(1);
    let bytes = encode_response(&Response::Error(ServeError::Quarantined(ids[0])));
    assert_eq!(
        bytes,
        [
            11, 0, 0, 0, // length
            3, 0x8F, // version, opcode
            4,    // serve-error tag: Quarantined
            0, 0, 0, 0, 0, 0, 0, 0, // the quarantined id
        ]
    );
}

#[test]
fn golden_v3_health_frame() {
    let bytes = encode_response(&Response::Health(PlaneHealth {
        epochs: 5,
        caches: 3,
        pending: 1,
        quarantined: vec![9],
        shards: vec![
            ShardHealth {
                caches: 2,
                pending: 1,
                quarantined: 0,
                state: ShardState::Ok,
            },
            ShardHealth {
                caches: 1,
                pending: 0,
                quarantined: 1,
                state: ShardState::Degraded,
            },
        ],
        store: StoreHealth::Faulted,
        connections: 4,
        rejected: 7,
    }));
    assert_eq!(
        bytes,
        [
            109, 0, 0, 0, // length
            3, 0x87, // version, opcode
            5, 0, 0, 0, 0, 0, 0, 0, // epochs
            3, 0, 0, 0, 0, 0, 0, 0, // caches
            1, 0, 0, 0, 0, 0, 0, 0, // pending
            4, 0, 0, 0, 0, 0, 0, 0, // connections
            7, 0, 0, 0, 0, 0, 0, 0, // rejected
            2, // store: Faulted
            1, 0, 0, 0, // quarantined count
            9, 0, 0, 0, 0, 0, 0, 0, // quarantined[0]
            2, 0, 0, 0, // shard count
            2, 0, 0, 0, 0, 0, 0, 0, // shard 0 caches
            1, 0, 0, 0, 0, 0, 0, 0, // shard 0 pending
            0, 0, 0, 0, 0, 0, 0, 0, // shard 0 quarantined
            0, // shard 0 state: Ok
            1, 0, 0, 0, 0, 0, 0, 0, // shard 1 caches
            0, 0, 0, 0, 0, 0, 0, 0, // shard 1 pending
            1, 0, 0, 0, 0, 0, 0, 0, // shard 1 quarantined
            1, // shard 1 state: Degraded
        ]
    );
}

#[test]
fn hostile_health_shard_count_fails_before_allocation() {
    // A health frame claiming u32::MAX shards would be ~100 GiB if the
    // decoder trusted the count.
    let mut payload = vec![WIRE_VERSION, 0x87];
    for _ in 0..5 {
        payload.extend_from_slice(&0u64.to_le_bytes());
    }
    payload.push(0); // store: None
    payload.extend_from_slice(&0u32.to_le_bytes()); // no quarantined ids
    payload.extend_from_slice(&u32::MAX.to_le_bytes()); // hostile shards
    assert!(matches!(
        decode_response(&payload),
        Err(WireError::BadCount { .. })
    ));
}

#[test]
fn golden_v3_snapshot_frame() {
    let bytes = encode_response(&Response::Snapshot(Some(SnapshotSummary {
        cache: 5,
        epoch: 9,
        version: 2,
        updates: 4,
        round: 9,
        tenants: vec![TenantSummary {
            capacity: 1024,
            expected_misses: 2.0,
            shadow: Some(ShadowSummary {
                alpha: 64.0,
                beta: 128.0,
                rho: 0.5,
            }),
        }],
    })));
    assert_eq!(
        bytes,
        [
            88, 0, 0, 0, // length
            3, 0x85, // version, opcode
            1,    // present tag
            5, 0, 0, 0, 0, 0, 0, 0, // cache
            9, 0, 0, 0, 0, 0, 0, 0, // epoch
            2, 0, 0, 0, 0, 0, 0, 0, // version
            4, 0, 0, 0, 0, 0, 0, 0, // updates
            9, 0, 0, 0, 0, 0, 0, 0, // round
            1, 0, 0, 0, // tenant count
            0, 4, 0, 0, 0, 0, 0, 0, // capacity = 1024
            0, 0, 0, 0, 0, 0, 0x00, 0x40, // expected_misses 2.0
            1,    // shadow tag: present
            0, 0, 0, 0, 0, 0, 0x50, 0x40, // alpha 64.0
            0, 0, 0, 0, 0, 0, 0x60, 0x40, // beta 128.0
            0, 0, 0, 0, 0, 0, 0xE0, 0x3F, // rho 0.5
        ]
    );
    // Absent snapshot: just the tag.
    assert_eq!(
        encode_response(&Response::Snapshot(None)),
        [3, 0, 0, 0, 3, 0x85, 0]
    );
}

#[test]
fn golden_v3_hello_frames() {
    // The handshake request carries no body.
    assert_eq!(encode_request(&Request::Hello), [2, 0, 0, 0, 3, 0x08]);

    // The reply: topology slice, epoch, next-id hint, then the full
    // plane-health block in its usual layout.
    let bytes = encode_response(&Response::Hello(ClusterInfo {
        total_shards: 6,
        first_shard: 2,
        shard_count: 2,
        epoch: 5,
        next_id: 9,
        health: PlaneHealth {
            epochs: 5,
            caches: 1,
            pending: 0,
            quarantined: vec![],
            shards: vec![ShardHealth {
                caches: 1,
                pending: 0,
                quarantined: 0,
                state: ShardState::Ok,
            }],
            store: StoreHealth::Ok,
            connections: 0,
            rejected: 0,
        },
    }));
    assert_eq!(
        bytes,
        [
            104, 0, 0, 0, // length
            3, 0x88, // version, opcode
            6, 0, 0, 0, // total_shards
            2, 0, 0, 0, // first_shard
            2, 0, 0, 0, // shard_count
            5, 0, 0, 0, 0, 0, 0, 0, // epoch
            9, 0, 0, 0, 0, 0, 0, 0, // next_id
            5, 0, 0, 0, 0, 0, 0, 0, // health: epochs
            1, 0, 0, 0, 0, 0, 0, 0, // health: caches
            0, 0, 0, 0, 0, 0, 0, 0, // health: pending
            0, 0, 0, 0, 0, 0, 0, 0, // health: connections
            0, 0, 0, 0, 0, 0, 0, 0, // health: rejected
            1, // store: Ok
            0, 0, 0, 0, // quarantined count
            1, 0, 0, 0, // shard count
            1, 0, 0, 0, 0, 0, 0, 0, // shard 0 caches
            0, 0, 0, 0, 0, 0, 0, 0, // shard 0 pending
            0, 0, 0, 0, 0, 0, 0, 0, // shard 0 quarantined
            0, // shard 0 state: Ok
        ]
    );
}

#[test]
fn golden_v3_register_at_frame() {
    // Client-minted registration: id + capacity + tenants.
    let bytes = encode_request(&Request::RegisterAt {
        id: 5,
        capacity: 4096,
        tenants: 3,
    });
    assert_eq!(
        bytes,
        [
            22, 0, 0, 0, // length
            3, 0x09, // version, opcode
            5, 0, 0, 0, 0, 0, 0, 0, // cache id
            0x00, 0x10, 0, 0, 0, 0, 0, 0, // capacity = 4096
            3, 0, 0, 0, // tenants
        ]
    );
}

#[test]
fn golden_v3_cluster_error_frames() {
    let ids = cache_ids(1);

    // Tag 5: a request routed to a member that does not own the id.
    let bytes = encode_response(&Response::Error(ServeError::Misrouted {
        cache: ids[0],
        shard: 3,
    }));
    assert_eq!(
        bytes,
        [
            15, 0, 0, 0, // length
            3, 0x8F, // version, opcode
            5,    // serve-error tag: Misrouted
            0, 0, 0, 0, 0, 0, 0, 0, // the misrouted cache id
            3, 0, 0, 0, // the receiving member's owning shard hint
        ]
    );

    // Tag 6: RegisterAt collided with a different live spec.
    let bytes = encode_response(&Response::Error(ServeError::DuplicateCache(ids[0])));
    assert_eq!(
        bytes,
        [
            11, 0, 0, 0, // length
            3, 0x8F, // version, opcode
            6,    // serve-error tag: DuplicateCache
            0, 0, 0, 0, 0, 0, 0, 0, // the colliding id
        ]
    );

    // Tag 7: server-side minting rejected on a cluster topology.
    assert_eq!(
        encode_response(&Response::Error(ServeError::ClusterMint)),
        [3, 0, 0, 0, 3, 0x8F, 7]
    );
}
