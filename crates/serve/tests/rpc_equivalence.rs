//! The network layer's defining invariant, extending the sharding
//! discipline across the wire: for any interleaving of register /
//! submit / deregister / epoch operations, a plane driven through
//! `RpcClient` → loopback TCP → `RpcServer` returns bit-identical
//! results — per-op errors, `EpochReport`s, and final published
//! snapshots — to a local [`ShardedReconfigService`] fed the same
//! interleaving. The wire adds *transport*, never *policy*.

use std::sync::Arc;

use proptest::prelude::*;
use talus_core::{MissCurve, ReplaySource};
use talus_serve::{
    CacheId, CacheSpec, EpochReport, RpcClient, RpcError, RpcServer, ServeError,
    ShardedReconfigService,
};

/// One step of a random plane history. Cache references are slot
/// indices into the ids registered so far (mod the slot count), so any
/// generated sequence is meaningful on any plane.
#[derive(Debug, Clone)]
enum Op {
    Register {
        capacity_grains: u64,
        tenants: usize,
    },
    Submit {
        slot: usize,
        tenant: usize,
        curve_seed: u64,
    },
    Deregister {
        slot: usize,
    },
    RunEpoch,
}

/// Random monotone miss curve on a 0..=16 × 64-line grid, derived
/// deterministically from a seed so both planes receive identical
/// curves (the same family as `tests/sharding.rs`).
fn curve_from_seed(seed: u64) -> MissCurve {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut m = 10.0 + (next() % 40) as f64;
    let sizes: Vec<f64> = (0..=16).map(|i| i as f64 * 64.0).collect();
    let misses: Vec<f64> = sizes
        .iter()
        .map(|_| {
            let v = m;
            m = (m - (next() % 12) as f64).max(0.0);
            v
        })
        .collect();
    MissCurve::from_samples(&sizes, &misses).expect("valid curve")
}

fn arb_op() -> impl Strategy<Value = Op> {
    // Weighted mix by discriminant: 2/11 register, 6/11 submit,
    // 1/11 deregister, 2/11 run-epoch.
    (any::<u64>(), any::<u64>(), any::<usize>(), any::<u64>()).prop_map(
        |(kind, shape, slot, curve_seed)| match kind % 11 {
            0 | 1 => Op::Register {
                // RPC registration always uses the default planner
                // (capacity/64 grain), so capacities stay small to keep
                // the grain coarse and planning fast.
                capacity_grains: 4 + shape % 12,
                tenants: 1 + (shape % 3) as usize,
            },
            2..=7 => Op::Submit {
                slot,
                tenant: (shape >> 8) as usize,
                curve_seed,
            },
            8 => Op::Deregister { slot },
            _ => Op::RunEpoch,
        },
    )
}

/// Flattens a client result into the local `submit`/`deregister` shape
/// so per-op outcomes compare directly; transport errors are bugs.
fn as_serve_result(result: Result<(), RpcError>) -> Result<(), ServeError> {
    match result {
        Ok(()) => Ok(()),
        Err(RpcError::Serve(e)) => Err(e),
        Err(other) => panic!("transport failed mid-property: {other}"),
    }
}

/// Replays `ops` against the local plane and, via `client`, the remote
/// one — asserting every per-op outcome matches along the way. Returns
/// the ids ever registered (with liveness) and every explicit epoch's
/// paired reports.
fn apply_both(
    local: &ShardedReconfigService,
    client: &mut RpcClient,
    ops: &[Op],
) -> (Vec<(CacheId, bool)>, Vec<(EpochReport, EpochReport)>) {
    let mut slots: Vec<(CacheId, bool, usize)> = Vec::new();
    let mut reports = Vec::new();
    for op in ops {
        match op {
            Op::Register {
                capacity_grains,
                tenants,
            } => {
                let capacity = capacity_grains * 64;
                let id = local.register(CacheSpec::new(capacity, *tenants));
                let remote_id = client
                    .register(capacity, *tenants as u32)
                    .expect("register over rpc");
                assert_eq!(id, remote_id, "id minting must coincide");
                slots.push((id, true, *tenants));
            }
            Op::Submit {
                slot,
                tenant,
                curve_seed,
            } => {
                if slots.is_empty() {
                    continue;
                }
                let (id, _, tenants) = slots[slot % slots.len()];
                let tenant = tenant % tenants;
                let curve = curve_from_seed(*curve_seed);
                let local_result = local.submit(id, tenant, curve.clone());
                let rpc_result = as_serve_result(client.submit(id, tenant, curve));
                assert_eq!(local_result, rpc_result, "submit outcomes diverge");
            }
            Op::Deregister { slot } => {
                if slots.is_empty() {
                    continue;
                }
                let index = slot % slots.len();
                let (id, live, _) = slots[index];
                slots[index].1 = false;
                let local_result = local.deregister(id);
                let rpc_result = as_serve_result(client.deregister(id));
                assert_eq!(local_result, rpc_result, "deregister outcomes diverge");
                assert_eq!(local_result.is_ok(), live);
            }
            Op::RunEpoch => {
                let local_report = local.run_epoch();
                let rpc_report = client.run_epoch().expect("epoch over rpc");
                reports.push((local_report, rpc_report));
            }
        }
    }
    (
        slots.into_iter().map(|(id, live, _)| (id, live)).collect(),
        reports,
    )
}

/// Compares final published state: the remote plane's server-side
/// snapshots bit-for-bit against the local plane's, and the wire
/// summaries a remote applier would read against those snapshots.
fn assert_same_final_state(
    local: &ShardedReconfigService,
    remote: &ShardedReconfigService,
    client: &mut RpcClient,
    ids: &[(CacheId, bool)],
) {
    assert_eq!(local.registered(), remote.registered());
    for &(id, live) in ids {
        let a = local.snapshot(id);
        let b = remote.snapshot(id);
        let summary = client.report(id).expect("report over rpc");
        if !live {
            assert!(a.is_none() && b.is_none(), "{id}: dead cache has no plan");
            assert!(summary.is_none(), "{id}: dead cache has no wire summary");
            continue;
        }
        match (a, b) {
            (None, None) => assert!(summary.is_none()),
            (Some(a), Some(b)) => {
                assert_eq!(a.plan, b.plan, "{id}: plans diverge across the wire");
                assert_eq!(a.allocations(), b.allocations());
                assert_eq!(a.version, b.version, "{id}: versions diverge");
                assert_eq!(a.updates, b.updates, "{id}: update counts diverge");
                // The wire summary mirrors the snapshot, f64s bit-exact.
                let summary = summary.expect("published plan has a summary");
                assert_eq!(summary.cache, id.value());
                assert_eq!(summary.version, b.version);
                assert_eq!(summary.epoch, b.epoch);
                assert_eq!(summary.updates, b.updates);
                assert_eq!(summary.round, b.plan.round);
                assert_eq!(summary.tenants.len(), b.plan.tenants.len());
                for (wire, tenant) in summary.tenants.iter().zip(&b.plan.tenants) {
                    assert_eq!(wire.capacity, tenant.capacity);
                    assert_eq!(
                        wire.expected_misses.to_bits(),
                        tenant.plan.expected_misses().to_bits(),
                        "{id}: expected misses not bit-exact over the wire"
                    );
                    match (&wire.shadow, tenant.plan.shadow()) {
                        (None, None) => {}
                        (Some(ws), Some(s)) => {
                            assert_eq!(ws.alpha.to_bits(), s.alpha.to_bits());
                            assert_eq!(ws.beta.to_bits(), s.beta.to_bits());
                            assert_eq!(ws.rho.to_bits(), s.rho.to_bits());
                        }
                        (ws, s) => panic!(
                            "{id}: shadow present on one side only \
                             (wire: {}, snapshot: {})",
                            ws.is_some(),
                            s.is_some()
                        ),
                    }
                }
            }
            (a, b) => panic!(
                "{id}: published on one plane only (local: {}, rpc: {})",
                a.is_some(),
                b.is_some()
            ),
        }
    }
}

/// One loopback plane: (server-side service handle, connected client,
/// handle to keep the accept loop alive).
fn loopback_plane(
    shards: usize,
) -> (
    Arc<ShardedReconfigService>,
    RpcClient,
    talus_serve::ServerHandle,
) {
    let service = Arc::new(ShardedReconfigService::new(shards));
    let handle = RpcServer::bind("127.0.0.1:0", Arc::clone(&service))
        .expect("bind loopback")
        .spawn()
        .expect("spawn accept loop");
    let client = RpcClient::connect(handle.local_addr()).expect("connect");
    (service, client, handle)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole invariant: any op interleaving produces identical
    /// per-op results, identical `EpochReport`s, and bit-identical
    /// final snapshots whether the plane is called locally or through
    /// the loopback RPC stack.
    #[test]
    fn rpc_plane_equals_local_plane(
        ops in proptest::collection::vec(arb_op(), 1..40),
        shards in 1usize..4,
    ) {
        let local = ShardedReconfigService::new(shards);
        let (remote, mut client, handle) = loopback_plane(shards);

        let (ids, reports) = apply_both(&local, &mut client, &ops);
        for (local_report, rpc_report) in reports {
            prop_assert_eq!(local_report, rpc_report, "epoch reports diverge");
        }

        // Drain both planes the same way, comparing the drain reports.
        while local.pending() > 0 || remote.pending() > 0 {
            let local_report = local.run_epoch();
            let rpc_report = client.run_epoch().expect("epoch over rpc");
            prop_assert_eq!(local_report, rpc_report, "drain reports diverge");
        }
        assert_same_final_state(&local, &remote, &mut client, &ids);
        handle.shutdown();
    }
}

/// Staged batching is invisible to the plane: interleaved `stage` calls
/// flushed in one frame publish exactly what one-at-a-time local
/// submissions publish.
#[test]
fn staged_batches_equal_individual_submissions() {
    let local = ShardedReconfigService::new(2);
    let (remote, mut client, handle) = loopback_plane(2);

    let caches = 6usize;
    let tenants = 2usize;
    let ids: Vec<CacheId> = (0..caches)
        .map(|c| {
            let id = local.register(CacheSpec::new(512, tenants));
            let remote_id = client.register(512, tenants as u32).expect("register");
            assert_eq!(id, remote_id);
            let _ = c;
            id
        })
        .collect();

    for round in 0..3u64 {
        for (c, id) in ids.iter().enumerate() {
            for t in 0..tenants {
                let curve = curve_from_seed((c as u64) << 20 | (t as u64) << 12 | round | 1);
                local.submit(*id, t, curve.clone()).expect("registered");
                client.stage(*id, t, curve).expect("staged");
            }
        }
        assert!(client.staged_len() > 0, "stage defers the wire round trip");
        let results = client.flush().expect("flush");
        assert_eq!(results.len(), caches * tenants);
        assert!(results.iter().all(Result::is_ok));
        let local_report = local.run_epoch();
        let rpc_report = client.run_epoch().expect("epoch over rpc");
        assert_eq!(local_report, rpc_report);
    }

    for id in &ids {
        let a = local.snapshot(*id).expect("published");
        let b = remote.snapshot(*id).expect("published");
        assert_eq!(a.plan, b.plan, "{id}: staged ingest changed the plan");
        assert_eq!(a.version, b.version);
        assert_eq!(a.updates, b.updates);
    }
    handle.shutdown();
}

/// The client-side `submit_latest` mirrors the local backlog-coalescing
/// contract: same drained counts, same published plans, and the stale
/// backlog never crosses the wire.
#[test]
fn submit_latest_coalesces_identically_across_the_wire() {
    let local = ShardedReconfigService::new(1);
    let (remote, mut client, handle) = loopback_plane(1);

    let id = local.register(CacheSpec::new(512, 1));
    assert_eq!(client.register(512, 1).expect("register"), id);

    let backlog: Vec<MissCurve> = (0..5).map(|i| curve_from_seed(100 + i)).collect();
    let mut local_source = ReplaySource::new(backlog.clone());
    let mut rpc_source = ReplaySource::new(backlog);

    let local_drained = local
        .submit_latest(id, 0, &mut local_source, 8)
        .expect("submit");
    let rpc_drained = client
        .submit_latest(id, 0, &mut rpc_source, 8)
        .expect("submit over rpc");
    assert_eq!(local_drained, rpc_drained);
    assert_eq!(local_drained, 5);

    assert_eq!(local.run_epoch(), client.run_epoch().expect("epoch"));
    let a = local.snapshot(id).expect("published");
    let b = remote.snapshot(id).expect("published");
    assert_eq!(a.plan, b.plan);
    assert_eq!(a.updates, 1, "backlog coalesced to one update");
    assert_eq!(b.updates, 1, "backlog coalesced to one update over rpc");

    // Exhausted source: nothing drained, nothing queued, on both planes.
    assert_eq!(
        local
            .submit_latest(id, 0, &mut local_source, 8)
            .expect("ok"),
        0
    );
    assert_eq!(
        client.submit_latest(id, 0, &mut rpc_source, 8).expect("ok"),
        0
    );
    assert_eq!(local.pending(), 0);
    assert_eq!(remote.pending(), 0);
    handle.shutdown();
}
