//! The store's headline invariant: a plane warm-restarted from its
//! journal is indistinguishable from one that never died. For any random
//! history cut at any point, the restored plane and an uninterrupted
//! witness produce bit-identical epoch reports, snapshots, id
//! allocations, and epoch counters for the rest of the history — and
//! restoring is idempotent and total under truncation.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use talus_core::MissCurve;
use talus_partition::Planner;
use talus_serve::{CacheId, CacheSpec, EpochReport, RestoreError, ShardedReconfigService};
use talus_store::{Store, StoreSink};

static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "talus-restore-test-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// One step of a random service history — same shape as the sharding
/// equivalence tests, slot-based so any sequence is meaningful.
#[derive(Debug, Clone)]
enum Op {
    Register {
        capacity_grains: u64,
        tenants: usize,
    },
    Submit {
        slot: usize,
        tenant: usize,
        curve_seed: u64,
    },
    Deregister {
        slot: usize,
    },
    RunEpoch,
}

/// Deterministic monotone miss curve (the serve test family).
fn curve_from_seed(seed: u64) -> MissCurve {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut m = 10.0 + (next() % 40) as f64;
    let sizes: Vec<f64> = (0..=16).map(|i| i as f64 * 64.0).collect();
    let misses: Vec<f64> = sizes
        .iter()
        .map(|_| {
            let v = m;
            m = (m - (next() % 12) as f64).max(0.0);
            v
        })
        .collect();
    MissCurve::from_samples(&sizes, &misses).expect("valid curve")
}

fn arb_op() -> impl Strategy<Value = Op> {
    (any::<u64>(), any::<u64>(), any::<usize>(), any::<u64>()).prop_map(
        |(kind, shape, slot, curve_seed)| match kind % 11 {
            0 | 1 => Op::Register {
                capacity_grains: 4 + shape % 12,
                tenants: 1 + (shape % 3) as usize,
            },
            2..=7 => Op::Submit {
                slot,
                tenant: (shape >> 8) as usize,
                curve_seed,
            },
            8 => Op::Deregister { slot },
            _ => Op::RunEpoch,
        },
    )
}

/// Slot table threaded through multi-phase replays: every id ever
/// registered, whether it is still live, and its tenant count.
type Slots = Vec<(CacheId, bool, usize)>;

/// Replays `ops` against a plane, continuing from `slots` (so a history
/// can be split across a crash). Returns the epoch reports.
fn apply(plane: &ShardedReconfigService, slots: &mut Slots, ops: &[Op]) -> Vec<EpochReport> {
    let mut reports = Vec::new();
    for op in ops {
        match op {
            Op::Register {
                capacity_grains,
                tenants,
            } => {
                let spec =
                    CacheSpec::new(capacity_grains * 64, *tenants).with_planner(Planner::new(64));
                slots.push((plane.register(spec), true, *tenants));
            }
            Op::Submit {
                slot,
                tenant,
                curve_seed,
            } => {
                if slots.is_empty() {
                    continue;
                }
                let (id, live, tenants) = slots[slot % slots.len()];
                let result = plane.submit(id, tenant % tenants, curve_from_seed(*curve_seed));
                assert_eq!(result.is_err(), !live);
            }
            Op::Deregister { slot } => {
                if slots.is_empty() {
                    continue;
                }
                let index = slot % slots.len();
                let entry = &mut slots[index];
                let expect = entry.1;
                entry.1 = false;
                assert_eq!(plane.deregister(entry.0).is_ok(), expect);
            }
            Op::RunEpoch => reports.push(plane.run_epoch()),
        }
    }
    reports
}

/// Asserts two planes are observably identical: same counters, same
/// snapshot (bit for bit) for every id in the history, and the same
/// next allocated id.
fn assert_planes_identical(a: &ShardedReconfigService, b: &ShardedReconfigService, slots: &Slots) {
    assert_eq!(a.registered(), b.registered(), "registered counts diverge");
    assert_eq!(a.pending(), b.pending(), "dirty backlogs diverge");
    assert_eq!(a.epochs(), b.epochs(), "epoch counters diverge");
    for &(id, live, _) in slots {
        let sa = a.snapshot(id);
        let sb = b.snapshot(id);
        assert_eq!(sa, sb, "{id}: snapshots diverge");
        if !live {
            assert!(sa.is_none(), "{id}: dead cache has no plan");
        }
    }
    // The id allocator resumed exactly: both planes hand out the same
    // next id (registered on both so the comparison doesn't skew them).
    let na = a.register(CacheSpec::new(1024, 1));
    let nb = b.register(CacheSpec::new(1024, 1));
    assert_eq!(na, nb, "id allocators diverge");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The tentpole property: cut a random history at a random point,
    /// "crash" the journaling plane there, warm-restart a fresh plane
    /// from the store, and play the rest of the history on both it and
    /// an uninterrupted witness. Every epoch report, snapshot, counter,
    /// and the id allocator must be bit-identical.
    #[test]
    fn warm_restart_is_equivalent_to_never_restarting(
        ops in proptest::collection::vec(arb_op(), 1..40),
        cut_seed in any::<usize>(),
        shards in 1usize..4,
    ) {
        let cut = cut_seed % (ops.len() + 1);
        let dir = temp_dir("equiv");

        // The witness never crashes and never journals.
        let witness = ShardedReconfigService::new(shards);
        let mut witness_slots = Slots::new();
        let before_w = apply(&witness, &mut witness_slots, &ops[..cut]);

        // The victim journals everything, then "dies" (drops) at the cut.
        let store = Arc::new(Store::open(&dir, shards).expect("open store"));
        let victim = ShardedReconfigService::new(shards).with_sink(
            Arc::clone(&store) as Arc<dyn StoreSink>
        );
        let mut victim_slots = Slots::new();
        let before_v = apply(&victim, &mut victim_slots, &ops[..cut]);
        prop_assert_eq!(before_w, before_v, "pre-crash reports must coincide");
        prop_assert_eq!(&witness_slots, &victim_slots);
        prop_assert_eq!(store.last_error(), None, "journaling must not fault");
        drop(victim);
        drop(store);

        // Warm restart: reopen the journal, replay into a fresh plane,
        // and re-attach the same store for the post-crash era.
        let store = Arc::new(Store::open(&dir, shards).expect("reopen store"));
        prop_assert_eq!(store.recovery().torn_bytes(), 0, "clean shutdown tears nothing");
        let restored = ShardedReconfigService::new(shards);
        let summary = restored.restore(&store).expect("restore");
        prop_assert_eq!(summary.records, store.recovery().records());
        prop_assert_eq!(summary.caches, witness.registered());
        prop_assert_eq!(summary.epochs, witness.epochs());
        let restored = restored.with_sink(store as Arc<dyn StoreSink>);

        // The rest of the history plays out identically.
        let mut restored_slots = victim_slots.clone();
        let after_w = apply(&witness, &mut witness_slots, &ops[cut..]);
        let after_r = apply(&restored, &mut restored_slots, &ops[cut..]);
        prop_assert_eq!(after_w, after_r, "post-crash reports must coincide");

        // Drain both and compare every observable.
        let drain_w = witness.run_until_clean();
        let drain_r = restored.run_until_clean();
        prop_assert_eq!(drain_w, drain_r, "drain reports must coincide");
        assert_planes_identical(&witness, &restored, &witness_slots);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Replay is idempotent: two fresh planes restored from the same
    /// journal are identical, and a third restore of an already-restored
    /// plane is refused rather than double-applied.
    #[test]
    fn journal_replay_is_idempotent(
        ops in proptest::collection::vec(arb_op(), 1..30),
        shards in 1usize..4,
    ) {
        let dir = temp_dir("idem");
        let store = Arc::new(Store::open(&dir, shards).expect("open store"));
        let plane = ShardedReconfigService::new(shards).with_sink(
            Arc::clone(&store) as Arc<dyn StoreSink>
        );
        let mut slots = Slots::new();
        apply(&plane, &mut slots, &ops);
        prop_assert_eq!(store.last_error(), None);
        drop(plane);
        drop(store);

        let store = Store::open(&dir, shards).expect("reopen store");
        let first = ShardedReconfigService::new(shards);
        let second = ShardedReconfigService::new(shards);
        let summary_first = first.restore(&store).expect("first restore");
        let summary_second = second.restore(&store).expect("second restore");
        prop_assert_eq!(&summary_first, &summary_second);
        assert_planes_identical(&first, &second, &slots);

        // Restore is replay-into-fresh only: the plane now has state
        // (even an empty history allocates the comparison id above), so
        // replaying again must refuse instead of double-applying.
        prop_assert_eq!(first.restore(&store), Err(RestoreError::NotFresh));
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Truncating the journal at EVERY byte — every possible crash point the
/// filesystem can leave behind — always yields a store that opens and a
/// plane that restores without error: the torn tail is dropped, the
/// record prefix replays, and the plane is live (it accepts new curves
/// and plans them).
#[test]
fn restore_succeeds_at_every_truncation_point() {
    let dir = temp_dir("trunc");
    let store = Arc::new(Store::open(&dir, 1).expect("open store"));
    let plane = ShardedReconfigService::new(1).with_sink(Arc::clone(&store) as Arc<dyn StoreSink>);
    let a = plane.register(CacheSpec::new(1024, 2).with_planner(Planner::new(64)));
    let b = plane.register(CacheSpec::new(2048, 1).with_planner(Planner::new(64)));
    plane.submit(a, 0, curve_from_seed(1)).unwrap();
    plane.submit(a, 1, curve_from_seed(2)).unwrap();
    plane.submit(b, 0, curve_from_seed(3)).unwrap();
    plane.run_epoch();
    plane.submit(a, 0, curve_from_seed(4)).unwrap();
    plane.deregister(b).unwrap();
    plane.run_epoch();
    assert_eq!(store.last_error(), None);
    drop(plane);
    drop(store);

    let path = dir.join("shard-000.talus");
    let full = std::fs::read(&path).expect("journal bytes");
    assert!(full.len() > 200, "history long enough to be interesting");

    let mut restored_counts = std::collections::BTreeSet::new();
    for cut in 0..=full.len() {
        let trunc_dir = dir.join(format!("cut-{cut}"));
        std::fs::create_dir_all(&trunc_dir).unwrap();
        std::fs::write(trunc_dir.join("shard-000.talus"), &full[..cut]).unwrap();

        let store = Store::open(&trunc_dir, 1)
            .unwrap_or_else(|e| panic!("cut {cut}: store must open: {e}"));
        let plane = ShardedReconfigService::new(1);
        let summary = plane
            .restore(&store)
            .unwrap_or_else(|e| panic!("cut {cut}: restore must succeed: {e}"));
        restored_counts.insert(summary.records);

        // A journal prefix is a valid (earlier) history: every replayed
        // plane is live. Registered caches accept curves and re-plan.
        if plane.registered() > 0 && plane.submit(a, 0, curve_from_seed(9)).is_ok() {
            plane.run_until_clean();
        }
        std::fs::remove_dir_all(&trunc_dir).ok();
    }
    // Sanity: the sweep actually visited distinct record prefixes, from
    // the empty journal up to the full history.
    assert!(restored_counts.contains(&0));
    assert!(restored_counts.len() > 5, "prefixes: {restored_counts:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn restore_refuses_mismatched_shard_layouts() {
    let dir = temp_dir("mismatch");
    let store = Store::open(&dir, 2).expect("open store");
    let plane = ShardedReconfigService::new(3);
    assert_eq!(
        plane.restore(&store),
        Err(RestoreError::ShardMismatch { store: 2, plane: 3 })
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn restore_refuses_planes_with_state() {
    let dir = temp_dir("notfresh");
    let store = Store::open(&dir, 1).expect("open store");
    let plane = ShardedReconfigService::new(1);
    plane.register(CacheSpec::new(1024, 1));
    assert_eq!(plane.restore(&store), Err(RestoreError::NotFresh));
    std::fs::remove_dir_all(&dir).ok();
}

/// A journal whose records could not have come from a live plane (here:
/// a register filed under the wrong shard) is diagnosed as corrupt, not
/// silently applied.
#[test]
fn restore_rejects_misrouted_records() {
    use talus_store::{encode_record, Record};
    let dir = temp_dir("misroute");
    {
        let _store = Store::open(&dir, 2).expect("open store");
    }
    // Find an id that does NOT route to shard 0, then plant its register
    // record in shard 0's file.
    let id = (0..).find(|&id| talus_core::shard_of(id, 2) != 0).unwrap();
    let record = encode_record(&Record::Register {
        seq: 1,
        id,
        capacity: 1024,
        tenants: 1,
        planner: Planner::new(64),
    });
    std::fs::write(dir.join("shard-000.talus"), &record).unwrap();

    let store = Store::open(&dir, 2).expect("reopen store");
    let plane = ShardedReconfigService::new(2);
    match plane.restore(&store) {
        Err(RestoreError::Corrupt {
            shard: 0,
            seq: 1,
            what,
        }) => {
            assert!(what.contains("wrong shard"), "got: {what}");
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}
