//! `RpcServer`: the TCP accept loop fronting a [`ShardedReconfigService`].
//!
//! Each accepted connection gets a handler thread that processes frames
//! strictly one at a time: read a full frame, decode, execute against
//! the shared service, write the reply. That synchronous loop *is* the
//! per-connection backpressure — at most one frame (≤ the wire frame
//! cap) is buffered per connection, and a client that outruns the plane
//! stalls on TCP flow control waiting for its previous reply. Floods
//! that do get through are absorbed by the service's dirty-queue dedup:
//! resubmitting a cache between epochs coalesces to one replan.
//!
//! Any [`WireError`](crate::wire::WireError) — truncation, a hostile
//! length prefix, garbage bytes — closes that connection and nothing
//! else: frames are fully received before they are decoded and decoded
//! before they are applied, so a batch from a client that dies
//! mid-frame is dropped atomically and the plane stays consistent.
//!
//! # Overload shedding
//!
//! Beyond the connection cap the server does not silently drop: it
//! writes a single typed [`Response::Busy`] frame and then closes, so a
//! well-behaved client distinguishes "plane at capacity, back off and
//! retry" from a network fault. Every such shed is counted and surfaced
//! through [`ServerHandle::rejected`] and the plane's health report.

use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use talus_core::{FaultDirective, FaultScript};

use crate::router::ShardedReconfigService;
use crate::service::{CacheSpec, ServeError};
use crate::snapshot::CacheId;
use crate::wire::{self, read_frame, Request, Response, SnapshotSummary};

/// Default cap on concurrently served connections; beyond it, new
/// connections get a typed [`Response::Busy`] frame and are closed,
/// bounding server memory at `connections × max frame` regardless of
/// client count.
pub const DEFAULT_MAX_CONNECTIONS: usize = 64;

/// Shared connection accounting between the accept loop and the
/// [`ServerHandle`] that reports it.
#[derive(Debug, Default)]
struct ConnStats {
    /// Connections currently being served.
    live: AtomicUsize,
    /// Connections shed with [`Response::Busy`] since the server
    /// started. Monotonic; never reset.
    rejected: AtomicU64,
}

/// A TCP front-end for a sharded reconfiguration plane.
///
/// Bind, then [`spawn`](RpcServer::spawn) to start serving on a
/// background accept thread:
///
/// ```
/// use std::sync::Arc;
/// use talus_serve::{RpcClient, RpcServer, ShardedReconfigService};
///
/// let plane = Arc::new(ShardedReconfigService::new(2));
/// let server = RpcServer::bind("127.0.0.1:0", plane)?;
/// let handle = server.spawn()?;
///
/// let mut client = RpcClient::connect(handle.local_addr())?;
/// client.ping()?;
/// handle.shutdown();
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct RpcServer {
    listener: TcpListener,
    addr: std::net::SocketAddr,
    service: Arc<ShardedReconfigService>,
    max_connections: usize,
    fault: Option<Arc<FaultScript>>,
}

impl RpcServer {
    /// Binds a listener at `addr` (use port 0 for an ephemeral port)
    /// fronting `service`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure, or the (in practice unreachable)
    /// failure to read back the bound address.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        service: Arc<ShardedReconfigService>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(RpcServer {
            listener,
            addr,
            service,
            max_connections: DEFAULT_MAX_CONNECTIONS,
            fault: None,
        })
    }

    /// Caps concurrently served connections (default
    /// [`DEFAULT_MAX_CONNECTIONS`]). Excess connections receive a
    /// [`Response::Busy`] frame and are closed on accept.
    ///
    /// # Panics
    ///
    /// Panics if `max` is zero.
    pub fn with_max_connections(mut self, max: usize) -> Self {
        assert!(max > 0, "need at least one connection");
        self.max_connections = max;
        self
    }

    /// Attaches a deterministic fault-injection script consulted at the
    /// `server.handle` site (keyed by request opcode) before each
    /// request executes. Test-only seam; the default `None` script
    /// costs one branch per frame.
    pub fn with_fault_script(mut self, script: Arc<FaultScript>) -> Self {
        self.fault = Some(script);
        self
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The plane this server fronts. Tests use this to inspect
    /// snapshots server-side and compare them bit-for-bit with a local
    /// plane's.
    pub fn service(&self) -> &Arc<ShardedReconfigService> {
        &self.service
    }

    /// Starts the accept loop on a background thread and returns a
    /// handle that stops it (and is also stopped on drop).
    ///
    /// # Errors
    ///
    /// Propagates listener clone failures.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.addr;
        let stop = Arc::new(AtomicBool::new(false));
        let service = Arc::clone(&self.service);
        let accept_stop = Arc::clone(&stop);
        let stats = Arc::new(ConnStats::default());
        let accept_stats = Arc::clone(&stats);
        let max_connections = self.max_connections;
        let fault = self.fault;
        let listener = self.listener;
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                if accept_stats.live.load(Ordering::Acquire) >= max_connections {
                    shed_connection(stream);
                    accept_stats.rejected.fetch_add(1, Ordering::AcqRel);
                    continue;
                }
                accept_stats.live.fetch_add(1, Ordering::AcqRel);
                let service = Arc::clone(&service);
                let stats = Arc::clone(&accept_stats);
                let fault = fault.clone();
                std::thread::spawn(move || {
                    let _ = serve_connection(stream, &service, fault.as_deref());
                    stats.live.fetch_sub(1, Ordering::AcqRel);
                });
            }
        });
        Ok(ServerHandle {
            addr,
            service: self.service,
            stats,
            stop,
            accept_thread: Some(accept_thread),
        })
    }
}

/// Tells an over-cap client the plane is at capacity — one typed
/// [`Response::Busy`] frame, best-effort, then close. A client that
/// never reads it loses nothing relative to a silent drop.
fn shed_connection(mut stream: TcpStream) {
    let _ = stream.write_all(&wire::encode_response(&Response::Busy));
    let _ = stream.flush();
    let _ = stream.shutdown(Shutdown::Both);
}

/// Handle to a running [`RpcServer`]; stops the accept loop on
/// [`shutdown`](ServerHandle::shutdown) or drop. Connections already
/// being served run until their client disconnects.
#[derive(Debug)]
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    service: Arc<ShardedReconfigService>,
    stats: Arc<ConnStats>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address clients connect to.
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The plane this server fronts.
    pub fn service(&self) -> &Arc<ShardedReconfigService> {
        &self.service
    }

    /// Connections currently being served.
    pub fn connections(&self) -> usize {
        self.stats.live.load(Ordering::Acquire)
    }

    /// Connections shed with [`Response::Busy`] since the server
    /// started.
    pub fn rejected(&self) -> u64 {
        self.stats.rejected.load(Ordering::Acquire)
    }

    /// The plane's health report with this server's connection
    /// accounting filled in (the plane itself cannot see the TCP
    /// layer).
    pub fn health(&self) -> talus_core::PlaneHealth {
        let mut health = self.service.health();
        health.connections = self.connections() as u64;
        health.rejected = self.rejected();
        health
    }

    /// Stops accepting connections and joins the accept thread.
    pub fn shutdown(mut self) {
        self.stop_accepting();
    }

    fn stop_accepting(&mut self) {
        let Some(thread) = self.accept_thread.take() else {
            return;
        };
        self.stop.store(true, Ordering::Release);
        // The accept loop blocks in `accept`; a throwaway connection
        // wakes it so it observes the stop flag.
        let _ = TcpStream::connect(self.addr);
        let _ = thread.join();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_accepting();
    }
}

/// Serves one connection until clean EOF, the first protocol error, or
/// a scripted `server.handle` fault that severs the connection.
fn serve_connection(
    stream: TcpStream,
    service: &ShardedReconfigService,
    fault: Option<&FaultScript>,
) -> Result<(), wire::WireError> {
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone().map_err(wire::WireError::from)?);
    let mut writer = BufWriter::new(stream);
    // One frame in flight per connection: read, apply, reply, repeat.
    while let Some(payload) = read_frame(&mut reader)? {
        let request = wire::decode_request(&payload)?;
        // The fault seam fires after decode (so hostile-input handling
        // is never masked) and before execution (so a killed connection
        // models a server that died without applying the request).
        let directive = match fault {
            Some(script) => script.check("server.handle", u64::from(opcode_of(&request))),
            None => FaultDirective::None,
        };
        match directive {
            FaultDirective::KillConnection => {
                // Die before applying: the client sees an abrupt close
                // with the request's effects absent.
                return Ok(());
            }
            FaultDirective::Fail => {
                // Shed mid-stream: typed Busy, then close.
                writer
                    .write_all(&wire::encode_response(&Response::Busy))
                    .map_err(wire::WireError::from)?;
                writer.flush().map_err(wire::WireError::from)?;
                return Ok(());
            }
            FaultDirective::TruncateFrame => {
                // Apply, then die mid-reply: the client gets half a
                // frame and must treat the request outcome as unknown —
                // exactly the ambiguity idempotent retries resolve.
                let response = handle_request(request, service);
                let encoded = wire::encode_response(&response);
                writer
                    .write_all(&encoded[..encoded.len() / 2])
                    .map_err(wire::WireError::from)?;
                writer.flush().map_err(wire::WireError::from)?;
                return Ok(());
            }
            FaultDirective::None => {}
        }
        let response = handle_request(request, service);
        writer
            .write_all(&wire::encode_response(&response))
            .map_err(wire::WireError::from)?;
        writer.flush().map_err(wire::WireError::from)?;
    }
    Ok(())
}

/// The request's wire opcode, used as the `server.handle` fault key so
/// scripts can target e.g. only `RunEpoch` frames.
fn opcode_of(request: &Request) -> u8 {
    match request {
        Request::Register { .. } => wire::OP_REGISTER,
        Request::Deregister { .. } => wire::OP_DEREGISTER,
        Request::Submit { .. } => wire::OP_SUBMIT,
        Request::RunEpoch => wire::OP_RUN_EPOCH,
        Request::Report { .. } => wire::OP_REPORT,
        Request::Ping => wire::OP_PING,
        Request::Health => wire::OP_HEALTH,
        Request::Hello => wire::OP_HELLO,
        Request::RegisterAt { .. } => wire::OP_REGISTER_AT,
    }
}

/// Executes one decoded request against the plane. Decode has already
/// bounds-checked every field, so nothing here can panic on remote
/// input; request-level rejections become [`Response::Error`].
fn handle_request(request: Request, service: &ShardedReconfigService) -> Response {
    match request {
        Request::Register { capacity, tenants } => {
            if !service.topology().is_solo() {
                // Server-side minting would race across members; cluster
                // clients mint deterministically and use RegisterAt.
                return Response::Error(ServeError::ClusterMint);
            }
            // Decode guarantees capacity > 0 and 0 < tenants <= cap, the
            // exact preconditions of `CacheSpec::new`.
            let id = service.register(CacheSpec::new(capacity, tenants as usize));
            Response::Registered { id: id.value() }
        }
        Request::RegisterAt {
            id,
            capacity,
            tenants,
        } => {
            match service.register_with_id(CacheId(id), CacheSpec::new(capacity, tenants as usize))
            {
                Ok(id) => Response::Registered { id: id.value() },
                Err(e) => Response::Error(e),
            }
        }
        Request::Deregister { id } => match service.deregister(CacheId(id)) {
            Ok(()) => Response::Deregistered,
            Err(e) => Response::Error(e),
        },
        Request::Submit { entries } => Response::SubmitReply {
            results: entries
                .into_iter()
                .map(|e| service.submit(CacheId(e.id), e.tenant as usize, e.curve))
                .collect(),
        },
        Request::RunEpoch => Response::Epoch(service.run_epoch()),
        Request::Report { id } => Response::Snapshot(
            service
                .snapshot(CacheId(id))
                .map(|snap| SnapshotSummary::from(&*snap)),
        ),
        Request::Ping => Response::Pong,
        Request::Health => Response::Health(service.health()),
        Request::Hello => {
            let topology = service.topology();
            Response::Hello(wire::ClusterInfo {
                total_shards: topology.total() as u32,
                first_shard: topology.first() as u32,
                shard_count: topology.count() as u32,
                epoch: service.epochs(),
                next_id: service.next_id_hint(),
                health: service.health(),
            })
        }
    }
}
