//! `RpcServer`: the TCP accept loop fronting a [`ShardedReconfigService`].
//!
//! Each accepted connection gets a handler thread that processes frames
//! strictly one at a time: read a full frame, decode, execute against
//! the shared service, write the reply. That synchronous loop *is* the
//! per-connection backpressure — at most one frame (≤ the wire frame
//! cap) is buffered per connection, and a client that outruns the plane
//! stalls on TCP flow control waiting for its previous reply. Floods
//! that do get through are absorbed by the service's dirty-queue dedup:
//! resubmitting a cache between epochs coalesces to one replan.
//!
//! Any [`WireError`](crate::wire::WireError) — truncation, a hostile
//! length prefix, garbage bytes — closes that connection and nothing
//! else: frames are fully received before they are decoded and decoded
//! before they are applied, so a batch from a client that dies
//! mid-frame is dropped atomically and the plane stays consistent.

use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::router::ShardedReconfigService;
use crate::service::CacheSpec;
use crate::snapshot::CacheId;
use crate::wire::{self, read_frame, Request, Response, SnapshotSummary};

/// Default cap on concurrently served connections; beyond it, new
/// connections are accepted and immediately closed, bounding server
/// memory at `connections × max frame` regardless of client count.
pub const DEFAULT_MAX_CONNECTIONS: usize = 64;

/// A TCP front-end for a sharded reconfiguration plane.
///
/// Bind, then [`spawn`](RpcServer::spawn) to start serving on a
/// background accept thread:
///
/// ```
/// use std::sync::Arc;
/// use talus_serve::{RpcClient, RpcServer, ShardedReconfigService};
///
/// let plane = Arc::new(ShardedReconfigService::new(2));
/// let server = RpcServer::bind("127.0.0.1:0", plane)?;
/// let handle = server.spawn()?;
///
/// let mut client = RpcClient::connect(handle.local_addr())?;
/// client.ping()?;
/// handle.shutdown();
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct RpcServer {
    listener: TcpListener,
    service: Arc<ShardedReconfigService>,
    max_connections: usize,
}

impl RpcServer {
    /// Binds a listener at `addr` (use port 0 for an ephemeral port)
    /// fronting `service`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        service: Arc<ShardedReconfigService>,
    ) -> std::io::Result<Self> {
        Ok(RpcServer {
            listener: TcpListener::bind(addr)?,
            service,
            max_connections: DEFAULT_MAX_CONNECTIONS,
        })
    }

    /// Caps concurrently served connections (default
    /// [`DEFAULT_MAX_CONNECTIONS`]). Excess connections are closed on
    /// accept.
    ///
    /// # Panics
    ///
    /// Panics if `max` is zero.
    pub fn with_max_connections(mut self, max: usize) -> Self {
        assert!(max > 0, "need at least one connection");
        self.max_connections = max;
        self
    }

    /// The bound address (resolves port 0 to the actual port).
    ///
    /// # Panics
    ///
    /// Panics if the listener's address cannot be read (the socket is
    /// already bound, so this does not happen in practice).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.listener
            .local_addr()
            .expect("bound listener has an address")
    }

    /// The plane this server fronts. Tests use this to inspect
    /// snapshots server-side and compare them bit-for-bit with a local
    /// plane's.
    pub fn service(&self) -> &Arc<ShardedReconfigService> {
        &self.service
    }

    /// Starts the accept loop on a background thread and returns a
    /// handle that stops it (and is also stopped on drop).
    ///
    /// # Errors
    ///
    /// Propagates listener clone failures.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr();
        let stop = Arc::new(AtomicBool::new(false));
        let service = Arc::clone(&self.service);
        let accept_stop = Arc::clone(&stop);
        let live = Arc::new(AtomicUsize::new(0));
        let max_connections = self.max_connections;
        let listener = self.listener;
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                if live.load(Ordering::Acquire) >= max_connections {
                    let _ = stream.shutdown(Shutdown::Both);
                    continue;
                }
                live.fetch_add(1, Ordering::AcqRel);
                let service = Arc::clone(&service);
                let live = Arc::clone(&live);
                std::thread::spawn(move || {
                    let _ = serve_connection(stream, &service);
                    live.fetch_sub(1, Ordering::AcqRel);
                });
            }
        });
        Ok(ServerHandle {
            addr,
            service: self.service,
            stop,
            accept_thread: Some(accept_thread),
        })
    }
}

/// Handle to a running [`RpcServer`]; stops the accept loop on
/// [`shutdown`](ServerHandle::shutdown) or drop. Connections already
/// being served run until their client disconnects.
#[derive(Debug)]
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    service: Arc<ShardedReconfigService>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address clients connect to.
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The plane this server fronts.
    pub fn service(&self) -> &Arc<ShardedReconfigService> {
        &self.service
    }

    /// Stops accepting connections and joins the accept thread.
    pub fn shutdown(mut self) {
        self.stop_accepting();
    }

    fn stop_accepting(&mut self) {
        let Some(thread) = self.accept_thread.take() else {
            return;
        };
        self.stop.store(true, Ordering::Release);
        // The accept loop blocks in `accept`; a throwaway connection
        // wakes it so it observes the stop flag.
        let _ = TcpStream::connect(self.addr);
        let _ = thread.join();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_accepting();
    }
}

/// Serves one connection until clean EOF or the first protocol error.
fn serve_connection(
    stream: TcpStream,
    service: &ShardedReconfigService,
) -> Result<(), wire::WireError> {
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone().map_err(wire::WireError::from)?);
    let mut writer = BufWriter::new(stream);
    // One frame in flight per connection: read, apply, reply, repeat.
    while let Some(payload) = read_frame(&mut reader)? {
        let request = wire::decode_request(&payload)?;
        let response = handle_request(request, service);
        writer
            .write_all(&wire::encode_response(&response))
            .map_err(wire::WireError::from)?;
        writer.flush().map_err(wire::WireError::from)?;
    }
    Ok(())
}

/// Executes one decoded request against the plane. Decode has already
/// bounds-checked every field, so nothing here can panic on remote
/// input; request-level rejections become [`Response::Error`].
fn handle_request(request: Request, service: &ShardedReconfigService) -> Response {
    match request {
        Request::Register { capacity, tenants } => {
            // Decode guarantees capacity > 0 and 0 < tenants <= cap, the
            // exact preconditions of `CacheSpec::new`.
            let id = service.register(CacheSpec::new(capacity, tenants as usize));
            Response::Registered { id: id.value() }
        }
        Request::Deregister { id } => match service.deregister(CacheId(id)) {
            Ok(()) => Response::Deregistered,
            Err(e) => Response::Error(e),
        },
        Request::Submit { entries } => Response::SubmitReply {
            results: entries
                .into_iter()
                .map(|e| service.submit(CacheId(e.id), e.tenant as usize, e.curve))
                .collect(),
        },
        Request::RunEpoch => Response::Epoch(service.run_epoch()),
        Request::Report { id } => Response::Snapshot(
            service
                .snapshot(CacheId(id))
                .map(|snap| SnapshotSummary::from(&*snap)),
        ),
        Request::Ping => Response::Pong,
    }
}
