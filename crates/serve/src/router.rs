//! The sharded reconfiguration plane: N [`Shard`]s behind a hash router.
//!
//! [`ShardedReconfigService`] exposes the exact public API of
//! [`ReconfigService`](crate::ReconfigService) — `register`, `deregister`,
//! `submit`, `submit_from`, `submit_latest`, `snapshot`, `run_epoch`,
//! `run_until_clean` — but spreads per-cache state across N independent
//! shards selected by `mix64(cache_id) % N`. Caches never share state, so
//! sharding needs no cross-shard coordination: a submission touches one
//! shard's lock, producers for caches on different shards never contend,
//! and each shard plans its own epoch batch. With
//! [`with_threads`](ShardedReconfigService::with_threads), shards 1..N
//! run their epochs on dedicated worker threads while the epoch-driving
//! thread plans shard 0 itself (leader participates), so independent
//! caches re-plan in parallel.
//!
//! Plan equivalence is the migration contract: for any submission
//! sequence, the plan published for a cache is identical to what a
//! single-shard [`ReconfigService`](crate::ReconfigService) publishes
//! (property-tested in `tests/sharding.rs`) — the router adds
//! *placement*, never *policy*.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use crate::service::{CacheSpec, EpochReport, ServeError};
use crate::shard::Shard;
use crate::snapshot::{CacheId, PlanSnapshot};
use talus_core::{
    CurveSource, FaultScript, MissCurve, PlaneHealth, ShardHealth, ShardState, ShardTopology,
    StoreHealth,
};
use talus_store::{Record, Store, StoreError, StoreSink};

/// How long one epoch waits for its worker handoffs before declaring the
/// stragglers degraded and moving on.
const DEFAULT_EPOCH_DEADLINE: Duration = Duration::from_secs(5);

/// One "run an epoch" request handed to a shard's worker thread. The
/// reply carries the worker's shard index so the epoch driver knows who
/// answered (and therefore who didn't).
struct EpochJob {
    epoch: u64,
    reply: mpsc::Sender<(usize, EpochReport)>,
}

/// One dedicated worker thread per shard, parked on a job channel.
///
/// A worker that dies (its thread panicked, or never spawned) or misses
/// the epoch deadline is *degraded*, not fatal: its sender slot is
/// dropped, the shard is marked in [`degraded`](WorkerPool::degraded),
/// and from then on the epoch-driving thread leader-plans that shard —
/// slower, never wrong. `run_until_clean` still terminates because a
/// degraded shard's queue drains on the leader path the very next epoch.
#[derive(Debug)]
struct WorkerPool {
    /// Job channels; slot `i` drives shard `i + 1` (shard 0 has no
    /// worker — the leader plans it). `None` = the worker is gone and
    /// the slot is permanently on the leader-planned path. Behind a
    /// mutex so the service stays `Sync` independent of
    /// `mpsc::Sender`'s (toolchain-dependent) auto-traits.
    senders: Mutex<Vec<Option<mpsc::Sender<EpochJob>>>>,
    /// Slot `i` ↔ shard `i + 1`: set once the worker is declared dead or
    /// a deadline expired on it. Never cleared — degradation is sticky
    /// (the worker, even if merely slow, no longer has a job channel).
    degraded: Vec<AtomicBool>,
    /// Longest one epoch waits on worker handoffs, total.
    deadline: Duration,
    handles: Vec<thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns one worker per shard in `shards[1..]`. Shard 0 has no
    /// worker: the epoch-driving thread plans it itself (leader
    /// participates), so an epoch costs N−1 thread handoffs, not N. A
    /// shard whose worker fails to spawn starts degraded (leader-planned)
    /// instead of failing the build.
    fn spawn(shards: &[Arc<Shard>], deadline: Duration, fault: Option<Arc<FaultScript>>) -> Self {
        let mut senders = Vec::with_capacity(shards.len() - 1);
        let mut degraded = Vec::with_capacity(shards.len() - 1);
        let mut handles = Vec::with_capacity(shards.len() - 1);
        for (i, shard) in shards.iter().enumerate().skip(1) {
            let (tx, rx) = mpsc::channel::<EpochJob>();
            let shard = Arc::clone(shard);
            let fault = fault.clone();
            let spawned = thread::Builder::new()
                .name(format!("talus-serve-shard-{i}"))
                .spawn(move || {
                    // Exits when the pool drops its sender.
                    while let Ok(job) = rx.recv() {
                        // Scripted worker faults: a `Panic` here kills
                        // this thread exactly like a worker bug would;
                        // the epoch driver detects it and degrades the
                        // shard to leader-planned.
                        if let Some(fault) = &fault {
                            let _ = fault.check("worker.epoch", i as u64);
                        }
                        // A dropped reply receiver just means the caller
                        // gave up on the epoch; keep serving.
                        let _ = job.reply.send((i, shard.run_epoch(job.epoch)));
                    }
                });
            match spawned {
                Ok(handle) => {
                    senders.push(Some(tx));
                    degraded.push(AtomicBool::new(false));
                    handles.push(handle);
                }
                Err(_) => {
                    senders.push(None);
                    degraded.push(AtomicBool::new(true));
                }
            }
        }
        WorkerPool {
            senders: Mutex::new(senders),
            degraded,
            deadline,
            handles,
        }
    }

    fn lock_senders(&self) -> std::sync::MutexGuard<'_, Vec<Option<mpsc::Sender<EpochJob>>>> {
        self.senders.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn mark_degraded(&self, slot: usize) {
        self.degraded[slot].store(true, Ordering::Relaxed);
    }

    /// Whether shard `index` (≥ 1) is on the degraded, leader-planned
    /// path.
    fn is_degraded(&self, index: usize) -> bool {
        self.degraded[index - 1].load(Ordering::Relaxed)
    }

    /// Runs `epoch` on every shard concurrently; returns the per-shard
    /// reports (in completion order — the caller sorts after merging).
    ///
    /// Leader participates: the calling thread plans shard 0 itself while
    /// the workers handle shards 1..N. Degraded shards (dead worker, or
    /// handoff refused) are leader-planned in the same call; workers that
    /// miss [`deadline`](WorkerPool::deadline) are degraded for the next
    /// epoch and this epoch returns without their report (their queued
    /// work drains on the leader path next epoch).
    fn run_epoch(&self, shards: &[Arc<Shard>], epoch: u64) -> Vec<EpochReport> {
        let (reply, results) = mpsc::channel();
        let mut outstanding: Vec<usize> = Vec::new();
        let mut fallback: Vec<usize> = Vec::new();
        {
            let mut senders = self.lock_senders();
            for (slot, tx) in senders.iter_mut().enumerate() {
                let shard_index = slot + 1;
                let sent = tx.as_ref().is_some_and(|t| {
                    t.send(EpochJob {
                        epoch,
                        reply: reply.clone(),
                    })
                    .is_ok()
                });
                if sent {
                    outstanding.push(shard_index);
                } else {
                    // The worker is gone (hung-up channel or never
                    // spawned): drop the slot and leader-plan its shard
                    // from now on.
                    *tx = None;
                    self.mark_degraded(slot);
                    fallback.push(shard_index);
                }
            }
        }
        drop(reply);
        let mut reports = vec![shards[0].run_epoch(epoch)];
        for index in fallback {
            reports.push(shards[index].run_epoch(epoch));
        }
        // Bounded handoff: wait out the deadline, not forever. A report
        // arriving after its deadline is dropped with its channel.
        let deadline = Instant::now() + self.deadline;
        while !outstanding.is_empty() {
            let wait = deadline.saturating_duration_since(Instant::now());
            match results.recv_timeout(wait) {
                Ok((index, report)) => {
                    outstanding.retain(|&i| i != index);
                    reports.push(report);
                }
                // Timeout, or every remaining worker dropped its reply
                // sender (died mid-epoch): degrade the stragglers below.
                Err(_) => break,
            }
        }
        if !outstanding.is_empty() {
            let mut senders = self.lock_senders();
            for index in outstanding {
                senders[index - 1] = None;
                self.mark_degraded(index - 1);
            }
        }
        reports
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the job channels lets every worker's `recv` fail and the
        // thread exit; then reap them.
        self.lock_senders().clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// N independent [`ReconfigService`]-shaped shards behind a
/// `mix64(cache_id)`-hash router. Same public API, same published plans
/// (property-tested), but ingest and epoch planning scale across shards.
///
/// All methods take `&self`; the service is `Send + Sync` and is shared
/// across producer, planner, and reader threads behind an `Arc`.
///
/// ```
/// use talus_core::MissCurve;
/// use talus_serve::{CacheSpec, ShardedReconfigService};
///
/// let service = ShardedReconfigService::new(4);
/// let cache = service.register(CacheSpec::new(1024, 2));
///
/// let cliff = MissCurve::from_samples(&[0.0, 512.0, 1024.0], &[10.0, 10.0, 1.0])?;
/// let gentle = MissCurve::from_samples(&[0.0, 512.0, 1024.0], &[4.0, 2.0, 1.5])?;
/// service.submit(cache, 0, cliff)?;
/// service.submit(cache, 1, gentle)?;
///
/// let report = service.run_epoch();
/// assert_eq!(report.planned, vec![cache]);
/// let snap = service.snapshot(cache).expect("published");
/// assert_eq!(snap.plan.allocations().iter().sum::<u64>(), 1024);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// [`ReconfigService`]: crate::ReconfigService
#[derive(Debug)]
pub struct ShardedReconfigService {
    shards: Vec<Arc<Shard>>,
    /// Which slice of the global shard layout these local shards are.
    /// [`ShardTopology::solo`] (the default) makes local == global; a
    /// cluster member owns a sub-range and bounces misrouted ids.
    topology: ShardTopology,
    next_id: AtomicU64,
    epochs: AtomicU64,
    /// `Some` in thread-pool mode: one worker per shard.
    pool: Option<WorkerPool>,
    /// The journal sink shared by every shard, retained for health
    /// reporting (`None` = ephemeral plane).
    sink: Option<Arc<dyn StoreSink>>,
    /// The fault-injection script shared with shards and workers.
    fault: Option<Arc<FaultScript>>,
    /// Worker-handoff budget for [`run_epoch`] in thread-pool mode.
    ///
    /// [`run_epoch`]: ShardedReconfigService::run_epoch
    epoch_deadline: Duration,
}

impl ShardedReconfigService {
    /// A plane of `shards` shards, each replanning at most 64 caches per
    /// epoch, with epochs run sequentially on the calling thread.
    ///
    /// Shard count is a capacity knob, not a semantic one: plans are
    /// identical for every value. Pick roughly the number of cores you
    /// want planning to spread over (see ARCHITECTURE.md §L5); `new(1)`
    /// is behaviourally — and, within noise, performance- — equivalent to
    /// [`ReconfigService`](crate::ReconfigService).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        ShardedReconfigService {
            shards: (0..shards).map(|_| Arc::new(Shard::new(64))).collect(),
            topology: ShardTopology::solo(shards),
            next_id: AtomicU64::new(0),
            epochs: AtomicU64::new(0),
            pool: None,
            sink: None,
            fault: None,
            epoch_deadline: DEFAULT_EPOCH_DEADLINE,
        }
    }

    /// Declares this plane a cluster member owning `topology`'s shard
    /// range: local shard `i` is global shard `topology.first() + i`,
    /// and operations on ids whose canonical placement
    /// (`shard_of(id, topology.total())`) falls outside the range are
    /// bounced with [`ServeError::Misrouted`]. The default is
    /// [`ShardTopology::solo`] — every shard local, nothing bounced.
    ///
    /// Configure first (before sinks, fault scripts, restore, and
    /// threads): the topology changes placement, so everything journaled
    /// or registered must already live under it.
    ///
    /// # Panics
    ///
    /// Panics if `topology.count()` differs from the plane's shard
    /// count, if the plane already has state, or if thread-pool mode is
    /// already enabled.
    pub fn with_topology(mut self, topology: ShardTopology) -> Self {
        assert!(self.pool.is_none(), "set the topology before threads");
        assert!(self.sink.is_none(), "set the topology before the sink");
        assert_eq!(
            topology.count(),
            self.shards.len(),
            "topology range must match the plane's shard count"
        );
        assert!(
            self.registered() == 0 && self.epochs.load(Ordering::Relaxed) == 0,
            "set the topology on a fresh plane"
        );
        self.topology = topology;
        self
    }

    /// Caps how many caches each **shard** replans per epoch (so a plane
    /// of N shards replans at most `N × max_batch` caches per epoch).
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero, or if thread-pool mode is already
    /// enabled (configure batching before [`with_threads`]).
    ///
    /// [`with_threads`]: ShardedReconfigService::with_threads
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        assert!(self.pool.is_none(), "set max_batch before enabling threads");
        for shard in &mut self.shards {
            Arc::get_mut(shard)
                .expect("shards unshared before threads start") // audited: builder-time invariant
                .set_max_batch(max_batch);
        }
        self
    }

    /// Attaches a journal sink: from now on every register, deregister,
    /// curve submission, epoch cut, and published plan is appended to the
    /// sink, under the owning shard's registry lock, in the exact order
    /// it takes effect. Shard `i` of the plane journals into shard `i` of
    /// the sink — the layouts must match (both use
    /// [`talus_core::shard_of`]).
    ///
    /// Attach the sink to a fresh plane (or right after
    /// [`restore`](ShardedReconfigService::restore) on the same store):
    /// events that happened before attachment are invisible to a later
    /// restore.
    ///
    /// # Panics
    ///
    /// Panics if `sink.shards()` differs from the plane's shard count, or
    /// if thread-pool mode is already enabled (attach before
    /// [`with_threads`](ShardedReconfigService::with_threads)).
    pub fn with_sink(mut self, sink: Arc<dyn StoreSink>) -> Self {
        assert!(
            self.pool.is_none(),
            "attach the sink before enabling threads"
        );
        assert_eq!(
            sink.shards(),
            self.shards.len(),
            "sink shard layout must match the plane"
        );
        assert_eq!(
            sink.topology(),
            self.topology,
            "sink topology slice must match the plane"
        );
        for (i, shard) in self.shards.iter_mut().enumerate() {
            Arc::get_mut(shard)
                .expect("shards unshared before threads start") // audited: builder-time invariant
                .set_sink(i, Arc::clone(&sink));
        }
        self.sink = Some(sink);
        self
    }

    /// Attaches a deterministic [`FaultScript`]: shards consult it at
    /// `"shard.plan"` (key = raw cache id) inside their planner panic
    /// containment, and epoch workers consult it at `"worker.epoch"`
    /// (key = shard index) before each handoff. Test-substrate plumbing;
    /// configure before [`with_threads`](ShardedReconfigService::with_threads).
    ///
    /// # Panics
    ///
    /// Panics if thread-pool mode is already enabled.
    pub fn with_fault_script(mut self, script: Arc<FaultScript>) -> Self {
        assert!(
            self.pool.is_none(),
            "attach the fault script before enabling threads"
        );
        for shard in &mut self.shards {
            Arc::get_mut(shard)
                .expect("shards unshared before threads start") // audited: builder-time invariant
                .set_fault_script(Arc::clone(&script));
        }
        self.fault = Some(script);
        self
    }

    /// Sets how long one epoch waits on worker handoffs in thread-pool
    /// mode before declaring stragglers degraded (default 5s). Configure
    /// before [`with_threads`](ShardedReconfigService::with_threads).
    ///
    /// # Panics
    ///
    /// Panics if `deadline` is zero or thread-pool mode is already
    /// enabled.
    pub fn with_epoch_deadline(mut self, deadline: Duration) -> Self {
        assert!(!deadline.is_zero(), "epoch deadline must be positive");
        assert!(
            self.pool.is_none(),
            "set the epoch deadline before enabling threads"
        );
        self.epoch_deadline = deadline;
        self
    }

    /// Enables thread-pool mode: shards 1..N each get a dedicated worker
    /// thread (`talus-serve-shard-<i>`), and
    /// [`run_epoch`](ShardedReconfigService::run_epoch) dispatches to all
    /// of them concurrently while planning shard 0 on the calling thread
    /// (leader participates — N−1 thread handoffs per epoch, and a
    /// 1-shard plane spawns no workers at all). Independent caches then
    /// re-plan in parallel; reports (and plans) are bit-identical to
    /// sequential mode.
    ///
    /// Workers are joined when the service drops.
    pub fn with_threads(mut self) -> Self {
        if self.pool.is_none() {
            self.pool = Some(WorkerPool::spawn(
                &self.shards,
                self.epoch_deadline,
                self.fault.clone(),
            ));
        }
        self
    }

    /// Number of local shards (the plane's own; for a cluster member
    /// this is its owned range, not the global total).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// This plane's slice of the global shard layout.
    pub fn topology(&self) -> ShardTopology {
        self.topology
    }

    /// The smallest id this plane has never minted or restored — what a
    /// cluster member advertises so a client can seed its own mint.
    pub fn next_id_hint(&self) -> u64 {
        self.next_id.load(Ordering::Relaxed)
    }

    /// Whether epochs run on per-shard worker threads.
    pub fn is_threaded(&self) -> bool {
        self.pool.is_some()
    }

    /// The **global** shard index `id` routes to:
    /// [`talus_core::shard_of`]`(id, topology.total())`. Stable for a
    /// given total and shared with `talus-store`'s journal layout;
    /// exposed for observability (logs, dashboards). For the default
    /// solo topology this is also the local shard index.
    pub fn shard_index(&self, id: CacheId) -> usize {
        self.topology.global_shard(id.value())
    }

    /// The local shard owning `id`, or [`ServeError::Misrouted`] naming
    /// the owning global shard when it lives on another cluster member.
    fn try_shard_of(&self, id: CacheId) -> Result<&Shard, ServeError> {
        match self.topology.local_shard(id.value()) {
            Some(local) => Ok(&self.shards[local]),
            None => Err(ServeError::Misrouted {
                cache: id,
                shard: self.topology.global_shard(id.value()),
            }),
        }
    }

    /// Registers a logical cache; returns its handle. Ids are allocated
    /// from one plane-wide counter (never reused), then routed to a shard
    /// by hash. The cache publishes no plan until every tenant has
    /// submitted at least one curve and an epoch has run.
    ///
    /// # Panics
    ///
    /// Panics under a non-solo topology: a cluster member owns only a
    /// slice of the id space, so minting must happen at the cluster
    /// client ([`register_with_id`] is the member-side entry; the RPC
    /// server turns a stray `Register` into
    /// [`ServeError::ClusterMint`] before reaching this).
    ///
    /// [`register_with_id`]: ShardedReconfigService::register_with_id
    pub fn register(&self, spec: CacheSpec) -> CacheId {
        assert!(
            self.topology.is_solo(),
            "cluster members cannot mint ids; use register_with_id"
        );
        let id = CacheId(self.next_id.fetch_add(1, Ordering::Relaxed));
        // Solo topology: local == global, every id owned.
        self.shards[self.topology.global_shard(id.value())].insert(id.value(), spec);
        id
    }

    /// Registers a logical cache under a caller-minted id — the cluster
    /// registration path, where the client mints ids and each member
    /// accepts only the ones its topology slice owns. Idempotent:
    /// re-registering an id with an identical spec succeeds without
    /// effect (nothing re-journaled), so a client retrying a
    /// registration whose reply was lost converges instead of erroring.
    ///
    /// # Errors
    ///
    /// - [`ServeError::Misrouted`] — `id`'s canonical shard is owned by
    ///   another member (names the owning global shard).
    /// - [`ServeError::DuplicateCache`] — `id` exists with a different
    ///   spec.
    pub fn register_with_id(&self, id: CacheId, spec: CacheSpec) -> Result<CacheId, ServeError> {
        self.try_shard_of(id)?.try_insert(id.value(), spec)?;
        // Keep the mint hint monotone past every id ever accepted, so a
        // restored or restarted member advertises a safe floor.
        self.next_id.fetch_max(id.value() + 1, Ordering::Relaxed);
        Ok(id)
    }

    /// Removes a cache and its published snapshot. In-flight planning for
    /// the cache (if any) is discarded at publication time.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownCache`] if the id was never registered or was
    /// already removed; [`ServeError::Misrouted`] if another cluster
    /// member owns it.
    pub fn deregister(&self, id: CacheId) -> Result<(), ServeError> {
        self.try_shard_of(id)?.remove(id)
    }

    /// Stores tenant `tenant`'s latest miss curve and marks the cache
    /// dirty on its shard. Only that one shard's lock is taken: producers
    /// feeding caches on different shards never contend.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownCache`] / [`ServeError::TenantOutOfRange`] /
    /// [`ServeError::Misrouted`].
    pub fn submit(&self, id: CacheId, tenant: usize, curve: MissCurve) -> Result<(), ServeError> {
        self.try_shard_of(id)?.submit(id, tenant, curve)
    }

    /// Pulls one update from a [`CurveSource`] and submits it. Returns
    /// `Ok(false)` (without marking anything dirty) once the source is
    /// exhausted.
    ///
    /// # Errors
    ///
    /// Same as [`submit`](ShardedReconfigService::submit).
    pub fn submit_from(
        &self,
        id: CacheId,
        tenant: usize,
        source: &mut dyn CurveSource,
    ) -> Result<bool, ServeError> {
        match source.next_curve() {
            Some(curve) => self.submit(id, tenant, curve).map(|_| true),
            None => Ok(false),
        }
    }

    /// Drains up to `max` pending updates from a [`CurveSource`] and
    /// submits only the newest — the backlog-coalescing ingest path. See
    /// [`ReconfigService::submit_latest`](crate::ReconfigService::submit_latest)
    /// for when (not) to use it.
    ///
    /// # Errors
    ///
    /// Same as [`submit`](ShardedReconfigService::submit).
    pub fn submit_latest(
        &self,
        id: CacheId,
        tenant: usize,
        source: &mut dyn CurveSource,
        max: usize,
    ) -> Result<usize, ServeError> {
        let mut curves = source.next_curves(max);
        let drained = curves.len();
        if let Some(curve) = curves.pop() {
            self.submit(id, tenant, curve)?;
        }
        Ok(drained)
    }

    /// The latest published plan for `id`, if any epoch has planned it.
    ///
    /// The reader hot path: one shard's read-lock held for one `Arc`
    /// clone. `None` for unpublished *and* for ids owned by another
    /// cluster member (a member can only answer for its own slice).
    pub fn snapshot(&self, id: CacheId) -> Option<Arc<PlanSnapshot>> {
        self.try_shard_of(id).ok()?.snapshot(id)
    }

    /// Epochs run so far (plane-wide: one `run_epoch` call is one epoch,
    /// whichever shards it touched).
    pub fn epochs(&self) -> u64 {
        self.epochs.load(Ordering::Relaxed)
    }

    /// Dirty caches currently queued, summed across shards.
    pub fn pending(&self) -> usize {
        self.shards.iter().map(|s| s.pending()).sum()
    }

    /// Registered caches, summed across shards.
    pub fn registered(&self) -> usize {
        self.shards.iter().map(|s| s.registered()).sum()
    }

    /// Ids of quarantined caches across the plane, ascending. A cache is
    /// quarantined when its planner panics during an epoch; see
    /// [`ServeError::Quarantined`].
    pub fn quarantined(&self) -> Vec<CacheId> {
        let mut ids: Vec<CacheId> = self.shards.iter().flat_map(|s| s.quarantined()).collect();
        ids.sort_unstable();
        ids
    }

    /// The plane's health snapshot: per-shard status (a shard whose
    /// epoch worker died or missed a deadline reports
    /// [`ShardState::Degraded`]), quarantined caches, epoch progress,
    /// and the journal fault state. `connections`/`rejected` are zero
    /// here — they are filled in by an RPC front-end, if one is serving
    /// this plane.
    pub fn health(&self) -> PlaneHealth {
        let mut quarantined: Vec<u64> = Vec::new();
        let mut shard_reports = Vec::with_capacity(self.shards.len());
        for (i, shard) in self.shards.iter().enumerate() {
            let ids = shard.quarantined();
            let state = if i > 0 && self.pool.as_ref().is_some_and(|p| p.is_degraded(i)) {
                ShardState::Degraded
            } else {
                ShardState::Ok
            };
            shard_reports.push(ShardHealth {
                caches: shard.registered() as u64,
                pending: shard.pending() as u64,
                quarantined: ids.len() as u64,
                state,
            });
            quarantined.extend(ids.iter().map(|id| id.value()));
        }
        quarantined.sort_unstable();
        PlaneHealth {
            epochs: self.epochs(),
            caches: shard_reports.iter().map(|s| s.caches).sum(),
            pending: shard_reports.iter().map(|s| s.pending).sum(),
            quarantined,
            shards: shard_reports,
            store: match &self.sink {
                None => StoreHealth::None,
                Some(sink) if sink.is_faulted() => StoreHealth::Faulted,
                Some(_) => StoreHealth::Ok,
            },
            connections: 0,
            rejected: 0,
        }
    }

    /// Handles for every registered cache, in ascending id order. The
    /// recovery companion to [`restore`](ShardedReconfigService::restore):
    /// a restarted process has no [`CacheId`]s (they lived in the dead
    /// process), so after a warm restart this is how callers re-acquire
    /// them. Also useful for observability sweeps.
    pub fn cache_ids(&self) -> Vec<CacheId> {
        let mut ids: Vec<CacheId> = self
            .shards
            .iter()
            .flat_map(|s| s.ids())
            .map(CacheId)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Runs one planning epoch on **every** shard — sequentially on this
    /// thread, or concurrently on the per-shard workers in thread-pool
    /// mode — and merges the per-shard results into one report. Each
    /// shard drains up to its own `max_batch` (per-shard epoch batching),
    /// and the merged report lists caches in ascending [`CacheId`] order
    /// regardless of shard layout or completion order.
    pub fn run_epoch(&self) -> EpochReport {
        let epoch = self.epochs.fetch_add(1, Ordering::Relaxed) + 1;
        let reports = match &self.pool {
            Some(pool) => pool.run_epoch(&self.shards, epoch),
            None => self.shards.iter().map(|s| s.run_epoch(epoch)).collect(),
        };
        merge_reports(epoch, reports)
    }

    /// Runs epochs until every shard's dirty queue is empty; returns the
    /// merged reports. (Deferred caches leave their queue until new data
    /// arrives, so this always terminates.)
    pub fn run_until_clean(&self) -> Vec<EpochReport> {
        let mut reports = Vec::new();
        while self.pending() > 0 {
            reports.push(self.run_epoch());
        }
        reports
    }

    /// Warm-restarts this plane from a journal: replays every shard file
    /// through the same state transitions the live paths take, so the
    /// restored plane has the registered caches, latest curves, dirty
    /// queues (in order), published snapshots, id allocator, and epoch
    /// counter the journaling plane had when its last record landed —
    /// bit-for-bit (property-tested in `tests/restore_equivalence.rs`).
    ///
    /// Call on a **fresh** plane whose shard count matches the store's,
    /// *before* [`with_sink`](ShardedReconfigService::with_sink) /
    /// [`with_threads`](ShardedReconfigService::with_threads); then
    /// attach the same store as the sink so new events append after the
    /// recovered history:
    ///
    /// ```no_run
    /// use std::sync::Arc;
    /// use talus_serve::ShardedReconfigService;
    /// use talus_store::Store;
    ///
    /// let store = Arc::new(Store::open("journal-dir", 4)?);
    /// let plane = ShardedReconfigService::new(4);
    /// let summary = plane.restore(&store)?;
    /// println!("restored {} caches, {} snapshots", summary.caches, summary.snapshots);
    /// let plane = plane.with_sink(store).with_threads();
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// Torn tails were already truncated when the store was opened;
    /// a crash between a shard's epoch cut and its plan records loses at
    /// most those plans — the affected caches re-plan on their next curve
    /// update, exactly like an epoch that failed mid-publish.
    ///
    /// # Errors
    ///
    /// - [`RestoreError::ShardMismatch`] — store and plane layouts differ.
    /// - [`RestoreError::NotFresh`] — this plane already has state.
    /// - [`RestoreError::Store`] — a shard file could not be read.
    /// - [`RestoreError::Corrupt`] — a record encodes a transition the
    ///   live service could never have journaled (wrong shard, unknown
    ///   cache, queue mismatch). The plane is left partially restored
    ///   and should be discarded.
    pub fn restore(&self, store: &Store) -> Result<RestoreSummary, RestoreError> {
        let n = self.shards.len();
        if store.shards() != n {
            return Err(RestoreError::ShardMismatch {
                store: store.shards(),
                plane: n,
            });
        }
        if self.next_id.load(Ordering::Relaxed) != 0
            || self.epochs.load(Ordering::Relaxed) != 0
            || self.registered() > 0
        {
            return Err(RestoreError::NotFresh);
        }
        let mut summary = RestoreSummary::default();
        let mut max_id: Option<u64> = None;
        for (i, shard) in self.shards.iter().enumerate() {
            let scanned = store.replay_shard(i).map_err(RestoreError::Store)?;
            if scanned.tail.is_some() {
                summary.torn_shards += 1;
            }
            for rec in scanned.records {
                let seq = rec.seq();
                let corrupt = |what: &'static str| RestoreError::Corrupt {
                    shard: i,
                    seq,
                    what,
                };
                match rec {
                    Record::Register {
                        id,
                        capacity,
                        tenants,
                        planner,
                        ..
                    } => {
                        if self.topology.local_shard(id) != Some(i) {
                            return Err(corrupt("register routed to the wrong shard"));
                        }
                        max_id = max_id.max(Some(id));
                        let spec = CacheSpec::new(capacity, tenants as usize).with_planner(planner);
                        if !shard.restore_register(id, spec) {
                            return Err(corrupt("register of an already-registered id"));
                        }
                    }
                    Record::Deregister { id, .. } => {
                        if !shard.restore_deregister(id) {
                            return Err(corrupt("deregister of an unknown cache"));
                        }
                    }
                    Record::Curve {
                        id, tenant, curve, ..
                    } => {
                        if !shard.restore_submit(id, tenant as usize, curve) {
                            return Err(corrupt("curve for an unknown cache or tenant"));
                        }
                    }
                    Record::EpochCut {
                        shard: s,
                        epoch,
                        drained,
                        ..
                    } => {
                        if s as usize != i {
                            return Err(corrupt("epoch cut stamped for a different shard"));
                        }
                        summary.epochs = summary.epochs.max(epoch);
                        if !shard.restore_cut(&drained) {
                            return Err(corrupt("epoch cut disagrees with the dirty queue"));
                        }
                    }
                    Record::Plan {
                        id,
                        epoch,
                        version,
                        updates,
                        plan,
                        ..
                    } => {
                        summary.epochs = summary.epochs.max(epoch);
                        let snap = PlanSnapshot {
                            cache: CacheId(id),
                            epoch,
                            version,
                            updates,
                            plan,
                        };
                        if !shard.restore_plan(snap) {
                            return Err(corrupt("plan for an unknown cache"));
                        }
                    }
                }
                summary.records += 1;
            }
        }
        self.next_id
            .store(max_id.map_or(0, |m| m + 1), Ordering::Relaxed);
        self.epochs.store(summary.epochs, Ordering::Relaxed);
        summary.caches = self.registered();
        summary.snapshots = self.shards.iter().map(|s| s.snapshots()).sum();
        Ok(summary)
    }
}

/// What [`ShardedReconfigService::restore`] rebuilt.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RestoreSummary {
    /// Journal records applied across all shards.
    pub records: usize,
    /// Caches live (registered and not deregistered) after the replay.
    pub caches: usize,
    /// Plan snapshots republished.
    pub snapshots: usize,
    /// The recovered plane-wide epoch counter (largest epoch journaled).
    pub epochs: u64,
    /// Shards whose journal ended in a torn tail that was dropped.
    pub torn_shards: usize,
}

/// Why [`ShardedReconfigService::restore`] refused or failed.
#[derive(Debug, Clone, PartialEq)]
pub enum RestoreError {
    /// The store's shard layout differs from the plane's; records cannot
    /// be re-routed (placement is `shard_of(id, n)` for both).
    ShardMismatch {
        /// Shards in the store.
        store: usize,
        /// Shards in the plane.
        plane: usize,
    },
    /// The plane already holds state; restore only into a fresh plane.
    NotFresh,
    /// A shard file could not be read back.
    Store(StoreError),
    /// A record encodes a transition the live service could never have
    /// journaled — the journal is corrupt or belongs to another store.
    Corrupt {
        /// Shard whose journal the record came from.
        shard: usize,
        /// The record's sequence number.
        seq: u64,
        /// What was wrong with it.
        what: &'static str,
    },
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::ShardMismatch { store, plane } => {
                write!(f, "store has {store} shards but the plane has {plane}")
            }
            RestoreError::NotFresh => write!(f, "restore requires a fresh plane"),
            RestoreError::Store(e) => write!(f, "journal read failed: {e}"),
            RestoreError::Corrupt { shard, seq, what } => {
                write!(f, "corrupt journal (shard {shard}, seq {seq}): {what}")
            }
        }
    }
}

impl std::error::Error for RestoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RestoreError::Store(e) => Some(e),
            _ => None,
        }
    }
}

/// Folds per-shard epoch reports into one plane-wide report, re-sorting
/// into CacheId order (shard reports arrive in arbitrary completion
/// order in thread-pool mode). Crate-visible: the cluster client merges
/// per-member reports through the same fold so a cluster epoch report
/// is bit-identical to a single-process one.
pub(crate) fn merge_reports(epoch: u64, reports: Vec<EpochReport>) -> EpochReport {
    let mut merged = EpochReport {
        epoch,
        planned: Vec::new(),
        deferred: Vec::new(),
        failed: Vec::new(),
        quarantined: Vec::new(),
        remaining_dirty: 0,
    };
    for report in reports {
        merged.planned.extend(report.planned);
        merged.deferred.extend(report.deferred);
        merged.failed.extend(report.failed);
        merged.quarantined.extend(report.quarantined);
        merged.remaining_dirty += report.remaining_dirty;
    }
    merged.planned.sort_unstable();
    merged.deferred.sort_unstable();
    merged.failed.sort_unstable_by_key(|(id, _)| *id);
    merged.quarantined.sort_unstable();
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(cliff_at: f64, cap: f64) -> MissCurve {
        MissCurve::from_samples(
            &[0.0, cliff_at / 2.0, cliff_at, cap],
            &[10.0, 10.0, 1.0, 1.0],
        )
        .unwrap()
    }

    fn service_is_send_sync<T: Send + Sync>() {}

    #[test]
    fn shareable_across_threads() {
        service_is_send_sync::<ShardedReconfigService>();
    }

    #[test]
    fn routes_caches_across_shards() {
        let s = ShardedReconfigService::new(4);
        let ids: Vec<CacheId> = (0..64)
            .map(|_| s.register(CacheSpec::new(1024, 1)))
            .collect();
        assert_eq!(s.registered(), 64);
        // mix64 routing spreads sequential ids over all shards.
        let mut per_shard = [0usize; 4];
        for id in &ids {
            per_shard[s.shard_index(*id)] += 1;
        }
        assert!(
            per_shard.iter().all(|&n| n >= 4),
            "unbalanced routing: {per_shard:?}"
        );
        // Routing is a pure function of the id.
        assert_eq!(s.shard_index(ids[7]), s.shard_index(ids[7]));
    }

    #[test]
    fn one_epoch_drains_every_shard_in_id_order() {
        let s = ShardedReconfigService::new(3);
        let ids: Vec<CacheId> = (0..12)
            .map(|_| s.register(CacheSpec::new(1024, 1)))
            .collect();
        for id in ids.iter().rev() {
            s.submit(*id, 0, curve(512.0, 1024.0)).unwrap();
        }
        let report = s.run_epoch();
        assert_eq!(report.epoch, 1);
        assert_eq!(report.planned, ids, "merged report is in CacheId order");
        assert_eq!(report.remaining_dirty, 0);
        for id in &ids {
            assert_eq!(s.snapshot(*id).unwrap().version, 1);
        }
        assert!(s.run_epoch().is_idle());
        assert_eq!(s.epochs(), 2);
    }

    #[test]
    fn threaded_mode_publishes_identical_reports() {
        let seq = ShardedReconfigService::new(4);
        let par = ShardedReconfigService::new(4).with_threads();
        assert!(par.is_threaded() && !seq.is_threaded());
        for _ in 0..10 {
            let a = seq.register(CacheSpec::new(2048, 2));
            let b = par.register(CacheSpec::new(2048, 2));
            assert_eq!(a, b, "same id allocation order");
            for t in 0..2 {
                seq.submit(a, t, curve(512.0 + 64.0 * t as f64, 2048.0))
                    .unwrap();
                par.submit(b, t, curve(512.0 + 64.0 * t as f64, 2048.0))
                    .unwrap();
            }
        }
        let r_seq = seq.run_epoch();
        let r_par = par.run_epoch();
        assert_eq!(r_seq, r_par);
        for id in r_seq.planned {
            let a = seq.snapshot(id).unwrap();
            let b = par.snapshot(id).unwrap();
            assert_eq!(a.plan, b.plan);
            assert_eq!(
                (a.version, a.updates, a.epoch),
                (b.version, b.updates, b.epoch)
            );
        }
    }

    #[test]
    fn deferred_and_failed_merge_in_id_order() {
        let s = ShardedReconfigService::new(2);
        // Mix of: complete single-tenant caches (plan), a two-tenant cache
        // missing one curve (defer), and a cache whose curve's domain
        // excludes its fair share (fail).
        let ok_a = s.register(CacheSpec::new(1024, 1));
        let lagging = s.register(CacheSpec::new(1024, 2));
        let ok_b = s.register(CacheSpec::new(1024, 1));
        let failing = s.register(CacheSpec::new(1024, 2));
        s.submit(ok_b, 0, curve(512.0, 1024.0)).unwrap();
        s.submit(ok_a, 0, curve(512.0, 1024.0)).unwrap();
        s.submit(lagging, 0, curve(512.0, 1024.0)).unwrap();
        s.submit(failing, 0, curve(512.0, 1024.0)).unwrap();
        s.submit(
            failing,
            1,
            MissCurve::from_samples(&[768.0, 1024.0], &[5.0, 1.0]).unwrap(),
        )
        .unwrap();
        let report = s.run_epoch();
        assert_eq!(report.planned, vec![ok_a, ok_b]);
        assert_eq!(report.deferred, vec![lagging]);
        assert_eq!(report.failed.len(), 1);
        assert_eq!(report.failed[0].0, failing);
    }

    #[test]
    fn run_until_clean_drains_all_shards() {
        let s = ShardedReconfigService::new(4).with_max_batch(1);
        let ids: Vec<CacheId> = (0..8)
            .map(|_| s.register(CacheSpec::new(1024, 1)))
            .collect();
        for id in &ids {
            s.submit(*id, 0, curve(512.0, 1024.0)).unwrap();
        }
        let reports = s.run_until_clean();
        assert!(s.pending() == 0);
        let planned: usize = reports.iter().map(|r| r.planned.len()).sum();
        assert_eq!(planned, 8);
        // Per-shard batching: one epoch plans at most one cache per shard.
        assert!(reports.iter().all(|r| r.planned.len() <= 4));
    }

    #[test]
    fn deregister_on_the_right_shard() {
        let s = ShardedReconfigService::new(4).with_threads();
        let id = s.register(CacheSpec::new(1024, 1));
        s.submit(id, 0, curve(512.0, 1024.0)).unwrap();
        s.run_epoch();
        assert!(s.snapshot(id).is_some());
        s.deregister(id).unwrap();
        assert!(s.snapshot(id).is_none());
        assert_eq!(s.deregister(id), Err(ServeError::UnknownCache(id)));
        assert_eq!(s.registered(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        ShardedReconfigService::new(0);
    }

    #[test]
    fn cluster_member_owns_only_its_slice() {
        let t = ShardTopology::range(4, 0, 2);
        let member = ShardedReconfigService::new(2).with_topology(t);
        let owned = (0u64..).find(|id| t.owns(*id)).unwrap();
        let foreign = (0u64..).find(|id| !t.owns(*id)).unwrap();

        let spec = CacheSpec::new(1024, 1);
        assert_eq!(
            member.register_with_id(CacheId(owned), spec),
            Ok(CacheId(owned))
        );
        // Idempotent: identical spec converges, different spec conflicts.
        assert_eq!(
            member.register_with_id(CacheId(owned), spec),
            Ok(CacheId(owned))
        );
        assert_eq!(
            member.register_with_id(CacheId(owned), CacheSpec::new(2048, 1)),
            Err(ServeError::DuplicateCache(CacheId(owned)))
        );
        assert_eq!(member.registered(), 1);
        assert_eq!(member.next_id_hint(), owned + 1);

        // Everything addressed to another member's slice bounces typed.
        let want = ServeError::Misrouted {
            cache: CacheId(foreign),
            shard: t.global_shard(foreign),
        };
        assert_eq!(
            member.register_with_id(CacheId(foreign), spec),
            Err(want.clone())
        );
        assert_eq!(
            member.submit(CacheId(foreign), 0, curve(512.0, 1024.0)),
            Err(want.clone())
        );
        assert_eq!(member.deregister(CacheId(foreign)), Err(want));
        assert!(member.snapshot(CacheId(foreign)).is_none());

        // Owned ids plan normally.
        member
            .submit(CacheId(owned), 0, curve(512.0, 1024.0))
            .unwrap();
        let report = member.run_epoch();
        assert_eq!(report.planned, vec![CacheId(owned)]);
    }

    #[test]
    #[should_panic(expected = "cannot mint ids")]
    fn cluster_member_refuses_to_mint() {
        let member = ShardedReconfigService::new(2).with_topology(ShardTopology::range(4, 2, 2));
        member.register(CacheSpec::new(1024, 1));
    }
}
