//! The reconfiguration service: registry, dirty-queue batching, epochs.

use std::collections::{HashMap, VecDeque};
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use crate::snapshot::{CacheId, PlanSnapshot};
use talus_core::{CurveSource, MissCurve, PlanError};
use talus_partition::Planner;

/// How a logical cache is planned: its capacity budget, how many tenants
/// share it, and the planner configuration (grain, policy, safety margin).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheSpec {
    /// Total capacity budget in lines.
    pub capacity: u64,
    /// Number of tenants (logical partitions) sharing the budget.
    pub tenants: usize,
    /// The planning pipeline (defaults to Talus: hill climbing on hulls,
    /// 5% safety margin, capacity/64 grain).
    pub planner: Planner,
}

impl CacheSpec {
    /// A spec with the default Talus planner at a capacity/64 grain.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `tenants` is zero.
    pub fn new(capacity: u64, tenants: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(tenants > 0, "need at least one tenant");
        CacheSpec {
            capacity,
            tenants,
            planner: Planner::new((capacity / 64).max(1)),
        }
    }

    /// Replaces the planner configuration.
    pub fn with_planner(mut self, planner: Planner) -> Self {
        self.planner = planner;
        self
    }
}

/// Errors surfaced by the service API.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The cache id is not (or no longer) registered.
    UnknownCache(CacheId),
    /// The tenant index is outside the cache's registered tenant count.
    TenantOutOfRange {
        /// The cache addressed.
        cache: CacheId,
        /// The offending tenant index.
        tenant: usize,
        /// The cache's tenant count.
        tenants: usize,
    },
    /// Planning failed for this cache (e.g. an allocation fell below a
    /// curve's monitored domain). The cache stays clean; the next curve
    /// update re-queues it.
    Plan {
        /// The cache whose replanning failed.
        cache: CacheId,
        /// The underlying planning error.
        source: PlanError,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownCache(id) => write!(f, "{id} is not registered"),
            ServeError::TenantOutOfRange {
                cache,
                tenant,
                tenants,
            } => write!(
                f,
                "tenant {tenant} out of range for {cache} ({tenants} tenants)"
            ),
            ServeError::Plan { cache, source } => write!(f, "planning {cache} failed: {source}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Plan { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// What one [`run_epoch`](ReconfigService::run_epoch) call did.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochReport {
    /// The epoch number (global, monotone from 1).
    pub epoch: u64,
    /// Caches whose new plans were published this epoch.
    pub planned: Vec<CacheId>,
    /// Dirty caches skipped because at least one tenant has not yet
    /// submitted a curve; they re-queue on the next submission.
    pub deferred: Vec<CacheId>,
    /// Caches whose replanning failed, with the error.
    pub failed: Vec<(CacheId, ServeError)>,
    /// Dirty caches left in the queue for the next epoch (batch overflow).
    pub remaining_dirty: usize,
}

impl EpochReport {
    /// Whether the epoch had nothing at all to do.
    pub fn is_idle(&self) -> bool {
        self.planned.is_empty() && self.deferred.is_empty() && self.failed.is_empty()
    }
}

/// Per-cache mutable state, guarded by the registry lock.
#[derive(Debug)]
struct CacheEntry {
    spec: CacheSpec,
    /// Latest curve per tenant (`None` until the tenant's first update).
    curves: Vec<Option<MissCurve>>,
    /// Total curve updates accepted since registration.
    updates: u64,
    /// Successful plans published (the snapshot version counter).
    version: u64,
    /// Whether the cache sits in the dirty queue.
    dirty: bool,
}

#[derive(Debug, Default)]
struct Registry {
    next_id: u64,
    caches: HashMap<u64, CacheEntry>,
    /// FIFO of dirty cache ids; an id appears at most once (the `dirty`
    /// flag dedups).
    dirty_queue: VecDeque<u64>,
}

/// The online reconfiguration service. See the crate docs for the
/// concurrency contract.
///
/// All methods take `&self`; the service is `Send + Sync` and is shared
/// across producer, planner, and reader threads behind an `Arc`.
#[derive(Debug)]
pub struct ReconfigService {
    /// Most caches replanned per epoch; overflow stays queued.
    max_batch: usize,
    registry: Mutex<Registry>,
    /// Reader-facing snapshot map: the only state readers touch.
    published: RwLock<HashMap<u64, Arc<PlanSnapshot>>>,
    epochs: AtomicU64,
}

impl Default for ReconfigService {
    fn default() -> Self {
        Self::new()
    }
}

impl ReconfigService {
    /// A service replanning at most 64 caches per epoch.
    pub fn new() -> Self {
        ReconfigService {
            max_batch: 64,
            registry: Mutex::new(Registry::default()),
            published: RwLock::new(HashMap::new()),
            epochs: AtomicU64::new(0),
        }
    }

    /// Caps how many caches one epoch replans (the batching knob: bounds
    /// planner latency per epoch under a thundering herd of updates).
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero.
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        assert!(max_batch > 0, "epoch batch must be positive");
        self.max_batch = max_batch;
        self
    }

    fn lock_registry(&self) -> std::sync::MutexGuard<'_, Registry> {
        self.registry.lock().expect("registry lock poisoned")
    }

    /// Registers a logical cache; returns its handle. The cache publishes
    /// no plan until every tenant has submitted at least one curve and an
    /// epoch has run.
    pub fn register(&self, spec: CacheSpec) -> CacheId {
        let mut reg = self.lock_registry();
        let id = reg.next_id;
        reg.next_id += 1;
        reg.caches.insert(
            id,
            CacheEntry {
                curves: vec![None; spec.tenants],
                spec,
                updates: 0,
                version: 0,
                dirty: false,
            },
        );
        CacheId(id)
    }

    /// Removes a cache and its published snapshot. In-flight planning for
    /// the cache (if any) is discarded at publication time.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownCache`] if the id was never registered or was
    /// already removed.
    pub fn deregister(&self, id: CacheId) -> Result<(), ServeError> {
        {
            let mut reg = self.lock_registry();
            reg.caches
                .remove(&id.0)
                .ok_or(ServeError::UnknownCache(id))?;
            // The id may linger in dirty_queue; the epoch drain skips
            // entries with no registry record.
        }
        self.published
            .write()
            .expect("published lock poisoned")
            .remove(&id.0);
        Ok(())
    }

    /// Stores tenant `tenant`'s latest miss curve and marks the cache
    /// dirty (queued for the next epoch). Submitting repeatedly between
    /// epochs is fine — the epoch plans the latest curves once.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownCache`] / [`ServeError::TenantOutOfRange`].
    pub fn submit(&self, id: CacheId, tenant: usize, curve: MissCurve) -> Result<(), ServeError> {
        let mut reg = self.lock_registry();
        let entry = reg
            .caches
            .get_mut(&id.0)
            .ok_or(ServeError::UnknownCache(id))?;
        let tenants = entry.spec.tenants;
        if tenant >= tenants {
            return Err(ServeError::TenantOutOfRange {
                cache: id,
                tenant,
                tenants,
            });
        }
        entry.curves[tenant] = Some(curve);
        entry.updates += 1;
        if !entry.dirty {
            entry.dirty = true;
            reg.dirty_queue.push_back(id.0);
        }
        Ok(())
    }

    /// Pulls one update from a [`CurveSource`] and submits it. Returns
    /// `Ok(false)` (without marking anything dirty) once the source is
    /// exhausted.
    ///
    /// # Errors
    ///
    /// Same as [`submit`](ReconfigService::submit).
    pub fn submit_from(
        &self,
        id: CacheId,
        tenant: usize,
        source: &mut dyn CurveSource,
    ) -> Result<bool, ServeError> {
        match source.next_curve() {
            Some(curve) => self.submit(id, tenant, curve).map(|_| true),
            None => Ok(false),
        }
    }

    /// Drains up to `max` pending updates from a [`CurveSource`] and
    /// submits only the newest — the backlog-coalescing ingest path
    /// (`CurveSource::next_curves` is the batching seam). A tenant that
    /// fell behind — a stalled producer, a replay catching up — hands its
    /// whole backlog over in one call; since an epoch plans only the
    /// latest curve per tenant anyway, the stale updates are dropped here
    /// instead of being submitted one by one. Returns how many updates
    /// were drained (0 means the source was exhausted and nothing was
    /// submitted).
    ///
    /// This is for *finite* backlogs (replays, queues). An infinite
    /// source such as a live `MonitorSource` always produces exactly
    /// `max` curves — each a full monitoring interval of work — so
    /// draining it here would burn `max − 1` intervals to discard them;
    /// use [`submit_from`](ReconfigService::submit_from) for live
    /// monitors.
    ///
    /// # Errors
    ///
    /// Same as [`submit`](ReconfigService::submit).
    pub fn submit_latest(
        &self,
        id: CacheId,
        tenant: usize,
        source: &mut dyn CurveSource,
        max: usize,
    ) -> Result<usize, ServeError> {
        let mut curves = source.next_curves(max);
        let drained = curves.len();
        if let Some(curve) = curves.pop() {
            self.submit(id, tenant, curve)?;
        }
        Ok(drained)
    }

    /// The latest published plan for `id`, if any epoch has planned it.
    ///
    /// This is the reader hot path: a read-lock held for one `Arc` clone.
    pub fn snapshot(&self, id: CacheId) -> Option<Arc<PlanSnapshot>> {
        self.published
            .read()
            .expect("published lock poisoned")
            .get(&id.0)
            .cloned()
    }

    /// Epochs run so far.
    pub fn epochs(&self) -> u64 {
        self.epochs.load(Ordering::Relaxed)
    }

    /// Dirty caches currently queued.
    pub fn pending(&self) -> usize {
        self.lock_registry().dirty_queue.len()
    }

    /// Registered caches.
    pub fn registered(&self) -> usize {
        self.lock_registry().caches.len()
    }

    /// Runs one planning epoch: drain a batch of dirty caches, re-plan
    /// them through the shared [`Planner`] pipeline with **no locks
    /// held**, then publish the new snapshots in one epoch swap.
    pub fn run_epoch(&self) -> EpochReport {
        let epoch = self.epochs.fetch_add(1, Ordering::Relaxed) + 1;

        // Phase 1 — drain (brief registry lock): copy out the curves of up
        // to `max_batch` ready caches.
        struct Job {
            id: CacheId,
            planner: Planner,
            capacity: u64,
            curves: Vec<MissCurve>,
            round: u64,
            updates: u64,
        }
        let mut jobs: Vec<Job> = Vec::new();
        let mut deferred = Vec::new();
        let remaining_dirty;
        {
            let mut reg = self.lock_registry();
            while jobs.len() < self.max_batch {
                let Some(id) = reg.dirty_queue.pop_front() else {
                    break;
                };
                let Some(entry) = reg.caches.get_mut(&id) else {
                    continue; // deregistered while queued
                };
                entry.dirty = false;
                if entry.curves.iter().any(Option::is_none) {
                    // Not every tenant has reported yet: wait for data. The
                    // missing tenant's first submission re-queues the cache.
                    deferred.push(CacheId(id));
                    continue;
                }
                jobs.push(Job {
                    id: CacheId(id),
                    planner: entry.spec.planner,
                    capacity: entry.spec.capacity,
                    curves: entry.curves.iter().flatten().cloned().collect(),
                    round: entry.version,
                    updates: entry.updates,
                });
            }
            remaining_dirty = reg.dirty_queue.len();
        }

        // Phase 2 — plan (no locks): the expensive part.
        let mut planned = Vec::new();
        let mut failed = Vec::new();
        let mut ready = Vec::new();
        for job in jobs {
            match job.planner.plan(&job.curves, job.capacity, job.round) {
                Ok(plan) => ready.push((job.id, job.updates, plan)),
                Err(source) => failed.push((
                    job.id,
                    ServeError::Plan {
                        cache: job.id,
                        source,
                    },
                )),
            }
        }

        // Phase 3 — publish: version assignment and the epoch swap happen
        // atomically (published write lock nested inside the registry
        // lock), so a concurrent deregister can never interleave between
        // the two and strand an orphaned snapshot, and a concurrent epoch
        // that already landed fresher curves is never overwritten by this
        // (older) result. Lock order registry → published is never
        // inverted elsewhere (deregister takes them sequentially).
        if !ready.is_empty() {
            let mut reg = self.lock_registry();
            let mut published = self.published.write().expect("published lock poisoned");
            for (id, updates, plan) in ready {
                let Some(entry) = reg.caches.get_mut(&id.0) else {
                    continue; // deregistered mid-plan: drop the result
                };
                if published
                    .get(&id.0)
                    .is_some_and(|snap| snap.updates > updates)
                {
                    continue; // a fresher plan already landed: keep it
                }
                entry.version += 1;
                published.insert(
                    id.0,
                    Arc::new(PlanSnapshot {
                        cache: id,
                        epoch,
                        version: entry.version,
                        updates,
                        plan,
                    }),
                );
                planned.push(id);
            }
        }

        EpochReport {
            epoch,
            planned,
            deferred,
            failed,
            remaining_dirty,
        }
    }

    /// Runs epochs until the dirty queue is empty; returns the reports.
    /// (Deferred caches leave the queue until new data arrives, so this
    /// always terminates.)
    pub fn run_until_clean(&self) -> Vec<EpochReport> {
        let mut reports = Vec::new();
        while self.pending() > 0 {
            reports.push(self.run_epoch());
        }
        reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(cliff_at: f64, cap: f64) -> MissCurve {
        MissCurve::from_samples(
            &[0.0, cliff_at / 2.0, cliff_at, cap],
            &[10.0, 10.0, 1.0, 1.0],
        )
        .unwrap()
    }

    fn service_is_send_sync<T: Send + Sync>() {}

    #[test]
    fn shareable_across_threads() {
        service_is_send_sync::<ReconfigService>();
    }

    #[test]
    fn snapshot_absent_until_first_epoch() {
        let s = ReconfigService::new();
        let id = s.register(CacheSpec::new(1024, 1));
        assert!(s.snapshot(id).is_none());
        s.submit(id, 0, curve(512.0, 1024.0)).unwrap();
        assert!(s.snapshot(id).is_none(), "submit alone publishes nothing");
        s.run_epoch();
        assert_eq!(s.snapshot(id).unwrap().version, 1);
    }

    #[test]
    fn missing_tenant_defers_until_data_arrives() {
        let s = ReconfigService::new();
        let id = s.register(CacheSpec::new(1024, 2));
        s.submit(id, 0, curve(512.0, 1024.0)).unwrap();
        let report = s.run_epoch();
        assert_eq!(report.deferred, vec![id]);
        assert!(report.planned.is_empty());
        assert!(s.snapshot(id).is_none());
        assert_eq!(s.pending(), 0, "deferred caches leave the queue");
        // The straggler reports: the cache re-queues and plans.
        s.submit(id, 1, curve(256.0, 1024.0)).unwrap();
        let report = s.run_epoch();
        assert_eq!(report.planned, vec![id]);
    }

    #[test]
    fn batching_bounds_epoch_work_fifo() {
        let s = ReconfigService::new().with_max_batch(2);
        let ids: Vec<CacheId> = (0..5)
            .map(|_| {
                let id = s.register(CacheSpec::new(1024, 1));
                s.submit(id, 0, curve(512.0, 1024.0)).unwrap();
                id
            })
            .collect();
        let r1 = s.run_epoch();
        assert_eq!(r1.planned, vec![ids[0], ids[1]]);
        assert_eq!(r1.remaining_dirty, 3);
        let r2 = s.run_epoch();
        assert_eq!(r2.planned, vec![ids[2], ids[3]]);
        let r3 = s.run_epoch();
        assert_eq!(r3.planned, vec![ids[4]]);
        assert!(s.run_epoch().is_idle());
        assert_eq!(s.epochs(), 4);
    }

    #[test]
    fn resubmission_between_epochs_plans_latest_curves_once() {
        let s = ReconfigService::new();
        let id = s.register(CacheSpec::new(1024, 1));
        s.submit(id, 0, curve(512.0, 1024.0)).unwrap();
        s.submit(id, 0, curve(256.0, 1024.0)).unwrap();
        assert_eq!(s.pending(), 1, "dirty flag dedups the queue");
        let report = s.run_epoch();
        assert_eq!(report.planned, vec![id]);
        let snap = s.snapshot(id).unwrap();
        assert_eq!(snap.updates, 2);
        assert_eq!(snap.version, 1);
    }

    #[test]
    fn versions_and_epochs_advance_independently() {
        let s = ReconfigService::new();
        let id = s.register(CacheSpec::new(1024, 1));
        for round in 1..=3u64 {
            s.submit(id, 0, curve(512.0, 1024.0)).unwrap();
            s.run_epoch();
            assert_eq!(s.snapshot(id).unwrap().version, round);
        }
        s.run_epoch(); // idle epoch: no new version
        assert_eq!(s.snapshot(id).unwrap().version, 3);
        assert_eq!(s.epochs(), 4);
    }

    #[test]
    fn plan_failure_is_reported_not_published() {
        let s = ReconfigService::new();
        let id = s.register(CacheSpec::new(1024, 2));
        // Tenant 1's curve starts at 512 lines: a fair split of 512 is
        // fine, but tenant 0's hill-climb-greedy curve drags tenant 1's
        // allocation below its monitored domain.
        let above_domain = MissCurve::from_samples(&[768.0, 1024.0], &[5.0, 1.0]).unwrap();
        s.submit(id, 0, curve(512.0, 1024.0)).unwrap();
        s.submit(id, 1, above_domain).unwrap();
        let report = s.run_epoch();
        assert_eq!(report.failed.len(), 1);
        assert!(matches!(
            report.failed[0].1,
            ServeError::Plan { cache, .. } if cache == id
        ));
        assert!(s.snapshot(id).is_none());
    }

    #[test]
    fn deregister_removes_registry_and_snapshot() {
        let s = ReconfigService::new();
        let id = s.register(CacheSpec::new(1024, 1));
        s.submit(id, 0, curve(512.0, 1024.0)).unwrap();
        s.run_epoch();
        assert!(s.snapshot(id).is_some());
        s.deregister(id).unwrap();
        assert!(s.snapshot(id).is_none());
        assert_eq!(s.registered(), 0);
        assert_eq!(s.deregister(id), Err(ServeError::UnknownCache(id)));
        assert_eq!(
            s.submit(id, 0, curve(512.0, 1024.0)),
            Err(ServeError::UnknownCache(id))
        );
    }

    #[test]
    fn queued_then_deregistered_cache_is_skipped() {
        let s = ReconfigService::new();
        let id = s.register(CacheSpec::new(1024, 1));
        s.submit(id, 0, curve(512.0, 1024.0)).unwrap();
        s.deregister(id).unwrap();
        let report = s.run_epoch();
        assert!(report.is_idle());
    }

    #[test]
    fn tenant_bounds_checked() {
        let s = ReconfigService::new();
        let id = s.register(CacheSpec::new(1024, 2));
        let err = s.submit(id, 2, curve(512.0, 1024.0)).unwrap_err();
        assert_eq!(
            err,
            ServeError::TenantOutOfRange {
                cache: id,
                tenant: 2,
                tenants: 2
            }
        );
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn submit_from_drains_sources() {
        use talus_core::ReplaySource;
        let s = ReconfigService::new();
        let id = s.register(CacheSpec::new(1024, 1));
        let mut src = ReplaySource::new(vec![curve(512.0, 1024.0), curve(256.0, 1024.0)]);
        assert!(s.submit_from(id, 0, &mut src).unwrap());
        assert!(s.submit_from(id, 0, &mut src).unwrap());
        assert!(!s.submit_from(id, 0, &mut src).unwrap(), "exhausted");
        let reports = s.run_until_clean();
        assert_eq!(reports.len(), 1);
        assert_eq!(s.snapshot(id).unwrap().updates, 2);
    }

    #[test]
    fn submit_latest_coalesces_a_backlog() {
        use talus_core::ReplaySource;
        let s = ReconfigService::new();
        let id = s.register(CacheSpec::new(1024, 1));
        // Three updates backlogged; only the newest (cliff at 128) should
        // reach the planner, as one accepted update.
        let mut src = ReplaySource::new(vec![
            curve(512.0, 1024.0),
            curve(256.0, 1024.0),
            curve(128.0, 1024.0),
        ]);
        assert_eq!(s.submit_latest(id, 0, &mut src, 8).unwrap(), 3);
        assert_eq!(s.pending(), 1);
        s.run_epoch();
        let snap = s.snapshot(id).unwrap();
        assert_eq!(snap.updates, 1, "stale backlog entries were dropped");
        // The published plan is the one the newest curve produces: replay
        // the same curve through the plain path on a fresh cache.
        let twin = s.register(CacheSpec::new(1024, 1));
        s.submit(twin, 0, curve(128.0, 1024.0)).unwrap();
        s.run_epoch();
        assert_eq!(s.snapshot(twin).unwrap().plan, s.snapshot(id).unwrap().plan);
        // Exhausted source: nothing drained, nothing queued.
        assert_eq!(s.submit_latest(id, 0, &mut src, 8).unwrap(), 0);
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn ids_are_never_reused() {
        let s = ReconfigService::new();
        let a = s.register(CacheSpec::new(1024, 1));
        s.deregister(a).unwrap();
        let b = s.register(CacheSpec::new(1024, 1));
        assert_ne!(a, b);
    }
}
