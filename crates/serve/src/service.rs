//! The single-shard reconfiguration service and the shared API types
//! (specs, errors, epoch reports).
//!
//! [`ReconfigService`] is one [`Shard`](crate::shard::Shard) plus id and
//! epoch allocation — the single-lock configuration. The sharded,
//! router-fronted configuration with the same public API is
//! [`ShardedReconfigService`](crate::ShardedReconfigService).

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::shard::Shard;
use crate::snapshot::{CacheId, PlanSnapshot};
use talus_core::{CurveSource, MissCurve, PlanError};
use talus_partition::Planner;

/// How a logical cache is planned: its capacity budget, how many tenants
/// share it, and the planner configuration (grain, policy, safety margin).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheSpec {
    /// Total capacity budget in lines.
    pub capacity: u64,
    /// Number of tenants (logical partitions) sharing the budget.
    pub tenants: usize,
    /// The planning pipeline (defaults to Talus: hill climbing on hulls,
    /// 5% safety margin, capacity/64 grain).
    pub planner: Planner,
}

impl CacheSpec {
    /// A spec with the default Talus planner at a capacity/64 grain.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `tenants` is zero.
    pub fn new(capacity: u64, tenants: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(tenants > 0, "need at least one tenant");
        CacheSpec {
            capacity,
            tenants,
            planner: Planner::new((capacity / 64).max(1)),
        }
    }

    /// Replaces the planner configuration.
    pub fn with_planner(mut self, planner: Planner) -> Self {
        self.planner = planner;
        self
    }
}

/// Errors surfaced by the service API.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The cache id is not (or no longer) registered.
    UnknownCache(CacheId),
    /// The tenant index is outside the cache's registered tenant count.
    TenantOutOfRange {
        /// The cache addressed.
        cache: CacheId,
        /// The offending tenant index.
        tenant: usize,
        /// The cache's tenant count.
        tenants: usize,
    },
    /// Planning failed for this cache (e.g. an allocation fell below a
    /// curve's monitored domain). The cache stays clean; the next curve
    /// update re-queues it.
    Plan {
        /// The cache whose replanning failed.
        cache: CacheId,
        /// The underlying planning error.
        source: PlanError,
    },
    /// The cache is quarantined: its planner panicked during an epoch.
    /// The last-good snapshot keeps serving, but new submissions are
    /// rejected until the cache is deregistered and re-registered (or
    /// the plane is restored from its journal).
    Quarantined(CacheId),
    /// The cache's canonical shard (`shard_of(id, total)`) is not owned
    /// by this plane's topology slice — the operation was routed to the
    /// wrong cluster member. Names the owning *global* shard so a client
    /// can re-route.
    Misrouted {
        /// The cache addressed.
        cache: CacheId,
        /// The global shard that owns it.
        shard: usize,
    },
    /// A cache with this client-minted id already exists with a
    /// *different* spec. (Re-registering an identical spec is an
    /// idempotent no-op, so retried registrations never hit this.)
    DuplicateCache(CacheId),
    /// Server-side id minting (`Register`) is unavailable because this
    /// plane owns only a slice of a cluster topology; ids must be minted
    /// by the cluster client and registered via `RegisterAt`.
    ClusterMint,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownCache(id) => write!(f, "{id} is not registered"),
            ServeError::TenantOutOfRange {
                cache,
                tenant,
                tenants,
            } => write!(
                f,
                "tenant {tenant} out of range for {cache} ({tenants} tenants)"
            ),
            ServeError::Plan { cache, source } => write!(f, "planning {cache} failed: {source}"),
            ServeError::Quarantined(id) => {
                write!(f, "{id} is quarantined after a planner panic")
            }
            ServeError::Misrouted { cache, shard } => {
                write!(
                    f,
                    "{cache} belongs to global shard {shard}, not this member"
                )
            }
            ServeError::DuplicateCache(id) => {
                write!(f, "{id} is already registered with a different spec")
            }
            ServeError::ClusterMint => {
                write!(f, "cluster members cannot mint ids; use RegisterAt")
            }
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Plan { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// What one [`run_epoch`](ReconfigService::run_epoch) call did.
///
/// Caches are listed in ascending [`CacheId`] order in every field —
/// deterministic regardless of submission interleaving, queue layout, or
/// (for the sharded service) which shard each cache landed on.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochReport {
    /// The epoch number (monotone from 1 per service).
    pub epoch: u64,
    /// Caches whose new plans were published this epoch.
    pub planned: Vec<CacheId>,
    /// Dirty caches skipped because at least one tenant has not yet
    /// submitted a curve; they re-queue on the next submission.
    pub deferred: Vec<CacheId>,
    /// Caches whose replanning failed, with the error.
    pub failed: Vec<(CacheId, ServeError)>,
    /// Caches quarantined this epoch: their planner panicked. The panic
    /// is contained to the cache — its last-good snapshot keeps serving,
    /// and every other cache plans normally.
    pub quarantined: Vec<CacheId>,
    /// Dirty caches left in the queue for the next epoch (batch overflow).
    pub remaining_dirty: usize,
}

impl EpochReport {
    /// Whether the epoch had nothing at all to do.
    pub fn is_idle(&self) -> bool {
        self.planned.is_empty()
            && self.deferred.is_empty()
            && self.failed.is_empty()
            && self.quarantined.is_empty()
    }
}

/// The online reconfiguration service. See the crate docs for the
/// concurrency contract.
///
/// All methods take `&self`; the service is `Send + Sync` and is shared
/// across producer, planner, and reader threads behind an `Arc`.
///
/// Internally this is exactly one shard (`shard::Shard`) — all per-cache
/// state behind one registry lock. When ingest or planning throughput on
/// that lock becomes the bottleneck, [`ShardedReconfigService`] offers
/// the same API over N shards.
///
/// [`ShardedReconfigService`]: crate::ShardedReconfigService
#[derive(Debug)]
pub struct ReconfigService {
    shard: Shard,
    next_id: AtomicU64,
    epochs: AtomicU64,
}

impl Default for ReconfigService {
    fn default() -> Self {
        Self::new()
    }
}

impl ReconfigService {
    /// A service replanning at most 64 caches per epoch.
    pub fn new() -> Self {
        ReconfigService {
            shard: Shard::new(64),
            next_id: AtomicU64::new(0),
            epochs: AtomicU64::new(0),
        }
    }

    /// Caps how many caches one epoch replans (the batching knob: bounds
    /// planner latency per epoch under a thundering herd of updates).
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero.
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.shard.set_max_batch(max_batch);
        self
    }

    /// Registers a logical cache; returns its handle. The cache publishes
    /// no plan until every tenant has submitted at least one curve and an
    /// epoch has run.
    pub fn register(&self, spec: CacheSpec) -> CacheId {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.shard.insert(id, spec);
        CacheId(id)
    }

    /// Removes a cache and its published snapshot. In-flight planning for
    /// the cache (if any) is discarded at publication time.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownCache`] if the id was never registered or was
    /// already removed.
    pub fn deregister(&self, id: CacheId) -> Result<(), ServeError> {
        self.shard.remove(id)
    }

    /// Stores tenant `tenant`'s latest miss curve and marks the cache
    /// dirty (queued for the next epoch). Submitting repeatedly between
    /// epochs is fine — the epoch plans the latest curves once.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownCache`] / [`ServeError::TenantOutOfRange`].
    pub fn submit(&self, id: CacheId, tenant: usize, curve: MissCurve) -> Result<(), ServeError> {
        self.shard.submit(id, tenant, curve)
    }

    /// Pulls one update from a [`CurveSource`] and submits it. Returns
    /// `Ok(false)` (without marking anything dirty) once the source is
    /// exhausted.
    ///
    /// # Errors
    ///
    /// Same as [`submit`](ReconfigService::submit).
    pub fn submit_from(
        &self,
        id: CacheId,
        tenant: usize,
        source: &mut dyn CurveSource,
    ) -> Result<bool, ServeError> {
        match source.next_curve() {
            Some(curve) => self.submit(id, tenant, curve).map(|_| true),
            None => Ok(false),
        }
    }

    /// Drains up to `max` pending updates from a [`CurveSource`] and
    /// submits only the newest — the backlog-coalescing ingest path
    /// (`CurveSource::next_curves` is the batching seam). A tenant that
    /// fell behind — a stalled producer, a replay catching up — hands its
    /// whole backlog over in one call; since an epoch plans only the
    /// latest curve per tenant anyway, the stale updates are dropped here
    /// instead of being submitted one by one. Returns how many updates
    /// were drained (0 means the source was exhausted and nothing was
    /// submitted).
    ///
    /// This is for *finite* backlogs (replays, queues). An infinite
    /// source such as a live `MonitorSource` always produces exactly
    /// `max` curves — each a full monitoring interval of work — so
    /// draining it here would burn `max − 1` intervals to discard them;
    /// use [`submit_from`](ReconfigService::submit_from) for live
    /// monitors.
    ///
    /// # Errors
    ///
    /// Same as [`submit`](ReconfigService::submit).
    pub fn submit_latest(
        &self,
        id: CacheId,
        tenant: usize,
        source: &mut dyn CurveSource,
        max: usize,
    ) -> Result<usize, ServeError> {
        let mut curves = source.next_curves(max);
        let drained = curves.len();
        if let Some(curve) = curves.pop() {
            self.submit(id, tenant, curve)?;
        }
        Ok(drained)
    }

    /// The latest published plan for `id`, if any epoch has planned it.
    ///
    /// This is the reader hot path: a read-lock held for one `Arc` clone.
    pub fn snapshot(&self, id: CacheId) -> Option<Arc<PlanSnapshot>> {
        self.shard.snapshot(id)
    }

    /// Epochs run so far.
    pub fn epochs(&self) -> u64 {
        self.epochs.load(Ordering::Relaxed)
    }

    /// Dirty caches currently queued.
    pub fn pending(&self) -> usize {
        self.shard.pending()
    }

    /// Registered caches.
    pub fn registered(&self) -> usize {
        self.shard.registered()
    }

    /// Ids of quarantined caches, ascending. A cache is quarantined when
    /// its planner panics during an epoch; see [`ServeError::Quarantined`].
    pub fn quarantined(&self) -> Vec<CacheId> {
        self.shard.quarantined()
    }

    /// The plane's health snapshot: this single shard's counters plus
    /// epoch progress. `connections`/`rejected` are zero here — they are
    /// filled in by an RPC front-end, if one is serving this plane.
    pub fn health(&self) -> talus_core::PlaneHealth {
        let quarantined: Vec<u64> = self
            .shard
            .quarantined()
            .iter()
            .map(|id| id.value())
            .collect();
        let shard = talus_core::ShardHealth {
            caches: self.shard.registered() as u64,
            pending: self.shard.pending() as u64,
            quarantined: quarantined.len() as u64,
            state: talus_core::ShardState::Ok,
        };
        talus_core::PlaneHealth {
            epochs: self.epochs(),
            caches: shard.caches,
            pending: shard.pending,
            quarantined,
            shards: vec![shard],
            store: self.shard.store_health(),
            connections: 0,
            rejected: 0,
        }
    }

    /// Attaches a deterministic [`FaultScript`](talus_core::FaultScript):
    /// the shard consults it at the `"shard.plan"` site (key = raw cache
    /// id) before invoking the planner. Test-substrate plumbing — an
    /// empty script (or none) costs nothing on the planning path.
    pub fn with_fault_script(mut self, script: std::sync::Arc<talus_core::FaultScript>) -> Self {
        self.shard.set_fault_script(script);
        self
    }

    /// Runs one planning epoch: drain a batch of dirty caches, re-plan
    /// them through the shared [`Planner`] pipeline with **no locks
    /// held**, then publish the new snapshots in one epoch swap. The
    /// report lists caches in ascending [`CacheId`] order.
    pub fn run_epoch(&self) -> EpochReport {
        let epoch = self.epochs.fetch_add(1, Ordering::Relaxed) + 1;
        self.shard.run_epoch(epoch)
    }

    /// Runs epochs until the dirty queue is empty; returns the reports.
    /// (Deferred caches leave the queue until new data arrives, so this
    /// always terminates.)
    pub fn run_until_clean(&self) -> Vec<EpochReport> {
        let mut reports = Vec::new();
        while self.pending() > 0 {
            reports.push(self.run_epoch());
        }
        reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(cliff_at: f64, cap: f64) -> MissCurve {
        MissCurve::from_samples(
            &[0.0, cliff_at / 2.0, cliff_at, cap],
            &[10.0, 10.0, 1.0, 1.0],
        )
        .unwrap()
    }

    fn service_is_send_sync<T: Send + Sync>() {}

    #[test]
    fn shareable_across_threads() {
        service_is_send_sync::<ReconfigService>();
    }

    #[test]
    fn snapshot_absent_until_first_epoch() {
        let s = ReconfigService::new();
        let id = s.register(CacheSpec::new(1024, 1));
        assert!(s.snapshot(id).is_none());
        s.submit(id, 0, curve(512.0, 1024.0)).unwrap();
        assert!(s.snapshot(id).is_none(), "submit alone publishes nothing");
        s.run_epoch();
        assert_eq!(s.snapshot(id).unwrap().version, 1);
    }

    #[test]
    fn missing_tenant_defers_until_data_arrives() {
        let s = ReconfigService::new();
        let id = s.register(CacheSpec::new(1024, 2));
        s.submit(id, 0, curve(512.0, 1024.0)).unwrap();
        let report = s.run_epoch();
        assert_eq!(report.deferred, vec![id]);
        assert!(report.planned.is_empty());
        assert!(s.snapshot(id).is_none());
        assert_eq!(s.pending(), 0, "deferred caches leave the queue");
        // The straggler reports: the cache re-queues and plans.
        s.submit(id, 1, curve(256.0, 1024.0)).unwrap();
        let report = s.run_epoch();
        assert_eq!(report.planned, vec![id]);
    }

    #[test]
    fn batching_bounds_epoch_work_fifo() {
        let s = ReconfigService::new().with_max_batch(2);
        let ids: Vec<CacheId> = (0..5)
            .map(|_| {
                let id = s.register(CacheSpec::new(1024, 1));
                s.submit(id, 0, curve(512.0, 1024.0)).unwrap();
                id
            })
            .collect();
        let r1 = s.run_epoch();
        assert_eq!(r1.planned, vec![ids[0], ids[1]]);
        assert_eq!(r1.remaining_dirty, 3);
        let r2 = s.run_epoch();
        assert_eq!(r2.planned, vec![ids[2], ids[3]]);
        let r3 = s.run_epoch();
        assert_eq!(r3.planned, vec![ids[4]]);
        assert!(s.run_epoch().is_idle());
        assert_eq!(s.epochs(), 4);
    }

    #[test]
    fn epoch_report_is_in_cache_id_order_not_queue_order() {
        let s = ReconfigService::new();
        let ids: Vec<CacheId> = (0..4)
            .map(|_| s.register(CacheSpec::new(1024, 1)))
            .collect();
        // Dirty the queue in reverse registration order; the report must
        // come back ascending anyway.
        for id in ids.iter().rev() {
            s.submit(*id, 0, curve(512.0, 1024.0)).unwrap();
        }
        let report = s.run_epoch();
        assert_eq!(report.planned, ids);
    }

    #[test]
    fn resubmission_between_epochs_plans_latest_curves_once() {
        let s = ReconfigService::new();
        let id = s.register(CacheSpec::new(1024, 1));
        s.submit(id, 0, curve(512.0, 1024.0)).unwrap();
        s.submit(id, 0, curve(256.0, 1024.0)).unwrap();
        assert_eq!(s.pending(), 1, "dirty flag dedups the queue");
        let report = s.run_epoch();
        assert_eq!(report.planned, vec![id]);
        let snap = s.snapshot(id).unwrap();
        assert_eq!(snap.updates, 2);
        assert_eq!(snap.version, 1);
    }

    #[test]
    fn versions_and_epochs_advance_independently() {
        let s = ReconfigService::new();
        let id = s.register(CacheSpec::new(1024, 1));
        for round in 1..=3u64 {
            // A different curve each round: resubmitting bit-identical
            // curves is a deliberate no-op (idempotent retries).
            s.submit(id, 0, curve(512.0 - 64.0 * round as f64, 1024.0))
                .unwrap();
            s.run_epoch();
            assert_eq!(s.snapshot(id).unwrap().version, round);
        }
        s.run_epoch(); // idle epoch: no new version
        assert_eq!(s.snapshot(id).unwrap().version, 3);
        assert_eq!(s.epochs(), 4);
    }

    #[test]
    fn plan_failure_is_reported_not_published() {
        let s = ReconfigService::new();
        let id = s.register(CacheSpec::new(1024, 2));
        // Tenant 1's curve starts at 512 lines: a fair split of 512 is
        // fine, but tenant 0's hill-climb-greedy curve drags tenant 1's
        // allocation below its monitored domain.
        let above_domain = MissCurve::from_samples(&[768.0, 1024.0], &[5.0, 1.0]).unwrap();
        s.submit(id, 0, curve(512.0, 1024.0)).unwrap();
        s.submit(id, 1, above_domain).unwrap();
        let report = s.run_epoch();
        assert_eq!(report.failed.len(), 1);
        assert!(matches!(
            report.failed[0].1,
            ServeError::Plan { cache, .. } if cache == id
        ));
        assert!(s.snapshot(id).is_none());
    }

    #[test]
    fn deregister_removes_registry_and_snapshot() {
        let s = ReconfigService::new();
        let id = s.register(CacheSpec::new(1024, 1));
        s.submit(id, 0, curve(512.0, 1024.0)).unwrap();
        s.run_epoch();
        assert!(s.snapshot(id).is_some());
        s.deregister(id).unwrap();
        assert!(s.snapshot(id).is_none());
        assert_eq!(s.registered(), 0);
        assert_eq!(s.deregister(id), Err(ServeError::UnknownCache(id)));
        assert_eq!(
            s.submit(id, 0, curve(512.0, 1024.0)),
            Err(ServeError::UnknownCache(id))
        );
    }

    #[test]
    fn queued_then_deregistered_cache_is_skipped() {
        let s = ReconfigService::new();
        let id = s.register(CacheSpec::new(1024, 1));
        s.submit(id, 0, curve(512.0, 1024.0)).unwrap();
        s.deregister(id).unwrap();
        let report = s.run_epoch();
        assert!(report.is_idle());
    }

    #[test]
    fn tenant_bounds_checked() {
        let s = ReconfigService::new();
        let id = s.register(CacheSpec::new(1024, 2));
        let err = s.submit(id, 2, curve(512.0, 1024.0)).unwrap_err();
        assert_eq!(
            err,
            ServeError::TenantOutOfRange {
                cache: id,
                tenant: 2,
                tenants: 2
            }
        );
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn submit_from_drains_sources() {
        use talus_core::ReplaySource;
        let s = ReconfigService::new();
        let id = s.register(CacheSpec::new(1024, 1));
        let mut src = ReplaySource::new(vec![curve(512.0, 1024.0), curve(256.0, 1024.0)]);
        assert!(s.submit_from(id, 0, &mut src).unwrap());
        assert!(s.submit_from(id, 0, &mut src).unwrap());
        assert!(!s.submit_from(id, 0, &mut src).unwrap(), "exhausted");
        let reports = s.run_until_clean();
        assert_eq!(reports.len(), 1);
        assert_eq!(s.snapshot(id).unwrap().updates, 2);
    }

    #[test]
    fn submit_latest_coalesces_a_backlog() {
        use talus_core::ReplaySource;
        let s = ReconfigService::new();
        let id = s.register(CacheSpec::new(1024, 1));
        // Three updates backlogged; only the newest (cliff at 128) should
        // reach the planner, as one accepted update.
        let mut src = ReplaySource::new(vec![
            curve(512.0, 1024.0),
            curve(256.0, 1024.0),
            curve(128.0, 1024.0),
        ]);
        assert_eq!(s.submit_latest(id, 0, &mut src, 8).unwrap(), 3);
        assert_eq!(s.pending(), 1);
        s.run_epoch();
        let snap = s.snapshot(id).unwrap();
        assert_eq!(snap.updates, 1, "stale backlog entries were dropped");
        // The published plan is the one the newest curve produces: replay
        // the same curve through the plain path on a fresh cache.
        let twin = s.register(CacheSpec::new(1024, 1));
        s.submit(twin, 0, curve(128.0, 1024.0)).unwrap();
        s.run_epoch();
        assert_eq!(s.snapshot(twin).unwrap().plan, s.snapshot(id).unwrap().plan);
        // Exhausted source: nothing drained, nothing queued.
        assert_eq!(s.submit_latest(id, 0, &mut src, 8).unwrap(), 0);
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn ids_are_never_reused() {
        let s = ReconfigService::new();
        let a = s.register(CacheSpec::new(1024, 1));
        s.deregister(a).unwrap();
        let b = s.register(CacheSpec::new(1024, 1));
        assert_ne!(a, b);
    }
}
