//! `RpcClient`: a blocking TCP client for the reconfiguration plane.
//!
//! The client speaks the [`wire`](crate::wire) protocol over one
//! `std::net::TcpStream`, one request/response pair at a time, and
//! mirrors the local [`ReconfigService`](crate::ReconfigService) API so
//! a curve producer can point at a remote plane unchanged. The batching
//! seam is the same one the local service uses:
//! [`submit_latest`](RpcClient::submit_latest) drains
//! `CurveSource::next_curves` and sends only the newest curve, and
//! [`stage`](RpcClient::stage)/[`flush`](RpcClient::flush) coalesce many
//! tenants' updates into one framed batch, bounded by both the entry cap
//! and the frame byte budget.
//!
//! ## Partial-failure posture
//!
//! A client is never allowed to hang forever on a dead or stalled
//! server: [`with_deadline`](RpcClient::with_deadline) bounds every
//! read/write, surfacing as [`RpcError::Deadline`]. With a
//! [`RetryPolicy`] attached, the *idempotent* operations (submit,
//! epoch, report, ping, health) transparently reconnect and retry with
//! exponential backoff and deterministic seeded jitter — safe because a
//! resubmitted bit-identical curve is a no-op on the plane and a
//! re-run epoch converges to the same snapshots. `register` and
//! `deregister` are never retried: creating or destroying a cache twice
//! is not the same as doing it once, so those stay explicit.

use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::service::{EpochReport, ServeError};
use crate::snapshot::CacheId;
use crate::wire::{self, read_frame, Request, Response, SnapshotSummary, SubmitEntry, WireError};
use talus_core::limits::{WIRE_MAX_BATCH, WIRE_MAX_FRAME_LEN};
use talus_core::{CurveSource, MissCurve, PlaneHealth};

/// Errors surfaced by the RPC client.
#[derive(Debug, Clone, PartialEq)]
pub enum RpcError {
    /// The transport or codec failed (connection lost, malformed reply).
    Wire(WireError),
    /// The server processed the request and rejected it — the same
    /// [`ServeError`] the local service would have returned.
    Serve(ServeError),
    /// The request missed its deadline ([`RpcClient::with_deadline`]):
    /// the server is hung, overloaded, or unreachable — distinct from a
    /// typed rejection, and retryable.
    Deadline,
    /// The server shed the connection at its capacity limit (a typed
    /// `Busy` reply, not a crash). Retryable after backoff.
    Busy,
    /// Every attempt the [`RetryPolicy`] allowed failed; `last` is the
    /// final attempt's error.
    Exhausted {
        /// Attempts made (including the first).
        attempts: u32,
        /// The last attempt's error.
        last: Box<RpcError>,
    },
    /// The server replied with a well-formed message of the wrong kind.
    Unexpected {
        /// What the server sent instead.
        got: &'static str,
    },
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpcError::Wire(e) => write!(f, "rpc transport failed: {e}"),
            RpcError::Serve(e) => write!(f, "server rejected request: {e}"),
            RpcError::Deadline => write!(f, "request deadline elapsed"),
            RpcError::Busy => write!(f, "server at capacity (busy)"),
            RpcError::Exhausted { attempts, last } => {
                write!(f, "request failed after {attempts} attempts: {last}")
            }
            RpcError::Unexpected { got } => {
                write!(f, "server sent an unexpected {got} reply")
            }
        }
    }
}

impl std::error::Error for RpcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RpcError::Wire(e) => Some(e),
            RpcError::Serve(e) => Some(e),
            RpcError::Exhausted { last, .. } => Some(last),
            RpcError::Deadline | RpcError::Busy | RpcError::Unexpected { .. } => None,
        }
    }
}

/// Bounded retry with exponential backoff and deterministic seeded
/// jitter, applied by [`RpcClient`] to its idempotent operations.
///
/// Attempt `k`'s backoff before retrying is `min(cap, base · 2^k)`,
/// jittered to between 50% and 100% of that value by a seeded xorshift
/// generator — deterministic for a given seed, so failure tests replay
/// the same schedule every run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 = never retry).
    pub attempts: u32,
    /// Backoff before the first retry.
    pub base: Duration,
    /// Upper bound on any single backoff.
    pub cap: Duration,
    /// Jitter seed; equal seeds replay equal backoff schedules.
    pub seed: u64,
}

impl RetryPolicy {
    /// Never retry: every failure surfaces immediately. This is the
    /// client's initial policy.
    pub fn none() -> Self {
        RetryPolicy {
            attempts: 1,
            base: Duration::ZERO,
            cap: Duration::ZERO,
            seed: 0,
        }
    }

    /// The initial jitter-generator state for this policy (a zero seed
    /// falls back to the default seed, since xorshift64 has a zero
    /// fixed point).
    pub fn seed_state(&self) -> u64 {
        if self.seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            self.seed
        }
    }

    /// The backoff before retry number `retry` (0-based): exponential
    /// from the policy base (`base · 2^retry`), capped at `cap`, then
    /// jittered to 50–100% of that value by the xorshift64 generator
    /// threaded through `state` (start from
    /// [`seed_state`](RetryPolicy::seed_state)). Pure arithmetic on the
    /// policy and the passed state, so a given seed replays a given
    /// backoff schedule exactly — failure tests and the cluster client's
    /// probes are deterministic.
    pub fn backoff(&self, state: &mut u64, retry: u32) -> Duration {
        if self.base.is_zero() {
            return Duration::ZERO;
        }
        let exp = self.base.saturating_mul(1u32 << retry.min(16));
        let delay = exp.min(self.cap.max(self.base));
        // xorshift64: deterministic for a given seed.
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        let half = delay / 2;
        let jitter = *state % (half.as_nanos() as u64 + 1);
        half + Duration::from_nanos(jitter)
    }
}

impl Default for RetryPolicy {
    /// Four attempts, 10ms initial backoff, 1s cap.
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            base: Duration::from_millis(10),
            cap: Duration::from_secs(1),
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl From<WireError> for RpcError {
    fn from(e: WireError) -> Self {
        RpcError::Wire(e)
    }
}

/// Bytes one submit entry occupies on the wire: id + tenant + point
/// count + 16 bytes per point.
fn entry_wire_bytes(curve: &MissCurve) -> usize {
    8 + 4 + 4 + 16 * curve.len()
}

/// Byte budget for a staged batch: a maximum frame minus generous
/// headroom for the frame header and batch count.
const BATCH_BYTE_BUDGET: usize = (WIRE_MAX_FRAME_LEN as usize) - 64;

/// A blocking client for a remote reconfiguration plane.
///
/// Each method sends one request frame and waits for its reply, so a
/// client is also a unit of backpressure: a server draining slowly
/// pushes back through TCP flow control and the pending reply.
/// Submission batching happens above that, via
/// [`stage`](RpcClient::stage)/[`flush`](RpcClient::flush).
#[derive(Debug)]
pub struct RpcClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    staged: Vec<SubmitEntry>,
    staged_bytes: usize,
    /// Resolved peer address, kept for reconnects.
    peer: SocketAddr,
    /// Per-request read/write timeout, reapplied on reconnect.
    deadline: Option<Duration>,
    retry: RetryPolicy,
    /// Jitter state (xorshift64), seeded from the retry policy.
    rng: u64,
}

impl RpcClient {
    /// Connects to a plane at `addr` (e.g. the address returned by
    /// [`RpcServer::local_addr`](crate::RpcServer::local_addr)).
    ///
    /// # Errors
    ///
    /// [`RpcError::Wire`] with the underlying I/O error kind.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, RpcError> {
        let stream = TcpStream::connect(addr).map_err(WireError::from)?;
        stream.set_nodelay(true).map_err(WireError::from)?;
        let peer = stream.peer_addr().map_err(WireError::from)?;
        let reader = BufReader::new(stream.try_clone().map_err(WireError::from)?);
        let writer = BufWriter::new(stream);
        Ok(RpcClient {
            reader,
            writer,
            staged: Vec::new(),
            staged_bytes: 0,
            peer,
            deadline: None,
            retry: RetryPolicy::none(),
            rng: 0,
        })
    }

    /// Bounds every request: reads and writes that stall longer than
    /// `deadline` fail with [`RpcError::Deadline`] instead of blocking
    /// forever on a hung server. Reapplied automatically on reconnect.
    ///
    /// # Errors
    ///
    /// [`RpcError::Wire`] if the socket rejects the timeouts.
    ///
    /// # Panics
    ///
    /// Panics if `deadline` is zero (use no deadline for "blocking").
    pub fn with_deadline(mut self, deadline: Duration) -> Result<Self, RpcError> {
        assert!(!deadline.is_zero(), "deadline must be positive");
        self.deadline = Some(deadline);
        self.apply_deadline()?;
        Ok(self)
    }

    /// Attaches a [`RetryPolicy`]: the idempotent operations (submit,
    /// epoch, report, ping, health) will reconnect and retry on
    /// [retryable](RpcError) failures. `register`/`deregister` are never
    /// retried.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.rng = policy.seed_state();
        self.retry = policy;
        self
    }

    fn apply_deadline(&self) -> Result<(), RpcError> {
        let stream = self.writer.get_ref();
        stream
            .set_read_timeout(self.deadline)
            .map_err(WireError::from)?;
        stream
            .set_write_timeout(self.deadline)
            .map_err(WireError::from)?;
        Ok(())
    }

    /// Drops the current stream and dials the peer again (staged entries
    /// are client-side state and survive untouched).
    fn reconnect(&mut self) -> Result<(), RpcError> {
        let stream = TcpStream::connect(self.peer).map_err(WireError::from)?;
        stream.set_nodelay(true).map_err(WireError::from)?;
        self.reader = BufReader::new(stream.try_clone().map_err(WireError::from)?);
        self.writer = BufWriter::new(stream);
        self.apply_deadline()
    }

    /// Whether retrying `e` can help: transport failures and overload,
    /// never typed rejections.
    fn retryable(e: &RpcError) -> bool {
        matches!(
            e,
            RpcError::Deadline
                | RpcError::Busy
                | RpcError::Wire(WireError::Io(_))
                | RpcError::Wire(WireError::Truncated)
        )
    }

    /// Rewrites socket-timeout I/O errors as [`RpcError::Deadline`].
    fn map_deadline(e: RpcError) -> RpcError {
        match e {
            RpcError::Wire(WireError::Io(kind))
                if kind == std::io::ErrorKind::TimedOut
                    || kind == std::io::ErrorKind::WouldBlock =>
            {
                RpcError::Deadline
            }
            other => other,
        }
    }

    /// The backoff before retry number `retry` (0-based), from the
    /// policy's schedule, advancing this client's jitter state.
    fn backoff(&mut self, retry: u32) -> Duration {
        self.retry.backoff(&mut self.rng, retry)
    }

    /// One request/response round trip. A typed `Busy` reply surfaces as
    /// [`RpcError::Busy`]; a timed-out read or write as
    /// [`RpcError::Deadline`].
    fn call(&mut self, req: &Request) -> Result<Response, RpcError> {
        let round_trip = |this: &mut Self| -> Result<Response, RpcError> {
            this.writer
                .write_all(&wire::encode_request(req))
                .map_err(WireError::from)?;
            this.writer.flush().map_err(WireError::from)?;
            let payload = read_frame(&mut this.reader)?.ok_or(WireError::Truncated)?;
            Ok(wire::decode_response(&payload)?)
        };
        match round_trip(self).map_err(Self::map_deadline)? {
            Response::Busy => Err(RpcError::Busy),
            resp => Ok(resp),
        }
    }

    /// [`call`](RpcClient::call) under the retry policy: on a retryable
    /// failure, back off, reconnect (the stream's state is unknown after
    /// a failure — a stale reply could be in flight), and try again.
    /// Only idempotent requests go through here.
    fn call_retrying(&mut self, req: &Request) -> Result<Response, RpcError> {
        let attempts = self.retry.attempts.max(1);
        let mut last = match self.call(req) {
            Ok(resp) => return Ok(resp),
            Err(e) if attempts == 1 || !Self::retryable(&e) => return Err(e),
            Err(e) => e,
        };
        for retry in 0..attempts - 1 {
            let backoff = self.backoff(retry);
            if !backoff.is_zero() {
                std::thread::sleep(backoff);
            }
            if let Err(e) = self.reconnect() {
                last = Self::map_deadline(e);
                continue;
            }
            match self.call(req) {
                Ok(resp) => return Ok(resp),
                Err(e) if Self::retryable(&e) => last = e,
                Err(e) => return Err(e),
            }
        }
        Err(RpcError::Exhausted {
            attempts,
            last: Box::new(last),
        })
    }

    /// Extracts a request-level error reply into [`RpcError::Serve`].
    fn reject(resp: Response, expected: &'static str) -> RpcError {
        match resp {
            Response::Error(e) => RpcError::Serve(e),
            _ => RpcError::Unexpected { got: expected },
        }
    }

    /// Registers a cache with the default planner (capacity/64 grain),
    /// mirroring `CacheSpec::new`. Returns the plane-minted id.
    ///
    /// # Errors
    ///
    /// [`RpcError::Wire`] on transport failure; the server validates
    /// `capacity > 0` and `0 < tenants <=` the wire tenant cap at decode
    /// time, so out-of-range arguments surface as a closed connection.
    pub fn register(&mut self, capacity: u64, tenants: u32) -> Result<CacheId, RpcError> {
        match self.call(&Request::Register { capacity, tenants })? {
            Response::Registered { id } => Ok(CacheId(id)),
            other => Err(Self::reject(other, "register")),
        }
    }

    /// Registers a cache under a caller-minted id with the default
    /// planner (capacity/64 grain) — the cluster registration path.
    /// Retried under the retry policy: the server treats an identical
    /// re-registration as an idempotent no-op, so a retried request
    /// whose first reply was lost converges instead of erroring.
    ///
    /// # Errors
    ///
    /// [`RpcError::Serve`] with [`ServeError::Misrouted`] if this
    /// server does not own the id's shard, or
    /// [`ServeError::DuplicateCache`] if the id exists with a different
    /// spec.
    pub fn register_at(
        &mut self,
        id: CacheId,
        capacity: u64,
        tenants: u32,
    ) -> Result<CacheId, RpcError> {
        let req = Request::RegisterAt {
            id: id.value(),
            capacity,
            tenants,
        };
        match self.call_retrying(&req)? {
            Response::Registered { id } => Ok(CacheId(id)),
            other => Err(Self::reject(other, "register-at")),
        }
    }

    /// Cluster handshake: asks the server for its topology slice, epoch
    /// progress, next unminted id, and plane health.
    ///
    /// # Errors
    ///
    /// Transport errors.
    pub fn hello(&mut self) -> Result<wire::ClusterInfo, RpcError> {
        match self.call_retrying(&Request::Hello)? {
            Response::Hello(info) => Ok(info),
            other => Err(Self::reject(other, "hello")),
        }
    }

    /// Removes a cache and its published snapshot.
    ///
    /// # Errors
    ///
    /// [`RpcError::Serve`] with [`ServeError::UnknownCache`] if the id
    /// is not registered — exactly the local `deregister` error.
    pub fn deregister(&mut self, id: CacheId) -> Result<(), RpcError> {
        match self.call(&Request::Deregister { id: id.value() })? {
            Response::Deregistered => Ok(()),
            other => Err(Self::reject(other, "deregister")),
        }
    }

    /// Submits one curve immediately (a one-entry batch). Any staged
    /// entries are flushed first so ordering is preserved.
    ///
    /// # Errors
    ///
    /// [`RpcError::Serve`] mirroring the local `submit` errors, or a
    /// transport error.
    pub fn submit(&mut self, id: CacheId, tenant: usize, curve: MissCurve) -> Result<(), RpcError> {
        self.flush()?;
        let results = self.submit_batch(vec![SubmitEntry {
            id: id.value(),
            tenant: tenant as u32,
            curve,
        }])?;
        match results.into_iter().next() {
            Some(Ok(())) => Ok(()),
            Some(Err(e)) => Err(RpcError::Serve(e)),
            None => Err(RpcError::Unexpected {
                got: "empty submit",
            }),
        }
    }

    /// Sends a batch of entries in one frame; returns one result per
    /// entry, in order — exactly what local `submit` calls would return.
    ///
    /// # Errors
    ///
    /// [`RpcError::Wire`] on transport failure. Per-entry rejections are
    /// data, not errors: they come back in the result vector.
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty or exceeds the wire batch cap;
    /// [`stage`](RpcClient::stage) manages both bounds automatically.
    pub fn submit_batch(
        &mut self,
        entries: Vec<SubmitEntry>,
    ) -> Result<Vec<Result<(), ServeError>>, RpcError> {
        assert!(!entries.is_empty(), "empty batch");
        assert!(
            entries.len() <= WIRE_MAX_BATCH as usize,
            "batch exceeds wire cap"
        );
        match self.call_retrying(&Request::Submit { entries })? {
            Response::SubmitReply { results } => Ok(results),
            other => Err(Self::reject(other, "submit")),
        }
    }

    /// Stages one curve update for a later [`flush`](RpcClient::flush),
    /// coalescing many tenants' updates into one frame. Auto-flushes
    /// when the staged batch reaches the wire entry cap or would
    /// overflow the frame byte budget; returns the flushed results in
    /// that case (`None` means the entry was staged without sending).
    ///
    /// # Errors
    ///
    /// Transport errors from an auto-flush.
    #[allow(clippy::type_complexity)]
    pub fn stage(
        &mut self,
        id: CacheId,
        tenant: usize,
        curve: MissCurve,
    ) -> Result<Option<Vec<Result<(), ServeError>>>, RpcError> {
        let bytes = entry_wire_bytes(&curve);
        let mut flushed = None;
        if !self.staged.is_empty() && self.staged_bytes + bytes > BATCH_BYTE_BUDGET {
            flushed = Some(self.flush_staged()?);
        }
        self.staged.push(SubmitEntry {
            id: id.value(),
            tenant: tenant as u32,
            curve,
        });
        self.staged_bytes += bytes;
        if self.staged.len() >= WIRE_MAX_BATCH as usize {
            flushed = Some(match flushed {
                None => self.flush_staged()?,
                Some(mut prior) => {
                    prior.extend(self.flush_staged()?);
                    prior
                }
            });
        }
        Ok(flushed)
    }

    /// Sends any staged entries as one batch. A no-op on an empty stage.
    ///
    /// # Errors
    ///
    /// Transport errors; per-entry rejections come back in the vector.
    pub fn flush(&mut self) -> Result<Vec<Result<(), ServeError>>, RpcError> {
        if self.staged.is_empty() {
            return Ok(Vec::new());
        }
        self.flush_staged()
    }

    fn flush_staged(&mut self) -> Result<Vec<Result<(), ServeError>>, RpcError> {
        let entries = std::mem::take(&mut self.staged);
        self.staged_bytes = 0;
        self.submit_batch(entries)
    }

    /// Entries currently staged and not yet sent.
    pub fn staged_len(&self) -> usize {
        self.staged.len()
    }

    /// Pulls one update from a [`CurveSource`] and submits it, mirroring
    /// the local [`submit_from`](crate::ReconfigService::submit_from):
    /// returns `Ok(false)` once the source is exhausted. This is the
    /// live-monitor path — one interval of measurement, one submission.
    ///
    /// # Errors
    ///
    /// Same as [`submit`](RpcClient::submit).
    pub fn submit_from(
        &mut self,
        id: CacheId,
        tenant: usize,
        source: &mut dyn CurveSource,
    ) -> Result<bool, RpcError> {
        match source.next_curve() {
            Some(curve) => self.submit(id, tenant, curve).map(|_| true),
            None => Ok(false),
        }
    }

    /// Drains up to `max` pending updates from a [`CurveSource`] and
    /// submits only the newest — the same backlog-coalescing contract as
    /// the local [`submit_latest`](crate::ReconfigService::submit_latest),
    /// with the coalescing happening client-side so the stale backlog
    /// never crosses the wire. Returns how many updates were drained.
    ///
    /// # Errors
    ///
    /// Same as [`submit`](RpcClient::submit).
    pub fn submit_latest(
        &mut self,
        id: CacheId,
        tenant: usize,
        source: &mut dyn CurveSource,
        max: usize,
    ) -> Result<usize, RpcError> {
        let mut curves = source.next_curves(max);
        let drained = curves.len();
        if let Some(curve) = curves.pop() {
            self.submit(id, tenant, curve)?;
        }
        Ok(drained)
    }

    /// Runs one planning epoch on the remote plane; staged entries are
    /// flushed first so everything staged is visible to the epoch.
    /// Returns the merged [`EpochReport`], bit-identical to what the
    /// plane's local `run_epoch` returned.
    ///
    /// # Errors
    ///
    /// Transport errors, or per-entry rejections from the implicit
    /// flush surfacing as [`RpcError::Serve`] on the first rejection.
    pub fn run_epoch(&mut self) -> Result<EpochReport, RpcError> {
        for result in self.flush()? {
            result.map_err(RpcError::Serve)?;
        }
        match self.call_retrying(&Request::RunEpoch)? {
            Response::Epoch(report) => Ok(report),
            other => Err(Self::reject(other, "epoch")),
        }
    }

    /// Fetches the published snapshot summary for a cache, or `None` if
    /// no epoch has planned it yet.
    ///
    /// # Errors
    ///
    /// Transport errors.
    pub fn report(&mut self, id: CacheId) -> Result<Option<SnapshotSummary>, RpcError> {
        match self.call_retrying(&Request::Report { id: id.value() })? {
            Response::Snapshot(summary) => Ok(summary),
            other => Err(Self::reject(other, "report")),
        }
    }

    /// Liveness probe: one full round trip through the server.
    ///
    /// # Errors
    ///
    /// Transport errors.
    pub fn ping(&mut self) -> Result<(), RpcError> {
        match self.call_retrying(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(Self::reject(other, "ping")),
        }
    }

    /// Fetches the plane's health snapshot: per-shard status, quarantined
    /// caches, epoch counters, journal fault state, and the server's
    /// connection-admission counters.
    ///
    /// # Errors
    ///
    /// Transport errors.
    pub fn health(&mut self) -> Result<PlaneHealth, RpcError> {
        match self.call_retrying(&Request::Health)? {
            Response::Health(health) => Ok(health),
            other => Err(Self::reject(other, "health")),
        }
    }

    /// Tears down the connection, abandoning any staged entries. Useful
    /// in tests that simulate a client crash; dropping the client has
    /// the same effect.
    pub fn abort(self) {
        // Dropping the halves closes the socket; an explicit shutdown
        // makes the intent visible to the peer immediately.
        let _ = self.writer.get_ref().shutdown(std::net::Shutdown::Both);
    }

    /// Writes raw bytes to the connection, bypassing the codec — test
    /// hook for failure injection (truncated frames, garbage). Hidden
    /// from docs; not part of the client contract.
    #[doc(hidden)]
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), RpcError> {
        self.writer.write_all(bytes).map_err(WireError::from)?;
        self.writer.flush().map_err(WireError::from)?;
        Ok(())
    }

    /// Reads one reply frame and decodes it — test hook paired with
    /// [`send_raw`](RpcClient::send_raw).
    #[doc(hidden)]
    pub fn recv_raw(&mut self) -> Result<Option<Response>, RpcError> {
        match read_frame(&mut self.reader)? {
            None => Ok(None),
            Some(payload) => Ok(Some(wire::decode_response(&payload)?)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full jittered backoff schedule for `retries` retries.
    fn schedule(policy: &RetryPolicy, retries: u32) -> Vec<Duration> {
        let mut state = policy.seed_state();
        (0..retries)
            .map(|r| policy.backoff(&mut state, r))
            .collect()
    }

    #[test]
    fn equal_seeds_replay_equal_backoff_schedules() {
        let policy = RetryPolicy {
            attempts: 8,
            base: Duration::from_millis(10),
            cap: Duration::from_secs(1),
            seed: 0xDEAD_BEEF,
        };
        assert_eq!(schedule(&policy, 32), schedule(&policy, 32));
        // A different seed diverges somewhere in the schedule (the
        // jitter range is wide enough that 32 identical draws from two
        // xorshift streams would be astronomically unlikely).
        let other = RetryPolicy {
            seed: 0xBEEF_DEAD,
            ..policy
        };
        assert_ne!(schedule(&policy, 32), schedule(&other, 32));
    }

    #[test]
    fn zero_seed_falls_back_to_default_seed() {
        // xorshift64 has a fixed point at zero; the policy must not.
        let zeroed = RetryPolicy {
            seed: 0,
            ..RetryPolicy::default()
        };
        assert_eq!(zeroed.seed_state(), RetryPolicy::default().seed_state());
        assert!(schedule(&zeroed, 8).iter().all(|d| !d.is_zero()));
    }

    #[test]
    fn backoff_is_exponential_and_bounded_by_the_cap() {
        let policy = RetryPolicy {
            attempts: 16,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(200),
            seed: 7,
        };
        let mut state = policy.seed_state();
        for retry in 0..40 {
            let delay = policy.backoff(&mut state, retry);
            let raw = policy
                .base
                .saturating_mul(1u32 << retry.min(16))
                .min(policy.cap);
            // Jitter keeps each delay within 50–100% of the capped
            // exponential value, so delays never exceed the cap and
            // never collapse to zero.
            assert!(delay >= raw / 2, "retry {retry}: {delay:?} < {:?}", raw / 2);
            assert!(delay <= raw, "retry {retry}: {delay:?} > {raw:?}");
            assert!(delay <= policy.cap);
        }
    }

    #[test]
    fn zero_base_never_sleeps() {
        let policy = RetryPolicy::none();
        let mut state = policy.seed_state();
        assert_eq!(policy.backoff(&mut state, 0), Duration::ZERO);
        assert_eq!(policy.backoff(&mut state, 31), Duration::ZERO);
    }

    #[test]
    fn retry_exhaustion_honors_the_attempt_count_exactly() {
        // A listener that accepts and immediately drops every
        // connection: each attempt fails at the transport layer, so the
        // client runs its full schedule and reports the exact count.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            // More accepts than attempts, in case the OS coalesces.
            for stream in listener.incoming().take(16).flatten() {
                drop(stream);
            }
        });
        let attempts = 3;
        let mut client = RpcClient::connect(addr)
            .expect("connect")
            .with_retry(RetryPolicy {
                attempts,
                base: Duration::from_millis(1),
                cap: Duration::from_millis(2),
                seed: 42,
            });
        match client.ping() {
            Err(RpcError::Exhausted { attempts: got, .. }) => assert_eq!(got, attempts),
            other => panic!("expected exhaustion, got {other:?}"),
        }
        drop(client);
        drop(server); // The listener thread exits when its take() drains.
    }
}
