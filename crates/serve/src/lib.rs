//! # talus-serve — the online reconfiguration service (L5)
//!
//! A long-running, single-node service that owns many **logical caches**.
//! Callers register a cache with a capacity budget and a tenant count,
//! then stream per-tenant miss-curve updates (from `talus-sim` monitors,
//! real-hardware counters, or synthetic `talus-workloads` replays — any
//! [`CurveSource`](talus_core::CurveSource)). The service batches dirty
//! caches per **epoch**, re-plans each one through the shared
//! [`Planner`](talus_partition::Planner) pipeline (convex hulls from
//! `talus-core`, allocation from `talus-partition`), and publishes the
//! result as a versioned, immutable [`PlanSnapshot`].
//!
//! ## Concurrency contract
//!
//! Three groups of callers touch the service, and none of them waits on
//! planning work:
//!
//! - **Producers** ([`submit`](ReconfigService::submit)) take the registry
//!   lock only long enough to store a curve and flag the cache dirty.
//! - **Readers** ([`snapshot`](ReconfigService::snapshot)) take a read
//!   lock only long enough to clone an `Arc`; they then read the plan
//!   entirely lock-free. Snapshots are immutable — a reader can hold one
//!   across epochs and never observes a partially written plan.
//! - **The planner** ([`run_epoch`](ReconfigService::run_epoch)) drains a
//!   bounded batch of dirty caches under the registry lock, *releases all
//!   locks*, plans, and finally swaps the new `Arc` snapshots in under a
//!   brief write lock (the "epoch swap").
//!
//! Because planning happens between the two brief critical sections, a
//! slow plan never blocks producers or readers — they at worst see the
//! previous epoch's snapshot a little longer.
//!
//! ## Equivalence to offline planning
//!
//! The service adds *scheduling* (batching, versioning, publication), not
//! *policy*: the plan published for a cache is bit-for-bit the plan a
//! direct offline `talus-core` + `talus-partition` call produces from the
//! same curves. The integration tests (and a property test over random
//! curve sets) assert exactly that.
//!
//! ## Scaling out: sharding by cache id
//!
//! [`ReconfigService`] guards all per-cache state with one registry lock,
//! so ingest throughput is ultimately bounded by that lock and epochs plan
//! on one thread. [`ShardedReconfigService`] removes both bounds with the
//! same public API: per-cache state lives on one of N independent shards
//! selected by `mix64(cache_id) % N`, submissions for caches on different
//! shards never contend, each shard batches its own epochs, and an
//! optional thread-pool mode re-plans shards concurrently (workers for
//! shards 1..N, the epoch caller planning shard 0). Because
//! caches never share state, the published plans are identical for every
//! shard count and threading mode (property-tested in
//! `tests/sharding.rs`), so callers migrate with zero semantic change.
//!
//! ## Going remote: the RPC front-end
//!
//! The paper's reconfiguration loop assumes curves arrive at the
//! allocator every ~100ms; at fleet scale the monitors producing those
//! curves live in other processes. The [`wire`] module defines a
//! length-prefixed, versioned binary protocol for exactly the service
//! API above (register / submit / run-epoch / report), [`RpcClient`]
//! speaks it over `std::net` TCP — riding the same
//! `CurveSource::next_curves` batching seam, so any producer points at a
//! remote plane unchanged — and [`RpcServer`] accepts connections and
//! feeds a shared [`ShardedReconfigService`]. The equivalence discipline
//! extends across the wire: a plane fed via RPC produces bit-identical
//! `EpochReport`s and snapshots to one fed locally
//! (`tests/rpc_equivalence.rs`), and the decoder is total — hostile
//! bytes produce typed errors, never panics (`tests/wire.rs`).
//!
//! ## Surviving restarts: the journal sink and warm restart
//!
//! On its own the plane forgets everything when the process dies. Attach
//! a `talus-store` journal with
//! [`with_sink`](ShardedReconfigService::with_sink) and every register,
//! deregister, curve submission, epoch cut, and published plan is
//! appended — under the owning shard's lock, in the exact order it takes
//! effect — to one append-only file per shard (same
//! [`talus_core::shard_of`] placement as the router). After a crash,
//! [`restore`](ShardedReconfigService::restore) replays the journal into
//! a fresh plane: caches re-register, latest curves and dirty-queue
//! order come back, the last published [`PlanSnapshot`]s reappear, and
//! the id allocator and epoch counter resume where they left off. The
//! equivalence discipline extends across the crash: a restored plane
//! produces bit-identical `EpochReport`s and snapshots to one that never
//! restarted (`tests/restore_equivalence.rs`), torn journal tails are
//! truncated on open, and mid-epoch process death is injected in the
//! workspace failure suite.
//!
//! ## Partial failure: deadlines, retries, quarantine, health
//!
//! A distributed plane fails in pieces, so the failure handling is
//! piecewise too:
//!
//! - **Clients never hang.** [`RpcClient::with_deadline`] bounds every
//!   socket operation; [`RpcClient::with_retry`] adds bounded,
//!   exponentially backed-off retries (deterministic seeded jitter) for
//!   the idempotent operations only — submit (bit-identical resubmission
//!   is a plane-level no-op), run-epoch, report, ping, health. Register
//!   and deregister are *not* retried automatically: a lost reply leaks
//!   a cache id, which the caller must reconcile explicitly.
//! - **A panicking planner loses one cache, not the plane.** Each plan
//!   call runs under `catch_unwind`; a panic quarantines that cache —
//!   its last-good snapshot keeps serving, submissions are rejected
//!   with [`ServeError::Quarantined`], and the id is listed in every
//!   [`EpochReport`] and health report until it deregisters or the
//!   plane restores.
//! - **A dead epoch worker degrades its shard, not the epoch.** The
//!   threaded router hands work to workers over bounded channels with a
//!   deadline; a worker that dies or misses the deadline marks its
//!   shard degraded and the leader plans it thereafter.
//! - **Overload is typed.** Over-cap connections receive
//!   [`wire::Response::Busy`] before close instead of a silent drop.
//! - **Health is a first-class RPC.** [`RpcClient::health`] returns a
//!   [`talus_core::PlaneHealth`]: per-shard cache/pending/quarantine
//!   counts and degraded flags, epoch counter, journal fault state, and
//!   the server's connection accounting.
//!
//! All of it is exercised deterministically through the
//! [`talus_core::FaultScript`] seam (`tests/chaos.rs`): scripted
//! panics, delays, connection kills, and truncated frames, with the
//! surviving caches asserted bit-identical to a fault-free run.
//!
//! ## Scaling across processes: the shard cluster
//!
//! One server is one failure domain. A **cluster** splits the fixed
//! global shard layout across N server processes — each owns a
//! contiguous [`talus_core::ShardTopology`] slice of the shards,
//! journals its slice into its own `talus-store` directory, and
//! refuses operations for ids it does not own
//! ([`ServeError::Misrouted`]). [`ClusterClient`] assembles them back
//! into one logical plane: a v3 `Hello` handshake verifies the
//! advertised slices are disjoint and complete, cache-id minting moves
//! client-side (servers in cluster topologies reject server-side
//! minting with [`ServeError::ClusterMint`]), and every operation
//! routes by the same `mix64(id) % total` placement a single-process
//! plane uses — so cluster snapshots and epoch reports stay
//! bit-identical to single-process ones (`tests/cluster.rs`). Partial
//! failure follows the same discipline as everything above: a dead
//! member trips a per-member circuit breaker (typed
//! [`ClusterError::ShardDown`] naming the unreachable shard range,
//! deterministic periodic re-probes), surviving members keep serving
//! their slices, and a killed member resurrects from its journal slice
//! via [`ShardedReconfigService::restore`] — with the handshake
//! rejecting rejoins that changed topology or went backwards in epochs
//! ([`HandshakeError::StaleEpoch`]).
//!
//! ```
//! use talus_core::MissCurve;
//! use talus_serve::{CacheSpec, ReconfigService};
//!
//! let service = ReconfigService::new();
//! let cache = service.register(CacheSpec::new(1024, 2));
//!
//! // Two tenants report their measured miss curves.
//! let cliff = MissCurve::from_samples(&[0.0, 512.0, 1024.0], &[10.0, 10.0, 1.0])?;
//! let gentle = MissCurve::from_samples(&[0.0, 512.0, 1024.0], &[4.0, 2.0, 1.5])?;
//! service.submit(cache, 0, cliff)?;
//! service.submit(cache, 1, gentle)?;
//!
//! // One epoch later a versioned plan is published.
//! let report = service.run_epoch();
//! assert_eq!(report.planned, vec![cache]);
//! let snap = service.snapshot(cache).expect("published");
//! assert_eq!(snap.version, 1);
//! assert_eq!(snap.plan.allocations().iter().sum::<u64>(), 1024);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod client;
mod cluster;
mod router;
mod rpc_server;
mod service;
mod shard;
mod snapshot;
pub mod wire;

pub use client::{RetryPolicy, RpcClient, RpcError};
pub use cluster::{
    ClusterClient, ClusterConfig, ClusterEpochReport, ClusterError, ClusterHealth, HandshakeError,
    MemberHealth, DEFAULT_PROBE_INTERVAL,
};
pub use router::{RestoreError, RestoreSummary, ShardedReconfigService};
pub use rpc_server::{RpcServer, ServerHandle, DEFAULT_MAX_CONNECTIONS};
pub use service::{CacheSpec, EpochReport, ReconfigService, ServeError};
pub use snapshot::{CacheId, PlanSnapshot};
