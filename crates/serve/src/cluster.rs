//! `ClusterClient`: one logical plane over many shard-server processes.
//!
//! A cluster is N [`RpcServer`](crate::RpcServer) processes, each
//! fronting a [`ShardedReconfigService`](crate::ShardedReconfigService)
//! that owns one contiguous slice of a fixed **global** shard layout
//! (see [`talus_core::ShardTopology`]). The client connects to every
//! member, performs the v3 `Hello` handshake — each server advertises
//! `(total_shards, owned range, epoch, next_id, health)` — and verifies
//! the advertisements assemble into exactly one plane: every member
//! agrees on the total, the ranges are disjoint, and together they
//! cover every global shard. Placement never moves:
//! `shard_of(id, total)` names the owning global shard and therefore
//! the owning member, so a cluster routes each operation to exactly
//! the shard a single-process plane with `total` shards would use —
//! which is what makes cluster results bit-identical to single-process
//! ones (`tests/cluster.rs`).
//!
//! ## Id minting
//!
//! A single-process plane mints cache ids server-side. Across members
//! that would race, so minting moves to the client: the handshake seeds
//! `next_id` with the maximum any member has seen, `register` assigns
//! the next id deterministically and sends `RegisterAt` to the owning
//! member. Servers refuse to mint in cluster topologies
//! ([`ServeError::ClusterMint`]), and `RegisterAt` is idempotent for an
//! identical spec, so a registration whose reply was lost converges on
//! retry instead of leaking an id. The scheme assumes one minting
//! client per cluster (the same single-writer assumption the journal
//! already makes); readers and submitters can fan out freely.
//!
//! ## Partial failure: the per-member circuit breaker
//!
//! A dead member must cost its callers one bounded failure, not a
//! hang per request. The first transport-class failure (deadline,
//! exhausted retries, connection loss) trips that member's breaker:
//! the member is marked down, the failure is counted as an outage, and
//! every subsequent operation routed to it fails *immediately* with
//! [`ClusterError::ShardDown`] naming the member and its global shard
//! range — no socket is touched. Every `probe_interval`-th such
//! fast-failure instead probes: one fresh connection and `Hello`,
//! re-verifying the member's topology slice and that its epoch has not
//! gone backwards. A successful probe closes the breaker; operations
//! resume. Operations routed to *other* members never notice — the
//! surviving slices keep registering, submitting, and planning.
//!
//! ## Resurrection and the stale-epoch guard
//!
//! A killed member restarts by re-opening its journal slice with
//! [`ShardedReconfigService::restore`](crate::ShardedReconfigService::restore)
//! and re-binding its server; the client's probe (or an explicit
//! [`reconnect_member`](ClusterClient::reconnect_member), if the
//! address changed) re-handshakes and resumes routing. The handshake
//! rejects two classes of bad rejoin: a member advertising a
//! *different* topology slice ([`HandshakeError::TopologyChanged`]) and
//! a member whose epoch went backwards
//! ([`HandshakeError::StaleEpoch`]) — the signature of a restart from a
//! lost or stale journal, which would silently fork history if routed
//! to. Both leave the breaker open.

use std::net::{SocketAddr, ToSocketAddrs};
use std::time::Duration;

use crate::client::{RetryPolicy, RpcClient, RpcError};
use crate::router::merge_reports;
use crate::service::{EpochReport, ServeError};
use crate::snapshot::CacheId;
use crate::wire::{ClusterInfo, SnapshotSummary, WireError};
use talus_core::{shard_of, MissCurve, PlaneHealth};

/// Fast-failures between probes while a member's breaker is open: the
/// default lets most callers fail fast while every fourth attempt pays
/// one connection to check for recovery.
pub const DEFAULT_PROBE_INTERVAL: u32 = 4;

/// Connection-level settings applied to every member of a
/// [`ClusterClient`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Per-request socket deadline for every member connection
    /// (`None` = block forever; keep one in production so a hung member
    /// trips the breaker instead of hanging the client).
    pub deadline: Option<Duration>,
    /// Retry policy for each member's idempotent operations. Retries
    /// run *inside* a member before its breaker trips: the breaker sees
    /// one exhausted failure, not each attempt.
    pub retry: RetryPolicy,
    /// While a breaker is open, every `probe_interval`-th operation
    /// routed to that member probes it instead of failing fast
    /// (1 = probe on every operation).
    pub probe_interval: u32,
}

impl Default for ClusterConfig {
    /// Five-second deadline, default retry policy, probe every fourth
    /// fast-failure.
    fn default() -> Self {
        ClusterConfig {
            deadline: Some(Duration::from_secs(5)),
            retry: RetryPolicy::default(),
            probe_interval: DEFAULT_PROBE_INTERVAL,
        }
    }
}

/// Why a cluster handshake (connect, probe, or explicit reconnect)
/// rejected a member's advertisement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HandshakeError {
    /// `connect` was given no addresses.
    NoServers,
    /// A member disagrees about how many global shards the plane has.
    TotalMismatch {
        /// Index of the disagreeing member (position in the address
        /// list).
        member: usize,
        /// The total that member advertised.
        got: usize,
        /// The total the first member advertised.
        expected: usize,
    },
    /// Two members both claim this global shard.
    Overlap {
        /// The doubly-owned global shard.
        shard: usize,
    },
    /// No member claims this global shard, so ids placed there would be
    /// unroutable.
    Gap {
        /// The unowned global shard.
        shard: usize,
    },
    /// A rejoining member advertised a different shard slice than it
    /// owned at connect time; routing to it would misplace ids.
    TopologyChanged {
        /// Index of the member.
        member: usize,
    },
    /// A rejoining member's epoch went backwards — it restarted from a
    /// lost or stale journal and its state forked from what this client
    /// already observed. Routing to it would silently diverge.
    StaleEpoch {
        /// Index of the member.
        member: usize,
        /// The epoch the member advertised on rejoin.
        got: u64,
        /// The minimum acceptable epoch (the member's last acknowledged
        /// epoch).
        expected: u64,
    },
}

impl std::fmt::Display for HandshakeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HandshakeError::NoServers => write!(f, "a cluster needs at least one server"),
            HandshakeError::TotalMismatch {
                member,
                got,
                expected,
            } => write!(
                f,
                "member {member} says the plane has {got} shards, others say {expected}"
            ),
            HandshakeError::Overlap { shard } => {
                write!(f, "global shard {shard} is claimed by two members")
            }
            HandshakeError::Gap { shard } => {
                write!(f, "global shard {shard} is claimed by no member")
            }
            HandshakeError::TopologyChanged { member } => {
                write!(f, "member {member} rejoined with a different shard slice")
            }
            HandshakeError::StaleEpoch {
                member,
                got,
                expected,
            } => write!(
                f,
                "member {member} rejoined at epoch {got}, behind its acknowledged epoch \
                 {expected} (stale journal?)"
            ),
        }
    }
}

impl std::error::Error for HandshakeError {}

/// Errors surfaced by the cluster client.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// The handshake rejected the cluster's (or one member's)
    /// advertisement.
    Handshake(HandshakeError),
    /// The owning member is unreachable and its breaker is open; `last`
    /// is the failure that opened (or last re-opened) it. Operations on
    /// ids owned by other members keep succeeding.
    ShardDown {
        /// Index of the down member (position in the address list).
        member: usize,
        /// First global shard of the unreachable slice.
        first_shard: usize,
        /// Number of unreachable global shards.
        shard_count: usize,
        /// The transport failure that opened the breaker.
        last: Box<RpcError>,
    },
    /// The owning member processed the request and rejected it — the
    /// same typed rejection a single-process plane would return.
    Serve(ServeError),
    /// A non-transport RPC failure (protocol violation, unexpected
    /// reply kind) that retrying or rerouting cannot fix.
    Rpc(RpcError),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Handshake(e) => write!(f, "cluster handshake failed: {e}"),
            ClusterError::ShardDown {
                member,
                first_shard,
                shard_count,
                last,
            } => write!(
                f,
                "member {member} (global shards {first_shard}..{}) is down: {last}",
                first_shard + shard_count
            ),
            ClusterError::Serve(e) => write!(f, "cluster member rejected request: {e}"),
            ClusterError::Rpc(e) => write!(f, "cluster rpc failed: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Handshake(e) => Some(e),
            ClusterError::ShardDown { last, .. } => Some(last),
            ClusterError::Serve(e) => Some(e),
            ClusterError::Rpc(e) => Some(e),
        }
    }
}

impl From<HandshakeError> for ClusterError {
    fn from(e: HandshakeError) -> Self {
        ClusterError::Handshake(e)
    }
}

/// Whether `e` is a transport-class failure (the member may be dead)
/// as opposed to a typed rejection or protocol violation.
fn is_transport(e: &RpcError) -> bool {
    match e {
        RpcError::Deadline | RpcError::Busy => true,
        RpcError::Wire(WireError::Io(_)) | RpcError::Wire(WireError::Truncated) => true,
        RpcError::Exhausted { last, .. } => is_transport(last),
        _ => false,
    }
}

/// Breaker state of one member connection.
#[derive(Debug)]
enum MemberState {
    /// Breaker closed: operations go to the wire.
    Up(RpcClient),
    /// Breaker open: operations fail fast with `last` until a probe
    /// succeeds.
    Down {
        /// The transport failure that opened the breaker.
        last: RpcError,
        /// Fast-failures since the last real connection attempt.
        since_probe: u32,
    },
}

/// One shard server, as the cluster client tracks it.
#[derive(Debug)]
struct Member {
    addr: SocketAddr,
    first: usize,
    count: usize,
    /// Highest epoch this client has seen the member acknowledge; a
    /// rejoin below this is stale.
    last_epoch: u64,
    /// Times this member's breaker has opened.
    outages: u64,
    state: MemberState,
}

/// Reachability and health of one cluster member, as reported by
/// [`ClusterClient::health`].
#[derive(Debug, Clone, PartialEq)]
pub struct MemberHealth {
    /// First global shard the member owns.
    pub first_shard: usize,
    /// Number of contiguous global shards the member owns.
    pub shard_count: usize,
    /// Whether the member answered (breaker closed after this check).
    pub reachable: bool,
    /// Times this member's breaker has opened since connect.
    pub outages: u64,
    /// The member's own plane health, when reachable.
    pub plane: Option<PlaneHealth>,
}

/// One observable snapshot of the whole cluster's failure state: the
/// cluster-level analogue of [`talus_core::PlaneHealth`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterHealth {
    /// Global shards in the plane.
    pub total_shards: usize,
    /// Per-member health, in member order.
    pub members: Vec<MemberHealth>,
}

impl ClusterHealth {
    /// Exactly which global shards are currently unreachable, ascending
    /// — empty when every member answers.
    pub fn unreachable_shards(&self) -> Vec<usize> {
        let mut shards: Vec<usize> = self
            .members
            .iter()
            .filter(|m| !m.reachable)
            .flat_map(|m| m.first_shard..m.first_shard + m.shard_count)
            .collect();
        shards.sort_unstable();
        shards
    }

    /// Whether every member is reachable and every member's own plane
    /// is healthy.
    pub fn is_healthy(&self) -> bool {
        self.members
            .iter()
            .all(|m| m.reachable && m.plane.as_ref().is_some_and(PlaneHealth::is_healthy))
    }
}

/// The outcome of one cluster-wide epoch:
/// [`ClusterClient::run_epoch`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterEpochReport {
    /// Per-member reports folded into one plane-wide report through the
    /// same merge a single-process plane uses, so in a fully-reachable
    /// lockstep cluster this is bit-identical to the single-process
    /// report.
    pub report: EpochReport,
    /// Members (by index) whose breaker was or became open — their
    /// shards did not run this epoch and will catch up after recovery.
    pub unreachable: Vec<usize>,
}

/// A client for a multi-process shard cluster: same operations as
/// [`RpcClient`], routed per cache id to the owning member, with
/// client-side id minting and a per-member circuit breaker (see
/// "Scaling across processes" in the [crate docs](crate)).
#[derive(Debug)]
pub struct ClusterClient {
    members: Vec<Member>,
    /// Global shard index → owning member index (dense, covering).
    owner: Vec<usize>,
    /// Next cache id to mint; advanced only on confirmed registration.
    next_id: u64,
    config: ClusterConfig,
}

impl ClusterClient {
    /// Connects to every member and verifies the handshake assembles
    /// one complete plane ([`ClusterConfig::default`] settings).
    ///
    /// # Errors
    ///
    /// [`ClusterError::Handshake`] if the advertisements disagree on
    /// the total, overlap, or leave a gap; [`ClusterError::Rpc`] /
    /// [`ClusterError::ShardDown`] if a member cannot be reached at
    /// connect time (connect requires every member up — partial
    /// topologies cannot be verified complete).
    pub fn connect<A: ToSocketAddrs>(addrs: &[A]) -> Result<Self, ClusterError> {
        Self::connect_with(addrs, ClusterConfig::default())
    }

    /// [`connect`](ClusterClient::connect) with explicit settings.
    ///
    /// # Errors
    ///
    /// As [`connect`](ClusterClient::connect).
    pub fn connect_with<A: ToSocketAddrs>(
        addrs: &[A],
        config: ClusterConfig,
    ) -> Result<Self, ClusterError> {
        if addrs.is_empty() {
            return Err(HandshakeError::NoServers.into());
        }
        let mut members = Vec::with_capacity(addrs.len());
        let mut infos = Vec::with_capacity(addrs.len());
        for addr in addrs {
            let addr = resolve(addr).map_err(ClusterError::Rpc)?;
            let (client, info) = handshake(addr, &config).map_err(ClusterError::Rpc)?;
            infos.push(info.clone());
            members.push(Member {
                addr,
                first: info.first_shard as usize,
                count: info.shard_count as usize,
                last_epoch: info.epoch,
                outages: 0,
                state: MemberState::Up(client),
            });
        }
        let owner = assemble(&infos)?;
        let next_id = infos.iter().map(|i| i.next_id).max().unwrap_or(0);
        Ok(ClusterClient {
            members,
            owner,
            next_id,
            config,
        })
    }

    /// Global shards in the plane.
    pub fn total_shards(&self) -> usize {
        self.owner.len()
    }

    /// Member count.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// The next cache id [`register`](ClusterClient::register) will
    /// mint.
    pub fn next_id(&self) -> u64 {
        self.next_id
    }

    /// The member index owning cache `id` — same placement a
    /// single-process plane with [`total_shards`](Self::total_shards)
    /// shards uses.
    pub fn member_for(&self, id: CacheId) -> usize {
        self.owner[shard_of(id.value(), self.owner.len())]
    }

    /// Mints the next cache id and registers it on the owning member
    /// with the default planner (capacity/64 grain). The id is minted
    /// deterministically client-side; the mint is committed only when
    /// the owning member confirms, so a failed registration re-mints
    /// the same id (safe: `RegisterAt` is idempotent for an identical
    /// spec).
    ///
    /// # Errors
    ///
    /// [`ClusterError::ShardDown`] if the owning member's breaker is
    /// open, or the member's typed rejection.
    pub fn register(&mut self, capacity: u64, tenants: u32) -> Result<CacheId, ClusterError> {
        let id = CacheId(self.next_id);
        let member = self.member_for(id);
        let registered =
            self.call_member(member, |client| client.register_at(id, capacity, tenants))?;
        self.next_id = registered.value() + 1;
        Ok(registered)
    }

    /// Removes a cache from its owning member.
    ///
    /// # Errors
    ///
    /// As the single-process `deregister`, plus
    /// [`ClusterError::ShardDown`].
    pub fn deregister(&mut self, id: CacheId) -> Result<(), ClusterError> {
        let member = self.member_for(id);
        self.call_member(member, |client| client.deregister(id))
    }

    /// Submits one curve to the owning member.
    ///
    /// # Errors
    ///
    /// As the single-process `submit`, plus
    /// [`ClusterError::ShardDown`].
    pub fn submit(
        &mut self,
        id: CacheId,
        tenant: usize,
        curve: MissCurve,
    ) -> Result<(), ClusterError> {
        let member = self.member_for(id);
        self.call_member(member, |client| client.submit(id, tenant, curve))
    }

    /// Fetches the published snapshot summary for a cache from its
    /// owning member.
    ///
    /// # Errors
    ///
    /// Transport errors / [`ClusterError::ShardDown`].
    pub fn report(&mut self, id: CacheId) -> Result<Option<SnapshotSummary>, ClusterError> {
        let member = self.member_for(id);
        self.call_member(member, |client| client.report(id))
    }

    /// Runs one planning epoch on every reachable member and folds the
    /// per-member reports into one plane-wide report. Members with an
    /// open breaker are skipped (listed in
    /// [`unreachable`](ClusterEpochReport::unreachable)); their shards
    /// simply plan nothing this epoch, exactly like a fully-idle shard.
    ///
    /// # Errors
    ///
    /// Non-transport failures only — an unreachable member is data, not
    /// an error.
    pub fn run_epoch(&mut self) -> Result<ClusterEpochReport, ClusterError> {
        let mut reports = Vec::with_capacity(self.members.len());
        let mut unreachable = Vec::new();
        for idx in 0..self.members.len() {
            match self.call_member(idx, RpcClient::run_epoch) {
                Ok(report) => {
                    // Acknowledged epochs ratchet the stale-rejoin floor.
                    self.ratchet_epoch(idx, report.epoch);
                    reports.push(report);
                }
                Err(ClusterError::ShardDown { member, .. }) => unreachable.push(member),
                Err(e) => return Err(e),
            }
        }
        let epoch = reports.iter().map(|r| r.epoch).max().unwrap_or(0);
        Ok(ClusterEpochReport {
            report: merge_reports(epoch, reports),
            unreachable,
        })
    }

    /// One cluster-wide health snapshot: per-member reachability,
    /// outage counts, and (for reachable members) each member's own
    /// [`PlaneHealth`]. Never fails — an unreachable member is reported,
    /// not returned as an error.
    pub fn health(&mut self) -> ClusterHealth {
        let mut members = Vec::with_capacity(self.members.len());
        for idx in 0..self.members.len() {
            let plane = self.call_member(idx, RpcClient::health).ok();
            let m = &self.members[idx];
            members.push(MemberHealth {
                first_shard: m.first,
                shard_count: m.count,
                reachable: matches!(m.state, MemberState::Up(_)) && plane.is_some(),
                outages: m.outages,
                plane,
            });
        }
        ClusterHealth {
            total_shards: self.owner.len(),
            members,
        }
    }

    /// Explicitly re-handshakes member `member` — the operator path for
    /// a server restarted at a (possibly) new address, instead of
    /// waiting for a periodic probe. Verifies the member still owns the
    /// same shard slice and its epoch has not gone backwards, then
    /// closes the breaker.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Handshake`] with
    /// [`HandshakeError::TopologyChanged`] or
    /// [`HandshakeError::StaleEpoch`] on a bad rejoin (breaker stays
    /// open), or the transport failure if the member is still
    /// unreachable.
    ///
    /// # Panics
    ///
    /// Panics if `member` is out of range.
    pub fn reconnect_member<A: ToSocketAddrs>(
        &mut self,
        member: usize,
        addr: Option<A>,
    ) -> Result<(), ClusterError> {
        assert!(member < self.members.len(), "no such member");
        if let Some(addr) = addr {
            self.members[member].addr = resolve(&addr).map_err(ClusterError::Rpc)?;
        }
        self.probe(member)
    }

    /// One connection attempt to a (presumed down) member: fresh
    /// socket, `Hello`, verify, close the breaker. On transport failure
    /// the breaker stays open with the new failure recorded.
    fn probe(&mut self, idx: usize) -> Result<(), ClusterError> {
        let addr = self.members[idx].addr;
        match handshake(addr, &self.config) {
            Ok((client, info)) => {
                self.verify_rejoin(idx, &info)?;
                let member = &mut self.members[idx];
                member.last_epoch = info.epoch;
                member.state = MemberState::Up(client);
                Ok(())
            }
            Err(e) if is_transport(&e) => {
                let member = &mut self.members[idx];
                member.state = MemberState::Down {
                    last: e.clone(),
                    since_probe: 0,
                };
                Err(self.shard_down(idx, e))
            }
            Err(e) => Err(ClusterError::Rpc(e)),
        }
    }

    /// Checks a rejoining member's advertisement against what it owned
    /// at connect time and the epochs this client has already seen.
    fn verify_rejoin(&self, idx: usize, info: &ClusterInfo) -> Result<(), ClusterError> {
        let member = &self.members[idx];
        if info.total_shards as usize != self.owner.len()
            || info.first_shard as usize != member.first
            || info.shard_count as usize != member.count
        {
            return Err(HandshakeError::TopologyChanged { member: idx }.into());
        }
        if info.epoch < member.last_epoch {
            return Err(HandshakeError::StaleEpoch {
                member: idx,
                got: info.epoch,
                expected: member.last_epoch,
            }
            .into());
        }
        Ok(())
    }

    /// The typed fast-failure for member `idx`'s open breaker.
    fn shard_down(&self, idx: usize, last: RpcError) -> ClusterError {
        let member = &self.members[idx];
        ClusterError::ShardDown {
            member: idx,
            first_shard: member.first,
            shard_count: member.count,
            last: Box::new(last),
        }
    }

    /// Runs `f` against member `idx` through the breaker: fail fast
    /// while the breaker is open (probing every
    /// [`probe_interval`](ClusterConfig::probe_interval)-th call), open
    /// it on a transport-class failure, pass typed rejections through.
    fn call_member<T>(
        &mut self,
        idx: usize,
        f: impl FnOnce(&mut RpcClient) -> Result<T, RpcError>,
    ) -> Result<T, ClusterError> {
        if let MemberState::Down { last, since_probe } = &mut self.members[idx].state {
            *since_probe += 1;
            if *since_probe < self.config.probe_interval {
                let last = last.clone();
                return Err(self.shard_down(idx, last));
            }
            self.probe(idx)?;
        }
        let result = match &mut self.members[idx].state {
            MemberState::Up(client) => f(client),
            MemberState::Down { last, .. } => {
                // A probe just claimed success yet the breaker is open —
                // defensive: report the recorded failure.
                let last = last.clone();
                return Err(self.shard_down(idx, last));
            }
        };
        match result {
            Ok(value) => Ok(value),
            Err(e) if is_transport(&e) => {
                let member = &mut self.members[idx];
                member.outages += 1;
                member.state = MemberState::Down {
                    last: e.clone(),
                    since_probe: 0,
                };
                Err(self.shard_down(idx, e))
            }
            Err(RpcError::Serve(e)) => Err(ClusterError::Serve(e)),
            Err(e) => Err(ClusterError::Rpc(e)),
        }
    }

    /// Records that member `idx` has acknowledged running epoch
    /// `epoch`, raising the floor a rejoin must clear. Called by
    /// `run_epoch` after each member reports.
    fn ratchet_epoch(&mut self, idx: usize, epoch: u64) {
        let member = &mut self.members[idx];
        member.last_epoch = member.last_epoch.max(epoch);
    }
}

/// Resolves one address (first result wins, like `TcpStream::connect`).
fn resolve<A: ToSocketAddrs>(addr: &A) -> Result<SocketAddr, RpcError> {
    addr.to_socket_addrs()
        .map_err(|e| RpcError::Wire(WireError::Io(e.kind())))?
        .next()
        .ok_or(RpcError::Wire(WireError::Io(
            std::io::ErrorKind::AddrNotAvailable,
        )))
}

/// Dials `addr` with `config`'s deadline and retry policy and performs
/// the `Hello` handshake.
fn handshake(
    addr: SocketAddr,
    config: &ClusterConfig,
) -> Result<(RpcClient, ClusterInfo), RpcError> {
    let mut client = RpcClient::connect(addr)?;
    if let Some(deadline) = config.deadline {
        client = client.with_deadline(deadline)?;
    }
    let mut client = client.with_retry(config.retry);
    let info = client.hello()?;
    Ok((client, info))
}

/// Builds the global-shard → member map from every member's
/// advertisement, verifying the slices assemble into one complete
/// plane.
fn assemble(infos: &[ClusterInfo]) -> Result<Vec<usize>, ClusterError> {
    let total = infos[0].total_shards as usize;
    for (member, info) in infos.iter().enumerate() {
        if info.total_shards as usize != total {
            return Err(HandshakeError::TotalMismatch {
                member,
                got: info.total_shards as usize,
                expected: total,
            }
            .into());
        }
    }
    let mut owner: Vec<Option<usize>> = vec![None; total];
    for (member, info) in infos.iter().enumerate() {
        let first = info.first_shard as usize;
        // Wire decode already guarantees first + count <= total.
        for shard in first..first + info.shard_count as usize {
            if owner[shard].is_some() {
                return Err(HandshakeError::Overlap { shard }.into());
            }
            owner[shard] = Some(member);
        }
    }
    owner
        .into_iter()
        .enumerate()
        .map(|(shard, m)| m.ok_or_else(|| HandshakeError::Gap { shard }.into()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use talus_core::{PlaneHealth, StoreHealth};

    fn info(total: u32, first: u32, count: u32) -> ClusterInfo {
        ClusterInfo {
            total_shards: total,
            first_shard: first,
            shard_count: count,
            epoch: 0,
            next_id: 0,
            health: PlaneHealth {
                epochs: 0,
                caches: 0,
                pending: 0,
                quarantined: vec![],
                shards: vec![],
                store: StoreHealth::None,
                connections: 0,
                rejected: 0,
            },
        }
    }

    #[test]
    fn assemble_accepts_a_disjoint_cover() {
        let owner = assemble(&[info(6, 0, 2), info(6, 2, 2), info(6, 4, 2)]).expect("cover");
        assert_eq!(owner, vec![0, 0, 1, 1, 2, 2]);
    }

    #[test]
    fn assemble_rejects_total_disagreement() {
        let err = assemble(&[info(6, 0, 3), info(4, 3, 1)]).expect_err("mismatch");
        assert_eq!(
            err,
            ClusterError::Handshake(HandshakeError::TotalMismatch {
                member: 1,
                got: 4,
                expected: 6,
            })
        );
    }

    #[test]
    fn assemble_rejects_overlap_and_gap() {
        let overlap = assemble(&[info(4, 0, 3), info(4, 2, 2)]).expect_err("overlap");
        assert_eq!(
            overlap,
            ClusterError::Handshake(HandshakeError::Overlap { shard: 2 })
        );
        let gap = assemble(&[info(4, 0, 1), info(4, 2, 2)]).expect_err("gap");
        assert_eq!(
            gap,
            ClusterError::Handshake(HandshakeError::Gap { shard: 1 })
        );
    }

    #[test]
    fn transport_classification_unwraps_exhaustion() {
        assert!(is_transport(&RpcError::Deadline));
        assert!(is_transport(&RpcError::Exhausted {
            attempts: 3,
            last: Box::new(RpcError::Busy),
        }));
        assert!(!is_transport(&RpcError::Serve(ServeError::UnknownCache(
            CacheId(7)
        ))));
        assert!(!is_transport(&RpcError::Exhausted {
            attempts: 3,
            last: Box::new(RpcError::Unexpected { got: "pong" }),
        }));
    }
}
