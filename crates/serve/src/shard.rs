//! One shard of the reconfiguration plane: the per-cache state — registry
//! entry, dirty-queue slot, published snapshot — plus the epoch machinery
//! that drains, plans, and publishes it.
//!
//! A [`Shard`] is the single-lock unit [`ReconfigService`] used to be:
//! [`ReconfigService`](crate::ReconfigService) wraps exactly one, and
//! [`ShardedReconfigService`](crate::ShardedReconfigService) fronts N of
//! them with a hash router. Cache-id allocation and epoch numbering live
//! with the caller (service or router), so a shard never needs to know its
//! siblings exist — caches never share state, and neither do shards.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, RwLock};

use crate::service::{CacheSpec, EpochReport, ServeError};
use crate::snapshot::{CacheId, PlanSnapshot};
use talus_core::{FaultScript, MissCurve, StoreHealth};
use talus_partition::Planner;
use talus_store::StoreSink;

/// Per-cache mutable state, guarded by the shard's registry lock.
#[derive(Debug)]
struct CacheEntry {
    spec: CacheSpec,
    /// Latest curve per tenant (`None` until the tenant's first update).
    curves: Vec<Option<MissCurve>>,
    /// Total curve updates accepted since registration.
    updates: u64,
    /// Successful plans published (the snapshot version counter).
    version: u64,
    /// Whether the cache sits in the dirty queue.
    dirty: bool,
    /// Set when the cache's planner panicked during an epoch. The
    /// last-good snapshot keeps serving; submissions are rejected and
    /// the drain skips the cache until it is re-registered (or the plane
    /// is restored from its journal, which rebuilds entries fresh).
    quarantined: bool,
}

#[derive(Debug, Default)]
struct Registry {
    caches: HashMap<u64, CacheEntry>,
    /// FIFO of dirty cache ids; an id appears at most once (the `dirty`
    /// flag dedups).
    dirty_queue: VecDeque<u64>,
}

/// One independent slice of the reconfiguration plane. See the module
/// docs; all methods take `&self` and the type is `Send + Sync`.
#[derive(Debug)]
pub(crate) struct Shard {
    /// Most caches replanned per epoch; overflow stays queued.
    max_batch: usize,
    /// This shard's index in its plane (stamped onto epoch-cut records).
    index: usize,
    /// Journal seam: every registry mutation is mirrored here, under the
    /// registry lock, in the exact order it takes effect. `None` = no
    /// persistence (the default).
    sink: Option<Arc<dyn StoreSink>>,
    /// Deterministic fault-injection seam, consulted at `"shard.plan"`
    /// (key = raw cache id) inside the planner's panic containment.
    /// `None` outside the test substrate.
    fault: Option<Arc<FaultScript>>,
    registry: Mutex<Registry>,
    /// Reader-facing snapshot map: the only state readers touch.
    published: RwLock<HashMap<u64, Arc<PlanSnapshot>>>,
}

impl Shard {
    /// A shard replanning at most `max_batch` caches per epoch.
    pub(crate) fn new(max_batch: usize) -> Self {
        assert!(max_batch > 0, "epoch batch must be positive");
        Shard {
            max_batch,
            index: 0,
            sink: None,
            fault: None,
            registry: Mutex::new(Registry::default()),
            published: RwLock::new(HashMap::new()),
        }
    }

    pub(crate) fn set_max_batch(&mut self, max_batch: usize) {
        assert!(max_batch > 0, "epoch batch must be positive");
        self.max_batch = max_batch;
    }

    /// Attaches the journal sink (and the shard's plane index, stamped
    /// onto its epoch-cut records). Events from this point on are
    /// journaled; anything earlier is invisible to a later restore.
    pub(crate) fn set_sink(&mut self, index: usize, sink: Arc<dyn StoreSink>) {
        self.index = index;
        self.sink = Some(sink);
    }

    /// Attaches the fault-injection script consulted at `"shard.plan"`.
    pub(crate) fn set_fault_script(&mut self, script: Arc<FaultScript>) {
        self.fault = Some(script);
    }

    // Lock poisoning: a panic while a shard lock is held can only come
    // from the planner seam, and that is wrapped in `catch_unwind` with
    // no lock held — so a poisoned shard lock means some *other* code
    // panicked mid-mutation. Registry and published state are always
    // written in self-consistent steps (no partial multi-field updates
    // survive an early return), so recovery takes the data as-is rather
    // than poisoning the whole plane.
    fn lock_registry(&self) -> std::sync::MutexGuard<'_, Registry> {
        self.registry.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn read_published(&self) -> std::sync::RwLockReadGuard<'_, HashMap<u64, Arc<PlanSnapshot>>> {
        self.published.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write_published(&self) -> std::sync::RwLockWriteGuard<'_, HashMap<u64, Arc<PlanSnapshot>>> {
        self.published.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Inserts a cache under an id the caller allocated. The cache
    /// publishes no plan until every tenant has submitted at least one
    /// curve and an epoch has run.
    pub(crate) fn insert(&self, id: u64, spec: CacheSpec) {
        let mut reg = self.lock_registry();
        if let Some(sink) = &self.sink {
            sink.register(id, spec.capacity, spec.tenants as u32, &spec.planner);
        }
        reg.caches.insert(
            id,
            CacheEntry {
                curves: vec![None; spec.tenants],
                spec,
                updates: 0,
                version: 0,
                dirty: false,
                quarantined: false,
            },
        );
    }

    /// Inserts a cache under a caller-minted id, refusing to clobber an
    /// existing registration. Re-inserting an id with an *identical* spec
    /// is an idempotent no-op (nothing journaled — the journal already
    /// holds the registration), so retried cluster registrations are
    /// safe; an id held by a different spec is a typed conflict.
    pub(crate) fn try_insert(&self, id: u64, spec: CacheSpec) -> Result<(), ServeError> {
        let mut reg = self.lock_registry();
        if let Some(entry) = reg.caches.get(&id) {
            if entry.spec == spec {
                return Ok(());
            }
            return Err(ServeError::DuplicateCache(CacheId(id)));
        }
        if let Some(sink) = &self.sink {
            sink.register(id, spec.capacity, spec.tenants as u32, &spec.planner);
        }
        reg.caches.insert(
            id,
            CacheEntry {
                curves: vec![None; spec.tenants],
                spec,
                updates: 0,
                version: 0,
                dirty: false,
                quarantined: false,
            },
        );
        Ok(())
    }

    /// Removes a cache and its published snapshot. In-flight planning for
    /// the cache (if any) is discarded at publication time.
    pub(crate) fn remove(&self, id: CacheId) -> Result<(), ServeError> {
        {
            let mut reg = self.lock_registry();
            reg.caches
                .remove(&id.0)
                .ok_or(ServeError::UnknownCache(id))?;
            // The id may linger in dirty_queue; the epoch drain skips
            // entries with no registry record.
            if let Some(sink) = &self.sink {
                sink.deregister(id.0);
            }
        }
        self.write_published().remove(&id.0);
        Ok(())
    }

    /// Stores tenant `tenant`'s latest miss curve and marks the cache
    /// dirty (queued for the shard's next epoch).
    pub(crate) fn submit(
        &self,
        id: CacheId,
        tenant: usize,
        curve: MissCurve,
    ) -> Result<(), ServeError> {
        let mut reg = self.lock_registry();
        let entry = reg
            .caches
            .get_mut(&id.0)
            .ok_or(ServeError::UnknownCache(id))?;
        if entry.quarantined {
            return Err(ServeError::Quarantined(id));
        }
        let tenants = entry.spec.tenants;
        if tenant >= tenants {
            return Err(ServeError::TenantOutOfRange {
                cache: id,
                tenant,
                tenants,
            });
        }
        // A bit-identical resubmission is a full no-op — no journal
        // append, no update count, no dirty mark. This is what makes
        // retried/duplicated submissions idempotent: the retried plane
        // (and its journal) is bit-identical to the once-delivered one.
        //
        // "No-op" requires the curve to already be *accounted for*:
        // queued for planning (dirty) or reflected in a published
        // snapshot. A cache whose plan was lost — a crash between the
        // epoch cut and publication, or a planner failure — has current
        // curves but no current plan; there a resubmission re-marks
        // dirty (still without journaling a duplicate or bumping the
        // update count — the journal already holds this curve, and
        // replaying it re-derives the same dirty mark) so the next
        // epoch plans it. Lock order registry → published matches the
        // publish phase, so this read can't deadlock.
        if entry.curves[tenant].as_ref() == Some(&curve) {
            if entry.dirty {
                return Ok(());
            }
            let updates = entry.updates;
            let planned = self
                .read_published()
                .get(&id.0)
                .is_some_and(|snap| snap.updates == updates);
            if !planned {
                entry.dirty = true;
                reg.dirty_queue.push_back(id.0);
            }
            return Ok(());
        }
        if let Some(sink) = &self.sink {
            sink.submit(id.0, tenant as u32, &curve);
        }
        entry.curves[tenant] = Some(curve);
        entry.updates += 1;
        if !entry.dirty {
            entry.dirty = true;
            reg.dirty_queue.push_back(id.0);
        }
        Ok(())
    }

    /// The latest published plan for `id`, if any epoch has planned it.
    ///
    /// This is the reader hot path: a read-lock held for one `Arc` clone.
    pub(crate) fn snapshot(&self, id: CacheId) -> Option<Arc<PlanSnapshot>> {
        self.read_published().get(&id.0).cloned()
    }

    /// Dirty caches currently queued on this shard.
    pub(crate) fn pending(&self) -> usize {
        self.lock_registry().dirty_queue.len()
    }

    /// Caches registered on this shard.
    pub(crate) fn registered(&self) -> usize {
        self.lock_registry().caches.len()
    }

    /// Published snapshots currently visible on this shard.
    pub(crate) fn snapshots(&self) -> usize {
        self.read_published().len()
    }

    /// Ids of every cache registered on this shard (unordered).
    pub(crate) fn ids(&self) -> Vec<u64> {
        self.lock_registry().caches.keys().copied().collect()
    }

    /// Runs one planning epoch on this shard: drain a batch of dirty
    /// caches, re-plan them through the shared [`Planner`] pipeline with
    /// **no locks held**, then publish the new snapshots in one epoch
    /// swap. `epoch` is the caller-scoped epoch number stamped onto the
    /// report and the published snapshots.
    ///
    /// The report lists caches in ascending [`CacheId`] order — never in
    /// drain (queue) order — so reports are deterministic regardless of
    /// how submissions interleaved or how caches landed on shards.
    pub(crate) fn run_epoch(&self, epoch: u64) -> EpochReport {
        // Phase 1 — drain (brief registry lock): copy out the curves of up
        // to `max_batch` ready caches.
        struct Job {
            id: CacheId,
            planner: Planner,
            capacity: u64,
            curves: Vec<MissCurve>,
            round: u64,
            updates: u64,
        }
        let mut jobs: Vec<Job> = Vec::new();
        let mut deferred = Vec::new();
        let mut drained: Vec<u64> = Vec::new();
        let remaining_dirty;
        {
            let mut reg = self.lock_registry();
            while jobs.len() < self.max_batch {
                let Some(id) = reg.dirty_queue.pop_front() else {
                    break;
                };
                // Every pop is journaled — stale (deregistered) ids too —
                // so a replayed queue drains in exactly this order.
                drained.push(id);
                let Some(entry) = reg.caches.get_mut(&id) else {
                    continue; // deregistered while queued
                };
                entry.dirty = false;
                if entry.quarantined {
                    // Raced into the queue between its drain and its
                    // quarantine (submit rejects quarantined caches, so
                    // this is the only way in). Drop it silently: the
                    // quarantine was already reported.
                    continue;
                }
                if entry.curves.iter().any(Option::is_none) {
                    // Not every tenant has reported yet: wait for data. The
                    // missing tenant's first submission re-queues the cache.
                    deferred.push(CacheId(id));
                    continue;
                }
                jobs.push(Job {
                    id: CacheId(id),
                    planner: entry.spec.planner,
                    capacity: entry.spec.capacity,
                    curves: entry.curves.iter().flatten().cloned().collect(),
                    round: entry.version,
                    updates: entry.updates,
                });
            }
            remaining_dirty = reg.dirty_queue.len();
            // Journaled unconditionally (even when the queue was empty):
            // the cut records carry the epoch number, and `max(epoch)`
            // across them is how a restore recovers the plane-wide epoch
            // counter exactly — including trailing idle epochs.
            if let Some(sink) = &self.sink {
                sink.epoch_cut(self.index, epoch, &drained);
            }
        }

        // Phase 2 — plan (no locks): the expensive part. Each planner
        // invocation runs inside `catch_unwind`, so a panic — a planner
        // bug, or a scripted fault at the `"shard.plan"` seam — is
        // contained to its cache: the cache is quarantined (last-good
        // snapshot keeps serving) and every sibling plans normally.
        let mut planned = Vec::new();
        let mut failed = Vec::new();
        let mut quarantined = Vec::new();
        let mut ready = Vec::new();
        for job in jobs {
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                if let Some(fault) = &self.fault {
                    let _ = fault.check("shard.plan", job.id.0);
                }
                job.planner.plan(&job.curves, job.capacity, job.round)
            }));
            match outcome {
                Ok(Ok(plan)) => ready.push((job.id, job.updates, plan)),
                Ok(Err(source)) => failed.push((
                    job.id,
                    ServeError::Plan {
                        cache: job.id,
                        source,
                    },
                )),
                Err(_panic) => quarantined.push(job.id),
            }
        }

        // Quarantine before publishing: flip the flag under the registry
        // lock so concurrent submits start bouncing immediately.
        if !quarantined.is_empty() {
            let mut reg = self.lock_registry();
            for id in &quarantined {
                if let Some(entry) = reg.caches.get_mut(&id.0) {
                    entry.quarantined = true;
                }
            }
        }

        // Phase 3 — publish: version assignment and the epoch swap happen
        // atomically (published write lock nested inside the registry
        // lock), so a concurrent deregister can never interleave between
        // the two and strand an orphaned snapshot, and a concurrent epoch
        // that already landed fresher curves is never overwritten by this
        // (older) result. Lock order registry → published is never
        // inverted elsewhere (remove takes them sequentially).
        if !ready.is_empty() {
            let mut reg = self.lock_registry();
            let mut published = self.write_published();
            for (id, updates, plan) in ready {
                let Some(entry) = reg.caches.get_mut(&id.0) else {
                    continue; // deregistered mid-plan: drop the result
                };
                if published
                    .get(&id.0)
                    .is_some_and(|snap| snap.updates > updates)
                {
                    continue; // a fresher plan already landed: keep it
                }
                entry.version += 1;
                let snap = Arc::new(PlanSnapshot {
                    cache: id,
                    epoch,
                    version: entry.version,
                    updates,
                    plan,
                });
                // Only *published* plans are journaled (after the
                // deregistered/stale guards above), so replaying plan
                // records is exactly replaying publications.
                if let Some(sink) = &self.sink {
                    sink.plan(id.0, epoch, entry.version, updates, &snap.plan);
                }
                published.insert(id.0, snap);
                planned.push(id);
            }
        }

        // Deterministic CacheId order, independent of queue layout.
        planned.sort_unstable();
        deferred.sort_unstable();
        failed.sort_unstable_by_key(|(id, _)| *id);
        quarantined.sort_unstable();

        EpochReport {
            epoch,
            planned,
            deferred,
            failed,
            quarantined,
            remaining_dirty,
        }
    }

    /// Ids of quarantined caches on this shard, ascending.
    pub(crate) fn quarantined(&self) -> Vec<CacheId> {
        let mut ids: Vec<CacheId> = self
            .lock_registry()
            .caches
            .iter()
            .filter(|(_, entry)| entry.quarantined)
            .map(|(id, _)| CacheId(*id))
            .collect();
        ids.sort_unstable();
        ids
    }

    /// The health of this shard's journal sink ([`StoreHealth::None`]
    /// when the shard is ephemeral).
    pub(crate) fn store_health(&self) -> StoreHealth {
        match &self.sink {
            None => StoreHealth::None,
            Some(sink) if sink.is_faulted() => StoreHealth::Faulted,
            Some(_) => StoreHealth::Ok,
        }
    }

    // --- journal replay ------------------------------------------------
    //
    // The `restore_*` methods below apply journal records through the
    // same state transitions as the live paths, but never journal (a
    // restore must not re-append its own input) and report invalid
    // transitions with `false` instead of erroring — an invalid
    // transition can only come from a corrupt or foreign journal, and
    // the router turns it into a typed `RestoreError`.

    /// Replays a register record. `false` if the id already exists.
    pub(crate) fn restore_register(&self, id: u64, spec: CacheSpec) -> bool {
        let mut reg = self.lock_registry();
        if reg.caches.contains_key(&id) {
            return false;
        }
        reg.caches.insert(
            id,
            CacheEntry {
                curves: vec![None; spec.tenants],
                spec,
                updates: 0,
                version: 0,
                dirty: false,
                quarantined: false,
            },
        );
        true
    }

    /// Replays a deregister record. `false` if the cache is unknown.
    pub(crate) fn restore_deregister(&self, id: u64) -> bool {
        let known = {
            let mut reg = self.lock_registry();
            reg.caches.remove(&id).is_some()
            // As in the live path, the id may linger in dirty_queue; a
            // later cut record pops it just like the live drain did.
        };
        if known {
            self.write_published().remove(&id);
        }
        known
    }

    /// Replays a curve record. `false` if the cache is unknown or the
    /// tenant is out of range for its registered shape.
    pub(crate) fn restore_submit(&self, id: u64, tenant: usize, curve: MissCurve) -> bool {
        let mut reg = self.lock_registry();
        let Some(entry) = reg.caches.get_mut(&id) else {
            return false;
        };
        if tenant >= entry.spec.tenants {
            return false;
        }
        entry.curves[tenant] = Some(curve);
        entry.updates += 1;
        if !entry.dirty {
            entry.dirty = true;
            reg.dirty_queue.push_back(id);
        }
        true
    }

    /// Replays an epoch-cut record: pops `drained.len()` ids off the
    /// dirty queue, verifying they match the journaled pop order (a
    /// faithful journal replays to exactly the queue the live drain
    /// saw). `false` on any mismatch.
    pub(crate) fn restore_cut(&self, drained: &[u64]) -> bool {
        let mut reg = self.lock_registry();
        for &want in drained {
            match reg.dirty_queue.pop_front() {
                Some(got) if got == want => {}
                _ => return false,
            }
            if let Some(entry) = reg.caches.get_mut(&want) {
                entry.dirty = false;
            }
        }
        true
    }

    /// Replays a plan record: republishes the snapshot and fast-forwards
    /// the cache's version counter to it. `false` if the cache is
    /// unknown (live publication is guarded against deregistered caches,
    /// so a faithful journal never hits this).
    pub(crate) fn restore_plan(&self, snap: PlanSnapshot) -> bool {
        let mut reg = self.lock_registry();
        let Some(entry) = reg.caches.get_mut(&snap.cache.0) else {
            return false;
        };
        entry.version = snap.version;
        self.write_published().insert(snap.cache.0, Arc::new(snap));
        true
    }
}
