//! `talus-serve` driver: a threaded, sharded reconfiguration-plane demo.
//! Producer threads stream monitor-measured curve updates for many logical
//! caches — each cache a multi-tenant interference workload — while the
//! planner thread batches dirty caches into per-shard epochs and publishes
//! versioned snapshots.
//!
//! ```text
//! cargo run -p talus-serve --release [-- <caches> <tenants> <intervals> <shards> <threaded 0|1> [rpc]]
//! ```
//!
//! With `<shards> > 1` the service is a [`ShardedReconfigService`]:
//! submissions for caches on different shards never contend, and with
//! `<threaded> = 1` each shard plans its epochs on a dedicated worker.
//!
//! With a trailing `rpc` argument the same profile runs through a real
//! loopback TCP socket: an [`RpcServer`] fronts the plane, every
//! producer thread is an [`RpcClient`] streaming curves over the wire,
//! epochs are driven by a remote `run_epoch`, and the final snapshots
//! are read back via remote `report` calls — the CI smoke test for the
//! whole network layer.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use talus_serve::{CacheId, CacheSpec, RpcClient, RpcServer, ShardedReconfigService};
use talus_sim::monitor::{MonitorSource, SampledMattson};
use talus_sim::LineAddr;
use talus_workloads::{multi_tenant, AccessGenerator};

/// Footprint shrink factor for the demo workloads.
const SCALE: f64 = 1.0 / 256.0;
/// Lines per logical cache.
const CAPACITY: u64 = 4096;
/// Accesses per monitoring interval per tenant.
const INTERVAL: u64 = 40_000;
/// Producer-side monitor sampling ratio (one in `R` lines tracked). The
/// driver is the "production" configuration, so it runs the SHARDS-style
/// sampled monitor — `MonitorSource` feeds it block-at-a-time — rather
/// than the exact (and much slower) Mattson pass the replay example uses
/// for its bit-exact offline-equivalence checks.
const SAMPLE_RATIO: u64 = 8;

fn arg(n: usize, default: usize) -> usize {
    std::env::args()
        .nth(n)
        .and_then(|a| a.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let caches = arg(1, 4);
    let tenants = arg(2, 3);
    let intervals = arg(3, 4);
    let shards = arg(4, 4).max(1);
    let threaded = arg(5, 1) != 0;
    let rpc = std::env::args().nth(6).as_deref() == Some("rpc");
    println!(
        "talus-serve: {caches} caches x {tenants} tenants, {intervals} monitoring intervals, \
         {shards} shard(s){}{}",
        if threaded { " (threaded epochs)" } else { "" },
        if rpc { " (loopback rpc)" } else { "" }
    );

    let service = ShardedReconfigService::new(shards);
    let service = Arc::new(if threaded {
        service.with_threads()
    } else {
        service
    });
    if rpc {
        run_rpc(service, caches, tenants, intervals);
        return;
    }
    let producers_done = Arc::new(AtomicBool::new(false));

    // One producer thread per logical cache: each cache hosts one
    // multi-tenant interference workload (phase-shifted sweeps over a
    // shared region), measured per tenant and submitted every interval.
    let mut producer_handles = Vec::new();
    let mut ids: Vec<CacheId> = Vec::new();
    for c in 0..caches {
        let id = service.register(CacheSpec::new(CAPACITY, tenants));
        ids.push(id);
        let service = Arc::clone(&service);
        let profile = multi_tenant(tenants).scaled(SCALE);
        producer_handles.push(thread::spawn(move || {
            let mut sources: Vec<_> = (0..tenants)
                .map(|t| {
                    let mut gen = profile.tenant_generator(t, 7 + c as u64);
                    let next: Box<dyn FnMut() -> LineAddr> = Box::new(move || gen.next_line());
                    let monitor =
                        SampledMattson::new(2 * CAPACITY, SAMPLE_RATIO, 0xCAFE + c as u64);
                    let mut s = MonitorSource::new(monitor, INTERVAL, next);
                    s.warm_up(INTERVAL / 2);
                    s
                })
                .collect();
            for _ in 0..intervals {
                for (t, source) in sources.iter_mut().enumerate() {
                    service
                        .submit_from(id, t, source)
                        .expect("cache registered and tenant in range");
                }
            }
        }));
    }

    // The planner thread: every run_epoch call batches each shard's dirty
    // caches (concurrently across shards in threaded mode).
    let planner = {
        let service = Arc::clone(&service);
        let done = Arc::clone(&producers_done);
        thread::spawn(move || {
            let mut planned_total = 0usize;
            loop {
                let report = service.run_epoch();
                planned_total += report.planned.len();
                if !report.is_idle() {
                    println!(
                        "epoch {:>3}: planned {:>2}, deferred {}, failed {}, queued {}",
                        report.epoch,
                        report.planned.len(),
                        report.deferred.len(),
                        report.failed.len(),
                        report.remaining_dirty
                    );
                }
                for (_, err) in &report.failed {
                    // ServeError::Plan names the cache itself.
                    eprintln!("  {err}");
                }
                if done.load(Ordering::Acquire) && service.pending() == 0 {
                    break;
                }
                thread::sleep(Duration::from_millis(1));
            }
            planned_total
        })
    };

    for h in producer_handles {
        h.join().expect("producer thread panicked");
    }
    producers_done.store(true, Ordering::Release);
    let planned_total = planner.join().expect("planner thread panicked");

    println!("\nfinal published snapshots:");
    for id in &ids {
        match service.snapshot(*id) {
            Some(snap) => println!(
                "  {id} [shard {}]: version {} (epoch {}, {} updates) allocations {:?}",
                service.shard_index(*id),
                snap.version,
                snap.epoch,
                snap.updates,
                snap.allocations()
            ),
            None => println!(
                "  {id} [shard {}]: no plan published",
                service.shard_index(*id)
            ),
        }
    }
    println!(
        "{} epochs run, {planned_total} cache replans published across {} shard(s).",
        service.epochs(),
        service.shards()
    );
}

/// The same multi-tenant profile, but every interaction with the plane —
/// registration, curve ingest, epoch control, snapshot reads — crosses a
/// real loopback TCP socket through the v1 wire protocol.
fn run_rpc(service: Arc<ShardedReconfigService>, caches: usize, tenants: usize, intervals: usize) {
    let server = RpcServer::bind("127.0.0.1:0", Arc::clone(&service)).expect("bind loopback");
    let handle = server.spawn().expect("spawn accept loop");
    let addr = handle.local_addr();
    println!("rpc server listening on {addr}");

    let mut control = RpcClient::connect(addr).expect("connect control client");
    control.ping().expect("server answers ping");
    let ids: Vec<CacheId> = (0..caches)
        .map(|_| {
            control
                .register(CAPACITY, tenants as u32)
                .expect("register over rpc")
        })
        .collect();

    let producers_done = Arc::new(AtomicBool::new(false));
    let mut producer_handles = Vec::new();
    for (c, &id) in ids.iter().enumerate() {
        let profile = multi_tenant(tenants).scaled(SCALE);
        producer_handles.push(thread::spawn(move || {
            let mut client = RpcClient::connect(addr).expect("connect producer client");
            let mut sources: Vec<_> = (0..tenants)
                .map(|t| {
                    let mut gen = profile.tenant_generator(t, 7 + c as u64);
                    let next: Box<dyn FnMut() -> LineAddr> = Box::new(move || gen.next_line());
                    let monitor =
                        SampledMattson::new(2 * CAPACITY, SAMPLE_RATIO, 0xCAFE + c as u64);
                    let mut s = MonitorSource::new(monitor, INTERVAL, next);
                    s.warm_up(INTERVAL / 2);
                    s
                })
                .collect();
            for _ in 0..intervals {
                for (t, source) in sources.iter_mut().enumerate() {
                    client
                        .submit_from(id, t, source)
                        .expect("cache registered and tenant in range");
                }
            }
        }));
    }

    // The epoch driver is remote too: one client looping run_epoch.
    let planner = {
        let service = Arc::clone(&service);
        let done = Arc::clone(&producers_done);
        thread::spawn(move || {
            let mut client = RpcClient::connect(addr).expect("connect planner client");
            let mut planned_total = 0usize;
            loop {
                let report = client.run_epoch().expect("run epoch over rpc");
                planned_total += report.planned.len();
                if !report.is_idle() {
                    println!(
                        "epoch {:>3}: planned {:>2}, deferred {}, failed {}, queued {}",
                        report.epoch,
                        report.planned.len(),
                        report.deferred.len(),
                        report.failed.len(),
                        report.remaining_dirty
                    );
                }
                if done.load(Ordering::Acquire) && service.pending() == 0 {
                    break;
                }
                thread::sleep(Duration::from_millis(1));
            }
            planned_total
        })
    };

    for h in producer_handles {
        h.join().expect("producer thread panicked");
    }
    producers_done.store(true, Ordering::Release);
    let planned_total = planner.join().expect("planner thread panicked");

    println!("\nfinal published snapshots (read back over rpc):");
    for id in &ids {
        match control.report(*id).expect("report over rpc") {
            Some(summary) => {
                let allocations: Vec<u64> = summary.tenants.iter().map(|t| t.capacity).collect();
                println!(
                    "  {id} [shard {}]: version {} (epoch {}, {} updates) allocations {allocations:?}",
                    service.shard_index(*id),
                    summary.version,
                    summary.epoch,
                    summary.updates,
                );
                // The wire summary must mirror the in-process snapshot.
                let snap = service.snapshot(*id).expect("snapshot exists");
                assert_eq!(snap.allocations(), allocations, "rpc report drifted");
                assert_eq!(snap.version, summary.version, "rpc report drifted");
            }
            None => println!(
                "  {id} [shard {}]: no plan published",
                service.shard_index(*id)
            ),
        }
    }
    println!(
        "{} epochs run, {planned_total} cache replans published across {} shard(s), all over rpc.",
        service.epochs(),
        service.shards()
    );
    handle.shutdown();
}
