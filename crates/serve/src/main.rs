//! `talus-serve` driver: a threaded, sharded reconfiguration-plane demo.
//! Producer threads stream monitor-measured curve updates for many logical
//! caches — each cache a multi-tenant interference workload — while the
//! planner thread batches dirty caches into per-shard epochs and publishes
//! versioned snapshots.
//!
//! ```text
//! cargo run -p talus-serve --release [-- <caches> <tenants> <intervals> <shards> <threaded 0|1> [rpc]]
//! cargo run -p talus-serve --release -- store [dir]        # crash/restore smoke
//! cargo run -p talus-serve --release -- store-dump <dir>   # print a journal
//! cargo run -p talus-serve --release -- chaos              # partial-failure smoke
//! ```
//!
//! With `<shards> > 1` the service is a [`ShardedReconfigService`]:
//! submissions for caches on different shards never contend, and with
//! `<threaded> = 1` each shard plans its epochs on a dedicated worker.
//!
//! With a trailing `rpc` argument the same profile runs through a real
//! loopback TCP socket: an [`RpcServer`] fronts the plane, every
//! producer thread is an [`RpcClient`] streaming curves over the wire,
//! epochs are driven by a remote `run_epoch`, and the final snapshots
//! are read back via remote `report` calls — the CI smoke test for the
//! whole network layer.
//!
//! `store` runs the persistence smoke test: journal a monitored
//! multi-tenant run into a `talus-store` directory (default
//! `target/store-smoke`), drop the plane, warm-restart a fresh one from
//! the journal, and verify the restored snapshots are bit-identical —
//! then keep serving. `store-dump` pretty-prints an existing journal
//! directory, record by record.
//!
//! `chaos` runs the partial-failure smoke test: a loopback RPC plane
//! under a scripted fault schedule — a planner panic, a severed
//! connection, a truncated reply — driven by a deadline-and-retry
//! client, verified to quarantine exactly the panicking cache while
//! every survivor converges bit-identically to a fault-free twin, with
//! the damage visible in the plane's health report.

use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use talus_serve::{CacheId, CacheSpec, RpcClient, RpcServer, ShardedReconfigService};
use talus_sim::monitor::{MonitorSource, SampledMattson};
use talus_sim::LineAddr;
use talus_store::{Record, Store, StoreSink};
use talus_workloads::{multi_tenant, AccessGenerator};

/// Footprint shrink factor for the demo workloads.
const SCALE: f64 = 1.0 / 256.0;
/// Lines per logical cache.
const CAPACITY: u64 = 4096;
/// Accesses per monitoring interval per tenant.
const INTERVAL: u64 = 40_000;
/// Producer-side monitor sampling ratio (one in `R` lines tracked). The
/// driver is the "production" configuration, so it runs the SHARDS-style
/// sampled monitor — `MonitorSource` feeds it block-at-a-time — rather
/// than the exact (and much slower) Mattson pass the replay example uses
/// for its bit-exact offline-equivalence checks.
const SAMPLE_RATIO: u64 = 8;

fn arg(n: usize, default: usize) -> usize {
    std::env::args()
        .nth(n)
        .and_then(|a| a.parse().ok())
        .unwrap_or(default)
}

fn main() {
    match std::env::args().nth(1).as_deref() {
        Some("store") => {
            let dir = std::env::args()
                .nth(2)
                .unwrap_or_else(|| "target/store-smoke".into());
            run_store_smoke(Path::new(&dir));
            return;
        }
        Some("store-dump") => {
            let dir = std::env::args()
                .nth(2)
                .expect("store-dump needs a journal directory");
            run_store_dump(Path::new(&dir));
            return;
        }
        Some("chaos") => {
            run_chaos_smoke();
            return;
        }
        _ => {}
    }
    let caches = arg(1, 4);
    let tenants = arg(2, 3);
    let intervals = arg(3, 4);
    let shards = arg(4, 4).max(1);
    let threaded = arg(5, 1) != 0;
    let rpc = std::env::args().nth(6).as_deref() == Some("rpc");
    println!(
        "talus-serve: {caches} caches x {tenants} tenants, {intervals} monitoring intervals, \
         {shards} shard(s){}{}",
        if threaded { " (threaded epochs)" } else { "" },
        if rpc { " (loopback rpc)" } else { "" }
    );

    let service = ShardedReconfigService::new(shards);
    let service = Arc::new(if threaded {
        service.with_threads()
    } else {
        service
    });
    if rpc {
        run_rpc(service, caches, tenants, intervals);
        return;
    }
    let producers_done = Arc::new(AtomicBool::new(false));

    // One producer thread per logical cache: each cache hosts one
    // multi-tenant interference workload (phase-shifted sweeps over a
    // shared region), measured per tenant and submitted every interval.
    let mut producer_handles = Vec::new();
    let mut ids: Vec<CacheId> = Vec::new();
    for c in 0..caches {
        let id = service.register(CacheSpec::new(CAPACITY, tenants));
        ids.push(id);
        let service = Arc::clone(&service);
        let profile = multi_tenant(tenants).scaled(SCALE);
        producer_handles.push(thread::spawn(move || {
            let mut sources: Vec<_> = (0..tenants)
                .map(|t| {
                    let mut gen = profile.tenant_generator(t, 7 + c as u64);
                    let next: Box<dyn FnMut() -> LineAddr> = Box::new(move || gen.next_line());
                    let monitor =
                        SampledMattson::new(2 * CAPACITY, SAMPLE_RATIO, 0xCAFE + c as u64);
                    let mut s = MonitorSource::new(monitor, INTERVAL, next);
                    s.warm_up(INTERVAL / 2);
                    s
                })
                .collect();
            for _ in 0..intervals {
                for (t, source) in sources.iter_mut().enumerate() {
                    service
                        .submit_from(id, t, source)
                        .expect("cache registered and tenant in range");
                }
            }
        }));
    }

    // The planner thread: every run_epoch call batches each shard's dirty
    // caches (concurrently across shards in threaded mode).
    let planner = {
        let service = Arc::clone(&service);
        let done = Arc::clone(&producers_done);
        thread::spawn(move || {
            let mut planned_total = 0usize;
            loop {
                let report = service.run_epoch();
                planned_total += report.planned.len();
                if !report.is_idle() {
                    println!(
                        "epoch {:>3}: planned {:>2}, deferred {}, failed {}, queued {}",
                        report.epoch,
                        report.planned.len(),
                        report.deferred.len(),
                        report.failed.len(),
                        report.remaining_dirty
                    );
                }
                for (_, err) in &report.failed {
                    // ServeError::Plan names the cache itself.
                    eprintln!("  {err}");
                }
                if done.load(Ordering::Acquire) && service.pending() == 0 {
                    break;
                }
                thread::sleep(Duration::from_millis(1));
            }
            planned_total
        })
    };

    for h in producer_handles {
        h.join().expect("producer thread panicked");
    }
    producers_done.store(true, Ordering::Release);
    let planned_total = planner.join().expect("planner thread panicked");

    println!("\nfinal published snapshots:");
    for id in &ids {
        match service.snapshot(*id) {
            Some(snap) => println!(
                "  {id} [shard {}]: version {} (epoch {}, {} updates) allocations {:?}",
                service.shard_index(*id),
                snap.version,
                snap.epoch,
                snap.updates,
                snap.allocations()
            ),
            None => println!(
                "  {id} [shard {}]: no plan published",
                service.shard_index(*id)
            ),
        }
    }
    println!(
        "{} epochs run, {planned_total} cache replans published across {} shard(s).",
        service.epochs(),
        service.shards()
    );
}

/// The same multi-tenant profile, but every interaction with the plane —
/// registration, curve ingest, epoch control, snapshot reads — crosses a
/// real loopback TCP socket through the v1 wire protocol.
fn run_rpc(service: Arc<ShardedReconfigService>, caches: usize, tenants: usize, intervals: usize) {
    let server = RpcServer::bind("127.0.0.1:0", Arc::clone(&service)).expect("bind loopback");
    let handle = server.spawn().expect("spawn accept loop");
    let addr = handle.local_addr();
    println!("rpc server listening on {addr}");

    let mut control = RpcClient::connect(addr).expect("connect control client");
    control.ping().expect("server answers ping");
    let ids: Vec<CacheId> = (0..caches)
        .map(|_| {
            control
                .register(CAPACITY, tenants as u32)
                .expect("register over rpc")
        })
        .collect();

    let producers_done = Arc::new(AtomicBool::new(false));
    let mut producer_handles = Vec::new();
    for (c, &id) in ids.iter().enumerate() {
        let profile = multi_tenant(tenants).scaled(SCALE);
        producer_handles.push(thread::spawn(move || {
            let mut client = RpcClient::connect(addr).expect("connect producer client");
            let mut sources: Vec<_> = (0..tenants)
                .map(|t| {
                    let mut gen = profile.tenant_generator(t, 7 + c as u64);
                    let next: Box<dyn FnMut() -> LineAddr> = Box::new(move || gen.next_line());
                    let monitor =
                        SampledMattson::new(2 * CAPACITY, SAMPLE_RATIO, 0xCAFE + c as u64);
                    let mut s = MonitorSource::new(monitor, INTERVAL, next);
                    s.warm_up(INTERVAL / 2);
                    s
                })
                .collect();
            for _ in 0..intervals {
                for (t, source) in sources.iter_mut().enumerate() {
                    client
                        .submit_from(id, t, source)
                        .expect("cache registered and tenant in range");
                }
            }
        }));
    }

    // The epoch driver is remote too: one client looping run_epoch.
    let planner = {
        let service = Arc::clone(&service);
        let done = Arc::clone(&producers_done);
        thread::spawn(move || {
            let mut client = RpcClient::connect(addr).expect("connect planner client");
            let mut planned_total = 0usize;
            loop {
                let report = client.run_epoch().expect("run epoch over rpc");
                planned_total += report.planned.len();
                if !report.is_idle() {
                    println!(
                        "epoch {:>3}: planned {:>2}, deferred {}, failed {}, queued {}",
                        report.epoch,
                        report.planned.len(),
                        report.deferred.len(),
                        report.failed.len(),
                        report.remaining_dirty
                    );
                }
                if done.load(Ordering::Acquire) && service.pending() == 0 {
                    break;
                }
                thread::sleep(Duration::from_millis(1));
            }
            planned_total
        })
    };

    for h in producer_handles {
        h.join().expect("producer thread panicked");
    }
    producers_done.store(true, Ordering::Release);
    let planned_total = planner.join().expect("planner thread panicked");

    println!("\nfinal published snapshots (read back over rpc):");
    for id in &ids {
        match control.report(*id).expect("report over rpc") {
            Some(summary) => {
                let allocations: Vec<u64> = summary.tenants.iter().map(|t| t.capacity).collect();
                println!(
                    "  {id} [shard {}]: version {} (epoch {}, {} updates) allocations {allocations:?}",
                    service.shard_index(*id),
                    summary.version,
                    summary.epoch,
                    summary.updates,
                );
                // The wire summary must mirror the in-process snapshot.
                let snap = service.snapshot(*id).expect("snapshot exists");
                assert_eq!(snap.allocations(), allocations, "rpc report drifted");
                assert_eq!(snap.version, summary.version, "rpc report drifted");
            }
            None => println!(
                "  {id} [shard {}]: no plan published",
                service.shard_index(*id)
            ),
        }
    }
    println!(
        "{} epochs run, {planned_total} cache replans published across {} shard(s), all over rpc.",
        service.epochs(),
        service.shards()
    );
    print_health(&handle.health());
    handle.shutdown();
}

/// One operator-readable line per health report.
fn print_health(health: &talus_core::PlaneHealth) {
    println!(
        "health: {} | {} epochs, {} caches ({} pending), shards {} ok / {} degraded, \
         quarantined {:?}, store {:?}, {} connection(s) ({} rejected)",
        if health.is_healthy() {
            "ok"
        } else {
            "DEGRADED"
        },
        health.epochs,
        health.caches,
        health.pending,
        health.ok(),
        health.degraded(),
        health.quarantined,
        health.store,
        health.connections,
        health.rejected,
    );
}

/// The partial-failure smoke test: scripted chaos against a loopback
/// RPC plane, a fault-free twin as the oracle. Exercises the whole
/// hardening stack in one run — client deadlines and retries, the
/// server's connection-fault handling, planner panic quarantine, and
/// the health protocol — and panics (failing CI) if any containment
/// contract breaks.
fn run_chaos_smoke() {
    use talus_core::{FaultAction, FaultScript};
    use talus_serve::{RetryPolicy, RpcError, ServeError};

    let shards = 2;
    let caches = 4usize;
    println!("chaos smoke: {caches} caches on {shards} shards, scripted faults over loopback rpc");

    let curve = |tag: u64| {
        let sizes: Vec<f64> = (0..=8).map(|i| i as f64 * 512.0).collect();
        let misses: Vec<f64> = (0..=8)
            .map(|i| 40.0 - i as f64 * (3.0 + (tag % 5) as f64 * 0.5))
            .map(|m| m.max(0.0))
            .collect();
        talus_core::MissCurve::from_samples(&sizes, &misses).expect("valid curve")
    };

    // The faulted plane behind RPC, and its fault-free local oracle.
    let plane_faults = Arc::new(FaultScript::new());
    let server_faults = Arc::new(FaultScript::new());
    // One severed connection and one truncated reply, mid-schedule.
    server_faults.inject(
        "server.handle",
        Some(0x03),
        2,
        1,
        FaultAction::KillConnection,
    );
    server_faults.inject(
        "server.handle",
        Some(0x04),
        0,
        1,
        FaultAction::TruncateFrame,
    );
    let service =
        Arc::new(ShardedReconfigService::new(shards).with_fault_script(Arc::clone(&plane_faults)));
    let twin = ShardedReconfigService::new(shards);
    let handle = RpcServer::bind("127.0.0.1:0", Arc::clone(&service))
        .expect("bind loopback")
        .with_fault_script(Arc::clone(&server_faults))
        .spawn()
        .expect("spawn accept loop");
    let mut client = RpcClient::connect(handle.local_addr())
        .expect("connect")
        .with_deadline(Duration::from_secs(2))
        .expect("deadline applies")
        .with_retry(RetryPolicy::default());

    let ids: Vec<CacheId> = (0..caches)
        .map(|_| {
            let id = client.register(CAPACITY, 1).expect("register over rpc");
            assert_eq!(id, twin.register(CacheSpec::new(CAPACITY, 1)));
            id
        })
        .collect();
    let victim = ids[1];

    // Round 1 (fault-free planning, faulty transport): every cache gets
    // a last-good plan even while connections are killed under the
    // client — the retry policy reconnects and converges.
    for (i, id) in ids.iter().enumerate() {
        let c = curve(1 + i as u64);
        client
            .submit(*id, 0, c.clone())
            .expect("submit retries through chaos");
        twin.submit(*id, 0, c).expect("registered");
    }
    while service.pending() > 0 {
        client.run_epoch().expect("epoch retries through chaos");
    }
    twin.run_until_clean();
    let last_good = service.snapshot(victim).expect("round-1 plan");
    println!(
        "round 1: {} snapshots published through {} scripted connection fault(s)",
        ids.len(),
        server_faults.fired("server.handle")
    );

    // Round 2: the victim's planner is scripted to panic. The plane
    // catches it; silence the default hook so the smoke's output is the
    // containment verdict, not a backtrace of the panic we injected.
    plane_faults.inject("shard.plan", Some(victim.value()), 0, 1, FaultAction::Panic);
    let mut quarantined = Vec::new();
    for (i, id) in ids.iter().enumerate() {
        let c = curve(100 + i as u64);
        client.submit(*id, 0, c.clone()).expect("submit");
        twin.submit(*id, 0, c).expect("registered");
    }
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    while service.pending() > 0 {
        quarantined.extend(client.run_epoch().expect("epoch").quarantined);
    }
    std::panic::set_hook(default_hook);
    twin.run_until_clean();

    assert_eq!(quarantined, vec![victim], "exactly the victim quarantined");
    let snap = service.snapshot(victim).expect("last-good survives");
    assert_eq!(
        snap.plan, last_good.plan,
        "victim serves its last-good plan"
    );
    for id in ids.iter().filter(|id| **id != victim) {
        let a = service.snapshot(*id).expect("survivor planned");
        let b = twin.snapshot(*id).expect("twin planned");
        assert_eq!(a.plan, b.plan, "{id}: survivor diverged from the twin");
        assert_eq!(a.version, b.version, "{id}: version diverged");
    }
    match client.submit(victim, 0, curve(7)) {
        Err(RpcError::Serve(ServeError::Quarantined(id))) => assert_eq!(id, victim),
        other => panic!("expected the typed quarantine rejection, got {other:?}"),
    }

    let health = client.health().expect("health over rpc");
    assert_eq!(health.quarantined, vec![victim.value()]);
    assert!(!health.is_healthy(), "the quarantine shows in health");
    print_health(&health);
    println!(
        "round 2: quarantine contained to {victim}; {} survivor(s) bit-identical to the \
         fault-free twin; chaos smoke ok",
        ids.len() - 1
    );
    handle.shutdown();
}

/// The persistence smoke test: journal a real monitored run, drop the
/// plane mid-life, warm-restart from the journal, verify the restored
/// snapshots bit-identical, and keep serving. This is the driver-level
/// proof the whole store stack (sink → journal → restore) holds together
/// outside the unit tests, and the CI `store` step runs exactly this.
fn run_store_smoke(dir: &Path) {
    let shards = 2;
    let caches = 3usize;
    let tenants = 2usize;
    let intervals = 3usize;
    println!(
        "store smoke: {caches} caches x {tenants} tenants, {intervals} intervals, \
         journaling into {} ({shards} shards)",
        dir.display()
    );
    std::fs::remove_dir_all(dir).ok();

    // Era one: a journaling plane serving monitored curves.
    let store = Arc::new(Store::open(dir, shards).expect("open store"));
    let plane =
        ShardedReconfigService::new(shards).with_sink(Arc::clone(&store) as Arc<dyn StoreSink>);
    let ids: Vec<CacheId> = (0..caches)
        .map(|_| plane.register(CacheSpec::new(CAPACITY, tenants)))
        .collect();
    for (c, id) in ids.iter().enumerate() {
        let profile = multi_tenant(tenants).scaled(SCALE);
        let mut sources: Vec<_> = (0..tenants)
            .map(|t| {
                let mut gen = profile.tenant_generator(t, 7 + c as u64);
                let next: Box<dyn FnMut() -> LineAddr> = Box::new(move || gen.next_line());
                let monitor = SampledMattson::new(2 * CAPACITY, SAMPLE_RATIO, 0xCAFE + c as u64);
                let mut s = MonitorSource::new(monitor, INTERVAL, next);
                s.warm_up(INTERVAL / 2);
                s
            })
            .collect();
        for _ in 0..intervals {
            for (t, source) in sources.iter_mut().enumerate() {
                plane
                    .submit_from(*id, t, source)
                    .expect("cache registered and tenant in range");
            }
            plane.run_epoch();
        }
    }
    assert_eq!(store.last_error(), None, "journaling must not fault");
    let health = plane.health();
    assert_eq!(
        health.store,
        talus_core::StoreHealth::Ok,
        "the journal's fault state is wired into plane health"
    );
    print_health(&health);
    let before: Vec<_> = ids.iter().map(|id| plane.snapshot(*id)).collect();
    let epochs_before = plane.epochs();
    println!(
        "era one: {} epochs, {} snapshots published; dropping the plane",
        epochs_before,
        before.iter().flatten().count()
    );
    drop(plane);
    drop(store);

    // Era two: a fresh process-worth of state, rebuilt from disk alone.
    let store = Arc::new(Store::open(dir, shards).expect("reopen store"));
    let plane = ShardedReconfigService::new(shards);
    let summary = plane.restore(&store).expect("journal restores");
    println!(
        "warm restart: {} records -> {} caches, {} snapshots, epoch {}, {} torn shard(s)",
        summary.records, summary.caches, summary.snapshots, summary.epochs, summary.torn_shards
    );
    assert_eq!(plane.epochs(), epochs_before, "epoch counter resumed");
    assert_eq!(plane.cache_ids(), ids, "cache handles recovered");
    for (id, want) in ids.iter().zip(&before) {
        assert_eq!(
            plane.snapshot(*id),
            *want,
            "{id}: snapshot bit-identical after warm restart"
        );
    }
    for id in &ids {
        let history = store.history(id.value()).expect("history reads");
        assert_eq!(
            history.len(),
            tenants * intervals,
            "{id}: every submitted curve is in the journal"
        );
        println!(
            "  {id}: {} journaled curves, snapshot version {:?}",
            history.len(),
            plane.snapshot(*id).map(|s| s.version)
        );
    }

    // Era two keeps serving — and journaling — where era one stopped.
    let plane = plane.with_sink(store as Arc<dyn StoreSink>);
    let id = plane.register(CacheSpec::new(CAPACITY, 1));
    let curve = talus_core::MissCurve::from_samples(&[0.0, 2048.0, 4096.0], &[9.0, 8.0, 1.0])
        .expect("valid curve");
    plane.submit(id, 0, curve).expect("fresh cache accepts");
    let report = plane.run_epoch();
    assert!(report.planned.contains(&id), "post-restart epoch plans");
    println!(
        "era two: epoch {} planned {:?}; store smoke ok",
        report.epoch, report.planned
    );
}

/// Pretty-prints a journal directory, record by record: the operator's
/// view of what a warm restart would replay.
fn run_store_dump(dir: &Path) {
    let shards = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .filter_map(|entry| entry.ok())
        .filter(|entry| {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            name.starts_with("shard-") && name.ends_with(".talus")
        })
        .count();
    assert!(shards > 0, "no shard-*.talus files in {}", dir.display());
    let store = Store::open(dir, shards).expect("open store");
    println!(
        "{}: {} shard(s), {} records, {} torn byte(s) dropped at open",
        dir.display(),
        shards,
        store.recovery().records(),
        store.recovery().torn_bytes()
    );
    for shard in 0..shards {
        let scanned = store.replay_shard(shard).expect("replay shard");
        println!("shard {shard}: {} records", scanned.records.len());
        for rec in &scanned.records {
            let detail = match rec {
                Record::Register {
                    id,
                    capacity,
                    tenants,
                    ..
                } => format!("cache {id}: capacity {capacity}, {tenants} tenant(s)"),
                Record::Deregister { id, .. } => format!("cache {id}"),
                Record::Curve {
                    id, tenant, curve, ..
                } => format!("cache {id} tenant {tenant}: {} points", curve.len()),
                Record::EpochCut { epoch, drained, .. } => {
                    format!("epoch {epoch}: drained {drained:?}")
                }
                Record::Plan {
                    id,
                    epoch,
                    version,
                    plan,
                    ..
                } => format!(
                    "cache {id} v{version} (epoch {epoch}): allocations {:?}",
                    plan.allocations()
                ),
            };
            println!("  seq {:>5}  {:<10} {detail}", rec.seq(), rec.label());
        }
        if let Some(tail) = &scanned.tail {
            println!("  (torn tail: {tail})");
        }
    }
}
