//! `talus-serve` driver: a threaded, sharded reconfiguration-plane demo.
//! Producer threads stream monitor-measured curve updates for many logical
//! caches — each cache a multi-tenant interference workload — while the
//! planner thread batches dirty caches into per-shard epochs and publishes
//! versioned snapshots.
//!
//! ```text
//! cargo run -p talus-serve --release [-- <caches> <tenants> <intervals> <shards> <threaded 0|1> [rpc]]
//! cargo run -p talus-serve --release -- store [dir]                # crash/restore smoke
//! cargo run -p talus-serve --release -- store-dump <dir> [--json]  # print a journal
//! cargo run -p talus-serve --release -- chaos                      # partial-failure smoke
//! cargo run -p talus-serve --release -- cluster [dir]              # multi-process smoke
//! cargo run -p talus-serve --release -- analytic [caches tenants shards]  # analytic-backend smoke
//! ```
//!
//! With `<shards> > 1` the service is a [`ShardedReconfigService`]:
//! submissions for caches on different shards never contend, and with
//! `<threaded> = 1` each shard plans its epochs on a dedicated worker.
//!
//! With a trailing `rpc` argument the same profile runs through a real
//! loopback TCP socket: an [`RpcServer`] fronts the plane, every
//! producer thread is an [`RpcClient`] streaming curves over the wire,
//! epochs are driven by a remote `run_epoch`, and the final snapshots
//! are read back via remote `report` calls — the CI smoke test for the
//! whole network layer.
//!
//! `store` runs the persistence smoke test: journal a monitored
//! multi-tenant run into a `talus-store` directory (default
//! `target/store-smoke`), drop the plane, warm-restart a fresh one from
//! the journal, and verify the restored snapshots are bit-identical —
//! then keep serving. `store-dump` pretty-prints an existing journal
//! directory, record by record.
//!
//! `chaos` runs the partial-failure smoke test: a loopback RPC plane
//! under a scripted fault schedule — a planner panic, a severed
//! connection, a truncated reply — driven by a deadline-and-retry
//! client, verified to quarantine exactly the panicking cache while
//! every survivor converges bit-identically to a fault-free twin, with
//! the damage visible in the plane's health report. The process exits
//! nonzero if the final health shows any degradation beyond the one
//! scripted quarantine, so CI can gate on the exit status alone.
//!
//! `analytic` runs the analytic-backend smoke test: the same loopback
//! RPC plane, but every tenant's curve comes from
//! [`AnalyticCurveSource`] — synthesised in microseconds from workload
//! *specs* (SPEC-profile mixtures and the multi-tenant phase model),
//! with no address stream generated or recorded at all. The run prints
//! the measured per-curve synthesis cost and exits nonzero if any
//! analytic-fed cache ends without a published plan, with a
//! wrong-arity or empty allocation vector, or with a plan that
//! over-commits the cache's capacity — the CI gate that the analytic
//! backend feeds the full planning stack end to end.
//!
//! `cluster` runs the multi-process smoke test: three real
//! `cluster-server` child processes each own two of six global shards
//! (journaling into their own store directories), a [`ClusterClient`]
//! drives registration, curve ingest, and epochs over loopback — then
//! one member is killed mid-run, surviving shards keep serving while
//! the dead slice fails fast with a typed `ShardDown`, the member is
//! restarted from its journal and re-handshaked, and every final
//! snapshot is asserted bit-identical to a single-process twin plane
//! fed the same stream. (`cluster-server` is the hidden per-member
//! entry point the smoke re-executes itself with.)

use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use talus_serve::{CacheId, CacheSpec, RpcClient, RpcServer, ShardedReconfigService};
use talus_sim::monitor::{MonitorSource, SampledMattson};
use talus_sim::LineAddr;
use talus_store::{Record, Store, StoreSink};
use talus_workloads::{multi_tenant, AccessGenerator};

/// Footprint shrink factor for the demo workloads.
const SCALE: f64 = 1.0 / 256.0;
/// Lines per logical cache.
const CAPACITY: u64 = 4096;
/// Accesses per monitoring interval per tenant.
const INTERVAL: u64 = 40_000;
/// Producer-side monitor sampling ratio (one in `R` lines tracked). The
/// driver is the "production" configuration, so it runs the SHARDS-style
/// sampled monitor — `MonitorSource` feeds it block-at-a-time — rather
/// than the exact (and much slower) Mattson pass the replay example uses
/// for its bit-exact offline-equivalence checks.
const SAMPLE_RATIO: u64 = 8;

fn arg(n: usize, default: usize) -> usize {
    std::env::args()
        .nth(n)
        .and_then(|a| a.parse().ok())
        .unwrap_or(default)
}

fn main() {
    match std::env::args().nth(1).as_deref() {
        Some("store") => {
            let dir = std::env::args()
                .nth(2)
                .unwrap_or_else(|| "target/store-smoke".into());
            run_store_smoke(Path::new(&dir));
            return;
        }
        Some("store-dump") => {
            let dir = std::env::args()
                .nth(2)
                .expect("store-dump needs a journal directory");
            let json = std::env::args().nth(3).as_deref() == Some("--json");
            run_store_dump(Path::new(&dir), json);
            return;
        }
        Some("chaos") => {
            run_chaos_smoke();
            return;
        }
        Some("cluster") => {
            let dir = std::env::args()
                .nth(2)
                .unwrap_or_else(|| "target/cluster-smoke".into());
            run_cluster_smoke(Path::new(&dir));
            return;
        }
        Some("cluster-server") => {
            run_cluster_server();
            return;
        }
        Some("analytic") => {
            run_analytic_smoke();
            return;
        }
        _ => {}
    }
    let caches = arg(1, 4);
    let tenants = arg(2, 3);
    let intervals = arg(3, 4);
    let shards = arg(4, 4).max(1);
    let threaded = arg(5, 1) != 0;
    let rpc = std::env::args().nth(6).as_deref() == Some("rpc");
    println!(
        "talus-serve: {caches} caches x {tenants} tenants, {intervals} monitoring intervals, \
         {shards} shard(s){}{}",
        if threaded { " (threaded epochs)" } else { "" },
        if rpc { " (loopback rpc)" } else { "" }
    );

    let service = ShardedReconfigService::new(shards);
    let service = Arc::new(if threaded {
        service.with_threads()
    } else {
        service
    });
    if rpc {
        run_rpc(service, caches, tenants, intervals);
        return;
    }
    let producers_done = Arc::new(AtomicBool::new(false));

    // One producer thread per logical cache: each cache hosts one
    // multi-tenant interference workload (phase-shifted sweeps over a
    // shared region), measured per tenant and submitted every interval.
    let mut producer_handles = Vec::new();
    let mut ids: Vec<CacheId> = Vec::new();
    for c in 0..caches {
        let id = service.register(CacheSpec::new(CAPACITY, tenants));
        ids.push(id);
        let service = Arc::clone(&service);
        let profile = multi_tenant(tenants).scaled(SCALE);
        producer_handles.push(thread::spawn(move || {
            let mut sources: Vec<_> = (0..tenants)
                .map(|t| {
                    let mut gen = profile.tenant_generator(t, 7 + c as u64);
                    let next: Box<dyn FnMut() -> LineAddr> = Box::new(move || gen.next_line());
                    let monitor =
                        SampledMattson::new(2 * CAPACITY, SAMPLE_RATIO, 0xCAFE + c as u64);
                    let mut s = MonitorSource::new(monitor, INTERVAL, next);
                    s.warm_up(INTERVAL / 2);
                    s
                })
                .collect();
            for _ in 0..intervals {
                for (t, source) in sources.iter_mut().enumerate() {
                    service
                        .submit_from(id, t, source)
                        .expect("cache registered and tenant in range");
                }
            }
        }));
    }

    // The planner thread: every run_epoch call batches each shard's dirty
    // caches (concurrently across shards in threaded mode).
    let planner = {
        let service = Arc::clone(&service);
        let done = Arc::clone(&producers_done);
        thread::spawn(move || {
            let mut planned_total = 0usize;
            loop {
                let report = service.run_epoch();
                planned_total += report.planned.len();
                if !report.is_idle() {
                    println!(
                        "epoch {:>3}: planned {:>2}, deferred {}, failed {}, queued {}",
                        report.epoch,
                        report.planned.len(),
                        report.deferred.len(),
                        report.failed.len(),
                        report.remaining_dirty
                    );
                }
                for (_, err) in &report.failed {
                    // ServeError::Plan names the cache itself.
                    eprintln!("  {err}");
                }
                if done.load(Ordering::Acquire) && service.pending() == 0 {
                    break;
                }
                thread::sleep(Duration::from_millis(1));
            }
            planned_total
        })
    };

    for h in producer_handles {
        h.join().expect("producer thread panicked");
    }
    producers_done.store(true, Ordering::Release);
    let planned_total = planner.join().expect("planner thread panicked");

    println!("\nfinal published snapshots:");
    for id in &ids {
        match service.snapshot(*id) {
            Some(snap) => println!(
                "  {id} [shard {}]: version {} (epoch {}, {} updates) allocations {:?}",
                service.shard_index(*id),
                snap.version,
                snap.epoch,
                snap.updates,
                snap.allocations()
            ),
            None => println!(
                "  {id} [shard {}]: no plan published",
                service.shard_index(*id)
            ),
        }
    }
    println!(
        "{} epochs run, {planned_total} cache replans published across {} shard(s).",
        service.epochs(),
        service.shards()
    );
}

/// The same multi-tenant profile, but every interaction with the plane —
/// registration, curve ingest, epoch control, snapshot reads — crosses a
/// real loopback TCP socket through the v1 wire protocol.
fn run_rpc(service: Arc<ShardedReconfigService>, caches: usize, tenants: usize, intervals: usize) {
    let server = RpcServer::bind("127.0.0.1:0", Arc::clone(&service)).expect("bind loopback");
    let handle = server.spawn().expect("spawn accept loop");
    let addr = handle.local_addr();
    println!("rpc server listening on {addr}");

    let mut control = RpcClient::connect(addr).expect("connect control client");
    control.ping().expect("server answers ping");
    let ids: Vec<CacheId> = (0..caches)
        .map(|_| {
            control
                .register(CAPACITY, tenants as u32)
                .expect("register over rpc")
        })
        .collect();

    let producers_done = Arc::new(AtomicBool::new(false));
    let mut producer_handles = Vec::new();
    for (c, &id) in ids.iter().enumerate() {
        let profile = multi_tenant(tenants).scaled(SCALE);
        producer_handles.push(thread::spawn(move || {
            let mut client = RpcClient::connect(addr).expect("connect producer client");
            let mut sources: Vec<_> = (0..tenants)
                .map(|t| {
                    let mut gen = profile.tenant_generator(t, 7 + c as u64);
                    let next: Box<dyn FnMut() -> LineAddr> = Box::new(move || gen.next_line());
                    let monitor =
                        SampledMattson::new(2 * CAPACITY, SAMPLE_RATIO, 0xCAFE + c as u64);
                    let mut s = MonitorSource::new(monitor, INTERVAL, next);
                    s.warm_up(INTERVAL / 2);
                    s
                })
                .collect();
            for _ in 0..intervals {
                for (t, source) in sources.iter_mut().enumerate() {
                    client
                        .submit_from(id, t, source)
                        .expect("cache registered and tenant in range");
                }
            }
        }));
    }

    // The epoch driver is remote too: one client looping run_epoch.
    let planner = {
        let service = Arc::clone(&service);
        let done = Arc::clone(&producers_done);
        thread::spawn(move || {
            let mut client = RpcClient::connect(addr).expect("connect planner client");
            let mut planned_total = 0usize;
            loop {
                let report = client.run_epoch().expect("run epoch over rpc");
                planned_total += report.planned.len();
                if !report.is_idle() {
                    println!(
                        "epoch {:>3}: planned {:>2}, deferred {}, failed {}, queued {}",
                        report.epoch,
                        report.planned.len(),
                        report.deferred.len(),
                        report.failed.len(),
                        report.remaining_dirty
                    );
                }
                if done.load(Ordering::Acquire) && service.pending() == 0 {
                    break;
                }
                thread::sleep(Duration::from_millis(1));
            }
            planned_total
        })
    };

    for h in producer_handles {
        h.join().expect("producer thread panicked");
    }
    producers_done.store(true, Ordering::Release);
    let planned_total = planner.join().expect("planner thread panicked");

    println!("\nfinal published snapshots (read back over rpc):");
    for id in &ids {
        match control.report(*id).expect("report over rpc") {
            Some(summary) => {
                let allocations: Vec<u64> = summary.tenants.iter().map(|t| t.capacity).collect();
                println!(
                    "  {id} [shard {}]: version {} (epoch {}, {} updates) allocations {allocations:?}",
                    service.shard_index(*id),
                    summary.version,
                    summary.epoch,
                    summary.updates,
                );
                // The wire summary must mirror the in-process snapshot.
                let snap = service.snapshot(*id).expect("snapshot exists");
                assert_eq!(snap.allocations(), allocations, "rpc report drifted");
                assert_eq!(snap.version, summary.version, "rpc report drifted");
            }
            None => println!(
                "  {id} [shard {}]: no plan published",
                service.shard_index(*id)
            ),
        }
    }
    println!(
        "{} epochs run, {planned_total} cache replans published across {} shard(s), all over rpc.",
        service.epochs(),
        service.shards()
    );
    print_health(&handle.health());
    handle.shutdown();
}

/// One operator-readable line per health report.
fn print_health(health: &talus_core::PlaneHealth) {
    println!(
        "health: {} | {} epochs, {} caches ({} pending), shards {} ok / {} degraded, \
         quarantined {:?}, store {:?}, {} connection(s) ({} rejected)",
        if health.is_healthy() {
            "ok"
        } else {
            "DEGRADED"
        },
        health.epochs,
        health.caches,
        health.pending,
        health.ok(),
        health.degraded(),
        health.quarantined,
        health.store,
        health.connections,
        health.rejected,
    );
}

/// The analytic-backend smoke test: a loopback RPC plane fed entirely by
/// [`AnalyticCurveSource`] — curves synthesised from workload specs in
/// microseconds, no address stream generated or monitored anywhere in
/// the process. Tenant 0 of every cache runs the multi-tenant phase
/// model; the rest cycle through the memory-intensive SPEC roster, so
/// the plans have genuinely heterogeneous curves to trade off. Exits
/// nonzero if any cache ends without a valid plan — the shape checks
/// mirror what an applier would reject: missing snapshot, wrong
/// allocation arity, an all-zero carve-up, or capacity over-commit.
fn run_analytic_smoke() {
    use std::time::Instant;
    use talus_workloads::{memory_intensive, AnalyticCurveSource};

    let caches = arg(2, 4);
    let tenants = arg(3, 3).max(1);
    let shards = arg(4, 2).max(1);
    println!(
        "analytic smoke: {caches} caches x {tenants} tenants over loopback rpc, \
         {shards} shard(s), curves from specs (no address streams)"
    );

    let service = Arc::new(ShardedReconfigService::new(shards));
    let handle = RpcServer::bind("127.0.0.1:0", Arc::clone(&service))
        .expect("bind loopback")
        .spawn()
        .expect("spawn accept loop");
    let mut client = RpcClient::connect(handle.local_addr()).expect("connect");
    client.ping().expect("server answers ping");

    let ids: Vec<CacheId> = (0..caches)
        .map(|_| {
            client
                .register(CAPACITY, tenants as u32)
                .expect("register over rpc")
        })
        .collect();

    // Synthesise every tenant's curve straight from its spec. The timing
    // below is the backend's whole measurement cost — what replaces one
    // full monitoring interval (generate + record + extract) per tenant.
    let roster = memory_intensive();
    let mt = multi_tenant(tenants).scaled(SCALE);
    let started = Instant::now();
    let mut sources: Vec<Vec<AnalyticCurveSource>> = (0..caches)
        .map(|_| {
            (0..tenants)
                .map(|t| {
                    if t == 0 {
                        AnalyticCurveSource::from_multi_tenant(&mt, 2 * CAPACITY)
                    } else {
                        let p = roster[(t - 1) % roster.len()].scaled(SCALE);
                        AnalyticCurveSource::from_profile(&p, 2 * CAPACITY)
                    }
                })
                .collect()
        })
        .collect();
    let synth = started.elapsed();
    let curves = caches * tenants;
    println!(
        "synthesised {curves} curves in {:?} ({:.2} us/curve)",
        synth,
        synth.as_secs_f64() * 1e6 / curves as f64
    );

    for (c, id) in ids.iter().enumerate() {
        for (t, source) in sources[c].iter_mut().enumerate() {
            client
                .submit_from(*id, t, source)
                .expect("cache registered and tenant in range");
        }
    }
    while service.pending() > 0 {
        client.run_epoch().expect("run epoch over rpc");
    }

    // The exit-status gate: every analytic-fed cache must have published
    // a plan an applier could act on.
    let mut problems = Vec::new();
    println!("\nfinal published snapshots (analytic-fed):");
    for id in &ids {
        let Some(summary) = client.report(*id).expect("report over rpc") else {
            problems.push(format!("{id}: no plan published"));
            continue;
        };
        let allocations: Vec<u64> = summary.tenants.iter().map(|t| t.capacity).collect();
        println!(
            "  {id} [shard {}]: version {} (epoch {}, {} updates) allocations {allocations:?}",
            service.shard_index(*id),
            summary.version,
            summary.epoch,
            summary.updates,
        );
        if summary.version == 0 {
            problems.push(format!("{id}: unversioned plan"));
        }
        if allocations.len() != tenants {
            problems.push(format!(
                "{id}: {} allocation(s) for {tenants} tenant(s)",
                allocations.len()
            ));
        }
        let total: u64 = allocations.iter().sum();
        if total == 0 {
            problems.push(format!("{id}: empty carve-up"));
        }
        if total > CAPACITY {
            problems.push(format!("{id}: over-committed {total} of {CAPACITY} lines"));
        }
    }
    handle.shutdown();
    if !problems.is_empty() {
        eprintln!("analytic smoke FAILED: {problems:?}");
        std::process::exit(1);
    }
    println!(
        "{} epochs run, all {} analytic-fed caches published valid plans; analytic smoke ok",
        service.epochs(),
        ids.len()
    );
}

/// The partial-failure smoke test: scripted chaos against a loopback
/// RPC plane, a fault-free twin as the oracle. Exercises the whole
/// hardening stack in one run — client deadlines and retries, the
/// server's connection-fault handling, planner panic quarantine, and
/// the health protocol — and panics (failing CI) if any containment
/// contract breaks.
fn run_chaos_smoke() {
    use talus_core::{FaultAction, FaultScript};
    use talus_serve::{RetryPolicy, RpcError, ServeError};

    let shards = 2;
    let caches = 4usize;
    println!("chaos smoke: {caches} caches on {shards} shards, scripted faults over loopback rpc");

    let curve = |tag: u64| {
        let sizes: Vec<f64> = (0..=8).map(|i| i as f64 * 512.0).collect();
        let misses: Vec<f64> = (0..=8)
            .map(|i| 40.0 - i as f64 * (3.0 + (tag % 5) as f64 * 0.5))
            .map(|m| m.max(0.0))
            .collect();
        talus_core::MissCurve::from_samples(&sizes, &misses).expect("valid curve")
    };

    // The faulted plane behind RPC, and its fault-free local oracle.
    let plane_faults = Arc::new(FaultScript::new());
    let server_faults = Arc::new(FaultScript::new());
    // One severed connection and one truncated reply, mid-schedule.
    server_faults.inject(
        "server.handle",
        Some(0x03),
        2,
        1,
        FaultAction::KillConnection,
    );
    server_faults.inject(
        "server.handle",
        Some(0x04),
        0,
        1,
        FaultAction::TruncateFrame,
    );
    let service =
        Arc::new(ShardedReconfigService::new(shards).with_fault_script(Arc::clone(&plane_faults)));
    let twin = ShardedReconfigService::new(shards);
    let handle = RpcServer::bind("127.0.0.1:0", Arc::clone(&service))
        .expect("bind loopback")
        .with_fault_script(Arc::clone(&server_faults))
        .spawn()
        .expect("spawn accept loop");
    let mut client = RpcClient::connect(handle.local_addr())
        .expect("connect")
        .with_deadline(Duration::from_secs(2))
        .expect("deadline applies")
        .with_retry(RetryPolicy::default());

    let ids: Vec<CacheId> = (0..caches)
        .map(|_| {
            let id = client.register(CAPACITY, 1).expect("register over rpc");
            assert_eq!(id, twin.register(CacheSpec::new(CAPACITY, 1)));
            id
        })
        .collect();
    let victim = ids[1];

    // Round 1 (fault-free planning, faulty transport): every cache gets
    // a last-good plan even while connections are killed under the
    // client — the retry policy reconnects and converges.
    for (i, id) in ids.iter().enumerate() {
        let c = curve(1 + i as u64);
        client
            .submit(*id, 0, c.clone())
            .expect("submit retries through chaos");
        twin.submit(*id, 0, c).expect("registered");
    }
    while service.pending() > 0 {
        client.run_epoch().expect("epoch retries through chaos");
    }
    twin.run_until_clean();
    let last_good = service.snapshot(victim).expect("round-1 plan");
    println!(
        "round 1: {} snapshots published through {} scripted connection fault(s)",
        ids.len(),
        server_faults.fired("server.handle")
    );

    // Round 2: the victim's planner is scripted to panic. The plane
    // catches it; silence the default hook so the smoke's output is the
    // containment verdict, not a backtrace of the panic we injected.
    plane_faults.inject("shard.plan", Some(victim.value()), 0, 1, FaultAction::Panic);
    let mut quarantined = Vec::new();
    for (i, id) in ids.iter().enumerate() {
        let c = curve(100 + i as u64);
        client.submit(*id, 0, c.clone()).expect("submit");
        twin.submit(*id, 0, c).expect("registered");
    }
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    while service.pending() > 0 {
        quarantined.extend(client.run_epoch().expect("epoch").quarantined);
    }
    std::panic::set_hook(default_hook);
    twin.run_until_clean();

    assert_eq!(quarantined, vec![victim], "exactly the victim quarantined");
    let snap = service.snapshot(victim).expect("last-good survives");
    assert_eq!(
        snap.plan, last_good.plan,
        "victim serves its last-good plan"
    );
    for id in ids.iter().filter(|id| **id != victim) {
        let a = service.snapshot(*id).expect("survivor planned");
        let b = twin.snapshot(*id).expect("twin planned");
        assert_eq!(a.plan, b.plan, "{id}: survivor diverged from the twin");
        assert_eq!(a.version, b.version, "{id}: version diverged");
    }
    match client.submit(victim, 0, curve(7)) {
        Err(RpcError::Serve(ServeError::Quarantined(id))) => assert_eq!(id, victim),
        other => panic!("expected the typed quarantine rejection, got {other:?}"),
    }

    let health = client.health().expect("health over rpc");
    assert!(!health.is_healthy(), "the quarantine shows in health");
    print_health(&health);

    // The exit-status gate CI keys on: the scripted quarantine of the
    // victim is the *only* damage this run is allowed to show. Anything
    // else in the final health report — a degraded shard, a faulted
    // store, an extra (or missing) quarantined cache — means a
    // containment contract broke, and the process exits nonzero.
    let mut unexpected = Vec::new();
    if health.degraded() > 0 {
        unexpected.push(format!("{} degraded shard(s)", health.degraded()));
    }
    if health.store == talus_core::StoreHealth::Faulted {
        unexpected.push("faulted store".to_string());
    }
    if health.quarantined != vec![victim.value()] {
        unexpected.push(format!(
            "quarantined {:?}, expected exactly [{}]",
            health.quarantined,
            victim.value()
        ));
    }
    if !unexpected.is_empty() {
        eprintln!("chaos smoke FAILED: unexpected degradation: {unexpected:?}");
        std::process::exit(1);
    }
    println!(
        "round 2: quarantine contained to {victim}; {} survivor(s) bit-identical to the \
         fault-free twin; chaos smoke ok",
        ids.len() - 1
    );
    handle.shutdown();
}

/// The persistence smoke test: journal a real monitored run, drop the
/// plane mid-life, warm-restart from the journal, verify the restored
/// snapshots bit-identical, and keep serving. This is the driver-level
/// proof the whole store stack (sink → journal → restore) holds together
/// outside the unit tests, and the CI `store` step runs exactly this.
fn run_store_smoke(dir: &Path) {
    let shards = 2;
    let caches = 3usize;
    let tenants = 2usize;
    let intervals = 3usize;
    println!(
        "store smoke: {caches} caches x {tenants} tenants, {intervals} intervals, \
         journaling into {} ({shards} shards)",
        dir.display()
    );
    std::fs::remove_dir_all(dir).ok();

    // Era one: a journaling plane serving monitored curves.
    let store = Arc::new(Store::open(dir, shards).expect("open store"));
    let plane =
        ShardedReconfigService::new(shards).with_sink(Arc::clone(&store) as Arc<dyn StoreSink>);
    let ids: Vec<CacheId> = (0..caches)
        .map(|_| plane.register(CacheSpec::new(CAPACITY, tenants)))
        .collect();
    for (c, id) in ids.iter().enumerate() {
        let profile = multi_tenant(tenants).scaled(SCALE);
        let mut sources: Vec<_> = (0..tenants)
            .map(|t| {
                let mut gen = profile.tenant_generator(t, 7 + c as u64);
                let next: Box<dyn FnMut() -> LineAddr> = Box::new(move || gen.next_line());
                let monitor = SampledMattson::new(2 * CAPACITY, SAMPLE_RATIO, 0xCAFE + c as u64);
                let mut s = MonitorSource::new(monitor, INTERVAL, next);
                s.warm_up(INTERVAL / 2);
                s
            })
            .collect();
        for _ in 0..intervals {
            for (t, source) in sources.iter_mut().enumerate() {
                plane
                    .submit_from(*id, t, source)
                    .expect("cache registered and tenant in range");
            }
            plane.run_epoch();
        }
    }
    assert_eq!(store.last_error(), None, "journaling must not fault");
    let health = plane.health();
    assert_eq!(
        health.store,
        talus_core::StoreHealth::Ok,
        "the journal's fault state is wired into plane health"
    );
    print_health(&health);
    let before: Vec<_> = ids.iter().map(|id| plane.snapshot(*id)).collect();
    let epochs_before = plane.epochs();
    println!(
        "era one: {} epochs, {} snapshots published; dropping the plane",
        epochs_before,
        before.iter().flatten().count()
    );
    drop(plane);
    drop(store);

    // Era two: a fresh process-worth of state, rebuilt from disk alone.
    let store = Arc::new(Store::open(dir, shards).expect("reopen store"));
    let plane = ShardedReconfigService::new(shards);
    let summary = plane.restore(&store).expect("journal restores");
    println!(
        "warm restart: {} records -> {} caches, {} snapshots, epoch {}, {} torn shard(s)",
        summary.records, summary.caches, summary.snapshots, summary.epochs, summary.torn_shards
    );
    assert_eq!(plane.epochs(), epochs_before, "epoch counter resumed");
    assert_eq!(plane.cache_ids(), ids, "cache handles recovered");
    for (id, want) in ids.iter().zip(&before) {
        assert_eq!(
            plane.snapshot(*id),
            *want,
            "{id}: snapshot bit-identical after warm restart"
        );
    }
    for id in &ids {
        let history = store.history(id.value()).expect("history reads");
        assert_eq!(
            history.len(),
            tenants * intervals,
            "{id}: every submitted curve is in the journal"
        );
        println!(
            "  {id}: {} journaled curves, snapshot version {:?}",
            history.len(),
            plane.snapshot(*id).map(|s| s.version)
        );
    }

    // Era two keeps serving — and journaling — where era one stopped.
    let plane = plane.with_sink(store as Arc<dyn StoreSink>);
    let id = plane.register(CacheSpec::new(CAPACITY, 1));
    let curve = talus_core::MissCurve::from_samples(&[0.0, 2048.0, 4096.0], &[9.0, 8.0, 1.0])
        .expect("valid curve");
    plane.submit(id, 0, curve).expect("fresh cache accepts");
    let report = plane.run_epoch();
    assert!(report.planned.contains(&id), "post-restart epoch plans");
    println!(
        "era two: epoch {} planned {:?}; store smoke ok",
        report.epoch, report.planned
    );
}

/// One JSON array of `u64`s, e.g. `[3,1,4]`.
fn json_u64s(values: &[u64]) -> String {
    let items: Vec<String> = values.iter().map(u64::to_string).collect();
    format!("[{}]", items.join(","))
}

/// One record as a single-line JSON object. Hand-rolled: every field is
/// an integer or an integer array, so no escaping is ever needed.
fn record_json(file_shard: usize, rec: &Record) -> String {
    match rec {
        Record::Register {
            seq,
            id,
            capacity,
            tenants,
            ..
        } => format!(
            r#"{{"shard":{file_shard},"seq":{seq},"type":"register","id":{id},"capacity":{capacity},"tenants":{tenants}}}"#
        ),
        Record::Deregister { seq, id } => {
            format!(r#"{{"shard":{file_shard},"seq":{seq},"type":"deregister","id":{id}}}"#)
        }
        Record::Curve {
            seq,
            id,
            tenant,
            curve,
        } => format!(
            r#"{{"shard":{file_shard},"seq":{seq},"type":"curve","id":{id},"tenant":{tenant},"points":{}}}"#,
            curve.len()
        ),
        Record::EpochCut {
            seq,
            shard,
            epoch,
            drained,
        } => format!(
            r#"{{"shard":{file_shard},"seq":{seq},"type":"epoch-cut","cut_shard":{shard},"epoch":{epoch},"drained":{}}}"#,
            json_u64s(drained)
        ),
        Record::Plan {
            seq,
            id,
            epoch,
            version,
            updates,
            plan,
        } => format!(
            r#"{{"shard":{file_shard},"seq":{seq},"type":"plan","id":{id},"epoch":{epoch},"version":{version},"updates":{updates},"allocations":{}}}"#,
            json_u64s(&plan.allocations())
        ),
    }
}

/// Pretty-prints a journal directory, record by record: the operator's
/// view of what a warm restart would replay. With `json`, emits one
/// JSON object per record on stdout (summaries go to stderr), so the
/// output pipes straight into `jq`.
fn run_store_dump(dir: &Path, json: bool) {
    let shards = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .filter_map(|entry| entry.ok())
        .filter(|entry| {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            name.starts_with("shard-") && name.ends_with(".talus")
        })
        .count();
    assert!(shards > 0, "no shard-*.talus files in {}", dir.display());
    let store = Store::open(dir, shards).expect("open store");
    let summary = format!(
        "{}: {} shard(s), {} records, {} torn byte(s) dropped at open",
        dir.display(),
        shards,
        store.recovery().records(),
        store.recovery().torn_bytes()
    );
    if json {
        eprintln!("{summary}");
        for shard in 0..shards {
            let scanned = store.replay_shard(shard).expect("replay shard");
            for rec in &scanned.records {
                println!("{}", record_json(shard, rec));
            }
            if let Some(tail) = &scanned.tail {
                eprintln!("shard {shard}: torn tail: {tail}");
            }
        }
        return;
    }
    println!("{summary}");
    for shard in 0..shards {
        let scanned = store.replay_shard(shard).expect("replay shard");
        println!("shard {shard}: {} records", scanned.records.len());
        for rec in &scanned.records {
            let detail = match rec {
                Record::Register {
                    id,
                    capacity,
                    tenants,
                    ..
                } => format!("cache {id}: capacity {capacity}, {tenants} tenant(s)"),
                Record::Deregister { id, .. } => format!("cache {id}"),
                Record::Curve {
                    id, tenant, curve, ..
                } => format!("cache {id} tenant {tenant}: {} points", curve.len()),
                Record::EpochCut { epoch, drained, .. } => {
                    format!("epoch {epoch}: drained {drained:?}")
                }
                Record::Plan {
                    id,
                    epoch,
                    version,
                    plan,
                    ..
                } => format!(
                    "cache {id} v{version} (epoch {epoch}): allocations {:?}",
                    plan.allocations()
                ),
            };
            println!("  seq {:>5}  {:<10} {detail}", rec.seq(), rec.label());
        }
        if let Some(tail) = &scanned.tail {
            println!("  (torn tail: {tail})");
        }
    }
}

/// Child processes of the cluster smoke, killed (and reaped) on drop so
/// a panicking parent never leaks servers holding the CI step open.
struct ClusterProcs {
    children: Vec<Option<std::process::Child>>,
}

impl ClusterProcs {
    fn kill(&mut self, member: usize) {
        if let Some(mut child) = self.children[member].take() {
            child.kill().expect("kill member");
            child.wait().expect("reap member");
        }
    }
}

impl Drop for ClusterProcs {
    fn drop(&mut self) {
        for child in self.children.iter_mut().filter_map(Option::take) {
            let mut child = child;
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Re-executes this binary as one `cluster-server` member and waits for
/// it to publish its ephemeral port. `incarnation` names the port file,
/// so a restart never reads its predecessor's stale port.
fn spawn_member(
    dir: &Path,
    total: usize,
    first: usize,
    count: usize,
    member: usize,
    incarnation: u32,
) -> (std::process::Child, String) {
    let member_dir = dir.join(format!("member-{member}"));
    let portfile = dir.join(format!("member-{member}.port.{incarnation}"));
    std::fs::remove_file(&portfile).ok();
    let exe = std::env::current_exe().expect("current exe");
    let child = std::process::Command::new(exe)
        .args([
            "cluster-server".to_string(),
            total.to_string(),
            first.to_string(),
            count.to_string(),
            member_dir.display().to_string(),
            portfile.display().to_string(),
        ])
        // Children must not hold the parent's stdout: a CI step waits
        // for the pipe to close, and a leaked child would hang it.
        .stdout(std::process::Stdio::null())
        .spawn()
        .expect("spawn member process");
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let addr = loop {
        match std::fs::read_to_string(&portfile) {
            Ok(s) if !s.trim().is_empty() => break s.trim().to_string(),
            _ => {
                assert!(
                    std::time::Instant::now() < deadline,
                    "member {member} did not publish its port within 10s"
                );
                thread::sleep(Duration::from_millis(20));
            }
        }
    };
    (child, addr)
}

/// The hidden per-member entry point the cluster smoke re-executes
/// itself with: `cluster-server <total> <first> <count> <dir>
/// <portfile>`. Opens (or re-opens) the member's journal slice,
/// restores its plane, binds an ephemeral loopback port, publishes the
/// address atomically via the port file, and serves until killed.
fn run_cluster_server() {
    let argv: Vec<String> = std::env::args().collect();
    assert!(
        argv.len() == 7,
        "usage: cluster-server <total> <first> <count> <dir> <portfile>"
    );
    let total: usize = argv[2].parse().expect("total shards");
    let first: usize = argv[3].parse().expect("first shard");
    let count: usize = argv[4].parse().expect("shard count");
    let dir = Path::new(&argv[5]);
    let portfile = Path::new(&argv[6]);

    let topology = talus_core::ShardTopology::range(total, first, count);
    let store = Arc::new(
        Store::open(dir, count)
            .expect("open member store")
            .with_topology(topology),
    );
    let plane = ShardedReconfigService::new(count).with_topology(topology);
    let summary = plane.restore(&store).expect("member journal restores");
    let plane = plane.with_sink(Arc::clone(&store) as Arc<dyn StoreSink>);
    let handle = RpcServer::bind("127.0.0.1:0", Arc::new(plane))
        .expect("bind member loopback")
        .spawn()
        .expect("spawn member accept loop");
    let addr = handle.local_addr();
    eprintln!(
        "cluster-server: shards {first}..{} of {total} on {addr} ({} records restored)",
        first + count,
        summary.records
    );
    // Write-then-rename so the parent never reads a half-written port.
    let tmp = dir.parent().unwrap_or(Path::new(".")).join(format!(
        "{}.tmp",
        portfile.file_name().unwrap().to_string_lossy()
    ));
    std::fs::write(&tmp, format!("{addr}\n")).expect("write port file");
    std::fs::rename(&tmp, portfile).expect("publish port file");
    loop {
        thread::sleep(Duration::from_secs(3600));
    }
}

/// The multi-process smoke test: a real shard cluster over loopback —
/// spawn three member processes, drive them through a
/// [`ClusterClient`] in lockstep with a single-process twin plane,
/// kill one member mid-run, verify typed fast-failure plus surviving
/// shards serving, resurrect the member from its journal, and assert
/// every final snapshot bit-identical to the twin's.
fn run_cluster_smoke(dir: &Path) {
    use talus_serve::{ClusterClient, ClusterConfig, ClusterError, RetryPolicy};

    const MEMBERS: usize = 3;
    const PER_MEMBER: usize = 2;
    let total = MEMBERS * PER_MEMBER;
    let caches = 8usize;
    println!(
        "cluster smoke: {MEMBERS} member processes x {PER_MEMBER} shards, {caches} caches, \
         journals under {}",
        dir.display()
    );
    std::fs::remove_dir_all(dir).ok();
    std::fs::create_dir_all(dir).expect("create cluster dir");

    let mut procs = ClusterProcs {
        children: Vec::new(),
    };
    let mut addrs = Vec::new();
    for m in 0..MEMBERS {
        let (child, addr) = spawn_member(dir, total, m * PER_MEMBER, PER_MEMBER, m, 0);
        procs.children.push(Some(child));
        addrs.push(addr);
    }
    let mut cluster = ClusterClient::connect_with(
        &addrs,
        ClusterConfig {
            deadline: Some(Duration::from_secs(2)),
            retry: RetryPolicy {
                attempts: 3,
                base: Duration::from_millis(5),
                cap: Duration::from_millis(50),
                seed: 0x7A15,
            },
            probe_interval: 2,
        },
    )
    .expect("cluster handshake");
    assert_eq!(
        cluster.total_shards(),
        total,
        "handshake assembled the plane"
    );
    println!("handshake ok: {total} global shards across {MEMBERS} members");

    // The oracle: one single-process plane with the same global layout,
    // fed the same stream. Bit-equality of ids, reports, and snapshots
    // is the whole point of fixed global placement.
    let twin = ShardedReconfigService::new(total);
    let curve = |tag: u64| {
        let sizes: Vec<f64> = (0..=8).map(|i| i as f64 * 512.0).collect();
        let misses: Vec<f64> = (0..=8)
            .map(|i| 40.0 - i as f64 * (3.0 + (tag % 5) as f64 * 0.5))
            .map(|m| m.max(0.0))
            .collect();
        talus_core::MissCurve::from_samples(&sizes, &misses).expect("valid curve")
    };
    let tenants = 2usize;

    // Phase 1: full-cluster traffic, epochs in lockstep with the twin.
    let ids: Vec<CacheId> = (0..caches)
        .map(|_| {
            let id = cluster
                .register(CAPACITY, tenants as u32)
                .expect("register");
            assert_eq!(
                id,
                twin.register(CacheSpec::new(CAPACITY, tenants)),
                "client-side minting matches the twin's server-side mint"
            );
            id
        })
        .collect();
    for (i, id) in ids.iter().enumerate() {
        for t in 0..tenants {
            let c = curve(1 + (i * tenants + t) as u64);
            cluster.submit(*id, t, c.clone()).expect("submit");
            twin.submit(*id, t, c).expect("registered");
        }
    }
    run_lockstep_epochs(&mut cluster, &twin);
    assert_snapshots_match(&mut cluster, &twin, &ids, "phase 1");
    println!(
        "phase 1: {} caches planned, snapshots bit-identical to the twin",
        ids.len()
    );

    // Phase 2: kill member 1. Its shards fail fast and typed; the
    // survivors' shards keep accepting work.
    let victim_member = 1usize;
    let victim_ids: Vec<CacheId> = ids
        .iter()
        .copied()
        .filter(|id| cluster.member_for(*id) == victim_member)
        .collect();
    let survivor_ids: Vec<CacheId> = ids
        .iter()
        .copied()
        .filter(|id| cluster.member_for(*id) != victim_member)
        .collect();
    assert!(
        !victim_ids.is_empty() && !survivor_ids.is_empty(),
        "the fixed mix64 placement spreads {caches} ids over both sides"
    );
    procs.kill(victim_member);
    println!(
        "phase 2: killed member {victim_member} (shards 2..4); {} cache(s) now dark",
        victim_ids.len()
    );
    for (i, id) in survivor_ids.iter().enumerate() {
        let c = curve(100 + i as u64);
        cluster
            .submit(*id, 0, c.clone())
            .expect("surviving shards keep accepting");
        twin.submit(*id, 0, c).expect("registered");
    }
    for id in &victim_ids {
        match cluster.submit(*id, 0, curve(200)) {
            Err(ClusterError::ShardDown {
                member,
                first_shard,
                shard_count,
                ..
            }) => {
                assert_eq!(member, victim_member, "the typed failure names the member");
                assert_eq!(
                    (first_shard, shard_count),
                    (victim_member * PER_MEMBER, PER_MEMBER),
                    "and its global shard range"
                );
            }
            other => panic!("{id}: expected ShardDown, got {other:?}"),
        }
    }
    let health = cluster.health();
    assert!(!health.is_healthy(), "the outage shows in cluster health");
    assert_eq!(
        health.unreachable_shards(),
        (victim_member * PER_MEMBER..(victim_member + 1) * PER_MEMBER).collect::<Vec<_>>(),
        "health names exactly the unreachable shards"
    );
    assert!(!health.members[victim_member].reachable);
    println!(
        "phase 2: {} survivor submit(s) ok, {} typed ShardDown(s), health names shards {:?}",
        survivor_ids.len(),
        victim_ids.len(),
        health.unreachable_shards()
    );

    // Phase 3: resurrect the member from its own journal slice, at a
    // fresh port, and re-handshake. Routing resumes; full traffic and
    // lockstep epochs; every snapshot must still match the twin.
    let (child, addr) = spawn_member(
        dir,
        total,
        victim_member * PER_MEMBER,
        PER_MEMBER,
        victim_member,
        1,
    );
    procs.children[victim_member] = Some(child);
    cluster
        .reconnect_member(victim_member, Some(addr.as_str()))
        .expect("journal-restored member rejoins");
    for (i, id) in ids.iter().enumerate() {
        let c = curve(300 + i as u64);
        cluster
            .submit(*id, 0, c.clone())
            .expect("submit after rejoin");
        twin.submit(*id, 0, c).expect("registered");
    }
    run_lockstep_epochs(&mut cluster, &twin);
    assert_snapshots_match(&mut cluster, &twin, &ids, "after resurrection");
    let health = cluster.health();
    assert!(health.is_healthy(), "cluster healthy after resurrection");
    assert_eq!(
        health.members[victim_member].outages, 1,
        "exactly one recorded outage"
    );
    println!(
        "phase 3: member {victim_member} restored from its journal and rejoined; all {} \
         snapshots bit-identical to the twin; cluster smoke ok",
        ids.len()
    );
}

/// Runs cluster and twin epochs in lockstep until both are idle,
/// asserting each merged cluster report bit-identical to the twin's.
fn run_lockstep_epochs(cluster: &mut talus_serve::ClusterClient, twin: &ShardedReconfigService) {
    loop {
        let ours = cluster.run_epoch().expect("cluster epoch");
        let theirs = twin.run_epoch();
        assert_eq!(
            ours.unreachable,
            Vec::<usize>::new(),
            "all members reachable"
        );
        assert_eq!(
            ours.report, theirs,
            "cluster epoch report bit-identical to the twin's"
        );
        if theirs.is_idle() {
            break;
        }
    }
}

/// Asserts every cache's wire-level snapshot summary from the cluster
/// equals the twin's local snapshot, bit for bit.
fn assert_snapshots_match(
    cluster: &mut talus_serve::ClusterClient,
    twin: &ShardedReconfigService,
    ids: &[CacheId],
    phase: &str,
) {
    for id in ids {
        let got = cluster.report(*id).expect("report");
        let want = twin
            .snapshot(*id)
            .map(|snap| talus_serve::wire::SnapshotSummary::from(&*snap));
        assert_eq!(got, want, "{id}: snapshot diverged from the twin ({phase})");
    }
}
