//! The v3 wire protocol: length-prefixed, little-endian binary frames
//! for curve ingest, epoch control, plane health, and cluster topology.
//!
//! Every frame is
//!
//! ```text
//! offset  size  field
//! 0       4     payload length N (LE u32), 2 ≤ N ≤ WIRE_MAX_FRAME_LEN
//! 4       1     protocol version (WIRE_VERSION = 3)
//! 5       1     opcode
//! 6       N−2   body (message-specific, see Request/Response)
//! ```
//!
//! The length prefix counts everything after itself (version + opcode +
//! body). Integers are little-endian; `f64`s are IEEE-754 bit patterns
//! (LE), so curves and plan errors round-trip bit-exactly. A
//! [`MissCurve`] encodes as a point count followed by `(size, misses)`
//! pairs; vectors encode as a `u32` count followed by elements.
//!
//! ## Decoding is total
//!
//! `decode_request` / `decode_response` and [`read_frame`] never panic
//! and never allocate proportionally to attacker-controlled fields:
//!
//! - the length prefix is bounded by
//!   [`talus_core::limits::WIRE_MAX_FRAME_LEN`] *before* the payload
//!   buffer is allocated;
//! - every element count is checked against both its protocol cap
//!   (`WIRE_MAX_*`) and the bytes actually remaining in the frame
//!   *before* any `Vec` is reserved;
//! - curve payloads are validated through [`MissCurve::from_samples`],
//!   so a decoded curve upholds every invariant a locally built one does;
//! - trailing bytes after a well-formed body are an error, so every byte
//!   of an accepted frame is accounted for.
//!
//! All failures surface as the typed [`WireError`]; the adversarial
//! suite in `tests/wire.rs` drives truncations, oversized prefixes,
//! wrong versions, garbage opcodes, and random byte soup through the
//! decoder and asserts typed errors throughout.
//!
//! ## Versioning rules
//!
//! The version byte is checked on every frame. Any change to the frame
//! layout, an opcode's body, or the limits in `talus_core::limits` bumps
//! [`WIRE_VERSION`]; the golden-bytes fixture test pins the current
//! encoding so accidental format drift fails CI.
//!
//! v2 over v1: a `Health` request/reply pair reporting per-shard
//! failure state, a `Busy` response for over-capacity admission
//! shedding, a `quarantined` id list in the epoch-report body, and a
//! `Quarantined` serve-error tag.
//!
//! v3 (this version) over v2: the cluster handshake — a `Hello`
//! request and a `Hello` reply carrying [`ClusterInfo`] (total shards,
//! the server's owned shard range, epoch progress, the next unminted
//! id, and a full plane-health snapshot); a `RegisterAt` request for
//! client-minted ids (registration across a multi-process cluster);
//! and three serve-error tags for cluster routing faults —
//! `Misrouted`, `DuplicateCache`, and `ClusterMint`.

use std::io::Read;

use crate::service::{EpochReport, ServeError};
use crate::snapshot::{CacheId, PlanSnapshot};
use talus_core::limits::{
    WIRE_MAX_BATCH, WIRE_MAX_CURVE_POINTS, WIRE_MAX_FRAME_LEN, WIRE_MAX_IDS, WIRE_MAX_SHARDS,
    WIRE_MAX_TENANTS,
};
use talus_core::{
    CurveError, MissCurve, PlanError, PlaneHealth, ShardHealth, ShardState, StoreHealth,
};

/// Protocol version carried in every frame header.
pub const WIRE_VERSION: u8 = 3;

// Request opcodes (client → server). Crate-visible so the server can
// key `server.handle` fault-injection rules by opcode.
pub(crate) const OP_REGISTER: u8 = 0x01;
pub(crate) const OP_DEREGISTER: u8 = 0x02;
pub(crate) const OP_SUBMIT: u8 = 0x03;
pub(crate) const OP_RUN_EPOCH: u8 = 0x04;
pub(crate) const OP_REPORT: u8 = 0x05;
pub(crate) const OP_PING: u8 = 0x06;
pub(crate) const OP_HEALTH: u8 = 0x07;
pub(crate) const OP_HELLO: u8 = 0x08;
pub(crate) const OP_REGISTER_AT: u8 = 0x09;

// Response opcodes (server → client); high bit set.
const OP_REGISTERED: u8 = 0x81;
const OP_DEREGISTERED: u8 = 0x82;
const OP_SUBMIT_REPLY: u8 = 0x83;
const OP_EPOCH: u8 = 0x84;
const OP_SNAPSHOT: u8 = 0x85;
const OP_PONG: u8 = 0x86;
const OP_HEALTH_REPLY: u8 = 0x87;
const OP_HELLO_REPLY: u8 = 0x88;
const OP_BUSY: u8 = 0x8E;
const OP_ERROR: u8 = 0x8F;

/// Everything that can go wrong reading or decoding a frame. Decode
/// functions return these; they never panic on any input.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// The stream ended (or the frame ran out of bytes) before the
    /// declared length was satisfied.
    Truncated,
    /// The length prefix exceeds [`WIRE_MAX_FRAME_LEN`]; rejected before
    /// any allocation.
    Oversized {
        /// The declared payload length.
        len: u32,
    },
    /// The frame's version byte is not [`WIRE_VERSION`].
    BadVersion {
        /// The version byte received.
        got: u8,
    },
    /// The opcode is not one this decoder knows.
    BadOpcode {
        /// The opcode byte received.
        got: u8,
    },
    /// An element count exceeds its protocol cap (or the bytes remaining
    /// in the frame could not possibly hold that many elements).
    BadCount {
        /// The declared count.
        count: u32,
        /// The cap it violated.
        max: u32,
    },
    /// A curve payload violates [`MissCurve`]'s invariants.
    Curve(CurveError),
    /// A structurally invalid body: bad enum tag, zero field that must be
    /// positive, or trailing bytes after the message.
    Malformed(&'static str),
    /// The underlying stream failed.
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::Oversized { len } => {
                write!(f, "frame length {len} exceeds {WIRE_MAX_FRAME_LEN}")
            }
            WireError::BadVersion { got } => {
                write!(
                    f,
                    "unsupported wire version {got} (expected {WIRE_VERSION})"
                )
            }
            WireError::BadOpcode { got } => write!(f, "unknown opcode {got:#04x}"),
            WireError::BadCount { count, max } => {
                write!(f, "element count {count} exceeds bound {max}")
            }
            WireError::Curve(e) => write!(f, "invalid curve payload: {e}"),
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
            WireError::Io(kind) => write!(f, "stream error: {kind}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Curve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e.kind())
        }
    }
}

/// One (cache, tenant, curve) element of a submission batch.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitEntry {
    /// Raw cache id (as returned by a register reply).
    pub id: u64,
    /// Tenant index within the cache.
    pub tenant: u32,
    /// The tenant's latest miss curve.
    pub curve: MissCurve,
}

/// A client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Register a logical cache (default planner at `capacity/64` grain).
    Register {
        /// Capacity budget in lines (positive).
        capacity: u64,
        /// Tenant count (1..=[`WIRE_MAX_TENANTS`]).
        tenants: u32,
    },
    /// Remove a cache and its published snapshot.
    Deregister {
        /// Raw cache id.
        id: u64,
    },
    /// Submit a batch of curve updates, applied in order, atomically
    /// received (a partially transmitted batch is never applied).
    Submit {
        /// The batch (1..=[`WIRE_MAX_BATCH`] entries).
        entries: Vec<SubmitEntry>,
    },
    /// Run one planning epoch across every shard.
    RunEpoch,
    /// Fetch the published snapshot summary for a cache.
    Report {
        /// Raw cache id.
        id: u64,
    },
    /// Liveness probe.
    Ping,
    /// Fetch the plane's health snapshot (per-shard status, quarantined
    /// caches, epoch counters, store fault state, admission counters).
    Health,
    /// Cluster handshake: ask the server to advertise its topology
    /// slice, epoch progress, next unminted id, and health.
    Hello,
    /// Register a logical cache under a client-minted id (cluster
    /// registration; the id's canonical shard must be owned by the
    /// receiving server). Idempotent: re-registering the same id with
    /// an identical spec succeeds without effect.
    RegisterAt {
        /// Client-minted raw cache id.
        id: u64,
        /// Capacity budget in lines (positive).
        capacity: u64,
        /// Tenant count (1..=[`WIRE_MAX_TENANTS`]).
        tenants: u32,
    },
}

/// What a server advertises in its `Hello` reply: which slice of the
/// global shard layout it owns, how far its epochs have advanced, the
/// smallest id it has never seen registered, and its plane health. A
/// cluster client handshakes every member, checks the slices agree on
/// `total_shards`, are disjoint, and cover the whole layout, and seeds
/// its id mint from the largest `next_id`.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterInfo {
    /// Global shards in the whole plane (≥ 1).
    pub total_shards: u32,
    /// First global shard this server owns.
    pub first_shard: u32,
    /// Number of contiguous global shards this server owns (≥ 1;
    /// `first_shard + shard_count ≤ total_shards`).
    pub shard_count: u32,
    /// Epochs this server's plane has run (restored planes resume from
    /// their journaled epoch, so a rejoining server must advertise at
    /// least the epoch it last acknowledged).
    pub epoch: u64,
    /// The smallest cache id this server has never seen registered.
    pub next_id: u64,
    /// The member's full plane-health snapshot.
    pub health: PlaneHealth,
}

/// A per-tenant slice of a [`SnapshotSummary`].
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSummary {
    /// Lines allocated to the tenant.
    pub capacity: u64,
    /// Miss metric the plan expects at that allocation.
    pub expected_misses: f64,
    /// The shadow-partition configuration, if the allocation sits on a
    /// hull segment (`None` = unpartitioned).
    pub shadow: Option<ShadowSummary>,
}

/// The wire form of a shadow configuration: the fields an applier needs.
#[derive(Debug, Clone, PartialEq)]
pub struct ShadowSummary {
    /// Hull vertex the α partition emulates.
    pub alpha: f64,
    /// Hull vertex the β partition emulates.
    pub beta: f64,
    /// Fraction of accesses steered to the α partition.
    pub rho: f64,
}

/// The wire form of a published [`PlanSnapshot`]: versioning metadata
/// plus per-tenant allocations and shadow configurations.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotSummary {
    /// Raw cache id.
    pub cache: u64,
    /// Service epoch that produced the plan.
    pub epoch: u64,
    /// Per-cache plan version.
    pub version: u64,
    /// Curve updates folded into the plan.
    pub updates: u64,
    /// Reconfiguration round the plan was computed in.
    pub round: u64,
    /// One entry per tenant, in tenant order.
    pub tenants: Vec<TenantSummary>,
}

impl From<&PlanSnapshot> for SnapshotSummary {
    fn from(snap: &PlanSnapshot) -> Self {
        SnapshotSummary {
            cache: snap.cache.value(),
            epoch: snap.epoch,
            version: snap.version,
            updates: snap.updates,
            round: snap.plan.round,
            tenants: snap
                .plan
                .tenants
                .iter()
                .map(|t| TenantSummary {
                    capacity: t.capacity,
                    expected_misses: t.plan.expected_misses(),
                    shadow: t.plan.shadow().map(|s| ShadowSummary {
                        alpha: s.alpha,
                        beta: s.beta,
                        rho: s.rho,
                    }),
                })
                .collect(),
        }
    }
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Reply to [`Request::Register`]: the minted cache id.
    Registered {
        /// Raw cache id.
        id: u64,
    },
    /// Reply to a successful [`Request::Deregister`].
    Deregistered,
    /// Reply to [`Request::Submit`]: one result per entry, in order.
    SubmitReply {
        /// Per-entry outcomes, exactly what local `submit` returned.
        results: Vec<Result<(), ServeError>>,
    },
    /// Reply to [`Request::RunEpoch`]: the merged epoch report.
    Epoch(EpochReport),
    /// Reply to [`Request::Report`]: the snapshot, if one is published.
    Snapshot(Option<SnapshotSummary>),
    /// Reply to [`Request::Ping`].
    Pong,
    /// Reply to [`Request::Health`]: the plane's failure-state snapshot.
    Health(PlaneHealth),
    /// Reply to [`Request::Hello`]: the server's topology advertisement.
    Hello(ClusterInfo),
    /// The server is at its connection cap and is shedding this
    /// connection. Sent before closing, so a client can distinguish
    /// overload (retry later) from a crash (reconnect elsewhere).
    Busy,
    /// Request-level failure (e.g. deregistering an unknown cache).
    Error(ServeError),
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

/// Builds one frame: 4-byte length placeholder patched on `finish`.
struct FrameWriter {
    buf: Vec<u8>,
}

impl FrameWriter {
    fn new(version: u8, opcode: u8) -> Self {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&[0, 0, 0, 0]);
        buf.push(version);
        buf.push(opcode);
        FrameWriter { buf }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    fn curve(&mut self, curve: &MissCurve) {
        self.u32(curve.len() as u32);
        for p in curve.iter() {
            self.f64(p.size);
            self.f64(p.misses);
        }
    }

    fn ids(&mut self, ids: &[CacheId]) {
        self.u32(ids.len() as u32);
        for id in ids {
            self.u64(id.value());
        }
    }

    fn serve_error(&mut self, e: &ServeError) {
        match e {
            ServeError::UnknownCache(id) => {
                self.u8(1);
                self.u64(id.value());
            }
            ServeError::TenantOutOfRange {
                cache,
                tenant,
                tenants,
            } => {
                self.u8(2);
                self.u64(cache.value());
                self.u32(*tenant as u32);
                self.u32(*tenants as u32);
            }
            ServeError::Quarantined(id) => {
                self.u8(4);
                self.u64(id.value());
            }
            ServeError::Misrouted { cache, shard } => {
                self.u8(5);
                self.u64(cache.value());
                self.u32(*shard as u32);
            }
            ServeError::DuplicateCache(id) => {
                self.u8(6);
                self.u64(id.value());
            }
            ServeError::ClusterMint => self.u8(7),
            ServeError::Plan { cache, source } => {
                self.u8(3);
                self.u64(cache.value());
                match source {
                    PlanError::SizeOutOfRange { size, min, max } => {
                        self.u8(1);
                        self.f64(*size);
                        self.f64(*min);
                        self.f64(*max);
                    }
                    PlanError::InvalidSize { size } => {
                        self.u8(2);
                        self.f64(*size);
                    }
                    PlanError::InvalidMargin { margin } => {
                        self.u8(3);
                        self.f64(*margin);
                    }
                }
            }
        }
    }

    /// Encodes a full [`PlaneHealth`] body (shared by the `Health` reply
    /// and the `Hello` reply's embedded health snapshot).
    fn plane_health(&mut self, h: &PlaneHealth) {
        self.u64(h.epochs);
        self.u64(h.caches);
        self.u64(h.pending);
        self.u64(h.connections);
        self.u64(h.rejected);
        self.u8(match h.store {
            StoreHealth::None => 0,
            StoreHealth::Ok => 1,
            StoreHealth::Faulted => 2,
        });
        self.u32(h.quarantined.len() as u32);
        for id in &h.quarantined {
            self.u64(*id);
        }
        self.u32(h.shards.len() as u32);
        for s in &h.shards {
            self.u64(s.caches);
            self.u64(s.pending);
            self.u64(s.quarantined);
            self.u8(match s.state {
                ShardState::Ok => 0,
                ShardState::Degraded => 1,
            });
        }
    }

    fn finish(mut self) -> Vec<u8> {
        let len = (self.buf.len() - 4) as u32;
        debug_assert!(len <= WIRE_MAX_FRAME_LEN, "encoded frame exceeds cap");
        self.buf[..4].copy_from_slice(&len.to_le_bytes());
        self.buf
    }
}

/// Encodes a request as one complete frame (length prefix included).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut w;
    match req {
        Request::Register { capacity, tenants } => {
            w = FrameWriter::new(WIRE_VERSION, OP_REGISTER);
            w.u64(*capacity);
            w.u32(*tenants);
        }
        Request::Deregister { id } => {
            w = FrameWriter::new(WIRE_VERSION, OP_DEREGISTER);
            w.u64(*id);
        }
        Request::Submit { entries } => {
            w = FrameWriter::new(WIRE_VERSION, OP_SUBMIT);
            w.u32(entries.len() as u32);
            for e in entries {
                w.u64(e.id);
                w.u32(e.tenant);
                w.curve(&e.curve);
            }
        }
        Request::RunEpoch => w = FrameWriter::new(WIRE_VERSION, OP_RUN_EPOCH),
        Request::Report { id } => {
            w = FrameWriter::new(WIRE_VERSION, OP_REPORT);
            w.u64(*id);
        }
        Request::Ping => w = FrameWriter::new(WIRE_VERSION, OP_PING),
        Request::Health => w = FrameWriter::new(WIRE_VERSION, OP_HEALTH),
        Request::Hello => w = FrameWriter::new(WIRE_VERSION, OP_HELLO),
        Request::RegisterAt {
            id,
            capacity,
            tenants,
        } => {
            w = FrameWriter::new(WIRE_VERSION, OP_REGISTER_AT);
            w.u64(*id);
            w.u64(*capacity);
            w.u32(*tenants);
        }
    }
    w.finish()
}

/// Encodes a response as one complete frame (length prefix included).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut w;
    match resp {
        Response::Registered { id } => {
            w = FrameWriter::new(WIRE_VERSION, OP_REGISTERED);
            w.u64(*id);
        }
        Response::Deregistered => w = FrameWriter::new(WIRE_VERSION, OP_DEREGISTERED),
        Response::SubmitReply { results } => {
            w = FrameWriter::new(WIRE_VERSION, OP_SUBMIT_REPLY);
            w.u32(results.len() as u32);
            for r in results {
                match r {
                    Ok(()) => w.u8(0),
                    Err(e) => {
                        w.u8(1);
                        w.serve_error(e);
                    }
                }
            }
        }
        Response::Epoch(report) => {
            w = FrameWriter::new(WIRE_VERSION, OP_EPOCH);
            w.u64(report.epoch);
            w.ids(&report.planned);
            w.ids(&report.deferred);
            w.u32(report.failed.len() as u32);
            for (id, err) in &report.failed {
                w.u64(id.value());
                w.serve_error(err);
            }
            w.ids(&report.quarantined);
            w.u64(report.remaining_dirty as u64);
        }
        Response::Snapshot(summary) => {
            w = FrameWriter::new(WIRE_VERSION, OP_SNAPSHOT);
            match summary {
                None => w.u8(0),
                Some(s) => {
                    w.u8(1);
                    w.u64(s.cache);
                    w.u64(s.epoch);
                    w.u64(s.version);
                    w.u64(s.updates);
                    w.u64(s.round);
                    w.u32(s.tenants.len() as u32);
                    for t in &s.tenants {
                        w.u64(t.capacity);
                        w.f64(t.expected_misses);
                        match &t.shadow {
                            None => w.u8(0),
                            Some(sh) => {
                                w.u8(1);
                                w.f64(sh.alpha);
                                w.f64(sh.beta);
                                w.f64(sh.rho);
                            }
                        }
                    }
                }
            }
        }
        Response::Pong => w = FrameWriter::new(WIRE_VERSION, OP_PONG),
        Response::Health(h) => {
            w = FrameWriter::new(WIRE_VERSION, OP_HEALTH_REPLY);
            w.plane_health(h);
        }
        Response::Hello(info) => {
            w = FrameWriter::new(WIRE_VERSION, OP_HELLO_REPLY);
            w.u32(info.total_shards);
            w.u32(info.first_shard);
            w.u32(info.shard_count);
            w.u64(info.epoch);
            w.u64(info.next_id);
            w.plane_health(&info.health);
        }
        Response::Busy => w = FrameWriter::new(WIRE_VERSION, OP_BUSY),
        Response::Error(e) => {
            w = FrameWriter::new(WIRE_VERSION, OP_ERROR);
            w.serve_error(e);
        }
    }
    w.finish()
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// A bounds-checked cursor over one frame payload. Every read method
/// fails with [`WireError::Truncated`] instead of slicing out of range.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let bytes = self.take(4)?.try_into().map_err(|_| WireError::Truncated)?;
        Ok(u32::from_le_bytes(bytes))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let bytes = self.take(8)?.try_into().map_err(|_| WireError::Truncated)?;
        Ok(u64::from_le_bytes(bytes))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads an element count, rejecting it if it exceeds `cap` or if
    /// the frame cannot possibly hold `count` elements of at least
    /// `min_elem_bytes` each — checked *before* any allocation, so a
    /// hostile count never reserves memory.
    fn count(&mut self, cap: u32, min_elem_bytes: usize) -> Result<usize, WireError> {
        let count = self.u32()?;
        if count > cap {
            return Err(WireError::BadCount { count, max: cap });
        }
        if (count as usize).saturating_mul(min_elem_bytes) > self.remaining() {
            return Err(WireError::Truncated);
        }
        Ok(count as usize)
    }

    fn curve(&mut self) -> Result<MissCurve, WireError> {
        let points = self.count(WIRE_MAX_CURVE_POINTS, 16)?;
        if points == 0 {
            return Err(WireError::Curve(CurveError::Empty));
        }
        let mut sizes = Vec::with_capacity(points);
        let mut misses = Vec::with_capacity(points);
        for _ in 0..points {
            sizes.push(self.f64()?);
            misses.push(self.f64()?);
        }
        MissCurve::from_samples(&sizes, &misses).map_err(WireError::Curve)
    }

    fn ids(&mut self) -> Result<Vec<CacheId>, WireError> {
        let count = self.count(WIRE_MAX_IDS, 8)?;
        let mut ids = Vec::with_capacity(count);
        for _ in 0..count {
            ids.push(CacheId(self.u64()?));
        }
        Ok(ids)
    }

    fn serve_error(&mut self) -> Result<ServeError, WireError> {
        match self.u8()? {
            1 => Ok(ServeError::UnknownCache(CacheId(self.u64()?))),
            4 => Ok(ServeError::Quarantined(CacheId(self.u64()?))),
            5 => Ok(ServeError::Misrouted {
                cache: CacheId(self.u64()?),
                shard: self.u32()? as usize,
            }),
            6 => Ok(ServeError::DuplicateCache(CacheId(self.u64()?))),
            7 => Ok(ServeError::ClusterMint),
            2 => Ok(ServeError::TenantOutOfRange {
                cache: CacheId(self.u64()?),
                tenant: self.u32()? as usize,
                tenants: self.u32()? as usize,
            }),
            3 => {
                let cache = CacheId(self.u64()?);
                let source = match self.u8()? {
                    1 => PlanError::SizeOutOfRange {
                        size: self.f64()?,
                        min: self.f64()?,
                        max: self.f64()?,
                    },
                    2 => PlanError::InvalidSize { size: self.f64()? },
                    3 => PlanError::InvalidMargin {
                        margin: self.f64()?,
                    },
                    _ => return Err(WireError::Malformed("unknown plan-error tag")),
                };
                Ok(ServeError::Plan { cache, source })
            }
            _ => Err(WireError::Malformed("unknown serve-error tag")),
        }
    }

    /// Decodes a full [`PlaneHealth`] body (shared by the `Health` reply
    /// and the `Hello` reply's embedded health snapshot).
    fn plane_health(&mut self) -> Result<PlaneHealth, WireError> {
        let epochs = self.u64()?;
        let caches = self.u64()?;
        let pending = self.u64()?;
        let connections = self.u64()?;
        let rejected = self.u64()?;
        let store = match self.u8()? {
            0 => StoreHealth::None,
            1 => StoreHealth::Ok,
            2 => StoreHealth::Faulted,
            _ => return Err(WireError::Malformed("unknown store-health tag")),
        };
        let quarantined_count = self.count(WIRE_MAX_IDS, 8)?;
        let mut quarantined = Vec::with_capacity(quarantined_count);
        for _ in 0..quarantined_count {
            quarantined.push(self.u64()?);
        }
        let shard_count = self.count(WIRE_MAX_SHARDS, 8 + 8 + 8 + 1)?;
        let mut shards = Vec::with_capacity(shard_count);
        for _ in 0..shard_count {
            let caches = self.u64()?;
            let pending = self.u64()?;
            let quarantined = self.u64()?;
            let state = match self.u8()? {
                0 => ShardState::Ok,
                1 => ShardState::Degraded,
                _ => return Err(WireError::Malformed("unknown shard-state tag")),
            };
            shards.push(ShardHealth {
                caches,
                pending,
                quarantined,
                state,
            });
        }
        Ok(PlaneHealth {
            epochs,
            caches,
            pending,
            quarantined,
            shards,
            store,
            connections,
            rejected,
        })
    }

    /// Asserts the body was fully consumed: accepted frames account for
    /// every byte.
    fn end(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::Malformed("trailing bytes after message"));
        }
        Ok(())
    }
}

/// Splits a frame payload into `(opcode, body)`, validating the version.
fn frame_parts(payload: &[u8]) -> Result<(u8, &[u8]), WireError> {
    if payload.len() < 2 {
        return Err(WireError::Truncated);
    }
    if payload[0] != WIRE_VERSION {
        return Err(WireError::BadVersion { got: payload[0] });
    }
    Ok((payload[1], &payload[2..]))
}

/// Decodes a request from a frame payload (version byte onward, without
/// the length prefix). Total: returns a typed error on any input.
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    let (opcode, body) = frame_parts(payload)?;
    let mut r = Reader::new(body);
    let req = match opcode {
        OP_REGISTER => {
            let capacity = r.u64()?;
            let tenants = r.u32()?;
            if capacity == 0 {
                return Err(WireError::Malformed("zero capacity"));
            }
            if tenants == 0 {
                return Err(WireError::Malformed("zero tenants"));
            }
            if tenants > WIRE_MAX_TENANTS {
                return Err(WireError::BadCount {
                    count: tenants,
                    max: WIRE_MAX_TENANTS,
                });
            }
            Request::Register { capacity, tenants }
        }
        OP_DEREGISTER => Request::Deregister { id: r.u64()? },
        OP_SUBMIT => {
            // Each entry is at least id + tenant + point count + 1 point.
            let count = r.count(WIRE_MAX_BATCH, 8 + 4 + 4 + 16)?;
            if count == 0 {
                return Err(WireError::Malformed("empty submit batch"));
            }
            let mut entries = Vec::with_capacity(count);
            for _ in 0..count {
                entries.push(SubmitEntry {
                    id: r.u64()?,
                    tenant: r.u32()?,
                    curve: r.curve()?,
                });
            }
            Request::Submit { entries }
        }
        OP_RUN_EPOCH => Request::RunEpoch,
        OP_REPORT => Request::Report { id: r.u64()? },
        OP_PING => Request::Ping,
        OP_HEALTH => Request::Health,
        OP_HELLO => Request::Hello,
        OP_REGISTER_AT => {
            let id = r.u64()?;
            let capacity = r.u64()?;
            let tenants = r.u32()?;
            if capacity == 0 {
                return Err(WireError::Malformed("zero capacity"));
            }
            if tenants == 0 {
                return Err(WireError::Malformed("zero tenants"));
            }
            if tenants > WIRE_MAX_TENANTS {
                return Err(WireError::BadCount {
                    count: tenants,
                    max: WIRE_MAX_TENANTS,
                });
            }
            Request::RegisterAt {
                id,
                capacity,
                tenants,
            }
        }
        got => return Err(WireError::BadOpcode { got }),
    };
    r.end()?;
    Ok(req)
}

/// Decodes a response from a frame payload (version byte onward, without
/// the length prefix). Total: returns a typed error on any input.
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    let (opcode, body) = frame_parts(payload)?;
    let mut r = Reader::new(body);
    let resp = match opcode {
        OP_REGISTERED => Response::Registered { id: r.u64()? },
        OP_DEREGISTERED => Response::Deregistered,
        OP_SUBMIT_REPLY => {
            let count = r.count(WIRE_MAX_BATCH, 1)?;
            let mut results = Vec::with_capacity(count);
            for _ in 0..count {
                results.push(match r.u8()? {
                    0 => Ok(()),
                    1 => Err(r.serve_error()?),
                    _ => return Err(WireError::Malformed("unknown submit-result tag")),
                });
            }
            Response::SubmitReply { results }
        }
        OP_EPOCH => {
            let epoch = r.u64()?;
            let planned = r.ids()?;
            let deferred = r.ids()?;
            let failures = r.count(WIRE_MAX_IDS, 9)?;
            let mut failed = Vec::with_capacity(failures);
            for _ in 0..failures {
                failed.push((CacheId(r.u64()?), r.serve_error()?));
            }
            let quarantined = r.ids()?;
            let remaining_dirty = r.u64()? as usize;
            Response::Epoch(EpochReport {
                epoch,
                planned,
                deferred,
                failed,
                quarantined,
                remaining_dirty,
            })
        }
        OP_SNAPSHOT => match r.u8()? {
            0 => Response::Snapshot(None),
            1 => {
                let cache = r.u64()?;
                let epoch = r.u64()?;
                let version = r.u64()?;
                let updates = r.u64()?;
                let round = r.u64()?;
                let count = r.count(WIRE_MAX_TENANTS, 8 + 8 + 1)?;
                let mut tenants = Vec::with_capacity(count);
                for _ in 0..count {
                    let capacity = r.u64()?;
                    let expected_misses = r.f64()?;
                    let shadow = match r.u8()? {
                        0 => None,
                        1 => Some(ShadowSummary {
                            alpha: r.f64()?,
                            beta: r.f64()?,
                            rho: r.f64()?,
                        }),
                        _ => return Err(WireError::Malformed("unknown shadow tag")),
                    };
                    tenants.push(TenantSummary {
                        capacity,
                        expected_misses,
                        shadow,
                    });
                }
                Response::Snapshot(Some(SnapshotSummary {
                    cache,
                    epoch,
                    version,
                    updates,
                    round,
                    tenants,
                }))
            }
            _ => return Err(WireError::Malformed("unknown snapshot tag")),
        },
        OP_PONG => Response::Pong,
        OP_HEALTH_REPLY => Response::Health(r.plane_health()?),
        OP_HELLO_REPLY => {
            let total_shards = r.u32()?;
            let first_shard = r.u32()?;
            let shard_count = r.u32()?;
            if total_shards == 0 || total_shards > WIRE_MAX_SHARDS {
                return Err(WireError::BadCount {
                    count: total_shards,
                    max: WIRE_MAX_SHARDS,
                });
            }
            if shard_count == 0 {
                return Err(WireError::Malformed("empty shard range"));
            }
            let end = first_shard
                .checked_add(shard_count)
                .ok_or(WireError::Malformed("shard range overflows"))?;
            if end > total_shards {
                return Err(WireError::Malformed("shard range exceeds total"));
            }
            let epoch = r.u64()?;
            let next_id = r.u64()?;
            let health = r.plane_health()?;
            Response::Hello(ClusterInfo {
                total_shards,
                first_shard,
                shard_count,
                epoch,
                next_id,
                health,
            })
        }
        OP_BUSY => Response::Busy,
        OP_ERROR => Response::Error(r.serve_error()?),
        got => return Err(WireError::BadOpcode { got }),
    };
    r.end()?;
    Ok(resp)
}

// ---------------------------------------------------------------------
// Framed stream I/O
// ---------------------------------------------------------------------

/// Reads one frame payload (version byte onward) from a stream.
///
/// Returns `Ok(None)` on a clean end-of-stream at a frame boundary. The
/// length prefix is validated against [`WIRE_MAX_FRAME_LEN`] *before*
/// the payload buffer is allocated, so a hostile length field costs
/// nothing; end-of-stream mid-frame surfaces as
/// [`WireError::Truncated`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, WireError> {
    let mut len_bytes = [0u8; 4];
    // A clean EOF before any length byte means the peer closed between
    // frames; EOF after at least one byte is a truncated frame.
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_bytes[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(WireError::Truncated),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > WIRE_MAX_FRAME_LEN {
        return Err(WireError::Oversized { len });
    }
    if len < 2 {
        return Err(WireError::Malformed("frame shorter than its header"));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> MissCurve {
        MissCurve::from_samples(&[0.0, 256.0, 512.0], &[8.0, 4.0, 1.0]).unwrap()
    }

    #[test]
    fn frame_layout_is_len_version_opcode() {
        let bytes = encode_request(&Request::Ping);
        assert_eq!(bytes.len(), 6);
        assert_eq!(u32::from_le_bytes(bytes[..4].try_into().unwrap()), 2);
        assert_eq!(bytes[4], WIRE_VERSION);
        assert_eq!(bytes[5], OP_PING);
    }

    #[test]
    fn stream_roundtrip_preserves_messages() {
        let reqs = [
            Request::Register {
                capacity: 1024,
                tenants: 3,
            },
            Request::Submit {
                entries: vec![SubmitEntry {
                    id: 7,
                    tenant: 2,
                    curve: curve(),
                }],
            },
            Request::RunEpoch,
        ];
        let mut stream = Vec::new();
        for req in &reqs {
            stream.extend_from_slice(&encode_request(req));
        }
        let mut r = &stream[..];
        for req in &reqs {
            let payload = read_frame(&mut r).unwrap().expect("frame present");
            assert_eq!(&decode_request(&payload).unwrap(), req);
        }
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_prefix_rejected_before_reading_payload() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(WIRE_MAX_FRAME_LEN + 1).to_le_bytes());
        bytes.extend_from_slice(&[0u8; 8]);
        let mut r = &bytes[..];
        assert_eq!(
            read_frame(&mut r),
            Err(WireError::Oversized {
                len: WIRE_MAX_FRAME_LEN + 1
            })
        );
    }

    #[test]
    fn hostile_counts_never_reserve_memory() {
        // A submit frame declaring u32::MAX entries in a 10-byte body must
        // fail the count check (remaining-bytes bound), not allocate.
        let mut w = FrameWriter::new(WIRE_VERSION, OP_SUBMIT);
        w.u32(u32::MAX);
        let frame = w.finish();
        assert_eq!(
            decode_request(&frame[4..]),
            Err(WireError::BadCount {
                count: u32::MAX,
                max: WIRE_MAX_BATCH
            })
        );
        // Within the cap but beyond the body: truncation, pre-allocation.
        let mut w = FrameWriter::new(WIRE_VERSION, OP_SUBMIT);
        w.u32(WIRE_MAX_BATCH);
        let frame = w.finish();
        assert_eq!(decode_request(&frame[4..]), Err(WireError::Truncated));
    }

    #[test]
    fn submit_reply_roundtrips_every_error_variant() {
        let resp = Response::SubmitReply {
            results: vec![
                Ok(()),
                Err(ServeError::UnknownCache(CacheId(9))),
                Err(ServeError::TenantOutOfRange {
                    cache: CacheId(3),
                    tenant: 7,
                    tenants: 4,
                }),
                Err(ServeError::Plan {
                    cache: CacheId(5),
                    source: PlanError::SizeOutOfRange {
                        size: 1.5,
                        min: 2.0,
                        max: 8.0,
                    },
                }),
                Err(ServeError::Misrouted {
                    cache: CacheId(11),
                    shard: 3,
                }),
                Err(ServeError::DuplicateCache(CacheId(6))),
                Err(ServeError::ClusterMint),
            ],
        };
        let bytes = encode_response(&resp);
        assert_eq!(decode_response(&bytes[4..]).unwrap(), resp);
    }

    #[test]
    fn hello_roundtrips_and_validates_topology() {
        let req = encode_request(&Request::Hello);
        assert_eq!(decode_request(&req[4..]).unwrap(), Request::Hello);
        let info = ClusterInfo {
            total_shards: 6,
            first_shard: 2,
            shard_count: 2,
            epoch: 41,
            next_id: 17,
            health: PlaneHealth {
                epochs: 41,
                caches: 5,
                pending: 1,
                quarantined: vec![9],
                shards: vec![
                    ShardHealth {
                        caches: 3,
                        pending: 1,
                        quarantined: 1,
                        state: ShardState::Ok,
                    },
                    ShardHealth {
                        caches: 2,
                        pending: 0,
                        quarantined: 0,
                        state: ShardState::Degraded,
                    },
                ],
                store: StoreHealth::Ok,
                connections: 2,
                rejected: 0,
            },
        };
        let resp = Response::Hello(info);
        let bytes = encode_response(&resp);
        assert_eq!(decode_response(&bytes[4..]).unwrap(), resp);

        // A reply whose range overhangs the total is rejected typed.
        let bad = Response::Hello(ClusterInfo {
            total_shards: 4,
            first_shard: 3,
            shard_count: 2,
            ..match decode_response(&bytes[4..]).unwrap() {
                Response::Hello(i) => i,
                _ => unreachable!(),
            }
        });
        let bad_bytes = encode_response(&bad);
        assert_eq!(
            decode_response(&bad_bytes[4..]),
            Err(WireError::Malformed("shard range exceeds total"))
        );
    }

    #[test]
    fn register_at_roundtrips_and_validates_like_register() {
        let req = Request::RegisterAt {
            id: 42,
            capacity: 4096,
            tenants: 3,
        };
        let bytes = encode_request(&req);
        assert_eq!(decode_request(&bytes[4..]).unwrap(), req);

        let zero_cap = Request::RegisterAt {
            id: 42,
            capacity: 0,
            tenants: 3,
        };
        assert_eq!(
            decode_request(&encode_request(&zero_cap)[4..]),
            Err(WireError::Malformed("zero capacity"))
        );
        let too_many = Request::RegisterAt {
            id: 42,
            capacity: 64,
            tenants: WIRE_MAX_TENANTS + 1,
        };
        assert_eq!(
            decode_request(&encode_request(&too_many)[4..]),
            Err(WireError::BadCount {
                count: WIRE_MAX_TENANTS + 1,
                max: WIRE_MAX_TENANTS
            })
        );
    }

    #[test]
    fn wire_errors_display_and_source() {
        let e = WireError::Curve(CurveError::Empty);
        assert!(!e.to_string().is_empty());
        assert!(std::error::Error::source(&e).is_some());
        for e in [
            WireError::Truncated,
            WireError::Oversized { len: 1 << 30 },
            WireError::BadVersion { got: 9 },
            WireError::BadOpcode { got: 0x7F },
            WireError::BadCount { count: 5, max: 4 },
            WireError::Malformed("x"),
            WireError::Io(std::io::ErrorKind::ConnectionReset),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
