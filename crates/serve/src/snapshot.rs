//! Published plan state: immutable, versioned snapshots.

use std::fmt;
use talus_partition::CachePlan;

/// Opaque handle for a registered logical cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheId(pub(crate) u64);

impl CacheId {
    /// The raw id (stable for the lifetime of the service; ids are never
    /// reused after deregistration).
    pub fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for CacheId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cache#{}", self.0)
    }
}

/// One published plan for one logical cache — the unit readers consume.
///
/// Snapshots are immutable and shared via `Arc`: the planner never mutates
/// a published snapshot, it swaps in a new one. A configuration applier
/// can therefore hold a snapshot across an arbitrary window without
/// locking the service.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanSnapshot {
    /// The cache this plan configures.
    pub cache: CacheId,
    /// The service epoch that produced the plan (global, monotone).
    pub epoch: u64,
    /// Per-cache plan version (1 for the first published plan; bumps on
    /// every successful replan). Appliers use this to detect staleness.
    pub version: u64,
    /// Curve updates folded into this plan since registration — lets an
    /// applier see how fresh the inputs were.
    pub updates: u64,
    /// The per-tenant allocations and Talus shadow configurations.
    pub plan: CachePlan,
}

impl PlanSnapshot {
    /// Convenience: per-tenant allocated sizes in lines.
    pub fn allocations(&self) -> Vec<u64> {
        self.plan.allocations()
    }
}
