//! Replay a multi-tenant workload through the reconfiguration plane —
//! both configurations of it.
//!
//! Two logical caches — one shared by three SPEC-shaped tenants, one by
//! two — stream monitor-measured miss curves into a single-shard
//! `ReconfigService`, a 2-shard, threaded `ShardedReconfigService`,
//! **and** a third sharded plane reached only through `RpcClient` →
//! `RpcServer` over a real loopback TCP socket, over several monitoring
//! intervals. After each interval all three run one epoch, and we check
//! every published snapshot against a from-scratch offline computation
//! (talus-core hulls + talus-partition hill climbing + shadow planning)
//! on the very same curves — and the sharded and RPC-fed planes against
//! the single service, bit for bit: neither the router nor the wire adds
//! policy.
//!
//! A fourth twin journals everything into a `talus-store` directory and
//! is killed (dropped) after the first interval; a fresh plane
//! warm-restarts from the journal and plays the remaining intervals.
//! Its epochs and snapshots must keep matching the uninterrupted planes
//! bit for bit: the crash adds nothing either.
//!
//! A fifth plane is fed no measurements at all: every tenant's curve
//! comes from `AnalyticCurveSource`, synthesised directly from the same
//! profile specs the generators run. Its plans can't be bit-identical to
//! the monitored ones (the curves are models, not measurements), so it
//! is cross-checked for plan *shape* instead — every snapshot published
//! with a nonzero carve-up inside capacity, planned exactly once (its
//! curves are static and bit-identical resubmission is a no-op), stable
//! across intervals, and each tenant's allocation within a small band of
//! the monitored plane's — the paper's monitor-agnostic claim made
//! executable.
//!
//! Curves come from exact Mattson monitors (the checks are bit-exact, so
//! determinism matters more than speed here); ingest still rides the
//! batched path — `MonitorSource` feeds every monitor through
//! `Monitor::record_block`. The `talus-serve` driver binary shows the
//! production-shaped configuration: the same source over the SHARDS-style
//! `SampledMattson`, sharded and threaded.
//!
//! ```text
//! cargo run -p talus-serve --example replay
//! ```

use std::collections::HashMap;

use talus_core::{plan_with_hull, MissCurve, TalusOptions};
use talus_partition::hill_climb;
use talus_serve::{
    CacheId, CacheSpec, ReconfigService, RpcClient, RpcServer, ShardedReconfigService,
};
use talus_sim::monitor::{MattsonMonitor, MonitorSource};
use talus_sim::LineAddr;
use talus_store::{Store, StoreSink};
use talus_workloads::{profile, AccessGenerator, AnalyticCurveSource};

/// Shrink every profile footprint by this factor (keeps the replay fast
/// while preserving curve shapes).
const SCALE: f64 = 1.0 / 256.0;
/// Accesses per monitoring interval per tenant.
const INTERVAL: u64 = 50_000;
/// Warmup accesses per tenant before the first interval.
const WARMUP: u64 = 25_000;
/// Monitoring intervals to replay.
const INTERVALS: usize = 3;
/// Shards in the sharded twin of the service.
const SHARDS: usize = 2;

type Source = MonitorSource<MattsonMonitor, Box<dyn FnMut() -> LineAddr>>;

/// A warmed-up Mattson-backed curve source for one named profile.
fn tenant_source(name: &str, cap_lines: u64, seed: u64) -> Source {
    let app = profile(name)
        .unwrap_or_else(|| panic!("unknown profile {name}"))
        .scaled(SCALE);
    let mut gen = app.generator(seed, 0);
    let mut source: Source = MonitorSource::new(
        MattsonMonitor::new(2 * cap_lines),
        INTERVAL,
        Box::new(move || gen.next_line()),
    );
    source.warm_up(WARMUP);
    source
}

/// Recomputes a cache's plan offline — raw talus-core + talus-partition,
/// no service involved — and checks it equals the published snapshot.
fn assert_matches_offline(
    service: &ReconfigService,
    cache: CacheId,
    capacity: u64,
    curves: &[MissCurve],
) {
    let snap = service.snapshot(cache).expect("cache has a published plan");
    let grain = (capacity / 64).max(1);
    let hulls: Vec<MissCurve> = curves.iter().map(|c| c.convex_hull().to_curve()).collect();
    let sizes = hill_climb(&hulls, capacity, grain);
    assert_eq!(
        snap.allocations(),
        sizes,
        "{cache}: served allocation diverges from offline hill climb"
    );
    for (tenant, (curve, &size)) in curves.iter().zip(&sizes).enumerate() {
        let offline = plan_with_hull(&curve.convex_hull(), size as f64, TalusOptions::new())
            .expect("offline planning succeeds on monitor curves");
        assert_eq!(
            snap.plan.tenants[tenant].plan, offline,
            "{cache} tenant {tenant}: served shadow config diverges from offline plan"
        );
    }
}

fn main() {
    let service = ReconfigService::new();
    let sharded = ShardedReconfigService::new(SHARDS).with_threads();

    // The fifth plane never sees a measurement: its curves are
    // synthesised from the profile specs alone.
    let analytic_plane = ReconfigService::new();

    // The third twin sits behind a real loopback socket; everything it
    // ingests crosses the v1 wire protocol.
    let remote = std::sync::Arc::new(ShardedReconfigService::new(SHARDS));
    let rpc = RpcServer::bind("127.0.0.1:0", std::sync::Arc::clone(&remote))
        .expect("bind loopback")
        .spawn()
        .expect("spawn accept loop");
    let mut client = RpcClient::connect(rpc.local_addr()).expect("connect");

    // The fourth twin journals every event; it dies after interval 0 and
    // a warm restart must put it right back in the equivalence chorus.
    let journal_dir =
        std::env::temp_dir().join(format!("talus-replay-journal-{}", std::process::id()));
    std::fs::remove_dir_all(&journal_dir).ok();
    let mut journal: Option<std::sync::Arc<Store>> = Some(std::sync::Arc::new(
        Store::open(&journal_dir, SHARDS).expect("open journal"),
    ));
    let mut journaled = Some(
        ShardedReconfigService::new(SHARDS).with_sink(std::sync::Arc::clone(
            journal.as_ref().expect("just opened"),
        ) as std::sync::Arc<dyn StoreSink>),
    );

    // Cache A: three tenants with very different curve shapes (a scan
    // cliff, a gentle convex decay, a mid-size working set) share 4096
    // lines. Cache B: two tenants share 2048 lines. Both services
    // register in the same order, so their CacheIds coincide.
    let mut caches: Vec<(CacheId, u64, Vec<&str>)> = Vec::new();
    for (capacity, tenants) in [
        (4096u64, vec!["libquantum", "omnetpp", "xalancbmk"]),
        (2048, vec!["milc", "mcf"]),
    ] {
        let id = service.register(CacheSpec::new(capacity, tenants.len()));
        let twin = sharded.register(CacheSpec::new(capacity, tenants.len()));
        assert_eq!(id, twin, "id allocation matches across configurations");
        let wire_twin = client
            .register(capacity, tenants.len() as u32)
            .expect("register over rpc");
        assert_eq!(id, wire_twin, "the rpc plane mints the same ids");
        let stored_twin = journaled
            .as_ref()
            .expect("alive before the kill")
            .register(CacheSpec::new(capacity, tenants.len()));
        assert_eq!(id, stored_twin, "the journaled plane mints the same ids");
        let analytic_twin = analytic_plane.register(CacheSpec::new(capacity, tenants.len()));
        assert_eq!(id, analytic_twin, "the analytic plane mints the same ids");
        caches.push((id, capacity, tenants));
    }

    // One analytic source per tenant, built from the same named specs the
    // generators run — no warmup, no accesses, no monitor.
    let mut analytic_sources: HashMap<(u64, usize), AnalyticCurveSource> = HashMap::new();
    for (id, capacity, tenants) in &caches {
        for (t, name) in tenants.iter().enumerate() {
            let app = profile(name)
                .unwrap_or_else(|| panic!("unknown profile {name}"))
                .scaled(SCALE);
            analytic_sources.insert(
                (id.value(), t),
                AnalyticCurveSource::from_profile(&app, 2 * capacity),
            );
        }
    }
    let mut analytic_allocs: HashMap<u64, Vec<u64>> = HashMap::new();

    // What the journal is *obliged* to hold: one record per submission
    // that actually changed a tenant's curve. Bit-identical resubmission
    // is a no-op by contract (no journal append), and a deterministic
    // scan like libquantum measures the same curve every interval.
    let mut last_submitted: HashMap<(u64, usize), MissCurve> = HashMap::new();
    let mut expected_journal: HashMap<u64, usize> = HashMap::new();

    let mut sources: HashMap<(u64, usize), Source> = HashMap::new();
    for (id, capacity, tenants) in &caches {
        for (t, name) in tenants.iter().enumerate() {
            sources.insert(
                (id.value(), t),
                tenant_source(name, *capacity, 42 + t as u64),
            );
        }
    }

    let mut published_epochs = 0u64;
    for interval in 0..INTERVALS {
        // Producers: one curve update per tenant per interval, fed to
        // both configurations.
        let mut latest: HashMap<u64, Vec<MissCurve>> = HashMap::new();
        for (id, _, tenants) in &caches {
            let mut curves = Vec::new();
            for t in 0..tenants.len() {
                let source = sources.get_mut(&(id.value(), t)).expect("registered");
                let curve = talus_core::CurveSource::next_curve(source)
                    .expect("monitor sources never exhaust");
                service
                    .submit(*id, t, curve.clone())
                    .expect("cache is registered and tenant in range");
                sharded
                    .submit(*id, t, curve.clone())
                    .expect("cache is registered and tenant in range");
                client
                    .stage(*id, t, curve.clone())
                    .expect("staging never hits the wire until flush");
                journaled
                    .as_ref()
                    .expect("restored before this interval")
                    .submit(*id, t, curve.clone())
                    .expect("cache is registered and tenant in range");
                if last_submitted.get(&(id.value(), t)) != Some(&curve) {
                    *expected_journal.entry(id.value()).or_default() += 1;
                    last_submitted.insert((id.value(), t), curve.clone());
                }
                // The analytic plane ingests through the same seam, but
                // its source replays a spec-derived model curve.
                let analytic_source = analytic_sources
                    .get_mut(&(id.value(), t))
                    .expect("registered");
                analytic_plane
                    .submit_from(*id, t, analytic_source)
                    .expect("cache is registered and tenant in range");
                curves.push(curve);
            }
            latest.insert(id.value(), curves);
        }

        // The planner: one epoch batches every dirty cache (per shard, on
        // worker threads, in the sharded twin).
        let report = service.run_epoch();
        let sharded_report = sharded.run_epoch();
        // run_epoch flushes the staged batch first, so every curve above
        // is visible; the report must be bit-identical to the local ones.
        let rpc_report = client.run_epoch().expect("epoch over rpc");
        assert_eq!(
            rpc_report, sharded_report,
            "the rpc-fed plane reports a different epoch"
        );
        let journaled_report = journaled
            .as_ref()
            .expect("restored before this interval")
            .run_epoch();
        assert_eq!(
            journaled_report, sharded_report,
            "the journaled plane reports a different epoch (interval {interval})"
        );
        // The analytic curves never change, and a bit-identical
        // resubmission is a no-op by contract — so the analytic plane has
        // work exactly once, and its first plan stands for the whole run.
        let analytic_report = analytic_plane.run_epoch();
        assert_eq!(
            analytic_report.planned.len(),
            if interval == 0 { caches.len() } else { 0 },
            "static analytic curves plan once, then resubmissions are no-ops"
        );
        println!(
            "interval {interval}: epoch {} planned {} cache(s), {} deferred, {} failed \
             (sharded twin planned {})",
            report.epoch,
            report.planned.len(),
            report.deferred.len(),
            report.failed.len(),
            sharded_report.planned.len(),
        );
        assert_eq!(report.planned.len(), caches.len());
        assert_eq!(
            report.planned, sharded_report.planned,
            "both configurations plan the same caches, in CacheId order"
        );
        published_epochs += 1;

        // Readers: snapshots must equal the offline planner's output, and
        // the sharded plane's snapshots must equal the single service's.
        for (id, capacity, _) in &caches {
            assert_matches_offline(&service, *id, *capacity, &latest[&id.value()]);
            let snap = service.snapshot(*id).expect("published");
            let sharded_snap = sharded.snapshot(*id).expect("published");
            assert_eq!(
                snap.plan, sharded_snap.plan,
                "{id}: sharded plan diverges from single-service plan"
            );
            assert_eq!(snap.version, sharded_snap.version);
            assert_eq!(snap.updates, sharded_snap.updates);
            // The RPC-fed plane: bit-identical server-side, and the wire
            // summary a remote applier reads must mirror that snapshot.
            let rpc_snap = remote.snapshot(*id).expect("published");
            assert_eq!(
                snap.plan, rpc_snap.plan,
                "{id}: rpc-fed plan diverges from single-service plan"
            );
            assert_eq!(snap.version, rpc_snap.version);
            let summary = client
                .report(*id)
                .expect("report over rpc")
                .expect("published");
            assert_eq!(summary.version, rpc_snap.version);
            let wire_allocs: Vec<u64> = summary.tenants.iter().map(|t| t.capacity).collect();
            assert_eq!(wire_allocs, rpc_snap.allocations());
            println!(
                "  {id} [shard {}]: version {} (epoch {}, {} updates) allocations {:?}",
                sharded.shard_index(*id),
                snap.version,
                snap.epoch,
                snap.updates,
                snap.allocations()
            );
            for (t, tenant) in snap.plan.tenants.iter().enumerate() {
                match tenant.plan.shadow() {
                    Some(cfg) => println!(
                        "    tenant {t}: {} lines, shadow α={:.0} β={:.0} ρ={:.3}",
                        tenant.capacity, cfg.alpha, cfg.beta, cfg.rho
                    ),
                    None => println!("    tenant {t}: {} lines, unpartitioned", tenant.capacity),
                }
            }
            let journaled_snap = journaled
                .as_ref()
                .expect("restored before this interval")
                .snapshot(*id)
                .expect("published");
            assert_eq!(
                snap.plan, journaled_snap.plan,
                "{id}: journaled plan diverges from single-service plan"
            );
            assert_eq!(snap.version, journaled_snap.version);

            // The analytic plane's plan-shape sanity: published and still
            // at version 1 (static curves → one plan), the right arity, a
            // nonzero carve-up inside capacity — and stable.
            let analytic_snap = analytic_plane
                .snapshot(*id)
                .expect("analytic plan published");
            assert_eq!(analytic_snap.version, 1, "{id}: one plan, standing");
            let allocs = analytic_snap.allocations();
            assert_eq!(allocs.len(), snap.allocations().len(), "{id}: arity");
            let total: u64 = allocs.iter().sum();
            assert!(
                total > 0 && total <= *capacity,
                "{id}: analytic carve-up {total} outside (0, {capacity}]"
            );
            match analytic_allocs.entry(id.value()) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(allocs);
                }
                std::collections::hash_map::Entry::Occupied(e) => assert_eq!(
                    e.get(),
                    &allocs,
                    "{id}: static analytic curves must yield a stable plan"
                ),
            }
        }

        // The kill: after the first interval the journaled plane dies —
        // dropped with its store handle — and a fresh plane warm-restarts
        // from the bytes on disk. Its very next epoch (interval 1) must
        // match the uninterrupted planes, proven by the asserts above.
        if interval == 0 {
            drop(journaled.take());
            drop(journal.take());
            let store =
                std::sync::Arc::new(Store::open(&journal_dir, SHARDS).expect("reopen journal"));
            let plane = ShardedReconfigService::new(SHARDS);
            let summary = plane.restore(&store).expect("warm restart");
            println!(
                "  journaled twin killed; warm restart replayed {} records \
                 ({} caches, {} snapshots, epoch {})",
                summary.records, summary.caches, summary.snapshots, summary.epochs
            );
            assert_eq!(summary.caches, caches.len());
            assert_eq!(summary.epochs, published_epochs);
            journal = Some(std::sync::Arc::clone(&store));
            journaled = Some(plane.with_sink(store as std::sync::Arc<dyn StoreSink>));
        }
    }

    // Every curve-*changing* submission to the journaled twin is on disk
    // — including the pre-kill interval — queryable per cache. (No-op
    // resubmissions of a bit-identical curve are deliberately absent.)
    let store = journal.expect("journal survives the run");
    for (id, _, tenants) in &caches {
        let history = store.history(id.value()).expect("history reads");
        assert_eq!(
            history.len(),
            expected_journal[&id.value()],
            "{id}: journal holds every distinct submitted curve across the crash"
        );
        assert!(
            history.len() >= tenants.len(),
            "{id}: every tenant journaled at least once"
        );
    }
    std::fs::remove_dir_all(&journal_dir).ok();

    // The monitor-agnostic cross-check: the analytic plane, planning on
    // spec-derived models alone, lands each tenant's allocation within a
    // small band of what the monitored planes chose from measurements.
    for (id, capacity, _) in &caches {
        let measured = service.snapshot(*id).expect("published").allocations();
        let modelled = &analytic_allocs[&id.value()];
        let band = capacity / 16;
        for (t, (&m, &a)) in measured.iter().zip(modelled).enumerate() {
            assert!(
                m.abs_diff(a) <= band,
                "{id} tenant {t}: analytic allocation {a} strays more than {band} lines \
                 from the monitored {m}"
            );
        }
        println!(
            "{id}: analytic allocations {modelled:?} vs monitored {measured:?} \
             (within {band} lines/tenant)"
        );
    }

    assert!(
        published_epochs >= 2,
        "replay must publish at least two plan epochs"
    );
    println!(
        "OK: {published_epochs} plan epochs published for {} caches; every snapshot matches the \
         offline planner, and the {SHARDS}-shard threaded plane, the rpc-fed loopback plane, and \
         the journaled plane killed and warm-restarted after interval 0 all match the single \
         service bit for bit.",
        caches.len()
    );
    rpc.shutdown();
}
