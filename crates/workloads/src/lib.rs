//! # talus-workloads — synthetic workloads for the Talus reproduction
//!
//! The paper evaluates on SPEC CPU2006 under zsim. This crate supplies the
//! substitute: composable access-stream [`generator`]s (scans, uniform and
//! Zipfian reuse, mixtures, phases) and a roster of named [`spec`] profiles
//! whose LRU miss curves reproduce the qualitative shapes — cliff
//! positions, plateaus, intensities — that the paper's figures depend on.
//!
//! ```
//! use talus_workloads::{profile, AccessGenerator};
//! // libquantum: a cyclic scan over 32 MB (scaled down 256x here).
//! let app = profile("libquantum").unwrap().scaled(1.0 / 256.0);
//! let mut gen = app.generator(42, 0);
//! let first = gen.next_line();
//! assert_eq!(first.value(), 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod analytic;
pub mod generator;
pub mod interference;
pub mod prefetch;
pub mod spec;

pub use analytic::{AnalyticCurveSource, AnalyticModel};
pub use generator::{
    collect_trace, AccessGenerator, Mixture, Phased, PointerChase, Scan, StridedScan,
    UniformRandom, Zipfian,
};
pub use interference::{multi_tenant, MultiTenantProfile};
pub use prefetch::{AccessKind, StreamPrefetcher};
pub use spec::{all_profiles, memory_intensive, profile, AppProfile, Component, ComponentKind};
