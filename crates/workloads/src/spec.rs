//! SPEC-CPU2006-like application profiles.
//!
//! Each profile is a named mixture of generator components whose **LRU miss
//! curve reproduces the qualitative shape the paper reports** for the
//! benchmark it stands in for: cliff positions (libquantum at 32 MB,
//! omnetpp at 2 MB, xalancbmk at 6 MB, …), plateau levels, and approximate
//! miss intensity (MPKI = miss-rate × APKI). Absolute numbers are
//! synthetic; shapes are what Talus's claims depend on (DESIGN.md §2).
//!
//! Profiles also carry the two scalars the analytic core model needs:
//! accesses per kilo-instruction (APKI) and the base IPC the application
//! would achieve if every LLC access hit.

use crate::generator::{AccessGenerator, Mixture, Scan, UniformRandom, Zipfian};
use talus_sim::mb_to_lines;

/// The access-pattern primitive a component uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ComponentKind {
    /// Cyclic sequential scan (cliff-maker).
    Scan,
    /// Uniform random reuse (knee at the working-set size).
    Random,
    /// Zipf-skewed reuse with the given exponent (smooth convex curves).
    Zipf(f64),
}

/// One component of an application's access mixture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Component {
    /// Pattern primitive.
    pub kind: ComponentKind,
    /// Footprint in megabytes.
    pub mb: f64,
    /// Relative access weight within the mixture.
    pub weight: f64,
}

impl Component {
    const fn new(kind: ComponentKind, mb: f64, weight: f64) -> Self {
        Component { kind, mb, weight }
    }
}

/// A named synthetic application.
#[derive(Debug, Clone, PartialEq)]
pub struct AppProfile {
    /// Benchmark name this profile stands in for.
    pub name: &'static str,
    /// LLC accesses per kilo-instruction.
    pub apki: f64,
    /// IPC the core achieves when every LLC access hits.
    pub base_ipc: f64,
    /// The access mixture.
    pub components: Vec<Component>,
}

impl AppProfile {
    /// Builds this profile's access generator. `base_line` offsets the
    /// whole address space (give each co-running app a disjoint base, e.g.
    /// `app_index << 44`); `seed` controls all randomness.
    pub fn generator(&self, seed: u64, base_line: u64) -> Mixture {
        let mut offset = base_line;
        let comps: Vec<(f64, Box<dyn AccessGenerator>)> = self
            .components
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let lines = mb_to_lines(c.mb).max(1);
                let g: Box<dyn AccessGenerator> = match c.kind {
                    ComponentKind::Scan => Box::new(Scan::new(offset, lines)),
                    ComponentKind::Random => Box::new(UniformRandom::new(
                        offset,
                        lines,
                        seed.wrapping_add(i as u64),
                    )),
                    ComponentKind::Zipf(q) => {
                        Box::new(Zipfian::new(offset, lines, q, seed.wrapping_add(i as u64)))
                    }
                };
                offset += lines;
                (c.weight, g)
            })
            .collect();
        Mixture::new(comps, seed ^ 0xC0FFEE)
    }

    /// Total footprint in megabytes.
    pub fn footprint_mb(&self) -> f64 {
        self.components.iter().map(|c| c.mb).sum()
    }

    /// A copy with every footprint scaled by `factor` — used by fast tests
    /// to shrink multi-megabyte working sets to tractable sizes while
    /// keeping the curve shape.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    pub fn scaled(&self, factor: f64) -> AppProfile {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "scale factor must be positive"
        );
        AppProfile {
            name: self.name,
            apki: self.apki,
            base_ipc: self.base_ipc,
            components: self
                .components
                .iter()
                .map(|c| Component {
                    mb: c.mb * factor,
                    ..*c
                })
                .collect(),
        }
    }

    /// Converts a miss rate (misses per access) to MPKI for this profile.
    pub fn mpki(&self, miss_rate: f64) -> f64 {
        miss_rate * self.apki
    }
}

use ComponentKind::{Random, Scan as ScanK, Zipf};

macro_rules! profile {
    ($name:literal, $apki:expr, $ipc:expr, [$(($kind:expr, $mb:expr, $w:expr)),+ $(,)?]) => {
        AppProfile {
            name: $name,
            apki: $apki,
            base_ipc: $ipc,
            components: vec![$(Component::new($kind, $mb, $w)),+],
        }
    };
}

/// All synthetic profiles, mirroring the paper's SPEC CPU2006 roster.
///
/// Shape notes (all under LRU):
/// - `libquantum`: flat ≈33 MPKI with a cliff at 32 MB (Fig. 1);
/// - `omnetpp` / `xalancbmk`: scan-driven cliffs at ≈2 MB / ≈6 MB (Fig. 13);
/// - `perlbench` / `cactusADM`: a convex region *followed by* a cliff —
///   the shape where PDP-style bypassing loses to Talus (§VII-C);
/// - `lbm` / `milc` / `bwaves`: streaming, nearly size-insensitive;
/// - `mcf` / `astar` / `dealII`: smooth, mostly convex declines;
/// - `povray` / `tonto`: near-zero intensity (the §VII-B caveat).
pub fn all_profiles() -> Vec<AppProfile> {
    vec![
        profile!("libquantum", 33.0, 1.2, [(ScanK, 32.0, 1.0)]),
        profile!(
            "omnetpp",
            35.0,
            0.9,
            [(ScanK, 1.9, 0.85), (Zipf(0.7), 16.0, 0.15)]
        ),
        profile!(
            "xalancbmk",
            30.0,
            1.0,
            [
                (Zipf(1.0), 0.5, 0.35),
                (ScanK, 5.5, 0.55),
                (Zipf(0.6), 24.0, 0.10)
            ]
        ),
        profile!(
            "mcf",
            40.0,
            0.6,
            [
                (Zipf(1.0), 8.0, 0.5),
                (Random, 24.0, 0.3),
                (Zipf(0.7), 1.0, 0.2)
            ]
        ),
        profile!(
            "lbm",
            32.0,
            1.0,
            [(ScanK, 256.0, 0.92), (Random, 0.5, 0.08)]
        ),
        profile!(
            "perlbench",
            3.0,
            1.6,
            [(Zipf(1.0), 0.75, 0.70), (ScanK, 4.5, 0.30)]
        ),
        profile!(
            "cactusADM",
            12.0,
            1.0,
            [
                (ScanK, 9.0, 0.60),
                (Zipf(0.8), 1.0, 0.25),
                (ScanK, 64.0, 0.15)
            ]
        ),
        profile!(
            "GemsFDTD",
            18.0,
            0.8,
            [
                (ScanK, 12.0, 0.55),
                (Zipf(0.8), 2.0, 0.35),
                (Random, 48.0, 0.10)
            ]
        ),
        profile!(
            "sphinx3",
            15.0,
            1.1,
            [(Random, 8.0, 0.5), (Zipf(0.9), 2.0, 0.5)]
        ),
        profile!(
            "soplex",
            25.0,
            0.8,
            [
                (Zipf(0.9), 4.0, 0.45),
                (Random, 12.0, 0.35),
                (ScanK, 48.0, 0.20)
            ]
        ),
        profile!(
            "hmmer",
            4.0,
            1.8,
            [(Random, 0.4, 0.9), (Zipf(0.8), 2.0, 0.1)]
        ),
        profile!(
            "h264ref",
            3.0,
            1.7,
            [(Zipf(1.1), 0.5, 0.8), (Random, 2.0, 0.2)]
        ),
        profile!("gcc", 6.0, 1.4, [(Zipf(0.9), 1.0, 0.6), (Random, 4.0, 0.4)]),
        profile!(
            "zeusmp",
            10.0,
            1.1,
            [
                (Random, 2.0, 0.5),
                (ScanK, 32.0, 0.3),
                (Zipf(0.8), 0.5, 0.2)
            ]
        ),
        profile!("astar", 12.0, 0.9, [(Zipf(0.8), 16.0, 1.0)]),
        profile!(
            "bwaves",
            20.0,
            0.9,
            [(ScanK, 96.0, 0.7), (Random, 1.5, 0.3)]
        ),
        profile!(
            "milc",
            16.0,
            0.9,
            [(ScanK, 128.0, 0.95), (Random, 0.25, 0.05)]
        ),
        profile!(
            "dealII",
            7.0,
            1.5,
            [(Zipf(1.0), 2.0, 0.8), (Random, 6.0, 0.2)]
        ),
        profile!(
            "calculix",
            2.0,
            1.8,
            [(Zipf(1.0), 0.5, 0.9), (Random, 1.5, 0.1)]
        ),
        profile!(
            "gobmk",
            3.0,
            1.4,
            [
                (Zipf(1.0), 0.25, 0.75),
                (Random, 1.5, 0.20),
                (Zipf(0.7), 8.0, 0.05)
            ]
        ),
        profile!("povray", 0.3, 2.0, [(Zipf(1.1), 0.25, 1.0)]),
        profile!("tonto", 0.4, 1.9, [(Zipf(1.0), 0.5, 1.0)]),
    ]
}

/// Looks up a profile by benchmark name.
pub fn profile(name: &str) -> Option<AppProfile> {
    all_profiles().into_iter().find(|p| p.name == name)
}

/// The 18 most memory-intensive profiles (by APKI), the pool the paper
/// draws its 100 random 8-app mixes from (§VII-D).
pub fn memory_intensive() -> Vec<AppProfile> {
    let mut all = all_profiles();
    all.sort_by(|a, b| b.apki.partial_cmp(&a.apki).expect("APKIs are finite"));
    all.truncate(18);
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_has_expected_apps() {
        let all = all_profiles();
        assert!(all.len() >= 20);
        for name in ["libquantum", "omnetpp", "xalancbmk", "mcf", "lbm", "gobmk"] {
            assert!(all.iter().any(|p| p.name == name), "missing {name}");
        }
        // Names are unique.
        let mut names: Vec<_> = all.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }

    #[test]
    fn memory_intensive_excludes_low_apki_apps() {
        let mi = memory_intensive();
        assert_eq!(mi.len(), 18);
        assert!(!mi.iter().any(|p| p.name == "povray"));
        assert!(!mi.iter().any(|p| p.name == "tonto"));
        assert!(mi.iter().any(|p| p.name == "libquantum"));
    }

    #[test]
    fn profile_lookup() {
        assert_eq!(profile("mcf").unwrap().name, "mcf");
        assert!(profile("not-a-benchmark").is_none());
    }

    #[test]
    fn libquantum_is_a_pure_32mb_scan() {
        let p = profile("libquantum").unwrap();
        assert_eq!(p.components.len(), 1);
        assert_eq!(p.components[0].kind, ComponentKind::Scan);
        assert_eq!(p.footprint_mb(), 32.0);
        assert_eq!(p.mpki(1.0), 33.0);
    }

    #[test]
    fn generators_have_disjoint_component_spaces() {
        let p = profile("omnetpp").unwrap().scaled(1.0 / 64.0);
        let mut g = p.generator(1, 1 << 30);
        for _ in 0..10_000 {
            let l = g.next_line().value();
            assert!(l >= 1 << 30, "line {l} below the app base");
        }
    }

    #[test]
    fn scaled_shrinks_footprint() {
        let p = profile("libquantum").unwrap().scaled(1.0 / 32.0);
        assert!((p.footprint_mb() - 1.0).abs() < 1e-12);
        assert_eq!(p.apki, 33.0);
    }

    #[test]
    fn scaled_generator_produces_scaled_scan() {
        let p = profile("libquantum").unwrap().scaled(1.0 / 1024.0); // 32 KB
        let mut g = p.generator(3, 0);
        let lines = talus_sim::mb_to_lines(32.0 / 1024.0);
        let first: Vec<u64> = (0..lines + 2).map(|_| g.next_line().value()).collect();
        assert_eq!(first[0], first[lines as usize]); // cycles
    }

    #[test]
    fn base_ipcs_are_sane() {
        for p in all_profiles() {
            assert!(p.base_ipc > 0.0 && p.base_ipc <= 4.0, "{}", p.name);
            assert!(p.apki >= 0.0 && p.apki < 100.0, "{}", p.name);
            let total_w: f64 = p.components.iter().map(|c| c.weight).sum();
            assert!(total_w > 0.0, "{}", p.name);
        }
    }

    /// The headline shape check: libquantum's LRU miss curve (via Mattson)
    /// is flat until the scan fits, then collapses — at test scale.
    #[test]
    fn libquantum_scaled_curve_has_cliff() {
        use talus_sim::monitor::{MattsonMonitor, Monitor};
        let p = profile("libquantum").unwrap().scaled(1.0 / 256.0); // 128 KB scan
        let lines = talus_sim::mb_to_lines(p.footprint_mb());
        let mut g = p.generator(7, 0);
        let mut m = MattsonMonitor::new(lines * 2);
        for _ in 0..(lines as usize * 50) {
            m.record(g.next_line());
        }
        let c = m.curve_on_grid(&[0, lines / 2, lines - 1, lines, lines * 2]);
        assert!(c.value_at((lines / 2) as f64) > 0.95);
        assert!(c.value_at((lines * 2) as f64) < 0.05);
    }

    /// omnetpp at test scale: a big drop at the (scaled) 2 MB mark.
    #[test]
    fn omnetpp_scaled_curve_has_knee_at_working_set() {
        use talus_sim::monitor::{MattsonMonitor, Monitor};
        let scale = 1.0 / 128.0;
        let p = profile("omnetpp").unwrap().scaled(scale);
        let knee = talus_sim::mb_to_lines(2.0 * scale);
        let mut g = p.generator(9, 0);
        let mut m = MattsonMonitor::new(knee * 4);
        for _ in 0..400_000 {
            m.record(g.next_line());
        }
        let c = m.curve_on_grid(&[0, knee / 2, knee, knee * 2]);
        let before = c.value_at((knee / 2) as f64);
        let after = c.value_at((knee * 2) as f64);
        assert!(
            before > 2.5 * after,
            "expected a sharp knee: before {before}, after {after}"
        );
    }
}
