//! An L2 adaptive stream prefetcher model.
//!
//! The paper's §VII-B reproduces its results "using L2 adaptive stream
//! prefetchers validated against Westmere" and reports that *"prefetching
//! changes miss curves somewhat, but does not affect any of the
//! assumptions that Talus relies on"*. This module provides the substrate
//! for reproducing that claim (see the `prefetch` experiment): a stream
//! prefetcher that sits between an application's demand stream and the
//! LLC, exactly where an L2 prefetcher sits in the paper's system.
//!
//! [`StreamPrefetcher`] wraps any [`AccessGenerator`]. It watches the
//! demand stream with a small table of stream trackers; once a tracker
//! sees a run of sequential lines it issues prefetches up to a
//! configurable distance ahead. Issued prefetches are emitted into the
//! LLC access stream *before* the demand accesses they cover, so a timely
//! prefetch converts a demand miss into a demand hit (and carries the
//! memory traffic itself, as a prefetch miss).
//!
//! Real prefetchers are neither fully accurate nor fully timely; the
//! `coverage` knob models that imperfection as the probability that a
//! detected prefetch opportunity is actually issued in time. At coverage
//! 1.0 a steady scan stops missing entirely; at the default 0.75 the
//! miss curve keeps its shape but shifts — the "changes somewhat" regime
//! the paper describes.

use crate::generator::AccessGenerator;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use talus_sim::LineAddr;

/// Whether an emitted access is a demand access or a prefetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Issued by the application (counts toward demand MPKI).
    Demand,
    /// Issued by the prefetcher (carries traffic; not a demand miss).
    Prefetch,
}

impl AccessKind {
    /// `true` for demand accesses.
    pub fn is_demand(self) -> bool {
        matches!(self, AccessKind::Demand)
    }
}

/// One detected stream: the next line we expect the demand stream to
/// touch, the prefetch frontier already covered, and a confidence count.
#[derive(Debug, Clone, Copy)]
struct StreamTracker {
    next_expected: u64,
    frontier: u64,
    confidence: u8,
    last_used: u64,
}

/// An adaptive stream prefetcher wrapped around a demand generator.
///
/// # Examples
///
/// ```
/// use talus_workloads::{AccessGenerator, Scan, StreamPrefetcher};
/// let scan = Scan::new(0, 4096);
/// let mut pf = StreamPrefetcher::new(scan, 7);
/// // The combined stream interleaves demand lines with prefetches.
/// let (line, kind) = pf.next_tagged();
/// assert!(kind.is_demand());
/// assert_eq!(line.value(), 0);
/// ```
#[derive(Debug)]
pub struct StreamPrefetcher<G> {
    inner: G,
    trackers: Vec<StreamTracker>,
    pending: VecDeque<LineAddr>,
    degree: u64,
    distance: u64,
    coverage: f64,
    confidence_threshold: u8,
    rng: SmallRng,
    clock: u64,
    issued: u64,
    demands: u64,
}

/// Stream trackers available (typical L2 prefetchers track 8–16 streams).
const NUM_TRACKERS: usize = 8;

impl<G: AccessGenerator> StreamPrefetcher<G> {
    /// Wraps `inner` with the default configuration: degree 2, distance 4,
    /// coverage 0.75, confidence threshold 2.
    pub fn new(inner: G, seed: u64) -> Self {
        StreamPrefetcher {
            inner,
            trackers: Vec::with_capacity(NUM_TRACKERS),
            pending: VecDeque::new(),
            degree: 2,
            distance: 4,
            coverage: 0.75,
            confidence_threshold: 2,
            rng: SmallRng::seed_from_u64(seed ^ 0x9E3F_EED5),
            clock: 0,
            issued: 0,
            demands: 0,
        }
    }

    /// Sets how many lines are issued per triggering access.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is zero.
    pub fn with_degree(mut self, degree: u64) -> Self {
        assert!(degree > 0, "prefetch degree must be positive");
        self.degree = degree;
        self
    }

    /// Sets how far ahead of the demand stream the prefetcher may run.
    ///
    /// # Panics
    ///
    /// Panics if `distance` is zero.
    pub fn with_distance(mut self, distance: u64) -> Self {
        assert!(distance > 0, "prefetch distance must be positive");
        self.distance = distance;
        self
    }

    /// Sets the fraction of detected opportunities issued in time.
    ///
    /// # Panics
    ///
    /// Panics if `coverage` is outside `[0, 1]`.
    pub fn with_coverage(mut self, coverage: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&coverage),
            "coverage must be in [0, 1]"
        );
        self.coverage = coverage;
        self
    }

    /// Prefetches issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Demand accesses emitted so far.
    pub fn demands(&self) -> u64 {
        self.demands
    }

    /// Emits the next access with its kind. Pending prefetches drain
    /// before the next demand access is pulled from the wrapped
    /// generator, so timely prefetches land in the cache first.
    pub fn next_tagged(&mut self) -> (LineAddr, AccessKind) {
        if let Some(line) = self.pending.pop_front() {
            self.issued += 1;
            return (line, AccessKind::Prefetch);
        }
        let line = self.inner.next_line();
        self.demands += 1;
        self.observe(line.value());
        (line, AccessKind::Demand)
    }

    /// Updates the trackers with a demand address and enqueues prefetches.
    fn observe(&mut self, addr: u64) {
        self.clock += 1;
        // Continuation of a tracked stream?
        if let Some(t) = self.trackers.iter_mut().find(|t| t.next_expected == addr) {
            t.next_expected = addr + 1;
            t.confidence = t.confidence.saturating_add(1);
            t.last_used = self.clock;
            if t.confidence >= self.confidence_threshold {
                // Advance the frontier, never re-issuing covered lines.
                let start = t.frontier.max(addr + 1);
                let end = (addr + self.distance).min(start + self.degree - 1);
                let mut frontier = t.frontier;
                for l in start..=end {
                    if self.rng.gen::<f64>() < self.coverage {
                        self.pending.push_back(LineAddr(l));
                    }
                    frontier = l + 1;
                }
                t.frontier = frontier.max(t.frontier);
            }
            return;
        }
        // New potential stream: allocate a tracker (evict the stalest).
        let tracker = StreamTracker {
            next_expected: addr + 1,
            frontier: addr + 1,
            confidence: 1,
            last_used: self.clock,
        };
        if self.trackers.len() < NUM_TRACKERS {
            self.trackers.push(tracker);
        } else {
            let stalest = self
                .trackers
                .iter()
                .enumerate()
                .min_by_key(|(_, t)| t.last_used)
                .map(|(i, _)| i)
                .expect("tracker table is non-empty");
            self.trackers[stalest] = tracker;
        }
    }
}

impl<G: AccessGenerator> AccessGenerator for StreamPrefetcher<G> {
    fn next_line(&mut self) -> LineAddr {
        self.next_tagged().0
    }

    fn footprint_lines(&self) -> u64 {
        // The frontier can overshoot the wrapped footprint by at most the
        // prefetch distance per stream.
        self.inner.footprint_lines() + self.distance
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{Scan, UniformRandom};

    #[test]
    fn sequential_stream_is_detected_and_prefetched() {
        let mut pf = StreamPrefetcher::new(Scan::new(0, 10_000), 1).with_coverage(1.0);
        let mut prefetched = std::collections::HashSet::new();
        let mut covered = 0u64;
        let mut demands = 0u64;
        for _ in 0..30_000 {
            let (line, kind) = pf.next_tagged();
            match kind {
                AccessKind::Prefetch => {
                    prefetched.insert(line.value());
                }
                AccessKind::Demand => {
                    demands += 1;
                    if prefetched.contains(&line.value()) {
                        covered += 1;
                    }
                }
            }
        }
        let coverage = covered as f64 / demands as f64;
        assert!(
            coverage > 0.9,
            "steady scan should be nearly fully covered: {coverage}"
        );
    }

    #[test]
    fn random_stream_triggers_almost_no_prefetches() {
        let mut pf = StreamPrefetcher::new(UniformRandom::new(0, 100_000, 3), 1);
        for _ in 0..50_000 {
            pf.next_tagged();
        }
        let rate = pf.issued() as f64 / pf.demands() as f64;
        assert!(
            rate < 0.02,
            "random accesses shouldn't look like streams: {rate}"
        );
    }

    #[test]
    fn pointer_chase_defeats_the_prefetcher() {
        // The discriminator between "Talus removes the cliff" and "the
        // prefetcher hides it": a pointer chase has a scan's miss curve
        // but offers no streams to prefetch.
        use crate::generator::PointerChase;
        let mut pf = StreamPrefetcher::new(PointerChase::new(0, 100_000, 3), 1);
        for _ in 0..50_000 {
            pf.next_tagged();
        }
        let rate = pf.issued() as f64 / pf.demands() as f64;
        assert!(
            rate < 0.02,
            "pointer chases must not look like streams: {rate}"
        );
    }

    #[test]
    fn coverage_zero_issues_nothing() {
        let mut pf = StreamPrefetcher::new(Scan::new(0, 1000), 1).with_coverage(0.0);
        for _ in 0..5_000 {
            pf.next_tagged();
        }
        assert_eq!(pf.issued(), 0);
    }

    #[test]
    fn coverage_controls_issue_rate() {
        let run = |coverage: f64| {
            let mut pf = StreamPrefetcher::new(Scan::new(0, 100_000), 1).with_coverage(coverage);
            for _ in 0..40_000 {
                pf.next_tagged();
            }
            pf.issued() as f64 / pf.demands() as f64
        };
        let high = run(1.0);
        let low = run(0.5);
        assert!(
            high > 0.9,
            "full coverage issues ≈1 prefetch per demand: {high}"
        );
        assert!(
            (low / high - 0.5).abs() < 0.1,
            "half coverage issues ≈half: {low} vs {high}"
        );
    }

    #[test]
    fn no_duplicate_prefetches_on_a_steady_stream() {
        let mut pf = StreamPrefetcher::new(Scan::new(0, 50_000), 1).with_coverage(1.0);
        let mut seen = std::collections::HashMap::new();
        for _ in 0..60_000 {
            let (line, kind) = pf.next_tagged();
            if kind == AccessKind::Prefetch {
                *seen.entry(line.value()).or_insert(0u32) += 1;
            }
        }
        let dups = seen.values().filter(|&&c| c > 1).count();
        assert_eq!(
            dups, 0,
            "frontier tracking must prevent duplicate prefetches"
        );
    }

    #[test]
    fn interleaved_streams_tracked_independently() {
        // Two interleaved scans: both should be covered (2 of 8 trackers).
        #[derive(Debug)]
        struct TwoScans {
            a: Scan,
            b: Scan,
            flip: bool,
        }
        impl AccessGenerator for TwoScans {
            fn next_line(&mut self) -> LineAddr {
                self.flip = !self.flip;
                if self.flip {
                    self.a.next_line()
                } else {
                    self.b.next_line()
                }
            }
            fn footprint_lines(&self) -> u64 {
                self.a.footprint_lines() + self.b.footprint_lines()
            }
        }
        let gen = TwoScans {
            a: Scan::new(0, 30_000),
            b: Scan::new(1 << 30, 30_000),
            flip: false,
        };
        let mut pf = StreamPrefetcher::new(gen, 1).with_coverage(1.0);
        let mut prefetched = std::collections::HashSet::new();
        let (mut covered, mut demands) = (0u64, 0u64);
        for _ in 0..40_000 {
            let (line, kind) = pf.next_tagged();
            match kind {
                AccessKind::Prefetch => {
                    prefetched.insert(line.value());
                }
                AccessKind::Demand => {
                    demands += 1;
                    if prefetched.contains(&line.value()) {
                        covered += 1;
                    }
                }
            }
        }
        assert!(covered as f64 / demands as f64 > 0.9, "{covered}/{demands}");
    }

    #[test]
    fn determinism_per_seed() {
        let mut a = StreamPrefetcher::new(Scan::new(0, 1000), 42);
        let mut b = StreamPrefetcher::new(Scan::new(0, 1000), 42);
        for _ in 0..2000 {
            assert_eq!(a.next_tagged(), b.next_tagged());
        }
    }

    #[test]
    fn footprint_includes_overshoot() {
        let pf = StreamPrefetcher::new(Scan::new(0, 100), 1).with_distance(8);
        assert_eq!(pf.footprint_lines(), 108);
    }

    #[test]
    #[should_panic(expected = "coverage must be in [0, 1]")]
    fn rejects_bad_coverage() {
        let _ = StreamPrefetcher::new(Scan::new(0, 1), 1).with_coverage(1.5);
    }
}
