//! Analytical miss-curve backend: curves from workload specs, no streams.
//!
//! The exact ([`MattsonMonitor`]) and sampled ([`SampledMattson`]) monitors
//! both *simulate*: they record an address stream and measure stack
//! distances, which costs millions of accesses per curve. But this crate's
//! workload specs are already closed-form — a [`Component`] is a scan, a
//! uniform set, or a Zipf distribution with known footprint and weight —
//! so the miss curve can be *derived* instead of measured, in the style of
//! Gysi et al.'s "A Fast Analytical Model of Fully Associative Caches"
//! (see PAPERS.md). Talus itself is agnostic to where curves come from
//! (the paper's §VI-C monitor assumption), so an analytic curve plugs into
//! the same [`CurveSource`] seam the serving plane ingests from.
//!
//! # Model
//!
//! Under LRU with a mixture stream, an access to line `l` of component `i`
//! hits at cache size `s` iff the *stack distance* — distinct lines touched
//! since the previous access to `l`, including `l` — is at most `s`. The
//! model computes that distribution in three closed-form steps:
//!
//! 1. **Reuse time.** Each component's per-line reuse-time distribution in
//!    *own-stream accesses* is exact: a cyclic scan of `L` lines re-touches
//!    every line after exactly `L` accesses; a uniform set is geometric
//!    with rate `1/L`; a Zipf(`q`) set is a rank-weighted mixture of
//!    geometrics, `P(reuse > k) = Σ_r p_r (1-p_r)^k`, with the tail ranks
//!    log-bucketed so the sum stays a few dozen terms regardless of `L`.
//! 2. **Distinct-lines footprint.** `D_j(n)`, the expected distinct lines
//!    component `j` touches in `n` of its own accesses, is `min(n, L)` for
//!    a scan and `Σ_b m_b (1 - (1-p_b)^n)` for bucketed components — the
//!    working-set function of Denning's independent-reference model.
//! 3. **Superposition.** In a weighted mixture, `k` own-accesses of
//!    component `i` span `k·w_j/w_i` expected accesses of component `j`,
//!    so the expected stack distance is `1 + D_i(k-1) + Σ_{j≠i}
//!    D_j(k·w_j/w_i)`. Sweeping `k` over a geometric ladder yields each
//!    component's miss curve parametrically — `(distance(k), P(reuse>k))`
//!    — and the tenant curve is the access-weighted sum. Phase mixtures
//!    superpose the same way: a steady-state phase is itself a weighted
//!    component list (see [`AnalyticModel::from_multi_tenant`]).
//!
//! All `(1-p)^k` powers are evaluated on a geometric `k`-ladder by
//! repeated squaring (the ladder doubles every `RES = 4` nodes), so a
//! curve costs a few hundred multiplies plus one square-root chain per
//! rank bucket — microseconds, versus ~100µs+ for the cheapest simulated
//! backend (`monitor_record/sampled_mattson` in
//! `results/bench_baseline.json`).
//!
//! What the model deliberately ignores: cold misses (it describes steady
//! state; simulated curves include a vanishing cold fraction on long
//! streams), interleaving variance (cliffs stay sharp where sampling
//! smears them — the accuracy tests use guard bands around cliffs, exactly
//! like the sampled-vs-exact battery), and cross-phase reuse in rotating
//! workloads (a phase's curve stands for the steady state of that phase).
//!
//! ```
//! use talus_workloads::{profile, AnalyticCurveSource};
//! use talus_core::CurveSource;
//! // libquantum is a pure 32 MB scan: its analytic curve is the cliff.
//! let app = profile("libquantum").unwrap().scaled(1.0 / 256.0);
//! let mut src = AnalyticCurveSource::from_profile(&app, 4096);
//! let curve = src.next_curve().unwrap();
//! assert!(curve.value_at(1024.0) > 0.99); // below the scan: all miss
//! assert!(curve.value_at(2560.0) < 0.01); // above it: all hit
//! ```
//!
//! [`MattsonMonitor`]: talus_sim::monitor::MattsonMonitor
//! [`SampledMattson`]: talus_sim::monitor::SampledMattson
//! [`Component`]: crate::spec::Component
//! [`CurveSource`]: talus_core::CurveSource

use crate::interference::MultiTenantProfile;
use crate::spec::{AppProfile, ComponentKind};
use talus_core::{CurveSource, MissCurve};
use talus_sim::mb_to_lines;

/// Reuse-time ladder resolution: nodes per octave of `k`. Each bucket's
/// `(1-p)^k` advances along the ladder by squaring every `RES` nodes, so
/// resolution costs multiplies, not `exp` calls.
const RES: usize = 4;

/// Zipf ranks modelled exactly before log-bucketing begins.
const HEAD: u64 = 32;

/// Zipf tail rank-buckets per octave (≤ ~19% rank spread per bucket).
const TAIL_PER_OCTAVE: usize = 4;

/// Stop sweeping a component once its survival drops below this.
const EPS_SURV: f64 = 1e-9;

/// Hard cap on the reuse-time sweep: `k` up to 2^52 own-accesses.
const MAX_OCTAVES: usize = 52;

// `Ladder::new` writes its dyadic chain roots out for exactly four chains.
const _: () = assert!(RES == 4);

/// One class of lines sharing a per-access hit probability: `count` lines,
/// each touched with probability `p` per own-stream access.
#[derive(Debug, Clone, Copy)]
struct Bucket {
    count: f64,
    p: f64,
}

/// How one component re-references its lines.
#[derive(Debug, Clone)]
enum Reuse {
    /// Every line is re-touched after exactly `lines` own accesses (scan).
    Deterministic,
    /// Geometric mixture over rank buckets (uniform or Zipf).
    Buckets(Vec<Bucket>),
}

/// One mixture component with normalized access weight.
#[derive(Debug, Clone)]
struct Comp {
    weight: f64,
    lines: f64,
    reuse: Reuse,
}

/// Rank buckets for a Zipf(`q`) set of `lines` lines: exact head ranks,
/// then geometric rank ranges whose mean probability preserves the range's
/// total mass (midpoint-corrected power-law integral), normalized so the
/// bucket masses sum to one.
fn zipf_buckets(lines: u64, q: f64) -> Vec<Bucket> {
    let q = if q.is_finite() { q } else { 0.0 };
    let l = lines.max(1);
    let mut buckets = Vec::new();
    let head = HEAD.min(l) as usize;
    // r^-q is multiplicative, so only prime ranks need a real `powf`;
    // composite ranks are one multiply off already-computed entries.
    let mut head_p = vec![1.0f64; head + 1];
    for r in 2..=head {
        let d = (2..).take_while(|f| f * f <= r).find(|f| r % f == 0);
        head_p[r] = match d {
            Some(f) => head_p[f] * head_p[r / f],
            None => (r as f64).powf(-q),
        };
    }
    for r in 1..=head {
        buckets.push(Bucket {
            count: 1.0,
            p: head_p[r],
        });
    }
    let head = head as u64;
    // ∫ x^-q over [a, b] = (b^(1-q) - a^(1-q)) / (1-q) — the tail mass of
    // a rank range. Adjacent ranges share an endpoint, so each bucket
    // costs one new `powf`: the antiderivative at `hi` is reused as the
    // next bucket's `lo` term.
    let near_one = (q - 1.0).abs() < 1e-12;
    let antideriv = |x: f64| -> f64 {
        if near_one {
            x.ln()
        } else {
            x.powf(1.0 - q)
        }
    };
    let step = 2f64.powf(1.0 / TAIL_PER_OCTAVE as f64);
    let mut lo = head + 1;
    let mut lo_term = antideriv(lo as f64 - 0.5);
    while lo <= l {
        let hi = (((lo as f64) * step).round() as u64).clamp(lo + 1, l + 1);
        let hi_term = antideriv(hi as f64 - 0.5);
        let count = (hi - lo) as f64;
        let mass = if near_one {
            hi_term - lo_term
        } else {
            (hi_term - lo_term) / (1.0 - q)
        };
        buckets.push(Bucket {
            count,
            p: (mass / count).max(f64::MIN_POSITIVE),
        });
        lo = hi;
        lo_term = hi_term;
    }
    let total: f64 = buckets.iter().map(|b| b.count * b.p).sum();
    for b in &mut buckets {
        b.p /= total;
    }
    // The ladder retires buckets whose `(1-p)^k` has underflowed as a
    // *prefix*, which requires hot-to-cold order. Construction already
    // yields descending `p` for `q >= 0`; sort to keep the invariant for
    // exotic (negative-exponent) inputs too.
    buckets.sort_by(|a, b| b.p.total_cmp(&a.p));
    buckets
}

/// The per-component evaluation state for one [`AnalyticModel::curve`]
/// call: the geometric reuse-time ladder with, per node `t` (at `k =
/// 2^(t/RES)`), the expected distinct-lines footprint `D(k)` and the
/// reuse survival `P(reuse > k)`. Nodes are appended on demand; each
/// bucket's `(1-p)^k` advances by squaring one of `RES` interleaved
/// chains, so extension is multiply-only after the initial `ln`/`exp`.
#[derive(Debug)]
struct Ladder {
    lines: f64,
    deterministic: bool,
    /// Bucket line counts, hot-to-cold (descending `p`).
    counts: Vec<f64>,
    /// Bucket access mass `count * p`, same order.
    masses: Vec<f64>,
    /// `RES` squaring chains, flattened `[chain][bucket]` so one node's
    /// sweep reads a contiguous, vectorizable slice.
    pows: Vec<f64>,
    /// Per-chain first still-live bucket. Hotter (larger-`p`) buckets'
    /// `(1-p)^k` underflows first, so the dead set is a prefix; a dead
    /// bucket contributes exactly `count` to distinct and nothing to
    /// survival, folded into `retired` instead of re-scanned.
    live: [usize; RES],
    /// Per-chain count sum of retired buckets.
    retired: [f64; RES],
    /// Chain starting points `≈ 2^(r/RES)`, dyadic (sixteenths) so the
    /// starting powers `q^root` come from a shared sqrt chain instead of
    /// an `exp` per chain; node `k` values extend by doubling.
    roots: [f64; RES],
    k: Vec<f64>,
    distinct: Vec<f64>,
    survival: Vec<f64>,
    saturated: bool,
}

impl Ladder {
    fn new(comp: &Comp) -> Ladder {
        let (deterministic, buckets) = match &comp.reuse {
            Reuse::Deterministic => (true, Vec::new()),
            Reuse::Buckets(b) => (false, b.clone()),
        };
        // Prefix retirement and the saturation test both lean on
        // hot-to-cold bucket order.
        debug_assert!(buckets.windows(2).all(|w| w[0].p >= w[1].p));
        let nb = buckets.len();
        // Dyadic approximations of 2^(1/4), 2^(1/2), 2^(3/4) in
        // sixteenths: the spacing stays within 2% of geometric, and every
        // starting power is a product along one sqrt chain — no `ln`/`exp`
        // per bucket. (Written out for RES = 4.)
        let roots = [1.0, 19.0 / 16.0, 23.0 / 16.0, 27.0 / 16.0];
        let mut pows = vec![0.0; nb * RES];
        for (bi, b) in buckets.iter().enumerate() {
            let q = (1.0 - b.p).max(0.0);
            let s1 = q.sqrt(); // q^(1/2)
            let s2 = s1.sqrt(); // q^(1/4)
            let s3 = s2.sqrt(); // q^(1/8)
            let s34 = s3 * s3.sqrt(); // q^(3/16)
            pows[bi] = q; //                  k = 1
            pows[nb + bi] = q * s34; //       k = 19/16
            pows[2 * nb + bi] = q * s2 * s34; // k = 23/16
            pows[3 * nb + bi] = q * s1 * s34; // k = 27/16
        }
        let cap = RES * MAX_OCTAVES;
        Ladder {
            lines: comp.lines,
            deterministic,
            counts: buckets.iter().map(|b| b.count).collect(),
            masses: buckets.iter().map(|b| b.count * b.p).collect(),
            pows,
            live: [0; RES],
            retired: [0.0; RES],
            roots,
            k: Vec::with_capacity(cap),
            distinct: Vec::with_capacity(cap),
            survival: Vec::with_capacity(cap),
            saturated: false,
        }
    }

    /// Appends the next ladder node, advancing one squaring chain.
    fn push_node(&mut self) {
        let t = self.k.len();
        let chain = t % RES;
        let k = if t < RES {
            self.roots[t]
        } else {
            self.k[t - RES] * 2.0
        };
        let nb = self.counts.len();
        let pows = &mut self.pows[chain * nb..(chain + 1) * nb];
        // Retire leading buckets whose power has underflowed — they are
        // fully re-touched and never change again.
        let mut first = self.live[chain];
        while first < nb && pows[first] < 1e-16 {
            self.retired[chain] += self.counts[first];
            first += 1;
        }
        self.live[chain] = first;
        // `p` descending ⇒ `(1-p)^k` ascending: the coldest (last) bucket
        // holds this node's maximum power.
        let max_pow = if first < nb { pows[nb - 1] } else { 0.0 };
        // Four-lane partial sums: the two reductions would otherwise
        // serialize on f64 add latency, which dominates this sweep.
        let mut d = [0.0f64; 4];
        let mut s = [0.0f64; 4];
        let mut pc = pows[first..].chunks_exact_mut(4);
        let mut cc = self.counts[first..].chunks_exact(4);
        let mut mc = self.masses[first..].chunks_exact(4);
        for ((pw4, c4), m4) in (&mut pc).zip(&mut cc).zip(&mut mc) {
            for j in 0..4 {
                let pw = pw4[j];
                d[j] += c4[j] * (1.0 - pw);
                s[j] += m4[j] * pw;
                pw4[j] = pw * pw;
            }
        }
        for ((pw, &count), &mass) in pc
            .into_remainder()
            .iter_mut()
            .zip(cc.remainder())
            .zip(mc.remainder())
        {
            d[0] += count * (1.0 - *pw);
            s[0] += mass * *pw;
            *pw *= *pw;
        }
        let distinct = self.retired[chain] + (d[0] + d[1]) + (d[2] + d[3]);
        let survival = (s[0] + s[1]) + (s[2] + s[3]);
        self.k.push(k);
        self.distinct.push(distinct.min(self.lines));
        self.survival.push(survival);
        if max_pow < 1e-16 {
            // Every class is fully re-touched: D has reached the footprint
            // and survival is ~0; further nodes carry no information.
            self.saturated = true;
        }
    }

    fn extend_to_len(&mut self, len: usize) {
        while !self.saturated && self.k.len() < len.min(RES * MAX_OCTAVES) {
            self.push_node();
        }
    }

    fn extend_to_k(&mut self, n: f64) {
        while !self.saturated
            && self.k.len() < RES * MAX_OCTAVES
            && self.k.last().is_none_or(|&k| k < n)
        {
            self.push_node();
        }
    }

    /// Expected distinct lines touched in `n` own-stream accesses.
    fn distinct_at(&mut self, n: f64) -> f64 {
        if self.deterministic {
            return n.clamp(0.0, self.lines);
        }
        if n <= 0.0 {
            return 0.0;
        }
        self.extend_to_k(n);
        if self.k.is_empty() {
            return 0.0;
        }
        if n <= self.k[0] {
            // Below the first node (k = 1): D grows linearly from 0.
            return n * self.distinct[0];
        }
        let last = *self.k.last().expect("ladder is non-empty");
        if n >= last {
            // Past the ladder: either saturated (D = footprint) or the
            // hard cap was hit (clamp to the last computed value).
            return if self.saturated {
                self.lines
            } else {
                *self.distinct.last().expect("ladder is non-empty")
            };
        }
        // Fast bracket: the polyline sweep queries `n` in lockstep just
        // below the newest node, so `[len-2, len-1]` almost always holds.
        let len = self.k.len();
        if n >= self.k[len - 2] {
            let (k0, k1) = (self.k[len - 2], self.k[len - 1]);
            let f = (n - k0) / (k1 - k0);
            return self.distinct[len - 2] + f * (self.distinct[len - 1] - self.distinct[len - 2]);
        }
        // Seed the locate walk from the float exponent (≈ RES·log2 n,
        // correct to within one octave); the walk below finishes the job.
        let exp2 = ((n.to_bits() >> 52) as i64 - 1023).max(0) as usize;
        let mut t = (RES * exp2).min(self.k.len() - 2);
        while t > 0 && self.k[t] > n {
            t -= 1;
        }
        while t + 2 < self.k.len() && self.k[t + 1] < n {
            t += 1;
        }
        let (k0, k1) = (self.k[t], self.k[t + 1]);
        let f = (n - k0) / (k1 - k0);
        self.distinct[t] + f * (self.distinct[t + 1] - self.distinct[t])
    }
}

/// A closed-form miss-curve model for a weighted mixture of scan, uniform,
/// and Zipf components — the analytic sibling of the simulated monitors.
///
/// Build one from raw `(kind, lines, weight)` triples, an [`AppProfile`],
/// or a [`MultiTenantProfile`] tenant, then call [`curve`](Self::curve)
/// (or wrap it in an [`AnalyticCurveSource`] to feed a serving plane).
#[derive(Debug, Clone)]
pub struct AnalyticModel {
    comps: Vec<Comp>,
}

impl AnalyticModel {
    /// Builds a model from `(kind, footprint in lines, access weight)`
    /// triples. Zero footprints clamp to one line (matching
    /// [`AppProfile::generator`]'s `max(1)`); components with
    /// non-positive or non-finite weight are dropped.
    pub fn from_components(comps: &[(ComponentKind, u64, f64)]) -> AnalyticModel {
        let mut out: Vec<Comp> = comps
            .iter()
            .filter(|&&(_, _, w)| w.is_finite() && w > 0.0)
            .map(|&(kind, lines, weight)| {
                let lines = lines.max(1);
                let reuse = match kind {
                    ComponentKind::Scan => Reuse::Deterministic,
                    ComponentKind::Random => Reuse::Buckets(vec![Bucket {
                        count: lines as f64,
                        p: 1.0 / lines as f64,
                    }]),
                    ComponentKind::Zipf(q) => Reuse::Buckets(zipf_buckets(lines, q)),
                };
                Comp {
                    weight,
                    lines: lines as f64,
                    reuse,
                }
            })
            .collect();
        let total: f64 = out.iter().map(|c| c.weight).sum();
        for c in &mut out {
            c.weight /= total;
        }
        AnalyticModel { comps: out }
    }

    /// Builds the model for an application profile's component mixture.
    pub fn from_profile(profile: &AppProfile) -> AnalyticModel {
        let comps: Vec<(ComponentKind, u64, f64)> = profile
            .components
            .iter()
            .map(|c| (c.kind, mb_to_lines(c.mb).max(1), c.weight))
            .collect();
        AnalyticModel::from_components(&comps)
    }

    /// Builds the steady-state model for one tenant of a multi-tenant
    /// interference profile: the phase superposition of its rotating scan
    /// window and private Zipf hot set. All tenants share the shape
    /// (windows differ only in position), so one model serves every
    /// tenant. Cross-rotation reuse of old windows is not modelled — the
    /// curve stands for the steady state within a phase.
    pub fn from_multi_tenant(profile: &MultiTenantProfile) -> AnalyticModel {
        let window_lines = (profile.shared_lines() / profile.windows as u64).max(1);
        let private_lines = mb_to_lines(profile.private_mb).max(1);
        AnalyticModel::from_components(&[
            (ComponentKind::Scan, window_lines, profile.shared_weight),
            // 0.9 mirrors the Zipf exponent hard-wired in
            // `MultiTenantProfile::tenant_generator`.
            (
                ComponentKind::Zipf(0.9),
                private_lines,
                1.0 - profile.shared_weight,
            ),
        ])
    }

    /// Derives the LRU miss curve on `[0, max_lines]`.
    ///
    /// The result is monotone non-increasing, clamped to `[0, 1]`, starts
    /// at `(0, 1.0)`, and ends exactly at `max_lines` — the invariants the
    /// property battery in `tests/analytic.rs` pins. An empty model (no
    /// positively-weighted components) yields the all-miss curve.
    pub fn curve(&self, max_lines: u64) -> MissCurve {
        let cap = max_lines.max(1) as f64;
        if self.comps.is_empty() {
            return MissCurve::from_samples(&[0.0, cap], &[1.0, 1.0])
                .expect("two-point curve is valid");
        }
        let mut ladders: Vec<Ladder> = self.comps.iter().map(Ladder::new).collect();
        let mut polylines: Vec<Vec<(f64, f64)>> = Vec::with_capacity(self.comps.len());
        for i in 0..self.comps.len() {
            polylines.push(self.component_polyline(i, &mut ladders, cap));
        }
        // Union grid of every component's breakpoints, plus the ends
        // (forced last, so the curve spans exactly [0, max_lines]).
        let mut grid: Vec<f64> =
            Vec::with_capacity(polylines.iter().map(Vec::len).sum::<usize>() + 2);
        grid.extend(
            polylines
                .iter()
                .flat_map(|p| p.iter().map(|&(s, _)| s))
                .filter(|&s| s > 1e-12 && s < cap - 1e-9 * cap),
        );
        grid.sort_by(f64::total_cmp);
        grid.dedup_by(|a, b| (*a - *b) <= 1e-9 * (*b).max(1.0));
        grid.insert(0, 0.0);
        grid.push(cap);
        // Sum each component's weighted polyline over the grid. Both are
        // sorted, so one monotone cursor per component replaces a binary
        // search per (grid point, component) pair.
        let mut misses = vec![0.0f64; grid.len()];
        for (c, poly) in self.comps.iter().zip(&polylines) {
            let w = c.weight;
            let (first, last) = (poly[0], poly[poly.len() - 1]);
            let mut hi = 1usize;
            for (m, &s) in misses.iter_mut().zip(&grid) {
                if s <= first.0 {
                    *m += w * first.1;
                } else if s >= last.0 {
                    *m += w * last.1;
                } else {
                    while poly[hi].0 <= s {
                        hi += 1;
                    }
                    let ((x0, y0), (x1, y1)) = (poly[hi - 1], poly[hi]);
                    *m += w * (y0 + (s - x0) / (x1 - x0) * (y1 - y0));
                }
            }
        }
        for m in &mut misses {
            *m = m.clamp(0.0, 1.0);
        }
        // Weighted summation can round the origin to 1 - ulp; zero cached
        // lines always miss, so snap it back before the monotone guard.
        misses[0] = 1.0;
        for t in 1..misses.len() {
            // Guard the monotone invariant against interpolation fuzz.
            misses[t] = misses[t].min(misses[t - 1]);
        }
        MissCurve::from_samples(&grid, &misses)
            .expect("grid is strictly increasing and rates are finite")
    }

    /// One component's miss polyline `(stack distance, P(miss))`, swept
    /// parametrically over its reuse-time ladder.
    fn component_polyline(&self, i: usize, ladders: &mut [Ladder], cap: f64) -> Vec<(f64, f64)> {
        let wi = self.comps[i].weight;
        // Stack distance for a reuse `k` own-accesses apart: the line
        // itself, the other distinct own lines among the k-1 intervening
        // own accesses, and each co-component's footprint over its
        // expected share of the window.
        let distance = |ladders: &mut [Ladder], k: f64| -> f64 {
            let mut size = 1.0;
            for (j, c) in self.comps.iter().enumerate() {
                let n = if j == i { k - 1.0 } else { k * c.weight / wi };
                size += ladders[j].distinct_at(n);
            }
            size
        };
        let mut pts = Vec::with_capacity(RES * MAX_OCTAVES + 2);
        pts.push((0.0f64, 1.0f64));
        if ladders[i].deterministic {
            // Every reuse arrives at exactly k = lines: a step.
            let d = distance(ladders, self.comps[i].lines);
            let knee = d - (d * 1e-6).max(1e-9);
            push_point(&mut pts, knee, 1.0);
            push_point(&mut pts, d, 0.0);
            return pts;
        }
        let mut t = 0;
        loop {
            ladders[i].extend_to_len(t + 1);
            if ladders[i].k.len() <= t {
                break; // saturated: survival is already ~0
            }
            let k = ladders[i].k[t];
            let survival = ladders[i].survival[t];
            let size = distance(ladders, k);
            push_point(&mut pts, size, survival);
            if survival < EPS_SURV || size >= cap {
                break;
            }
            t += 1;
        }
        pts
    }
}

/// Appends `(size, miss)` to a polyline, enforcing strictly increasing
/// sizes and non-increasing misses (coincident sizes keep the lower miss).
fn push_point(pts: &mut Vec<(f64, f64)>, size: f64, miss: f64) {
    let &(last_size, last_miss) = pts.last().expect("polylines start at (0, 1)");
    let miss = miss.clamp(0.0, 1.0).min(last_miss);
    if size <= last_size + 1e-9 * last_size.max(1.0) {
        pts.last_mut().expect("non-empty").1 = miss;
    } else {
        pts.push((size, miss));
    }
}

/// A [`CurveSource`] serving an analytically derived miss curve — the
/// third curve backend, alongside the exact and sampled monitors.
///
/// The curve is computed once at construction (microseconds; see
/// `analytic_curve/*` in the benches) and cloned on every
/// [`next_curve`](CurveSource::next_curve), so steady-state refresh costs
/// only the clone. Rebuild the source when the workload spec changes.
///
/// ```
/// use talus_core::CurveSource;
/// use talus_workloads::{multi_tenant, AnalyticCurveSource};
/// let profile = multi_tenant(4).scaled(1.0 / 64.0);
/// let mut src = AnalyticCurveSource::from_multi_tenant(&profile, 4096);
/// let curves = src.next_curves(3);
/// assert_eq!(curves.len(), 3);
/// assert!(curves[0].is_monotone(1e-9));
/// ```
#[derive(Debug, Clone)]
pub struct AnalyticCurveSource {
    curve: MissCurve,
}

impl AnalyticCurveSource {
    /// Wraps a model, deriving its curve on `[0, max_lines]`.
    pub fn new(model: &AnalyticModel, max_lines: u64) -> AnalyticCurveSource {
        AnalyticCurveSource {
            curve: model.curve(max_lines),
        }
    }

    /// Analytic source for an application profile.
    pub fn from_profile(profile: &AppProfile, max_lines: u64) -> AnalyticCurveSource {
        AnalyticCurveSource::new(&AnalyticModel::from_profile(profile), max_lines)
    }

    /// Analytic source for a multi-tenant interference tenant.
    pub fn from_multi_tenant(profile: &MultiTenantProfile, max_lines: u64) -> AnalyticCurveSource {
        AnalyticCurveSource::new(&AnalyticModel::from_multi_tenant(profile), max_lines)
    }

    /// The derived curve.
    pub fn curve(&self) -> &MissCurve {
        &self.curve
    }
}

impl CurveSource for AnalyticCurveSource {
    fn next_curve(&mut self) -> Option<MissCurve> {
        Some(self.curve.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::profile;

    #[test]
    fn pure_scan_is_a_cliff_at_the_footprint() {
        let m = AnalyticModel::from_components(&[(ComponentKind::Scan, 1000, 1.0)]);
        let c = m.curve(2000);
        assert!(c.value_at(900.0) > 0.999, "below the scan: all miss");
        assert!(c.value_at(1001.0) < 1e-9, "above the scan: all hit");
        assert_eq!(c.value_at(0.0), 1.0);
        assert_eq!(c.max_size(), 2000.0);
    }

    #[test]
    fn uniform_knee_matches_the_geometric_law() {
        // For uniform reuse over L lines, a reuse k = L own-accesses away
        // survives with (1-1/L)^L ≈ e^-1 and spans ≈ L(1-e^-1) ≈ 0.632·L
        // distinct lines — the analytic knee must pass through that point.
        let l = 4096u64;
        let m = AnalyticModel::from_components(&[(ComponentKind::Random, l, 1.0)]);
        let c = m.curve(2 * l);
        let knee = l as f64 * (1.0 - (-1.0f64).exp());
        let expect = (-1.0f64).exp();
        assert!(
            (c.value_at(knee) - expect).abs() < 0.02,
            "value at the 0.632·L knee: {} vs e^-1 ≈ {expect}",
            c.value_at(knee)
        );
        assert!(c.value_at(0.0) == 1.0);
        assert!(c.value_at(2.0 * l as f64) < 0.01);
    }

    #[test]
    fn zipf_curve_is_monotone_and_convexish() {
        let m = AnalyticModel::from_components(&[(ComponentKind::Zipf(0.8), 100_000, 1.0)]);
        let c = m.curve(50_000);
        assert!(c.is_monotone(1e-9));
        assert_eq!(c.value_at(0.0), 1.0);
        // Skewed reuse: 5% of the footprint already absorbs over a third
        // of the hits, and the tail keeps missing at half the footprint.
        assert!(c.value_at(5_000.0) < 0.7);
        assert!(c.value_at(50_000.0) > 0.05, "tail ranks still miss");
    }

    #[test]
    fn single_object_zipf_hits_immediately() {
        let m = AnalyticModel::from_components(&[(ComponentKind::Zipf(1.0), 1, 1.0)]);
        let c = m.curve(64);
        assert_eq!(c.value_at(0.0), 1.0);
        assert!(c.value_at(1.0) < 1e-12, "one line: hits at size 1");
    }

    #[test]
    fn zero_size_scan_clamps_to_one_line() {
        let m = AnalyticModel::from_components(&[(ComponentKind::Scan, 0, 1.0)]);
        let c = m.curve(16);
        assert!(c.is_monotone(1e-9));
        assert!(c.value_at(1.0) < 1e-9, "a 1-line scan hits at size 1");
    }

    #[test]
    fn two_scan_mixture_has_a_half_weight_plateau() {
        // 50/50 scans of 100 and 1000 lines: the small scan's cliff sits
        // at 100 own + 100 interleaved = 200 lines, the big one's at
        // 1000 + 100 (the whole small scan) + 1 = ~1100.
        let m = AnalyticModel::from_components(&[
            (ComponentKind::Scan, 100, 0.5),
            (ComponentKind::Scan, 1000, 0.5),
        ]);
        let c = m.curve(2048);
        assert!(c.value_at(150.0) > 0.999);
        assert!((c.value_at(500.0) - 0.5).abs() < 1e-9, "plateau at w=0.5");
        assert!(c.value_at(1200.0) < 1e-9);
    }

    #[test]
    fn profile_curve_matches_component_construction() {
        let p = profile("omnetpp").unwrap().scaled(1.0 / 256.0);
        let via_profile = AnalyticModel::from_profile(&p).curve(8192);
        let comps: Vec<(ComponentKind, u64, f64)> = p
            .components
            .iter()
            .map(|c| (c.kind, mb_to_lines(c.mb).max(1), c.weight))
            .collect();
        let via_comps = AnalyticModel::from_components(&comps).curve(8192);
        assert_eq!(via_profile.points(), via_comps.points());
    }

    #[test]
    fn empty_model_is_all_miss() {
        let m = AnalyticModel::from_components(&[]);
        let c = m.curve(128);
        assert_eq!(c.value_at(128.0), 1.0);
        // Non-finite and non-positive weights are dropped too.
        let m = AnalyticModel::from_components(&[
            (ComponentKind::Scan, 10, 0.0),
            (ComponentKind::Random, 10, f64::NAN),
            (ComponentKind::Zipf(0.5), 10, -1.0),
        ]);
        assert_eq!(m.curve(128).value_at(64.0), 1.0);
    }

    #[test]
    fn source_replays_the_same_curve() {
        let p = multi_tenant_fixture();
        let mut src = AnalyticCurveSource::from_multi_tenant(&p, 4096);
        let a = src.next_curve().unwrap();
        let b = src.next_curve().unwrap();
        assert_eq!(a.points(), b.points());
        assert_eq!(src.next_curves(5).len(), 5);
        assert_eq!(src.curve().points(), a.points());
    }

    #[test]
    fn multi_tenant_model_cliffs_at_the_window() {
        let p = multi_tenant_fixture();
        let window = (p.shared_lines() / p.windows as u64).max(1);
        let c = AnalyticModel::from_multi_tenant(&p).curve(4 * p.tenant_footprint_lines());
        // Below the window the scan share (70%) misses, plus part of the
        // private Zipf; past window + private the scan share hits.
        assert!(c.value_at(window as f64 * 0.5) > 0.7);
        assert!(c.value_at((2 * p.tenant_footprint_lines()) as f64) < 0.05);
        assert!(c.is_monotone(1e-9));
    }

    #[test]
    fn zipf_buckets_mass_is_normalized() {
        for &(l, q) in &[(1u64, 1.0f64), (7, 0.0), (100, 0.7), (1_000_000, 1.2)] {
            let bs = zipf_buckets(l, q);
            let mass: f64 = bs.iter().map(|b| b.count * b.p).sum();
            let count: f64 = bs.iter().map(|b| b.count).sum();
            assert!((mass - 1.0).abs() < 1e-9, "L={l} q={q}: mass {mass}");
            assert!((count - l as f64).abs() < 0.5, "L={l} q={q}: count {count}");
        }
    }

    fn multi_tenant_fixture() -> MultiTenantProfile {
        crate::interference::multi_tenant(4).scaled(1.0 / 64.0)
    }
}
