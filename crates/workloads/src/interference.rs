//! Multi-tenant interference profiles.
//!
//! The [`spec`](crate::spec) roster models *applications*: each profile is
//! one tenant with a private address space. This module models the other
//! shape serving systems care about: **several tenants over one shared
//! address space**, each sweeping a hot *window* of the shared region that
//! moves over time, phase-shifted so no two tenants are hot in the same
//! window at once. Every tenant's miss curve therefore carries a moving
//! scan cliff (the Talus-relevant shape) plus a convex private component,
//! and the curves of co-tenants keep changing relative to each other —
//! exactly the churn that keeps an online reconfiguration plane's dirty
//! queues full. This is the load generator for `talus-serve`'s sharded
//! ingest benches and driver.

use crate::generator::{AccessGenerator, Mixture, Phased, Scan, Zipfian};
use talus_sim::mb_to_lines;

/// A multi-tenant interference workload: `tenants` access streams over one
/// shared region, each a [`Phased`] scan over a rotating window of that
/// region blended with a private Zipfian hot set.
///
/// Tenant `t` spends phase `p` scanning window `(p + t·stagger) mod
/// windows` of the shared region — all tenants sweep the same address
/// space, but out of phase, so footprints collide while hot sets do not.
///
/// ```
/// use talus_workloads::{multi_tenant, AccessGenerator};
/// let profile = multi_tenant(3).scaled(1.0 / 64.0);
/// let mut gens = profile.generators(42);
/// assert_eq!(gens.len(), 3);
/// let _line = gens[0].next_line();
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MultiTenantProfile {
    /// Number of tenants sharing the region.
    pub tenants: usize,
    /// Shared region size in megabytes.
    pub shared_mb: f64,
    /// Per-tenant private hot-set size in megabytes.
    pub private_mb: f64,
    /// Number of scan windows the shared region is divided into.
    pub windows: usize,
    /// Accesses each tenant spends per phase before its window rotates.
    pub phase_len: u64,
    /// Fraction of accesses aimed at the shared region (the rest hit the
    /// tenant's private Zipfian set).
    pub shared_weight: f64,
}

/// A `tenants`-way interference profile with serving-shaped defaults: an
/// 8 MB shared region swept in `max(tenants, 4)` windows, a 1 MB private
/// hot set per tenant, 70% of accesses shared, windows rotating every
/// 40 000 accesses.
///
/// # Panics
///
/// Panics if `tenants` is zero.
pub fn multi_tenant(tenants: usize) -> MultiTenantProfile {
    assert!(tenants > 0, "need at least one tenant");
    MultiTenantProfile {
        tenants,
        shared_mb: 8.0,
        private_mb: 1.0,
        windows: tenants.max(4),
        phase_len: 40_000,
        shared_weight: 0.7,
    }
}

impl MultiTenantProfile {
    /// A copy with every footprint scaled by `factor` — shrink
    /// multi-megabyte regions to test/bench scale while keeping the
    /// phase structure.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    pub fn scaled(&self, factor: f64) -> MultiTenantProfile {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "scale factor must be positive"
        );
        MultiTenantProfile {
            shared_mb: self.shared_mb * factor,
            private_mb: self.private_mb * factor,
            ..self.clone()
        }
    }

    /// Shared-region size in lines.
    pub fn shared_lines(&self) -> u64 {
        mb_to_lines(self.shared_mb).max(self.windows as u64)
    }

    /// One tenant's total footprint in lines (the whole shared region —
    /// its window visits all of it over a full rotation — plus its
    /// private set).
    pub fn tenant_footprint_lines(&self) -> u64 {
        self.shared_lines() + mb_to_lines(self.private_mb).max(1)
    }

    /// The phase offset between consecutive tenants, in windows: tenants
    /// are spread evenly around the rotation so their hot windows stay
    /// maximally separated.
    pub fn stagger(&self) -> usize {
        (self.windows / self.tenants).max(1)
    }

    /// Builds tenant `tenant`'s access generator. `seed` controls all
    /// randomness; the same `(tenant, seed)` pair always reproduces the
    /// same stream.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is out of range.
    pub fn tenant_generator(&self, tenant: usize, seed: u64) -> Phased {
        assert!(tenant < self.tenants, "tenant {tenant} out of range");
        let shared_lines = self.shared_lines();
        let window_lines = (shared_lines / self.windows as u64).max(1);
        let private_lines = mb_to_lines(self.private_mb).max(1);
        // Private sets start past the shared region, one slot per tenant.
        let private_base = shared_lines + tenant as u64 * private_lines;
        let phases = (0..self.windows)
            .map(|phase| {
                let window = (phase + tenant * self.stagger()) % self.windows;
                let mix = Mixture::new(
                    vec![
                        (
                            self.shared_weight,
                            Box::new(Scan::new(window as u64 * window_lines, window_lines))
                                as Box<dyn AccessGenerator>,
                        ),
                        (
                            1.0 - self.shared_weight,
                            Box::new(Zipfian::new(
                                private_base,
                                private_lines,
                                0.9,
                                seed ^ ((tenant as u64) << 8) ^ phase as u64,
                            )),
                        ),
                    ],
                    seed.wrapping_add(0x9E37 * (tenant as u64 + 1) + phase as u64),
                );
                (self.phase_len, Box::new(mix) as Box<dyn AccessGenerator>)
            })
            .collect();
        Phased::new(phases)
    }

    /// Builds every tenant's generator at once (the tenant index is
    /// folded into each stream's seeds, so streams are decorrelated but
    /// reproducible).
    pub fn generators(&self, seed: u64) -> Vec<Phased> {
        (0..self.tenants)
            .map(|t| self.tenant_generator(t, seed))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::collect_trace;
    use std::collections::HashSet;

    #[test]
    fn defaults_are_sane() {
        let p = multi_tenant(3);
        assert_eq!(p.tenants, 3);
        assert_eq!(p.windows, 4);
        assert!(p.shared_weight > 0.0 && p.shared_weight < 1.0);
        assert!(p.tenant_footprint_lines() > p.shared_lines());
    }

    #[test]
    #[should_panic(expected = "at least one tenant")]
    fn zero_tenants_rejected() {
        multi_tenant(0);
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let p = multi_tenant(2).scaled(1.0 / 256.0);
        let mut a = p.tenant_generator(1, 7);
        let mut b = p.tenant_generator(1, 7);
        for _ in 0..1000 {
            assert_eq!(a.next_line(), b.next_line());
        }
    }

    #[test]
    fn tenants_share_address_space() {
        // Interference means overlapping footprints: over a full phase
        // rotation both tenants touch the same shared lines.
        let p = multi_tenant(2).scaled(1.0 / 512.0);
        let rotation = (p.windows as u64 * p.phase_len) as usize;
        let mut g0 = p.tenant_generator(0, 3);
        let mut g1 = p.tenant_generator(1, 4);
        let t0: HashSet<u64> = collect_trace(&mut g0, rotation)
            .iter()
            .map(|l| l.value())
            .collect();
        let t1: HashSet<u64> = collect_trace(&mut g1, rotation)
            .iter()
            .map(|l| l.value())
            .collect();
        let overlap = t0.intersection(&t1).count();
        assert!(
            overlap as u64 >= p.shared_lines() / 2,
            "tenants should collide on the shared region ({overlap} shared lines)"
        );
    }

    #[test]
    fn phases_are_shifted_between_tenants() {
        // In phase 0, tenant 0 scans window 0 and tenant 1 scans window
        // `stagger`: their first scan addresses land in different windows.
        let p = multi_tenant(2).scaled(1.0 / 512.0);
        let window_lines = (p.shared_lines() / p.windows as u64).max(1);
        let in_window = |line: u64| (line / window_lines) as usize;
        let shared_only = |gen: &mut Phased| loop {
            let l = gen.next_line().value();
            if l < p.shared_lines() {
                return l;
            }
        };
        let w0 = in_window(shared_only(&mut p.tenant_generator(0, 9)));
        let w1 = in_window(shared_only(&mut p.tenant_generator(1, 9)));
        assert_eq!(w0, 0);
        assert_eq!(w1, p.stagger() % p.windows);
        assert_ne!(w0, w1, "tenants start their sweeps out of phase");
    }

    #[test]
    fn window_rotates_after_phase_len() {
        let mut p = multi_tenant(1).scaled(1.0 / 512.0);
        p.phase_len = 100;
        p.shared_weight = 0.999; // nearly all accesses shared
        let window_lines = (p.shared_lines() / p.windows as u64).max(1);
        let mut g = p.tenant_generator(0, 1);
        // Phase 0 scans window 0; after phase_len accesses the scan moves
        // to window 1.
        let first: Vec<u64> = (0..100).map(|_| g.next_line().value()).collect();
        let second: Vec<u64> = (0..100).map(|_| g.next_line().value()).collect();
        let hits = |trace: &[u64], w: u64| {
            trace
                .iter()
                .filter(|&&l| l < p.shared_lines() && l / window_lines == w)
                .count()
        };
        assert!(hits(&first, 0) > 90, "phase 0 sweeps window 0");
        assert!(hits(&second, 1) > 90, "phase 1 sweeps window 1");
    }

    #[test]
    fn scaled_shrinks_footprint_keeps_structure() {
        let p = multi_tenant(4);
        let s = p.scaled(1.0 / 64.0);
        assert_eq!(s.windows, p.windows);
        assert_eq!(s.phase_len, p.phase_len);
        assert!(s.tenant_footprint_lines() < p.tenant_footprint_lines());
    }
}
