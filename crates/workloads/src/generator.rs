//! Access-stream generators.
//!
//! The paper's workloads are SPEC CPU2006 binaries run under zsim; this
//! crate replaces them with composable synthetic generators whose LRU miss
//! curves have the same qualitative shapes (plateaus, cliffs, convex
//! declines — see DESIGN.md for the substitution argument). The primitives:
//!
//! - [`Scan`]: cyclic sequential sweeps — the canonical cliff-maker
//!   (libquantum's 32 MB array);
//! - [`UniformRandom`]: flat random reuse over a working set — a sharp
//!   knee once the set fits;
//! - [`Zipfian`]: skewed reuse — smooth convex miss curves;
//! - [`Mixture`]: probabilistic blends of the above — plateaus *between*
//!   knees (the §III example);
//! - [`Phased`]: time-varying behaviour for stressing Assumption 1.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use talus_sim::LineAddr;

/// An infinite access stream at cache-line granularity.
pub trait AccessGenerator: std::fmt::Debug {
    /// Produces the next accessed line.
    fn next_line(&mut self) -> LineAddr;

    /// Total distinct lines this generator can touch (its footprint).
    fn footprint_lines(&self) -> u64;
}

impl AccessGenerator for Box<dyn AccessGenerator> {
    fn next_line(&mut self) -> LineAddr {
        (**self).next_line()
    }

    fn footprint_lines(&self) -> u64 {
        (**self).footprint_lines()
    }
}

/// A cyclic sequential scan over `lines` lines starting at `base`.
///
/// Under LRU, a scan of `L` lines hits 100% in caches of at least `L`
/// lines and 0% in anything smaller: a pure cliff.
#[derive(Debug, Clone)]
pub struct Scan {
    base: u64,
    lines: u64,
    pos: u64,
}

impl Scan {
    /// Creates a scan of `lines` lines with addresses starting at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is zero.
    pub fn new(base: u64, lines: u64) -> Self {
        assert!(lines > 0, "scan footprint must be positive");
        Scan {
            base,
            lines,
            pos: 0,
        }
    }
}

impl AccessGenerator for Scan {
    fn next_line(&mut self) -> LineAddr {
        let l = LineAddr(self.base + self.pos);
        self.pos = (self.pos + 1) % self.lines;
        l
    }

    fn footprint_lines(&self) -> u64 {
        self.lines
    }
}

/// Uniform random accesses over a working set of `lines` lines.
#[derive(Debug, Clone)]
pub struct UniformRandom {
    base: u64,
    lines: u64,
    rng: SmallRng,
}

impl UniformRandom {
    /// Creates a uniform generator over `lines` lines starting at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is zero.
    pub fn new(base: u64, lines: u64, seed: u64) -> Self {
        assert!(lines > 0, "working set must be positive");
        UniformRandom {
            base,
            lines,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl AccessGenerator for UniformRandom {
    fn next_line(&mut self) -> LineAddr {
        LineAddr(self.base + self.rng.gen_range(0..self.lines))
    }

    fn footprint_lines(&self) -> u64 {
        self.lines
    }
}

/// Zipf-distributed accesses over `lines` lines (rank 1 hottest), using
/// rejection-inversion sampling (Hörmann & Derflinger), O(1) per sample
/// with no precomputed tables.
#[derive(Debug, Clone)]
pub struct Zipfian {
    base: u64,
    lines: u64,
    exponent: f64,
    rng: SmallRng,
    // Precomputed constants for rejection-inversion.
    h_x1: f64,
    h_n: f64,
    s: f64,
}

impl Zipfian {
    /// Creates a Zipf(`exponent`) generator over `lines` lines.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is zero or `exponent` is not positive and finite.
    pub fn new(base: u64, lines: u64, exponent: f64, seed: u64) -> Self {
        assert!(lines > 0, "working set must be positive");
        assert!(
            exponent > 0.0 && exponent.is_finite(),
            "zipf exponent must be positive and finite"
        );
        let n = lines as f64;
        let h_x1 = Self::h(1.5, exponent) - 1.0;
        let h_n = Self::h(n + 0.5, exponent);
        let s = 2.0 - Self::h_inv(Self::h(2.5, exponent) - 2.0f64.powf(-exponent), exponent);
        Zipfian {
            base,
            lines,
            exponent,
            rng: SmallRng::seed_from_u64(seed),
            h_x1,
            h_n,
            s,
        }
    }

    /// Integral of the Zipf density envelope: H(x) = (x^(1-q) - 1)/(1-q),
    /// or ln(x) for q = 1.
    fn h(x: f64, q: f64) -> f64 {
        if (q - 1.0).abs() < 1e-9 {
            x.ln()
        } else {
            (x.powf(1.0 - q) - 1.0) / (1.0 - q)
        }
    }

    fn h_inv(x: f64, q: f64) -> f64 {
        if (q - 1.0).abs() < 1e-9 {
            x.exp()
        } else {
            (1.0 + x * (1.0 - q)).powf(1.0 / (1.0 - q))
        }
    }

    fn sample_rank(&mut self) -> u64 {
        loop {
            let u = self.h_x1 + self.rng.gen::<f64>() * (self.h_n - self.h_x1);
            let x = Self::h_inv(u, self.exponent);
            let k = (x + 0.5).floor().max(1.0).min(self.lines as f64);
            if k - x <= self.s || u >= Self::h(k + 0.5, self.exponent) - k.powf(-self.exponent) {
                return k as u64;
            }
        }
    }
}

impl AccessGenerator for Zipfian {
    fn next_line(&mut self) -> LineAddr {
        // Scramble ranks so hot lines are spread across the address space
        // (and therefore across cache sets). Multiplying by an odd
        // constant permutes any power-of-two domain, so cycle-walk inside
        // the next power of two until the image lands back in range: a
        // true rank → line bijection for *every* footprint. (A plain
        // `mul % lines` is only bijective for power-of-two `lines`; for
        // other sizes it merges ~1/e of the ranks, silently deforming the
        // delivered popularity distribution — cold ranks inherit hot
        // lines' reuse. Power-of-two footprints take the loop's first
        // iteration and are bit-identical to the unwalked scramble.)
        let rank = self.sample_rank() - 1;
        let mask = self.lines.next_power_of_two() - 1;
        let mut scrambled = rank;
        loop {
            scrambled = scrambled.wrapping_mul(0x9E37_79B9_7F4A_7C15) & mask;
            if scrambled < self.lines {
                break;
            }
        }
        LineAddr(self.base + scrambled)
    }

    fn footprint_lines(&self) -> u64 {
        self.lines
    }
}

/// A cyclic scan with a non-unit stride: touches `base + (i·stride mod
/// lines)` — the access pattern of column-major sweeps over row-major
/// arrays. Under LRU it has exactly [`Scan`]'s cliff (every line is
/// touched once per period), but stream prefetchers keyed on unit
/// strides, like [`StreamPrefetcher`](crate::StreamPrefetcher), get no
/// coverage — useful for separating "cliff removed by Talus" from
/// "cliff hidden by the prefetcher".
#[derive(Debug, Clone)]
pub struct StridedScan {
    base: u64,
    lines: u64,
    stride: u64,
    pos: u64,
}

impl StridedScan {
    /// Creates a strided scan. For full coverage `stride` should be
    /// coprime with `lines`; the constructor nudges it up by one when it
    /// is not (and documents so), keeping the footprint exact.
    ///
    /// # Panics
    ///
    /// Panics if `lines` or `stride` is zero.
    pub fn new(base: u64, lines: u64, stride: u64) -> Self {
        assert!(lines > 0, "scan footprint must be positive");
        assert!(stride > 0, "stride must be positive");
        let mut stride = stride % lines.max(2);
        if stride == 0 {
            stride = 1;
        }
        while gcd(stride, lines) != 1 {
            stride += 1;
        }
        StridedScan {
            base,
            lines,
            stride,
            pos: 0,
        }
    }

    /// The (possibly adjusted) stride actually in use.
    pub fn stride(&self) -> u64 {
        self.stride
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

impl AccessGenerator for StridedScan {
    fn next_line(&mut self) -> LineAddr {
        let l = LineAddr(self.base + self.pos);
        self.pos = (self.pos + self.stride) % self.lines;
        l
    }

    fn footprint_lines(&self) -> u64 {
        self.lines
    }
}

/// A pointer chase: walks a pseudo-random single-cycle permutation of the
/// working set, so every line is touched exactly once per period (the
/// same uniform reuse distance — and therefore the same LRU cliff — as a
/// scan) but with no spatial locality whatsoever. The worst case for
/// stream prefetchers and the classic latency-bound workload (linked
/// lists, graph traversals).
#[derive(Debug, Clone)]
pub struct PointerChase {
    base: u64,
    lines: u64,
    multiplier: u64,
    pos: u64,
}

impl PointerChase {
    /// Creates a pointer chase over `lines` lines starting at `base`.
    ///
    /// The permutation is `x → (a·x + 1) mod lines` with `a` chosen
    /// coprime-ish from `seed`, which is a full cycle for any `lines`
    /// when `a` satisfies the Hull–Dobell conditions; we fall back to
    /// `a = 1` (a plain scan) when the conditions cannot be met.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is zero.
    pub fn new(base: u64, lines: u64, seed: u64) -> Self {
        assert!(lines > 0, "working set must be positive");
        // Hull–Dobell: a ≡ 1 mod p for every prime p | lines, and
        // a ≡ 1 mod 4 if 4 | lines. Take a = 1 + k·rad(lines) (times 2
        // if needed), with k from the seed.
        let mut rad = radical(lines);
        if lines % 4 == 0 && rad % 4 != 0 {
            rad *= 2;
        }
        let k = 1 + (seed % 61);
        let multiplier = (1 + k * rad) % lines.max(1);
        let multiplier = if multiplier == 0 { 1 } else { multiplier };
        PointerChase {
            base,
            lines,
            multiplier,
            pos: 0,
        }
    }
}

/// The radical of `n`: the product of its distinct prime factors.
fn radical(mut n: u64) -> u64 {
    let mut rad = 1;
    let mut p = 2;
    while p * p <= n {
        if n % p == 0 {
            rad *= p;
            while n % p == 0 {
                n /= p;
            }
        }
        p += 1;
    }
    if n > 1 {
        rad *= n;
    }
    rad
}

impl AccessGenerator for PointerChase {
    fn next_line(&mut self) -> LineAddr {
        let l = LineAddr(self.base + self.pos);
        self.pos = (self.multiplier.wrapping_mul(self.pos) + 1) % self.lines;
        l
    }

    fn footprint_lines(&self) -> u64 {
        self.lines
    }
}

/// A weighted blend of generators: each access picks a component with
/// probability proportional to its weight.
#[derive(Debug)]
pub struct Mixture {
    components: Vec<(f64, Box<dyn AccessGenerator>)>,
    cumulative: Vec<f64>,
    rng: SmallRng,
}

impl Mixture {
    /// Creates a mixture from `(weight, generator)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `components` is empty or any weight is non-positive.
    pub fn new(components: Vec<(f64, Box<dyn AccessGenerator>)>, seed: u64) -> Self {
        assert!(
            !components.is_empty(),
            "mixture needs at least one component"
        );
        let total: f64 = components.iter().map(|(w, _)| *w).sum();
        assert!(
            components.iter().all(|(w, _)| *w > 0.0) && total.is_finite(),
            "weights must be positive and finite"
        );
        let mut acc = 0.0;
        let cumulative = components
            .iter()
            .map(|(w, _)| {
                acc += w / total;
                acc
            })
            .collect();
        Mixture {
            components,
            cumulative,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl AccessGenerator for Mixture {
    fn next_line(&mut self) -> LineAddr {
        let u = self.rng.gen::<f64>();
        let idx = self
            .cumulative
            .partition_point(|&c| c < u)
            .min(self.components.len() - 1);
        self.components[idx].1.next_line()
    }

    fn footprint_lines(&self) -> u64 {
        self.components
            .iter()
            .map(|(_, g)| g.footprint_lines())
            .sum()
    }
}

/// Switches between generators on a fixed access schedule, looping forever.
/// Used to stress Assumption 1 (miss-curve stability across intervals).
#[derive(Debug)]
pub struct Phased {
    phases: Vec<(u64, Box<dyn AccessGenerator>)>,
    current: usize,
    remaining: u64,
}

impl Phased {
    /// Creates a phased generator from `(accesses, generator)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty or any phase length is zero.
    pub fn new(phases: Vec<(u64, Box<dyn AccessGenerator>)>) -> Self {
        assert!(!phases.is_empty(), "need at least one phase");
        assert!(
            phases.iter().all(|(n, _)| *n > 0),
            "phase lengths must be positive"
        );
        let remaining = phases[0].0;
        Phased {
            phases,
            current: 0,
            remaining,
        }
    }
}

impl AccessGenerator for Phased {
    fn next_line(&mut self) -> LineAddr {
        if self.remaining == 0 {
            self.current = (self.current + 1) % self.phases.len();
            self.remaining = self.phases[self.current].0;
        }
        self.remaining -= 1;
        self.phases[self.current].1.next_line()
    }

    fn footprint_lines(&self) -> u64 {
        self.phases.iter().map(|(_, g)| g.footprint_lines()).sum()
    }
}

/// Collects `n` accesses from a generator into a trace.
pub fn collect_trace<G: AccessGenerator>(gen: &mut G, n: usize) -> Vec<LineAddr> {
    (0..n).map(|_| gen.next_line()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn scan_cycles_in_order() {
        let mut s = Scan::new(100, 4);
        let got: Vec<u64> = (0..6).map(|_| s.next_line().value()).collect();
        assert_eq!(got, vec![100, 101, 102, 103, 100, 101]);
        assert_eq!(s.footprint_lines(), 4);
    }

    #[test]
    fn uniform_stays_in_range_and_covers() {
        let mut g = UniformRandom::new(1000, 50, 7);
        let mut seen = HashSet::new();
        for _ in 0..5000 {
            let l = g.next_line().value();
            assert!((1000..1050).contains(&l));
            seen.insert(l);
        }
        assert_eq!(seen.len(), 50, "should cover the whole working set");
    }

    #[test]
    fn zipf_is_skewed() {
        // With exponent 1.0 over 1000 lines, the most common line should
        // far exceed the median line's frequency.
        let mut g = Zipfian::new(0, 1000, 1.0, 3);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..100_000 {
            *counts.entry(g.next_line().value()).or_insert(0u32) += 1;
        }
        let mut freqs: Vec<u32> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        assert!(
            freqs[0] > 20 * freqs[freqs.len() / 2],
            "top {} median {}",
            freqs[0],
            freqs[freqs.len() / 2]
        );
    }

    /// The cycle-walked rank scramble, for tests that need to locate a
    /// specific rank's line.
    fn scramble(rank: u64, lines: u64) -> u64 {
        let mask = lines.next_power_of_two() - 1;
        let mut x = rank;
        loop {
            x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15) & mask;
            if x < lines {
                return x;
            }
        }
    }

    #[test]
    fn zipf_rank_one_frequency_matches_theory() {
        // P(rank 1) with q=1, N=100 is 1/H_100 ≈ 0.1928.
        let mut g = Zipfian::new(0, 100, 1.0, 11);
        let hot = scramble(0, 100);
        let mut hot_count = 0u32;
        let n = 200_000;
        for _ in 0..n {
            if g.next_line().value() == hot {
                hot_count += 1;
            }
        }
        let p = hot_count as f64 / n as f64;
        assert!((p - 0.1928).abs() < 0.01, "P(rank1) = {p}");
    }

    #[test]
    fn zipf_stays_in_range() {
        let mut g = Zipfian::new(500, 64, 0.8, 5);
        for _ in 0..10_000 {
            let v = g.next_line().value();
            assert!((500..564).contains(&v));
        }
    }

    #[test]
    fn zipf_scramble_is_a_bijection_for_any_footprint() {
        // The cycle-walked scramble must permute 0..lines — including
        // non-power-of-two footprints, where a plain `mul % lines` merges
        // ranks and deforms the delivered distribution.
        for lines in [1u64, 2, 3, 48, 100, 121, 1000, 1024, 1536] {
            let mut seen = vec![false; lines as usize];
            for r in 0..lines {
                let s = scramble(r, lines);
                assert!(s < lines, "lines={lines}: image {s} out of range");
                assert!(!seen[s as usize], "lines={lines}: rank {r} collides");
                seen[s as usize] = true;
            }
        }
    }

    #[test]
    fn mixture_respects_weights() {
        // 25% scan over lines 0..10, 75% random over 1000..1100.
        let m = Mixture::new(
            vec![
                (1.0, Box::new(Scan::new(0, 10)) as Box<dyn AccessGenerator>),
                (3.0, Box::new(UniformRandom::new(1000, 100, 1))),
            ],
            9,
        );
        let mut m = m;
        let mut low = 0u32;
        let n = 40_000;
        for _ in 0..n {
            if m.next_line().value() < 100 {
                low += 1;
            }
        }
        let frac = low as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "scan fraction {frac}");
        assert_eq!(m.footprint_lines(), 110);
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn mixture_rejects_zero_weight() {
        Mixture::new(
            vec![(0.0, Box::new(Scan::new(0, 1)) as Box<dyn AccessGenerator>)],
            1,
        );
    }

    #[test]
    fn phased_switches_and_loops() {
        let mut p = Phased::new(vec![
            (2, Box::new(Scan::new(0, 10)) as Box<dyn AccessGenerator>),
            (1, Box::new(Scan::new(100, 10))),
        ]);
        let got: Vec<u64> = (0..6).map(|_| p.next_line().value()).collect();
        // Phase A: 0,1; phase B: 100; phase A: 2,3; phase B: 101.
        assert_eq!(got, vec![0, 1, 100, 2, 3, 101]);
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let mut a = Zipfian::new(0, 1000, 0.9, 42);
        let mut b = Zipfian::new(0, 1000, 0.9, 42);
        for _ in 0..100 {
            assert_eq!(a.next_line(), b.next_line());
        }
    }

    #[test]
    fn collect_trace_length() {
        let mut s = Scan::new(0, 3);
        let t = collect_trace(&mut s, 7);
        assert_eq!(t.len(), 7);
    }

    #[test]
    fn strided_scan_covers_whole_footprint_each_period() {
        let mut g = StridedScan::new(100, 12, 5);
        let mut seen = HashSet::new();
        for _ in 0..12 {
            seen.insert(g.next_line().value());
        }
        assert_eq!(seen.len(), 12, "one full period covers every line");
        // Second period repeats the same cycle.
        assert_eq!(g.next_line().value(), 100);
    }

    #[test]
    fn strided_scan_fixes_non_coprime_strides() {
        let g = StridedScan::new(0, 12, 4); // gcd(4,12)=4 → nudged to 5
        assert_eq!(g.stride(), 5);
    }

    #[test]
    fn pointer_chase_is_a_full_cycle() {
        for lines in [7u64, 12, 64, 100, 1024] {
            let mut g = PointerChase::new(0, lines, 9);
            let mut seen = HashSet::new();
            for _ in 0..lines {
                seen.insert(g.next_line().value());
            }
            assert_eq!(seen.len() as u64, lines, "full cycle over {lines} lines");
        }
    }

    #[test]
    fn pointer_chase_has_no_unit_stride_runs() {
        // The anti-prefetcher property: consecutive addresses are almost
        // never consecutive lines.
        let mut g = PointerChase::new(0, 4096, 3);
        let mut prev = g.next_line().value();
        let mut unit_steps = 0;
        for _ in 0..4096 {
            let cur = g.next_line().value();
            if cur == prev + 1 {
                unit_steps += 1;
            }
            prev = cur;
        }
        assert!(unit_steps < 100, "{unit_steps} unit strides out of 4096");
    }
}
