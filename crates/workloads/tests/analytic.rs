//! Accuracy and invariant battery for the analytic curve backend.
//!
//! Mirrors PR 3's sampled-vs-exact style: per profile class, the analytic
//! curve is compared L∞ against [`SampledMattson`] run over the *actual
//! generator streams*, with guard bands around scan cliffs (where a
//! vertical step makes L∞ ill-conditioned in exactly the band whose width
//! is the interleaving/sampling noise — same rationale as
//! `scan_cliff_survives_sampling` in `crates/sim`).
//!
//! Sampling-ratio choices per class: at `ratio == 1` the sampled monitor
//! is the pipeline's exact mode (the spatial filter is off), so smooth
//! classes pin *tight* tolerances there — the analytic model tracks the
//! measured curve to a few hundredths, cold-miss fraction included. At
//! realistic ratios the SHARDS-adj rescale (`observed/sampled` accesses)
//! is only reliable when access mass is roughly proportional to line
//! count among sampled lines — true for scans and uniform sets, noisy for
//! skewed Zipf streams where one hot rank's sampling luck moves the whole
//! scale. The realistic-ratio checks therefore run on the scan and
//! uniform classes (as PR 3's battery did), and the Zipf classes assert
//! the exact-mode match.

use proptest::prelude::*;
use talus_core::{limits::WIRE_MAX_CURVE_POINTS, MissCurve};
use talus_sim::mb_to_lines;
use talus_sim::monitor::{Monitor, SampledMattson};
use talus_workloads::{
    multi_tenant, profile, AccessGenerator, AnalyticModel, AppProfile, ComponentKind,
};

/// L∞ distance between two curves on a grid.
fn linf(a: &MissCurve, b: &MissCurve, grid: &[u64]) -> f64 {
    grid.iter()
        .map(|&g| (a.value_at(g as f64) - b.value_at(g as f64)).abs())
        .fold(0.0, f64::max)
}

/// Runs `accesses` of the profile's generator stream through a
/// [`SampledMattson`] resolving `cap` lines at `ratio`.
fn sampled_curve_for(
    p: &AppProfile,
    cap: u64,
    ratio: u64,
    accesses: usize,
    seed: u64,
) -> SampledMattson {
    let mut gen = p.generator(seed, 0);
    let mut m = SampledMattson::new(cap, ratio, seed ^ 0xA11A);
    for _ in 0..accesses {
        m.record(gen.next_line());
    }
    m
}

/// Grid over `[0, cap]` with every point inside a `[0.8·c, 2.5·c]` band
/// around any scan-component footprint `c` removed — the guard bands
/// where mixture interleaving smears the analytic step.
fn guarded_grid(p: &AppProfile, cap: u64) -> Vec<u64> {
    let cliffs: Vec<u64> = p
        .components
        .iter()
        .filter(|c| matches!(c.kind, ComponentKind::Scan))
        .map(|c| mb_to_lines(c.mb).max(1))
        .collect();
    (0..=cap)
        .step_by((cap / 64).max(1) as usize)
        .filter(|&s| {
            cliffs
                .iter()
                .all(|&c| (s as f64) < 0.8 * c as f64 || (s as f64) > 2.5 * c as f64)
        })
        .collect()
}

/// Zipf class (smooth, convex): pure and mixed Zipf profiles match the
/// sampled pipeline's exact mode within a few hundredths — the largest
/// contribution is the stream's cold-miss fraction, which the
/// steady-state model deliberately omits.
#[test]
fn zipf_class_matches_sampled_exact_mode() {
    for (name, tol) in [("astar", 0.03), ("mcf", 0.03), ("sphinx3", 0.04)] {
        let p = profile(name).unwrap().scaled(1.0 / 256.0);
        let cap = 2 * mb_to_lines(p.footprint_mb()).max(1);
        let analytic = AnalyticModel::from_profile(&p).curve(cap);
        let m = sampled_curve_for(&p, cap, 1, 400_000, 11);
        let grid: Vec<u64> = (0..=cap).step_by((cap / 64).max(1) as usize).collect();
        let err = linf(&analytic, &m.curve_on_grid(&grid), &grid);
        assert!(err < tol, "{name}: L∞ {err} over tolerance {tol}");
    }
}

/// Scan class under *realistic* sampling (ratio 16): off a ±15% guard
/// band the curves agree, and the analytic cliff lands inside the band.
#[test]
fn scan_class_cliff_survives_real_sampling() {
    let p = profile("libquantum").unwrap().scaled(1.0 / 1024.0);
    let lines = mb_to_lines(p.footprint_mb()).max(1);
    let cap = 2 * lines;
    let analytic = AnalyticModel::from_profile(&p).curve(cap);
    let m = sampled_curve_for(&p, cap, 16, 400_000, 17);
    let guard = (lines as f64 * 0.15) as u64;
    let grid: Vec<u64> = (0..=cap)
        .step_by((cap / 64).max(1) as usize)
        .filter(|&g| g < lines - guard || g > lines + guard)
        .collect();
    let err = linf(&analytic, &m.curve_on_grid(&grid), &grid);
    assert!(err < 0.05, "L∞ off the cliff band: {err}");
    assert!(analytic.value_at((lines - guard) as f64) > 0.9);
    assert!(analytic.value_at((lines + guard) as f64) < 0.1);
}

/// Uniform class under realistic sampling (ratio 8): smooth knee, no
/// guard bands needed, and the SHARDS-adj rescale is reliable here.
#[test]
fn uniform_class_matches_under_real_sampling() {
    let p = profile("hmmer").unwrap().scaled(1.0 / 16.0);
    let cap = 2 * mb_to_lines(p.footprint_mb()).max(1);
    let analytic = AnalyticModel::from_profile(&p).curve(cap);
    let m = sampled_curve_for(&p, cap, 8, 400_000, 7);
    let grid: Vec<u64> = (0..=cap).step_by((cap / 64).max(1) as usize).collect();
    let err = linf(&analytic, &m.curve_on_grid(&grid), &grid);
    assert!(err < 0.06, "L∞ on uniform class: {err}");
}

/// Scan+Zipf mixture class: outside the scan-cliff guard bands the
/// analytic superposition tracks the measured curve, including the
/// partial-weight plateaus between cliffs.
#[test]
fn mixture_class_matches_outside_cliff_bands() {
    for (name, tol) in [("omnetpp", 0.04), ("perlbench", 0.04), ("xalancbmk", 0.04)] {
        let p = profile(name).unwrap().scaled(1.0 / 256.0);
        let cap = 2 * mb_to_lines(p.footprint_mb()).max(1);
        let analytic = AnalyticModel::from_profile(&p).curve(cap);
        let m = sampled_curve_for(&p, cap, 1, 400_000, 11);
        let grid = guarded_grid(&p, cap);
        let err = linf(&analytic, &m.curve_on_grid(&grid), &grid);
        assert!(err < tol, "{name}: guarded L∞ {err} over tolerance {tol}");
    }
}

/// Multi-tenant interference class: one tenant's phased stream (rotating
/// shared-window scan + private Zipf) against the steady-state phase
/// model, guarded around the window cliff. The model omits cross-rotation
/// reuse of old windows, which shows up as a ~1-2% residual above the
/// cliff — inside the tolerance, and the reason it is looser than the
/// pure classes.
#[test]
fn multi_tenant_class_matches_steady_state_phase() {
    let mt = multi_tenant(4).scaled(1.0 / 64.0);
    let cap = 2 * mt.tenant_footprint_lines();
    let window = (mt.shared_lines() / mt.windows as u64).max(1);
    let analytic = AnalyticModel::from_multi_tenant(&mt).curve(cap);
    for (tenant, seed) in [(0usize, 5u64), (1, 19)] {
        let mut gen = mt.tenant_generator(tenant, seed);
        let mut m = SampledMattson::new(cap, 1, seed);
        for _ in 0..800_000 {
            m.record(gen.next_line());
        }
        let grid: Vec<u64> = (0..=cap)
            .step_by((cap / 64).max(1) as usize)
            .filter(|&s| (s as f64) < 0.8 * window as f64 || (s as f64) > 2.5 * window as f64)
            .collect();
        let err = linf(&analytic, &m.curve_on_grid(&grid), &grid);
        assert!(err < 0.05, "tenant {tenant}: guarded L∞ {err}");
    }
}

/// Degenerate footprints the ISSUE calls out explicitly.
#[test]
fn degenerate_footprints_yield_valid_curves() {
    // 0-size scan: clamps to one line, cliff at 1.
    let zero_scan = AnalyticModel::from_components(&[(ComponentKind::Scan, 0, 1.0)]).curve(64);
    assert_eq!(zero_scan.value_at(0.0), 1.0);
    assert!(zero_scan.value_at(1.0) < 1e-9);
    assert!(zero_scan.is_monotone(1e-12));
    // Single-object Zipf: one line, hits at size 1.
    let one_zipf = AnalyticModel::from_components(&[(ComponentKind::Zipf(1.2), 1, 1.0)]).curve(64);
    assert_eq!(one_zipf.value_at(0.0), 1.0);
    assert!(one_zipf.value_at(1.0) < 1e-12);
    // Both mixed with a real component still satisfy the invariants.
    let mixed = AnalyticModel::from_components(&[
        (ComponentKind::Scan, 0, 0.5),
        (ComponentKind::Zipf(0.9), 1, 0.25),
        (ComponentKind::Random, 4096, 0.25),
    ])
    .curve(1024);
    assert!(mixed.is_monotone(1e-12));
    assert_eq!(mixed.value_at(0.0), 1.0);
    assert_eq!(mixed.max_size(), 1024.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `MissCurve` invariants hold for *random* specs: monotone
    /// non-increasing, clamped to [0, 1], a valid strictly-increasing
    /// grid spanning exactly [0, max_lines], wire-transportable point
    /// count — including degenerate footprints (the `lines` range starts
    /// at 0) and degenerate weights.
    #[test]
    fn analytic_curves_always_satisfy_miss_curve_invariants(
        raw in proptest::collection::vec((0u64..3, 0u64..100_000, 0u32..1000), 1..6),
        cap in 1u64..200_000,
    ) {
        let comps: Vec<(ComponentKind, u64, f64)> = raw
            .iter()
            .map(|&(kind, lines, w)| {
                let kind = match kind {
                    0 => ComponentKind::Scan,
                    1 => ComponentKind::Random,
                    // Exponents 0.0 .. 2.0 in steps of ~0.002.
                    _ => ComponentKind::Zipf(f64::from(w) / 500.0),
                };
                (kind, lines, f64::from(w) / 100.0)
            })
            .collect();
        let curve = AnalyticModel::from_components(&comps).curve(cap);
        prop_assert!(curve.is_monotone(1e-12), "monotone non-increasing");
        prop_assert!(
            curve.iter().all(|p| (0.0..=1.0).contains(&p.misses)),
            "values clamped to [0, 1]"
        );
        prop_assert_eq!(curve.min_size(), 0.0);
        prop_assert_eq!(curve.max_size(), cap as f64);
        prop_assert_eq!(curve.value_at(0.0), 1.0);
        prop_assert!(
            curve.len() <= WIRE_MAX_CURVE_POINTS as usize,
            "fits the wire-protocol curve bound"
        );
        // Grid validity (strictly increasing, finite) is enforced by the
        // MissCurve constructor; re-building from the points proves it.
        let rebuilt = MissCurve::new(curve.iter().copied());
        prop_assert!(rebuilt.is_ok(), "points form a valid curve");
    }
}
