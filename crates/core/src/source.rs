//! Where miss curves come from: the [`CurveSource`] seam.
//!
//! Talus planning consumes miss curves but does not care who produced
//! them: a hardware utility monitor, a stack-distance simulation, an
//! analytic model, or a replay of previously recorded profiles. This
//! module defines the one-method trait that separates curve *producers*
//! from curve *consumers* (the planner, the partitioning algorithms, the
//! online reconfiguration service).
//!
//! `talus-core` itself provides only the pure producers — a fixed curve
//! and a scripted replay. The `talus-sim` crate implements the trait for
//! monitor-fed streams (`MonitorSource`), and the `talus-serve` service
//! pulls from any source when ingesting per-tenant updates.
//!
//! ```
//! use talus_core::{CurveSource, MissCurve, ReplaySource};
//!
//! let epoch1 = MissCurve::from_samples(&[0.0, 4.0], &[10.0, 2.0])?;
//! let epoch2 = MissCurve::from_samples(&[0.0, 4.0], &[8.0, 1.0])?;
//! let mut source = ReplaySource::new(vec![epoch1, epoch2]);
//!
//! // The consumer drains updates until the source is exhausted.
//! let mut seen = 0;
//! while let Some(curve) = source.next_curve() {
//!     assert_eq!(curve.len(), 2);
//!     seen += 1;
//! }
//! assert_eq!(seen, 2);
//! # Ok::<(), talus_core::CurveError>(())
//! ```

use crate::curve::MissCurve;
use std::collections::VecDeque;

/// A producer of miss-curve estimates.
///
/// Each call to [`next_curve`](CurveSource::next_curve) yields the next
/// estimate — typically one per monitoring interval — or `None` once the
/// source has nothing further to report (a finite trace ran out, a replay
/// finished). Infinite sources (live monitors, fixed curves) simply never
/// return `None`.
///
/// Curves follow the conventions of [`MissCurve`]: non-negative sizes in
/// ascending order, and they should include a size-0 point so planners can
/// consider bypass partitions.
pub trait CurveSource {
    /// Produces the next miss-curve estimate, or `None` when exhausted.
    fn next_curve(&mut self) -> Option<MissCurve>;

    /// Drains up to `max` pending estimates at once — the batching seam
    /// for consumers that ingest update streams (catching a replay up,
    /// coalescing a backlog before an epoch). Finite sources return fewer
    /// when exhausted; infinite sources always return exactly `max`.
    ///
    /// ```
    /// use talus_core::{CurveSource, MissCurve, ReplaySource};
    /// let c = MissCurve::from_samples(&[0.0, 4.0], &[10.0, 2.0])?;
    /// let mut source = ReplaySource::new(vec![c.clone(), c.clone(), c]);
    /// assert_eq!(source.next_curves(2).len(), 2);
    /// assert_eq!(source.next_curves(2).len(), 1); // exhausted mid-batch
    /// # Ok::<(), talus_core::CurveError>(())
    /// ```
    fn next_curves(&mut self, max: usize) -> Vec<MissCurve> {
        let mut out = Vec::with_capacity(max.min(64));
        while out.len() < max {
            match self.next_curve() {
                Some(curve) => out.push(curve),
                None => break,
            }
        }
        out
    }
}

/// A fixed curve is an infinite source of itself: useful for tests and for
/// tenants whose behaviour is known analytically rather than monitored.
impl CurveSource for MissCurve {
    fn next_curve(&mut self) -> Option<MissCurve> {
        Some(self.clone())
    }
}

/// A scripted, finite sequence of curve updates, yielded oldest-first.
///
/// This is the pure-replay producer: feed it the per-interval curves of a
/// recorded run and a consumer sees exactly the update stream the live
/// system saw. Exhausts (returns `None`) after the last update.
#[derive(Debug, Clone, Default)]
pub struct ReplaySource {
    updates: VecDeque<MissCurve>,
}

impl ReplaySource {
    /// A source that replays `updates` in order.
    pub fn new(updates: impl IntoIterator<Item = MissCurve>) -> Self {
        ReplaySource {
            updates: updates.into_iter().collect(),
        }
    }

    /// Updates not yet consumed.
    pub fn remaining(&self) -> usize {
        self.updates.len()
    }

    /// Appends another update to the end of the script.
    pub fn push(&mut self, curve: MissCurve) {
        self.updates.push_back(curve);
    }
}

impl CurveSource for ReplaySource {
    fn next_curve(&mut self) -> Option<MissCurve> {
        self.updates.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(top: f64) -> MissCurve {
        MissCurve::from_samples(&[0.0, 8.0], &[top, 1.0]).unwrap()
    }

    #[test]
    fn fixed_curve_never_exhausts() {
        let mut c = curve(10.0);
        for _ in 0..5 {
            let got = c.next_curve().expect("fixed source is infinite");
            assert_eq!(got.value_at(0.0), 10.0);
        }
    }

    #[test]
    fn replay_yields_in_order_then_exhausts() {
        let mut s = ReplaySource::new(vec![curve(10.0), curve(20.0)]);
        assert_eq!(s.remaining(), 2);
        assert_eq!(s.next_curve().unwrap().value_at(0.0), 10.0);
        s.push(curve(30.0));
        assert_eq!(s.next_curve().unwrap().value_at(0.0), 20.0);
        assert_eq!(s.next_curve().unwrap().value_at(0.0), 30.0);
        assert!(s.next_curve().is_none());
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn trait_objects_work() {
        let mut sources: Vec<Box<dyn CurveSource>> = vec![
            Box::new(curve(5.0)),
            Box::new(ReplaySource::new(vec![curve(7.0)])),
        ];
        assert_eq!(sources[0].next_curve().unwrap().value_at(0.0), 5.0);
        assert_eq!(sources[1].next_curve().unwrap().value_at(0.0), 7.0);
        assert!(sources[1].next_curve().is_none());
    }
}
