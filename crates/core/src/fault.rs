//! Deterministic fault injection: the one scripted-failure seam shared
//! by the wire, store, and chaos test suites.
//!
//! A [`FaultScript`] is a list of rules, each bound to a named *site* (a
//! string literal at the injection point, e.g. `"shard.plan"` or
//! `"server.handle"`), optionally to a `u64` *key* (a cache id, shard
//! index, or opcode — whatever the site passes), and to a window of
//! matching hits (`skip` hits pass through, then `times` hits fire).
//! Components under test call [`FaultScript::check`] at their injection
//! points; a matched rule either acts inline (delays sleep, panics
//! panic) or returns a [`FaultDirective`] telling the caller what to
//! sabotage (fail an append, sever a connection, truncate a frame).
//!
//! Everything is deterministic: rules fire on exact hit counts, never on
//! time or randomness, so a failure schedule replays identically across
//! runs — which is what lets the chaos suites assert *bit-identical*
//! convergence with a fault-free twin.
//!
//! Sites in use across the workspace (the string is the contract):
//!
//! | site            | key            | honoured actions              |
//! |-----------------|----------------|-------------------------------|
//! | `shard.plan`    | cache id       | `Panic`, `DelayMs`            |
//! | `worker.epoch`  | shard index    | `Panic`, `DelayMs`            |
//! | `server.handle` | request opcode | `DelayMs`, `KillConnection`, `TruncateFrame`, `Fail` (→ busy-shed) |
//! | `store.append`  | shard index    | `Fail`                        |

use std::sync::Mutex;
use std::time::Duration;

/// What a matched rule does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Sleep this many milliseconds at the site. Executed inline by
    /// [`FaultScript::check`]; the caller sees [`FaultDirective::None`].
    DelayMs(u64),
    /// Panic at the site (message contains `"fault injected"`). Executed
    /// inline; the component's own containment (e.g. the shard's
    /// planner `catch_unwind`) is what's under test.
    Panic,
    /// Tell the caller to fail the operation (e.g. drop a journal append
    /// and trip the store fault flag, or shed the request as busy).
    Fail,
    /// Tell the caller to sever the connection without replying.
    KillConnection,
    /// Tell the caller to send a deliberately truncated frame, then
    /// sever the connection (a mid-frame kill).
    TruncateFrame,
}

/// What the caller must do after [`FaultScript::check`] returns (inline
/// actions — delays, panics — have already happened by then).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDirective {
    /// No rule fired (or an inline action already ran): proceed normally.
    None,
    /// Fail the operation as if the underlying resource had.
    Fail,
    /// Sever the connection without replying.
    KillConnection,
    /// Write a truncated frame, then sever the connection.
    TruncateFrame,
}

#[derive(Debug)]
struct Rule {
    site: String,
    /// `None` matches every key at the site.
    key: Option<u64>,
    /// Matching hits that pass through before the rule starts firing.
    skip: u64,
    /// Firings left (`u64::MAX` = unlimited).
    remaining: u64,
    /// Matching hits seen so far (fired or not).
    seen: u64,
    /// Times this rule has fired.
    fired: u64,
    action: FaultAction,
}

/// A deterministic, shareable schedule of scripted faults. See the
/// module docs for the site table. `Send + Sync`: one script is shared
/// by every thread of the component under test.
#[derive(Debug, Default)]
pub struct FaultScript {
    rules: Mutex<Vec<Rule>>,
}

impl FaultScript {
    /// An empty script: every [`check`](FaultScript::check) is a no-op.
    pub fn new() -> Self {
        FaultScript::default()
    }

    /// Adds a rule: at `site`, for hits matching `key` (`None` = any),
    /// let `skip` matching hits pass, then fire `action` on the next
    /// `times` matching hits. Rules are evaluated in insertion order;
    /// the first rule that fires on a hit wins (later rules still count
    /// the hit as seen).
    pub fn inject(
        &self,
        site: &str,
        key: Option<u64>,
        skip: u64,
        times: u64,
        action: FaultAction,
    ) -> &Self {
        self.rules
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Rule {
                site: site.to_string(),
                key,
                skip,
                remaining: times,
                seen: 0,
                fired: 0,
                action,
            });
        self
    }

    /// The injection point. Components call this at each site with the
    /// site's key; matched `DelayMs`/`Panic` rules act here, other
    /// actions come back as a [`FaultDirective`] for the caller.
    ///
    /// # Panics
    ///
    /// Panics exactly when a matched [`FaultAction::Panic`] rule fires —
    /// that is the scripted fault.
    pub fn check(&self, site: &str, key: u64) -> FaultDirective {
        let action = {
            let mut rules = self.rules.lock().unwrap_or_else(|e| e.into_inner());
            let mut fired = None;
            for rule in rules.iter_mut() {
                if rule.site != site || rule.key.is_some_and(|k| k != key) {
                    continue;
                }
                rule.seen += 1;
                if fired.is_none() && rule.seen > rule.skip && rule.remaining > 0 {
                    rule.remaining = rule.remaining.saturating_sub(1);
                    rule.fired += 1;
                    fired = Some(rule.action);
                }
            }
            fired
        };
        match action {
            None => FaultDirective::None,
            Some(FaultAction::DelayMs(ms)) => {
                std::thread::sleep(Duration::from_millis(ms));
                FaultDirective::None
            }
            Some(FaultAction::Panic) => {
                panic!("fault injected at {site} (key {key})")
            }
            Some(FaultAction::Fail) => FaultDirective::Fail,
            Some(FaultAction::KillConnection) => FaultDirective::KillConnection,
            Some(FaultAction::TruncateFrame) => FaultDirective::TruncateFrame,
        }
    }

    /// Total firings across every rule bound to `site` — how tests assert
    /// a scripted fault actually happened.
    pub fn fired(&self, site: &str) -> u64 {
        self.rules
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .filter(|r| r.site == site)
            .map(|r| r.fired)
            .sum()
    }

    /// Total matching hits seen across every rule bound to `site`.
    pub fn seen(&self, site: &str) -> u64 {
        self.rules
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .filter(|r| r.site == site)
            .map(|r| r.seen)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_script_is_a_noop() {
        let script = FaultScript::new();
        assert_eq!(script.check("shard.plan", 7), FaultDirective::None);
        assert_eq!(script.fired("shard.plan"), 0);
    }

    #[test]
    fn rules_fire_on_exact_hit_windows() {
        let script = FaultScript::new();
        script.inject("store.append", None, 2, 1, FaultAction::Fail);
        assert_eq!(script.check("store.append", 0), FaultDirective::None);
        assert_eq!(script.check("store.append", 1), FaultDirective::None);
        assert_eq!(script.check("store.append", 2), FaultDirective::Fail);
        assert_eq!(script.check("store.append", 3), FaultDirective::None);
        assert_eq!(script.fired("store.append"), 1);
        assert_eq!(script.seen("store.append"), 4);
    }

    #[test]
    fn keys_filter_hits() {
        let script = FaultScript::new();
        script.inject(
            "shard.plan",
            Some(9),
            0,
            u64::MAX,
            FaultAction::KillConnection,
        );
        assert_eq!(script.check("shard.plan", 8), FaultDirective::None);
        assert_eq!(
            script.check("shard.plan", 9),
            FaultDirective::KillConnection
        );
        assert_eq!(script.check("other.site", 9), FaultDirective::None);
    }

    #[test]
    #[should_panic(expected = "fault injected at shard.plan")]
    fn panic_action_panics_inline() {
        let script = FaultScript::new();
        script.inject("shard.plan", None, 0, 1, FaultAction::Panic);
        script.check("shard.plan", 3);
    }

    #[test]
    fn first_matching_rule_wins_but_all_count() {
        let script = FaultScript::new();
        script.inject("server.handle", None, 0, 1, FaultAction::KillConnection);
        script.inject("server.handle", None, 0, 1, FaultAction::TruncateFrame);
        assert_eq!(
            script.check("server.handle", 0),
            FaultDirective::KillConnection
        );
        // The first rule is exhausted; the second saw the first hit too,
        // so with skip=0 it fires now.
        assert_eq!(
            script.check("server.handle", 0),
            FaultDirective::TruncateFrame
        );
        assert_eq!(script.check("server.handle", 0), FaultDirective::None);
    }
}
