//! Shadow-partition planning: turning a miss curve and a target size into a
//! Talus configuration.
//!
//! Given a miss curve `m(s)` and a cache of size `s`, Talus (paper §IV):
//!
//! 1. computes the convex hull of `m`,
//! 2. finds the hull vertices α ≤ s < β bracketing `s` (Theorem 6),
//! 3. splits the cache into two shadow partitions of sizes `s1 = ρ·α` and
//!    `s2 = s − s1`, where `ρ = (β − s)/(β − α)` (Lemma 5), and
//! 4. steers a pseudo-random fraction ρ of accesses to the first partition.
//!
//! The first partition then emulates a cache of size α, the second a cache
//! of size β, and the total miss rate interpolates linearly between `m(α)`
//! and `m(β)` — i.e. it lies on the convex hull.

use crate::curve::MissCurve;
use crate::error::PlanError;
use crate::hull::ConvexHull;

/// Tuning knobs for [`plan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TalusOptions {
    /// Relative increase applied to ρ to build in a margin of safety
    /// (paper §VI-B). Increasing ρ by x% while keeping the partition sizes
    /// fixed shrinks the emulated α by x% and grows the emulated β by x%,
    /// pushing both away from the cliff. The paper determined 5% empirically.
    pub safety_margin: f64,
    /// Absolute tolerance when deciding whether the target size coincides
    /// with a hull vertex (in which case the cache runs unpartitioned).
    pub vertex_tolerance: f64,
}

impl TalusOptions {
    /// Options matching the paper's evaluated configuration (5% margin).
    pub fn new() -> Self {
        TalusOptions {
            safety_margin: 0.05,
            vertex_tolerance: 1e-9,
        }
    }

    /// Options with no safety margin: the exact textbook math. Useful for
    /// verifying the theory; real deployments should keep a margin.
    pub fn exact() -> Self {
        TalusOptions {
            safety_margin: 0.0,
            vertex_tolerance: 1e-9,
        }
    }

    /// Sets the safety margin (e.g. `0.05` for 5%).
    pub fn with_safety_margin(mut self, margin: f64) -> Self {
        self.safety_margin = margin;
        self
    }
}

impl Default for TalusOptions {
    fn default() -> Self {
        Self::new()
    }
}

/// A complete shadow-partition configuration for one cache (or one logical
/// partition of a partitioned cache).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShadowConfig {
    /// Total capacity being managed.
    pub total: f64,
    /// Hull vertex the first shadow partition emulates (the smaller cache).
    pub alpha: f64,
    /// Hull vertex the second shadow partition emulates (the larger cache).
    pub beta: f64,
    /// Fraction of accesses sampled into the α partition, *after* the
    /// safety-margin adjustment. In `(0, 1)`.
    pub rho: f64,
    /// The exact Lemma-5 sampling rate before the margin adjustment.
    pub ideal_rho: f64,
    /// Size of the α shadow partition (`ρ_ideal · α`).
    pub s1: f64,
    /// Size of the β shadow partition (`total − s1`).
    pub s2: f64,
    /// Miss metric Talus expects to achieve: the hull value at `total`
    /// (Eq. 5).
    pub expected_misses: f64,
}

impl ShadowConfig {
    /// Cache size the α partition emulates under the adjusted ρ:
    /// `s1 / ρ` (Theorem 4). With a positive margin this is slightly below
    /// the hull vertex α.
    pub fn emulated_alpha(&self) -> f64 {
        if self.rho > 0.0 {
            self.s1 / self.rho
        } else {
            0.0
        }
    }

    /// Cache size the β partition emulates under the adjusted ρ:
    /// `s2 / (1 − ρ)` (Theorem 4). With a positive margin this is slightly
    /// above the hull vertex β.
    pub fn emulated_beta(&self) -> f64 {
        self.s2 / (1.0 - self.rho)
    }

    /// Recomputes the sampling rate after a partitioning scheme has
    /// coarsened the partition sizes (paper §VI-B, "Talus on way
    /// partitioning"): with actual sizes `(s1, s2)`, sampling at
    /// `ρ = s1 / α` keeps the α partition emulating exactly α.
    ///
    /// Returns an updated configuration with the coarsened sizes. If
    /// `alpha` is zero (a bypass partition) the rate is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `s1_actual` or `s2_actual` is negative.
    pub fn coarsened(&self, s1_actual: f64, s2_actual: f64) -> ShadowConfig {
        assert!(
            s1_actual >= 0.0 && s2_actual >= 0.0,
            "sizes must be non-negative"
        );
        let mut cfg = *self;
        cfg.s1 = s1_actual;
        cfg.s2 = s2_actual;
        cfg.total = s1_actual + s2_actual;
        if self.alpha > 0.0 {
            cfg.rho = (s1_actual / self.alpha).clamp(0.0, MAX_RHO);
        }
        cfg
    }
}

/// The outcome of Talus planning at one size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TalusPlan {
    /// The target size sits on a hull vertex (or past the last one): the
    /// underlying policy is already efficient there, so the cache runs as a
    /// single partition receiving all accesses.
    Unpartitioned {
        /// The cache size.
        size: f64,
        /// Miss metric the policy achieves at this size.
        expected_misses: f64,
    },
    /// The target size falls strictly inside a non-convex bridge: split
    /// into two shadow partitions.
    Shadow(ShadowConfig),
}

impl TalusPlan {
    /// Miss metric this plan expects to achieve (the hull value).
    pub fn expected_misses(&self) -> f64 {
        match self {
            TalusPlan::Unpartitioned {
                expected_misses, ..
            } => *expected_misses,
            TalusPlan::Shadow(cfg) => cfg.expected_misses,
        }
    }

    /// The shadow configuration, if the plan partitions the cache.
    pub fn shadow(&self) -> Option<&ShadowConfig> {
        match self {
            TalusPlan::Shadow(cfg) => Some(cfg),
            TalusPlan::Unpartitioned { .. } => None,
        }
    }
}

/// Highest sampling rate we will configure; keeps `1 − ρ` bounded away from
/// zero so the β partition's emulated size stays finite.
const MAX_RHO: f64 = 0.999_9;

/// Plans a Talus configuration for a cache of `size` given the underlying
/// policy's miss curve.
///
/// Computes the hull internally; use [`plan_with_hull`] when planning many
/// sizes against one curve.
///
/// # Errors
///
/// Returns [`PlanError`] if `size` is negative/non-finite, below the curve's
/// smallest monitored size, or the options are invalid.
///
/// # Examples
///
/// The paper's §III worked example: a 4 MB cache bracketed by hull vertices
/// at 2 MB and 5 MB yields ρ = 1/3, s1 = 2/3 MB, s2 = 10/3 MB, 6 MPKI.
///
/// ```
/// use talus_core::{plan, MissCurve, TalusOptions, TalusPlan};
/// let curve = MissCurve::from_samples(
///     &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 10.0],
///     &[24.0, 18.0, 12.0, 12.0, 12.0, 3.0, 3.0],
/// )?;
/// let plan = plan(&curve, 4.0, TalusOptions::exact())?;
/// let cfg = plan.shadow().expect("4 MB is on the plateau");
/// assert!((cfg.rho - 1.0 / 3.0).abs() < 1e-9);
/// assert!((cfg.s1 - 2.0 / 3.0).abs() < 1e-9);
/// assert!((cfg.s2 - 10.0 / 3.0).abs() < 1e-9);
/// assert!((cfg.expected_misses - 6.0).abs() < 1e-9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn plan(curve: &MissCurve, size: f64, options: TalusOptions) -> Result<TalusPlan, PlanError> {
    plan_with_hull(&curve.convex_hull(), size, options)
}

/// Plans a Talus configuration against a precomputed hull.
///
/// # Errors
///
/// Same as [`plan`].
pub fn plan_with_hull(
    hull: &ConvexHull,
    size: f64,
    options: TalusOptions,
) -> Result<TalusPlan, PlanError> {
    if !size.is_finite() || size < 0.0 {
        return Err(PlanError::InvalidSize { size });
    }
    if !options.safety_margin.is_finite() || options.safety_margin < 0.0 {
        return Err(PlanError::InvalidMargin {
            margin: options.safety_margin,
        });
    }
    if size < hull.min_size() - options.vertex_tolerance {
        return Err(PlanError::SizeOutOfRange {
            size,
            min: hull.min_size(),
            max: hull.max_size(),
        });
    }
    // At or beyond the last vertex, or exactly on any vertex: the policy is
    // already on its hull; run unpartitioned.
    if size >= hull.max_size() || hull.is_vertex(size, options.vertex_tolerance) {
        return Ok(TalusPlan::Unpartitioned {
            size,
            expected_misses: hull.value_at(size),
        });
    }
    let (a, b) = hull
        .bracket(size)
        .expect("size is inside the hull domain and not past the last vertex");
    let (alpha, beta) = (a.size, b.size);
    debug_assert!(alpha < size && size < beta);

    // Lemma 5: rho is the normalised distance from s to beta.
    let ideal_rho = (beta - size) / (beta - alpha);
    let s1 = ideal_rho * alpha;
    let s2 = size - s1;
    // Eq. 5: linear interpolation of the endpoint miss rates.
    let expected_misses = ((beta - size) * a.misses + (size - alpha) * b.misses) / (beta - alpha);

    // Safety margin (§VI-B): raise the *sampling rate* while keeping the
    // partition sizes, which shrinks the emulated alpha and grows the
    // emulated beta, moving both off the cliff edge. Growing beta by the
    // margin m requires shrinking (1 − ρ) by m: ρ' = 1 − (1 − ρ)/(1 + m).
    // (Scaling ρ itself would protect nothing as ρ → 0, i.e. exactly in
    // the bypass-heavy plans where the cliff sits closest.)
    let rho = apply_margin(ideal_rho, options.safety_margin);

    Ok(TalusPlan::Shadow(ShadowConfig {
        total: size,
        alpha,
        beta,
        rho,
        ideal_rho,
        s1,
        s2,
        expected_misses,
    }))
}

/// Applies the §VI-B safety margin to a sampling rate: the emulated β
/// grows by `margin` (the emulated α shrinks correspondingly), keeping the
/// cached fraction of the stream safely below the larger vertex's knee.
///
/// Exposed so hardware layers that recompute ρ after coarsening can
/// re-apply the same adjustment.
///
/// # Panics
///
/// Panics if `rho` is outside `[0, 1]` or `margin` is negative.
pub fn apply_margin(rho: f64, margin: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&rho),
        "rho must be in [0, 1], got {rho}"
    );
    assert!(
        margin >= 0.0 && margin.is_finite(),
        "margin must be non-negative"
    );
    (1.0 - (1.0 - rho) / (1.0 + margin)).clamp(rho, MAX_RHO)
}

/// Evaluates the general shadow-partition miss formula (paper Eq. 2):
/// `m_shadow = ρ·m(s1/ρ) + (1−ρ)·m(s2/(1−ρ))`.
///
/// This is the miss metric of *any* two-partition split of the stream, not
/// just Talus's choice; Talus picks `(s1, s2, ρ)` so this lands on the hull.
/// Degenerate rates (`ρ = 0` or `ρ = 1`) reduce to a single partition.
///
/// # Panics
///
/// Panics if `rho` is outside `[0, 1]` or any size is negative.
pub fn shadow_miss_rate(curve: &MissCurve, s1: f64, s2: f64, rho: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&rho),
        "rho must be in [0, 1], got {rho}"
    );
    assert!(
        s1 >= 0.0 && s2 >= 0.0,
        "partition sizes must be non-negative"
    );
    let part1 = if rho > 0.0 {
        rho * curve.value_at(s1 / rho)
    } else {
        0.0
    };
    let part2 = if rho < 1.0 {
        (1.0 - rho) * curve.value_at(s2 / (1.0 - rho))
    } else {
        0.0
    };
    part1 + part2
}

/// The full miss curve Talus realises on top of `curve`: its convex hull,
/// resampled onto the original curve's size grid.
///
/// This is the dashed "Talus" line in the paper's Fig. 1 and Fig. 3, and the
/// curve Talus's pre-processing step hands to partitioning algorithms
/// (§VI-A).
pub fn talus_curve(curve: &MissCurve) -> MissCurve {
    let grid: Vec<f64> = curve.points().iter().map(|p| p.size).collect();
    curve
        .convex_hull()
        .to_curve_on_grid(&grid)
        .expect("curve grid is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig3_curve() -> MissCurve {
        MissCurve::from_samples(
            &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 10.0],
            &[24.0, 18.0, 12.0, 12.0, 12.0, 3.0, 3.0],
        )
        .unwrap()
    }

    #[test]
    fn paper_worked_example_exact() {
        let plan = plan(&fig3_curve(), 4.0, TalusOptions::exact()).unwrap();
        let cfg = plan.shadow().unwrap();
        assert_eq!(cfg.alpha, 2.0);
        assert_eq!(cfg.beta, 5.0);
        assert!((cfg.rho - 1.0 / 3.0).abs() < 1e-12);
        assert!((cfg.s1 - 2.0 / 3.0).abs() < 1e-12);
        assert!((cfg.s2 - 10.0 / 3.0).abs() < 1e-12);
        assert!((cfg.expected_misses - 6.0).abs() < 1e-12);
        assert!((cfg.emulated_alpha() - 2.0).abs() < 1e-12);
        assert!((cfg.emulated_beta() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn safety_margin_moves_emulated_sizes_off_the_cliff() {
        let plan = plan(&fig3_curve(), 4.0, TalusOptions::new()).unwrap();
        let cfg = plan.shadow().unwrap();
        // rho raised so that (1 - rho) shrinks by 5%; sizes unchanged.
        let expected_rho = 1.0 - (2.0 / 3.0) / 1.05;
        assert!((cfg.rho - expected_rho).abs() < 1e-12);
        assert!((cfg.s1 - 2.0 / 3.0).abs() < 1e-12);
        // alpha emulated smaller, beta emulated exactly 5% larger.
        assert!(cfg.emulated_alpha() < 2.0);
        assert!((cfg.emulated_beta() - 5.0 * 1.05).abs() < 1e-9);
    }

    #[test]
    fn margin_protects_bypass_plans_too() {
        // alpha = 0: scaling rho itself would do nothing; the corrected
        // margin still grows the emulated beta by 5%.
        let c = MissCurve::from_samples(&[0.0, 1.0, 2.0, 3.0], &[10.0, 10.0, 10.0, 1.0]).unwrap();
        let cfg = *plan(&c, 1.5, TalusOptions::new())
            .unwrap()
            .shadow()
            .unwrap();
        assert_eq!(cfg.alpha, 0.0);
        assert!(cfg.rho > cfg.ideal_rho);
        assert!((cfg.emulated_beta() - 3.0 * 1.05).abs() < 1e-9);
    }

    #[test]
    fn apply_margin_endpoints() {
        assert!((apply_margin(0.0, 0.05) - 0.05 / 1.05).abs() < 1e-12);
        assert_eq!(apply_margin(0.5, 0.0), 0.5);
        // Never exceeds MAX_RHO or drops below the input.
        assert!(apply_margin(0.9999, 0.5) <= 0.9999 + 1e-12);
        assert!(apply_margin(0.2, 0.1) >= 0.2);
    }

    #[test]
    fn plan_at_vertex_is_unpartitioned() {
        for &s in &[0.0, 2.0, 5.0, 10.0] {
            let p = plan(&fig3_curve(), s, TalusOptions::new()).unwrap();
            assert!(matches!(p, TalusPlan::Unpartitioned { .. }), "size {s}");
        }
    }

    #[test]
    fn plan_beyond_domain_is_unpartitioned() {
        let p = plan(&fig3_curve(), 64.0, TalusOptions::new()).unwrap();
        assert_eq!(
            p,
            TalusPlan::Unpartitioned {
                size: 64.0,
                expected_misses: 3.0
            }
        );
    }

    #[test]
    fn plan_rejects_negative_size() {
        let err = plan(&fig3_curve(), -1.0, TalusOptions::new()).unwrap_err();
        assert!(matches!(err, PlanError::InvalidSize { .. }));
    }

    #[test]
    fn plan_rejects_size_below_domain() {
        let c = MissCurve::from_samples(&[2.0, 5.0], &[12.0, 3.0]).unwrap();
        let err = plan(&c, 1.0, TalusOptions::new()).unwrap_err();
        assert!(matches!(err, PlanError::SizeOutOfRange { .. }));
    }

    #[test]
    fn plan_rejects_negative_margin() {
        let opts = TalusOptions::new().with_safety_margin(-0.1);
        let err = plan(&fig3_curve(), 4.0, opts).unwrap_err();
        assert!(matches!(err, PlanError::InvalidMargin { .. }));
    }

    #[test]
    fn plan_below_first_nonzero_vertex_bypasses() {
        // Curve whose hull starts at (0, m0): sizes inside the first bridge
        // get alpha = 0, i.e. the first partition is a pure bypass.
        let c = MissCurve::from_samples(&[0.0, 1.0, 2.0, 3.0], &[10.0, 10.0, 10.0, 1.0]).unwrap();
        let p = plan(&c, 1.5, TalusOptions::exact()).unwrap();
        let cfg = p.shadow().unwrap();
        assert_eq!(cfg.alpha, 0.0);
        assert_eq!(cfg.s1, 0.0);
        assert_eq!(cfg.s2, 1.5);
        // rho = (3 - 1.5) / 3 = 0.5 of accesses are bypassed.
        assert!((cfg.rho - 0.5).abs() < 1e-12);
        // Expected: halfway between m(0)=10 and m(3)=1.
        assert!((cfg.expected_misses - 5.5).abs() < 1e-12);
    }

    #[test]
    fn shadow_miss_rate_matches_plan_expectation() {
        let c = fig3_curve();
        let p = plan(&c, 4.0, TalusOptions::exact()).unwrap();
        let cfg = p.shadow().unwrap();
        let m = shadow_miss_rate(&c, cfg.s1, cfg.s2, cfg.rho);
        assert!((m - cfg.expected_misses).abs() < 1e-12);
    }

    #[test]
    fn shadow_miss_rate_degenerate_rates() {
        let c = fig3_curve();
        // rho = 1: everything goes to partition 1 of size 2 => m(2) = 12.
        assert!((shadow_miss_rate(&c, 2.0, 0.0, 1.0) - 12.0).abs() < 1e-12);
        // rho = 0: everything goes to partition 2 of size 5 => m(5) = 3.
        assert!((shadow_miss_rate(&c, 0.0, 5.0, 0.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn plan_sweep_traces_hull() {
        let c = fig3_curve();
        let hull = c.convex_hull();
        for i in 0..=100 {
            let s = 10.0 * i as f64 / 100.0;
            let p = plan_with_hull(&hull, s, TalusOptions::exact()).unwrap();
            let expect = hull.value_at(s);
            assert!(
                (p.expected_misses() - expect).abs() < 1e-9,
                "size {s}: plan {} vs hull {expect}",
                p.expected_misses()
            );
        }
    }

    #[test]
    fn coarsened_recomputes_rho() {
        let c = fig3_curve();
        let p = plan(&c, 4.0, TalusOptions::exact()).unwrap();
        let cfg = p.shadow().unwrap();
        // Way partitioning rounds s1 = 2/3 MB up to 1 MB (total still 4 MB).
        let coarse = cfg.coarsened(1.0, 3.0);
        assert!((coarse.rho - 0.5).abs() < 1e-12); // 1.0 / alpha=2.0
        assert!((coarse.emulated_alpha() - 2.0).abs() < 1e-12);
        assert_eq!(coarse.total, 4.0);
    }

    #[test]
    fn coarsened_with_zero_alpha_keeps_rho() {
        let c = MissCurve::from_samples(&[0.0, 1.0, 2.0, 3.0], &[10.0, 10.0, 10.0, 1.0]).unwrap();
        let cfg = *plan(&c, 1.5, TalusOptions::exact())
            .unwrap()
            .shadow()
            .unwrap();
        let coarse = cfg.coarsened(0.0, 2.0);
        assert_eq!(coarse.rho, cfg.rho);
        assert_eq!(coarse.total, 2.0);
    }

    #[test]
    fn talus_curve_is_convex_and_below_original() {
        let c = fig3_curve();
        let t = talus_curve(&c);
        assert!(t.is_convex(1e-9));
        for p in c.points() {
            assert!(t.value_at(p.size) <= p.misses + 1e-9);
        }
        // And it actually improves the plateau.
        assert!(t.value_at(4.0) < c.value_at(4.0));
    }

    #[test]
    fn expected_misses_accessor() {
        let p = TalusPlan::Unpartitioned {
            size: 1.0,
            expected_misses: 7.0,
        };
        assert_eq!(p.expected_misses(), 7.0);
        assert!(p.shadow().is_none());
    }
}
