//! Lower convex hulls of miss curves.
//!
//! Talus traces the convex hull of the underlying policy's miss curve
//! (paper §III, Theorem 6). The hull is "the curve produced by stretching a
//! taut rubber band across the curve from below": the tightest convex
//! function that never exceeds the original curve on its domain.
//!
//! The paper computes hulls with the three-coins algorithm [31]; for a curve
//! that is already sorted by size (a function, not a general polygon), the
//! standard single-pass monotone-chain scan used here is the same
//! stack-based linear-time procedure.

use crate::curve::{interpolate, CurvePoint, MissCurve};

/// The lower convex hull of a [`MissCurve`].
///
/// A hull is itself a piecewise-linear curve whose vertices are a subset of
/// the original curve's points, beginning at the curve's first point and
/// ending at its last. Between vertices it *bridges* non-convex regions
/// (plateaus followed by cliffs) with straight chords — exactly the segments
/// Talus realises by shadow partitioning.
///
/// # Examples
///
/// ```
/// use talus_core::MissCurve;
/// // Plateau from 2 to 4 MB, cliff at 5 MB (paper Fig. 3 shape).
/// let curve = MissCurve::from_samples(
///     &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 10.0],
///     &[24.0, 18.0, 12.0, 12.0, 12.0, 3.0, 3.0],
/// )?;
/// let hull = curve.convex_hull();
/// // The hull bridges the plateau: vertices at 0, 2, 5 and 10 MB.
/// let sizes: Vec<f64> = hull.vertices().iter().map(|p| p.size).collect();
/// assert_eq!(sizes, vec![0.0, 2.0, 5.0, 10.0]);
/// # Ok::<(), talus_core::CurveError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ConvexHull {
    vertices: Vec<CurvePoint>,
}

impl ConvexHull {
    /// Computes the lower convex hull of `curve` in a single linear pass.
    pub fn of_curve(curve: &MissCurve) -> ConvexHull {
        Self::of_points(curve.points())
    }

    /// Computes the lower convex hull of sorted points.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `points` is empty or unsorted; `MissCurve`
    /// construction guarantees both.
    pub(crate) fn of_points(points: &[CurvePoint]) -> ConvexHull {
        debug_assert!(!points.is_empty());
        let mut hull: Vec<CurvePoint> = Vec::with_capacity(points.len().min(16));
        for &p in points {
            // Pop the last hull vertex while it lies on or above the chord
            // from its predecessor to `p` (non-left turn in the lower hull).
            while hull.len() >= 2 {
                let a = hull[hull.len() - 2];
                let b = hull[hull.len() - 1];
                // Cross product of (b - a) x (p - a); b is kept only if it
                // lies strictly below the chord a->p.
                let cross = (b.size - a.size) * (p.misses - a.misses)
                    - (b.misses - a.misses) * (p.size - a.size);
                if cross <= 0.0 {
                    hull.pop();
                } else {
                    break;
                }
            }
            hull.push(p);
        }
        ConvexHull { vertices: hull }
    }

    /// The hull's vertices: the points where the hull touches the original
    /// curve, in increasing size order.
    pub fn vertices(&self) -> &[CurvePoint] {
        &self.vertices
    }

    /// Number of hull vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Whether the hull has no vertices. Always `false` for a hull built
    /// from a valid curve; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Smallest size covered by the hull.
    pub fn min_size(&self) -> f64 {
        self.vertices[0].size
    }

    /// Largest size covered by the hull.
    pub fn max_size(&self) -> f64 {
        self.vertices[self.vertices.len() - 1].size
    }

    /// Evaluates the hull at `size` (piecewise-linear, clamped outside the
    /// domain).
    pub fn value_at(&self, size: f64) -> f64 {
        interpolate(&self.vertices, size)
    }

    /// The neighbouring hull vertices around `size` (Theorem 6's α and β):
    /// α is the largest vertex size ≤ `size`, β the smallest vertex size
    /// > `size`.
    ///
    /// Returns `None` if `size` lies outside the hull's domain, or if `size`
    /// is at (or beyond) the last vertex, where no bracketing pair exists
    /// and the cache should run unpartitioned.
    ///
    /// # Examples
    ///
    /// ```
    /// use talus_core::MissCurve;
    /// let curve = MissCurve::from_samples(
    ///     &[0.0, 2.0, 3.0, 4.0, 5.0, 10.0],
    ///     &[24.0, 12.0, 12.0, 12.0, 3.0, 3.0],
    /// )?;
    /// let hull = curve.convex_hull();
    /// let (alpha, beta) = hull.bracket(4.0).unwrap();
    /// assert_eq!((alpha.size, beta.size), (2.0, 5.0)); // paper §III
    /// # Ok::<(), talus_core::CurveError>(())
    /// ```
    pub fn bracket(&self, size: f64) -> Option<(CurvePoint, CurvePoint)> {
        if size < self.min_size() || size >= self.max_size() {
            return None;
        }
        // Index of the first vertex with vertex.size > size.
        let idx = self.vertices.partition_point(|v| v.size <= size);
        debug_assert!(idx >= 1 && idx < self.vertices.len());
        Some((self.vertices[idx - 1], self.vertices[idx]))
    }

    /// Whether `size` coincides (within `tol`) with a hull vertex — i.e. a
    /// size where the original policy is already efficient and Talus leaves
    /// the cache effectively unpartitioned.
    pub fn is_vertex(&self, size: f64, tol: f64) -> bool {
        self.vertices.iter().any(|v| (v.size - size).abs() <= tol)
    }

    /// Converts the hull into a [`MissCurve`] over its vertices.
    ///
    /// This is the curve handed to partitioning algorithms in Talus's
    /// pre-processing step (paper §VI-A): guaranteed convex, so convex
    /// optimisation (hill climbing) is exact on it.
    pub fn to_curve(&self) -> MissCurve {
        MissCurve::new(self.vertices.iter().copied()).expect("hull vertices are valid curve points")
    }

    /// Converts the hull into a [`MissCurve`] sampled on the given grid.
    ///
    /// # Errors
    ///
    /// Returns an error if `grid` is empty or not strictly increasing.
    pub fn to_curve_on_grid(&self, grid: &[f64]) -> Result<MissCurve, crate::CurveError> {
        MissCurve::new(grid.iter().map(|&s| CurvePoint::new(s, self.value_at(s))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig3_curve() -> MissCurve {
        MissCurve::from_samples(
            &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 10.0],
            &[24.0, 18.0, 12.0, 12.0, 12.0, 3.0, 3.0],
        )
        .unwrap()
    }

    #[test]
    fn hull_of_fig3_bridges_the_plateau() {
        let hull = fig3_curve().convex_hull();
        let sizes: Vec<f64> = hull.vertices().iter().map(|p| p.size).collect();
        assert_eq!(sizes, vec![0.0, 2.0, 5.0, 10.0]);
        // Talus's §III headline number: 6 MPKI at 4 MB.
        assert!((hull.value_at(4.0) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn hull_of_convex_curve_is_identity() {
        let c = MissCurve::from_samples(&[0.0, 2.0, 5.0, 10.0], &[24.0, 12.0, 3.0, 3.0]).unwrap();
        let hull = c.convex_hull();
        assert_eq!(hull.vertices(), c.points());
    }

    #[test]
    fn hull_of_single_point() {
        let c = MissCurve::from_samples(&[4.0], &[7.0]).unwrap();
        let hull = c.convex_hull();
        assert_eq!(hull.len(), 1);
        assert_eq!(hull.value_at(0.0), 7.0);
        assert_eq!(hull.value_at(9.0), 7.0);
        assert_eq!(hull.bracket(4.0), None);
    }

    #[test]
    fn hull_of_two_points() {
        let c = MissCurve::from_samples(&[0.0, 8.0], &[10.0, 2.0]).unwrap();
        let hull = c.convex_hull();
        assert_eq!(hull.len(), 2);
        assert_eq!(hull.value_at(4.0), 6.0);
    }

    #[test]
    fn hull_never_exceeds_curve() {
        let c = fig3_curve();
        let hull = c.convex_hull();
        for i in 0..=100 {
            let s = 10.0 * i as f64 / 100.0;
            assert!(
                hull.value_at(s) <= c.value_at(s) + 1e-12,
                "hull above curve at {s}"
            );
        }
    }

    #[test]
    fn hull_is_convex() {
        let hull = fig3_curve().convex_hull();
        assert!(hull.to_curve().is_convex(1e-12));
    }

    #[test]
    fn hull_drops_collinear_interior_points() {
        // Points on a straight line: only the endpoints are vertices.
        let c = MissCurve::from_samples(&[0.0, 1.0, 2.0, 3.0], &[6.0, 4.0, 2.0, 0.0]).unwrap();
        let hull = c.convex_hull();
        assert_eq!(hull.len(), 2);
        assert_eq!(hull.vertices()[0], CurvePoint::new(0.0, 6.0));
        assert_eq!(hull.vertices()[1], CurvePoint::new(3.0, 0.0));
    }

    #[test]
    fn hull_handles_libquantum_shape() {
        // Flat at 33 until 32, then zero: hull is the chord from (0,33) to
        // (32,0), then flat.
        let sizes: Vec<f64> = (0..=40).map(|i| i as f64).collect();
        let misses: Vec<f64> = sizes
            .iter()
            .map(|&s| if s < 32.0 { 33.0 } else { 0.1 })
            .collect();
        let c = MissCurve::from_samples(&sizes, &misses).unwrap();
        let hull = c.convex_hull();
        assert_eq!(hull.vertices()[0].size, 0.0);
        assert!(hull.is_vertex(32.0, 1e-9));
        // Halfway along, Talus gets roughly half the misses.
        let mid = hull.value_at(16.0);
        assert!((mid - 33.0 / 2.0).abs() < 0.2, "got {mid}");
    }

    #[test]
    fn bracket_at_vertex_returns_next_segment() {
        let hull = fig3_curve().convex_hull();
        // At an interior vertex, alpha == the vertex itself.
        let (a, b) = hull.bracket(2.0).unwrap();
        assert_eq!(a.size, 2.0);
        assert_eq!(b.size, 5.0);
    }

    #[test]
    fn bracket_outside_domain_is_none() {
        let hull = fig3_curve().convex_hull();
        assert_eq!(hull.bracket(-1.0), None);
        assert_eq!(hull.bracket(10.0), None);
        assert_eq!(hull.bracket(11.0), None);
    }

    #[test]
    fn bracket_of_paper_example() {
        let hull = fig3_curve().convex_hull();
        let (a, b) = hull.bracket(4.0).unwrap();
        assert_eq!(a.size, 2.0);
        assert_eq!(b.size, 5.0);
        assert_eq!(a.misses, 12.0);
        assert_eq!(b.misses, 3.0);
    }

    #[test]
    fn to_curve_on_grid_resamples() {
        let hull = fig3_curve().convex_hull();
        let c = hull.to_curve_on_grid(&[0.0, 4.0, 8.0]).unwrap();
        assert!((c.value_at(4.0) - 6.0).abs() < 1e-9);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn hull_touches_curve_at_vertices() {
        let c = fig3_curve();
        let hull = c.convex_hull();
        for v in hull.vertices() {
            assert!((c.value_at(v.size) - v.misses).abs() < 1e-12);
        }
    }

    #[test]
    fn hull_of_noisy_nonmonotone_curve() {
        let c = MissCurve::from_samples(&[0.0, 1.0, 2.0, 3.0, 4.0], &[10.0, 8.5, 9.0, 4.0, 4.2])
            .unwrap();
        let hull = c.convex_hull();
        assert!(hull.to_curve().is_convex(1e-12));
        for p in c.points() {
            assert!(hull.value_at(p.size) <= p.misses + 1e-12);
        }
    }
}
