//! Interchange limits: shared bounds for serialized core types.
//!
//! Any component that moves [`MissCurve`](crate::MissCurve)s or cache
//! ids across a process boundary — today `talus-serve`'s length-prefixed
//! wire protocol, tomorrow a persistence layer — needs agreed-on bounds
//! so a decoder can reject hostile input *before* allocating for it.
//! The constants live here, next to the types they bound, because every
//! producer and consumer of an encoded curve must agree on them; the
//! frame layout itself (headers, opcodes, versioning) belongs to the
//! transport crates.
//!
//! These are protocol constants: changing any of them is a wire-format
//! change and must bump the transport's version byte.

/// Largest frame payload a decoder will accept, in bytes (1 MiB). A
/// length prefix above this is rejected *before* any buffer is
/// allocated, so a hostile 4-GiB length field costs the receiver
/// nothing.
pub const WIRE_MAX_FRAME_LEN: u32 = 1 << 20;

/// Most sample points in one encoded miss curve. Real monitors emit
/// tens of points (a UMON has one per way; the sampled Mattson monitor
/// log-buckets); 4096 leaves two orders of magnitude of headroom while
/// keeping the worst-case curve ~64 KiB on the wire.
pub const WIRE_MAX_CURVE_POINTS: u32 = 4096;

/// Most (cache, tenant, curve) entries in one encoded submission batch.
/// Batching amortizes framing, but a batch is also the atomic unit a
/// receiver must buffer before applying, so it stays bounded.
pub const WIRE_MAX_BATCH: u32 = 1024;

/// Most tenants in one registered logical cache. The service allocates
/// one curve slot per tenant at registration, so this bounds the
/// allocation a single remote register request can cause.
pub const WIRE_MAX_TENANTS: u32 = 1024;

/// Most cache ids in one encoded id list (epoch-report fields). With
/// 8-byte ids this is at most half a maximum frame.
pub const WIRE_MAX_IDS: u32 = WIRE_MAX_FRAME_LEN / 16;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_case_curve_fits_a_frame() {
        // One curve of maximum points (16 bytes per point plus the count)
        // must encode well within a frame, with room for batch framing.
        let worst_curve = 4 + 16 * WIRE_MAX_CURVE_POINTS;
        assert!(worst_curve * 4 < WIRE_MAX_FRAME_LEN);
    }

    #[test]
    fn id_lists_fit_a_frame() {
        assert!(WIRE_MAX_IDS * 8 <= WIRE_MAX_FRAME_LEN / 2);
    }
}
