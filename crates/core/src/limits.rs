//! Interchange limits: shared bounds for serialized core types.
//!
//! Any component that moves [`MissCurve`](crate::MissCurve)s or cache
//! ids across a process boundary — today `talus-serve`'s length-prefixed
//! wire protocol, tomorrow a persistence layer — needs agreed-on bounds
//! so a decoder can reject hostile input *before* allocating for it.
//! The constants live here, next to the types they bound, because every
//! producer and consumer of an encoded curve must agree on them; the
//! frame layout itself (headers, opcodes, versioning) belongs to the
//! transport crates.
//!
//! These are protocol constants: changing any of them is a wire-format
//! change and must bump the transport's version byte.

/// Largest frame payload a decoder will accept, in bytes (1 MiB). A
/// length prefix above this is rejected *before* any buffer is
/// allocated, so a hostile 4-GiB length field costs the receiver
/// nothing.
pub const WIRE_MAX_FRAME_LEN: u32 = 1 << 20;

/// Most sample points in one encoded miss curve. Real monitors emit
/// tens of points (a UMON has one per way; the sampled Mattson monitor
/// log-buckets); 4096 leaves two orders of magnitude of headroom while
/// keeping the worst-case curve ~64 KiB on the wire.
pub const WIRE_MAX_CURVE_POINTS: u32 = 4096;

/// Most (cache, tenant, curve) entries in one encoded submission batch.
/// Batching amortizes framing, but a batch is also the atomic unit a
/// receiver must buffer before applying, so it stays bounded.
pub const WIRE_MAX_BATCH: u32 = 1024;

/// Most tenants in one registered logical cache. The service allocates
/// one curve slot per tenant at registration, so this bounds the
/// allocation a single remote register request can cause.
pub const WIRE_MAX_TENANTS: u32 = 1024;

/// Most cache ids in one encoded id list (epoch-report fields). With
/// 8-byte ids this is at most half a maximum frame.
pub const WIRE_MAX_IDS: u32 = WIRE_MAX_FRAME_LEN / 16;

/// Most per-shard entries in one encoded health report. Shard counts are
/// a deployment knob (roughly core counts), so this is generous; with
/// ~25 bytes per shard a maximum health report stays ~100 KiB.
pub const WIRE_MAX_SHARDS: u32 = 4096;

/// Largest journal-record payload `talus-store` will read back, in bytes.
/// Like [`WIRE_MAX_FRAME_LEN`], a length prefix above this is rejected
/// *before* any buffer is allocated — a corrupt or hostile length field
/// costs the reader nothing. Sized to hold a full plan record for a cache
/// of [`WIRE_MAX_TENANTS`] tenants, or a curve of
/// [`WIRE_MAX_CURVE_POINTS`] points, with generous headroom.
pub const STORE_MAX_RECORD_LEN: u32 = 1 << 18;

/// Most drained cache ids in one journal epoch-cut record. A store shard
/// mirrors one serve shard, whose epoch batch is bounded by the service
/// (default 64); this leaves room for deliberately large batches while
/// keeping a cut record well under [`STORE_MAX_RECORD_LEN`].
pub const STORE_MAX_CUT_IDS: u32 = 1 << 14;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_case_curve_fits_a_frame() {
        // One curve of maximum points (16 bytes per point plus the count)
        // must encode well within a frame, with room for batch framing.
        let worst_curve = 4 + 16 * WIRE_MAX_CURVE_POINTS;
        assert!(worst_curve * 4 < WIRE_MAX_FRAME_LEN);
    }

    #[test]
    fn id_lists_fit_a_frame() {
        assert!(WIRE_MAX_IDS * 8 <= WIRE_MAX_FRAME_LEN / 2);
    }

    #[test]
    fn worst_case_health_report_fits_a_frame() {
        // Per-shard body: caches + pending + quarantined (u64s) + state
        // byte; plus the fixed header fields and a full quarantined id
        // list sharing the frame with it.
        let per_shard = 8 + 8 + 8 + 1;
        assert!(64 + WIRE_MAX_SHARDS * per_shard < WIRE_MAX_FRAME_LEN / 2);
    }

    #[test]
    fn worst_case_journal_records_fit_the_record_cap() {
        // A maximum-point curve record (16 bytes per point plus framing).
        assert!(64 + 4 + 16 * WIRE_MAX_CURVE_POINTS < STORE_MAX_RECORD_LEN);
        // A plan record for a maximum-tenant cache: each tenant costs at
        // most a capacity, a tag, and the 8-field shadow configuration.
        assert!(64 + WIRE_MAX_TENANTS * (8 + 1 + 8 * 8) < STORE_MAX_RECORD_LEN);
        // An epoch-cut record full of 8-byte ids.
        assert!(64 + 8 * STORE_MAX_CUT_IDS < STORE_MAX_RECORD_LEN);
    }
}
