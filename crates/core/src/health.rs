//! Health-reporting types for a reconfiguration plane.
//!
//! The partial-failure contract of the serving layer is that every
//! degradation is a *bounded, observable event*: a planner panic
//! quarantines one cache, a dead or stuck epoch worker degrades one
//! shard, a journal write error trips the store fault flag — and all of
//! it is visible in one [`PlaneHealth`] snapshot, served locally by the
//! plane and remotely via the wire protocol's `Health` request. The
//! types live here (not in the serving crate) because they cross the
//! process boundary: client, server, and any future multi-process
//! topology must agree on them, exactly like the [`limits`](crate::limits).

/// Planning state of one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardState {
    /// The shard plans normally (on its worker thread, if threaded).
    Ok,
    /// The shard's epoch worker died or missed an epoch deadline; epochs
    /// fall back to leader-planning the shard. Plans still publish —
    /// degraded means slower, never wrong.
    Degraded,
}

/// Health of one shard of the plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardHealth {
    /// Caches registered on the shard.
    pub caches: u64,
    /// Dirty caches queued on the shard.
    pub pending: u64,
    /// Caches quarantined on the shard (planner panicked on them; their
    /// last-good snapshots keep serving).
    pub quarantined: u64,
    /// Whether the shard's epochs run normally or on the degraded path.
    pub state: ShardState,
}

/// State of the plane's journal sink, if one is attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreHealth {
    /// No journal sink attached (the plane is ephemeral by choice).
    None,
    /// The sink is attached and appending.
    Ok,
    /// The sink hit a write error and is silently dropping appends; the
    /// on-disk journal is a valid prefix of history up to the fault, but
    /// a restart will lose everything after it.
    Faulted,
}

/// One observable snapshot of the whole plane's failure state: per-shard
/// status, quarantined caches, epoch progress, journal fault state, and
/// (when served over RPC) connection-admission counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlaneHealth {
    /// Epochs run so far (plane-wide).
    pub epochs: u64,
    /// Caches registered, summed across shards.
    pub caches: u64,
    /// Dirty caches queued, summed across shards.
    pub pending: u64,
    /// Raw ids of every quarantined cache, ascending.
    pub quarantined: Vec<u64>,
    /// Per-shard health, in shard order.
    pub shards: Vec<ShardHealth>,
    /// Journal sink state.
    pub store: StoreHealth,
    /// Connections currently served (0 when not fronted by an RPC
    /// server).
    pub connections: u64,
    /// Connections rejected as over-capacity since the server started
    /// (0 when not fronted by an RPC server).
    pub rejected: u64,
}

impl PlaneHealth {
    /// Shards on the degraded planning path.
    pub fn degraded(&self) -> u64 {
        self.shards
            .iter()
            .filter(|s| s.state == ShardState::Degraded)
            .count() as u64
    }

    /// Shards planning normally.
    pub fn ok(&self) -> u64 {
        self.shards.len() as u64 - self.degraded()
    }

    /// Whether nothing has failed: no degraded shard, no quarantined
    /// cache, and the journal (if any) is not faulted.
    pub fn is_healthy(&self) -> bool {
        self.degraded() == 0 && self.quarantined.is_empty() && self.store != StoreHealth::Faulted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(state: ShardState, quarantined: u64) -> ShardHealth {
        ShardHealth {
            caches: 4,
            pending: 0,
            quarantined,
            state,
        }
    }

    #[test]
    fn healthy_plane_counts() {
        let h = PlaneHealth {
            epochs: 3,
            caches: 8,
            pending: 0,
            quarantined: vec![],
            shards: vec![shard(ShardState::Ok, 0), shard(ShardState::Ok, 0)],
            store: StoreHealth::None,
            connections: 0,
            rejected: 0,
        };
        assert!(h.is_healthy());
        assert_eq!((h.ok(), h.degraded()), (2, 0));
    }

    #[test]
    fn each_failure_mode_breaks_health() {
        let base = PlaneHealth {
            epochs: 0,
            caches: 0,
            pending: 0,
            quarantined: vec![],
            shards: vec![shard(ShardState::Ok, 0)],
            store: StoreHealth::Ok,
            connections: 1,
            rejected: 9,
        };
        assert!(
            base.is_healthy(),
            "rejected connections alone are not ill health"
        );
        let mut degraded = base.clone();
        degraded.shards[0].state = ShardState::Degraded;
        assert!(!degraded.is_healthy());
        let mut quarantined = base.clone();
        quarantined.quarantined = vec![7];
        assert!(!quarantined.is_healthy());
        let mut faulted = base;
        faulted.store = StoreHealth::Faulted;
        assert!(!faulted.is_healthy());
    }
}
