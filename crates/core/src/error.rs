//! Error types for miss-curve construction and Talus planning.

use std::error::Error;
use std::fmt;

/// Error produced when constructing or validating a [`MissCurve`].
///
/// [`MissCurve`]: crate::MissCurve
#[derive(Debug, Clone, PartialEq)]
pub enum CurveError {
    /// The curve has no points.
    Empty,
    /// Curve sizes are not strictly increasing at the given index.
    NonIncreasingSizes {
        /// Index of the offending point (the second of the pair).
        index: usize,
    },
    /// A point has a negative or non-finite miss value.
    InvalidMissValue {
        /// Index of the offending point.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// A point has a negative or non-finite size.
    InvalidSize {
        /// Index of the offending point.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// Two input slices that must be of equal length were not.
    LengthMismatch {
        /// Length of the size slice.
        sizes: usize,
        /// Length of the miss slice.
        misses: usize,
    },
}

impl fmt::Display for CurveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CurveError::Empty => write!(f, "miss curve has no points"),
            CurveError::NonIncreasingSizes { index } => {
                write!(
                    f,
                    "curve sizes are not strictly increasing at index {index}"
                )
            }
            CurveError::InvalidMissValue { index, value } => {
                write!(f, "invalid miss value {value} at index {index}")
            }
            CurveError::InvalidSize { index, value } => {
                write!(f, "invalid size {value} at index {index}")
            }
            CurveError::LengthMismatch { sizes, misses } => {
                write!(
                    f,
                    "size slice has {sizes} entries but miss slice has {misses}"
                )
            }
        }
    }
}

impl Error for CurveError {}

/// Error produced when computing a Talus shadow-partition plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// The requested size is outside the domain covered by the miss curve.
    SizeOutOfRange {
        /// The requested total cache size.
        size: f64,
        /// Smallest size covered by the curve.
        min: f64,
        /// Largest size covered by the curve.
        max: f64,
    },
    /// The requested size is negative or non-finite.
    InvalidSize {
        /// The offending value.
        size: f64,
    },
    /// The safety margin is negative or non-finite.
    InvalidMargin {
        /// The offending value.
        margin: f64,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::SizeOutOfRange { size, min, max } => {
                write!(
                    f,
                    "size {size} lies outside the curve domain [{min}, {max}]"
                )
            }
            PlanError::InvalidSize { size } => write!(f, "invalid target size {size}"),
            PlanError::InvalidMargin { margin } => {
                write!(f, "invalid safety margin {margin}")
            }
        }
    }
}

impl Error for PlanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs: Vec<Box<dyn Error>> = vec![
            Box::new(CurveError::Empty),
            Box::new(CurveError::NonIncreasingSizes { index: 3 }),
            Box::new(CurveError::InvalidMissValue {
                index: 1,
                value: -1.0,
            }),
            Box::new(CurveError::InvalidSize {
                index: 0,
                value: f64::NAN,
            }),
            Box::new(CurveError::LengthMismatch {
                sizes: 2,
                misses: 3,
            }),
            Box::new(PlanError::SizeOutOfRange {
                size: 9.0,
                min: 0.0,
                max: 4.0,
            }),
            Box::new(PlanError::InvalidSize { size: -2.0 }),
            Box::new(PlanError::InvalidMargin { margin: -0.1 }),
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CurveError>();
        assert_send_sync::<PlanError>();
    }
}
