//! Optimal cache bypassing, and why Talus beats it (paper §V-C).
//!
//! Bypassing sends a fraction `1 − ρ` of accesses straight to memory so
//! that the remaining `ρ` fraction behaves like a larger cache of size
//! `s/ρ` (Theorem 4). Corollary 8 shows this is a *special case* of shadow
//! partitioning — a split between a partition of size `s` and a partition
//! of size zero — so its miss rate is a chord from `(0, m(0))` to
//! `(s0, m(s0))`, which can never undercut the convex hull Talus traces.
//!
//! This module computes the *optimal* bypass rate for a given curve and
//! size, used by the paper's Figs. 5 and 6 to contrast with Talus.

use crate::curve::MissCurve;
use crate::error::PlanError;

/// An optimal-bypassing decision at one cache size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BypassPlan {
    /// Cache size being managed.
    pub size: f64,
    /// Fraction of accesses admitted to the cache (the rest bypass).
    /// `rho == 1` means bypassing does not help at this size.
    pub rho: f64,
    /// The cache size the admitted stream emulates: `size / rho`.
    pub emulated_size: f64,
    /// Total expected miss metric: admitted misses plus bypassed accesses.
    pub expected_misses: f64,
}

impl BypassPlan {
    /// Miss contribution of the admitted (non-bypassed) stream:
    /// `ρ · m(s/ρ)` — the dotted line in the paper's Fig. 5.
    pub fn admitted_misses(&self, curve: &MissCurve) -> f64 {
        self.rho * curve.value_at(self.emulated_size)
    }

    /// Miss contribution of the bypassed stream: `(1 − ρ) · m(0)` — every
    /// bypassed access is a miss. The dashed line in the paper's Fig. 5.
    pub fn bypassed_misses(&self, curve: &MissCurve) -> f64 {
        (1.0 - self.rho) * curve.value_at(0.0)
    }
}

/// Finds the bypass rate minimising total misses at `size` (paper Fig. 5).
///
/// The bypass miss rate at admitted-stream size `s0 = size/ρ` is the chord
/// from `(0, m(0))` to `(s0, m(s0))` evaluated at `size`; on a
/// piecewise-linear curve the optimum is attained at a knot, so the search
/// is a linear scan over knots with `s0 ≥ size`.
///
/// # Errors
///
/// Returns [`PlanError::InvalidSize`] if `size` is negative or non-finite.
///
/// # Examples
///
/// On the paper's §III example at 4 MB, optimal bypassing admits 80% of
/// accesses (emulating the 5 MB cache) and achieves 7.2 MPKI — better than
/// LRU's 12 but worse than Talus's 6.
///
/// ```
/// use talus_core::{bypass::optimal_bypass, MissCurve};
/// let curve = MissCurve::from_samples(
///     &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 10.0],
///     &[24.0, 18.0, 12.0, 12.0, 12.0, 3.0, 3.0],
/// )?;
/// let plan = optimal_bypass(&curve, 4.0)?;
/// assert!((plan.rho - 0.8).abs() < 1e-9);
/// assert!((plan.emulated_size - 5.0).abs() < 1e-9);
/// assert!((plan.expected_misses - 7.2).abs() < 1e-9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn optimal_bypass(curve: &MissCurve, size: f64) -> Result<BypassPlan, PlanError> {
    if !size.is_finite() || size < 0.0 {
        return Err(PlanError::InvalidSize { size });
    }
    let m0 = curve.value_at(0.0);
    // rho = 1 (no bypassing) is always feasible.
    let mut best = BypassPlan {
        size,
        rho: 1.0,
        emulated_size: size,
        expected_misses: curve.value_at(size),
    };
    if size == 0.0 {
        // Zero-size cache: everything misses regardless of rho.
        return Ok(best);
    }
    for p in curve.points() {
        if p.size <= size {
            continue;
        }
        let rho = size / p.size;
        let misses = rho * p.misses + (1.0 - rho) * m0;
        if misses < best.expected_misses {
            best = BypassPlan {
                size,
                rho,
                emulated_size: p.size,
                expected_misses: misses,
            };
        }
    }
    Ok(best)
}

/// The miss curve achieved by optimal bypassing at every size on the
/// curve's grid (the dashed "Bypassing" line in the paper's Fig. 6).
pub fn optimal_bypass_curve(curve: &MissCurve) -> MissCurve {
    MissCurve::new(curve.points().iter().map(|p| {
        let plan = optimal_bypass(curve, p.size).expect("grid sizes are valid");
        (p.size, plan.expected_misses)
    }))
    .expect("curve grid is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::talus_curve;

    fn fig3_curve() -> MissCurve {
        MissCurve::from_samples(
            &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 10.0],
            &[24.0, 18.0, 12.0, 12.0, 12.0, 3.0, 3.0],
        )
        .unwrap()
    }

    #[test]
    fn paper_fig5_example() {
        // At 4 MB the best bypass admits 4/5 of accesses into an emulated
        // 5 MB cache: 0.8*3 + 0.2*24 = 7.2 MPKI ("roughly 8" in the text).
        let plan = optimal_bypass(&fig3_curve(), 4.0).unwrap();
        assert!((plan.rho - 0.8).abs() < 1e-12);
        assert!((plan.expected_misses - 7.2).abs() < 1e-12);
        // Decomposition shown in Fig. 5.
        let c = fig3_curve();
        assert!((plan.admitted_misses(&c) - 2.4).abs() < 1e-12);
        assert!((plan.bypassed_misses(&c) - 4.8).abs() < 1e-12);
        assert!(
            (plan.admitted_misses(&c) + plan.bypassed_misses(&c) - plan.expected_misses).abs()
                < 1e-12
        );
    }

    #[test]
    fn bypass_never_beats_talus() {
        // Corollary 8: bypass curve lies on or above the hull.
        let c = fig3_curve();
        let talus = talus_curve(&c);
        let bypass = optimal_bypass_curve(&c);
        for p in bypass.points() {
            assert!(
                p.misses >= talus.value_at(p.size) - 1e-9,
                "bypass below hull at {}",
                p.size
            );
        }
    }

    #[test]
    fn bypass_never_worse_than_original() {
        // rho = 1 is always an option.
        let c = fig3_curve();
        let bypass = optimal_bypass_curve(&c);
        for p in c.points() {
            assert!(bypass.value_at(p.size) <= p.misses + 1e-12);
        }
    }

    #[test]
    fn bypass_useless_on_convex_curve() {
        let c = MissCurve::from_samples(&[0.0, 2.0, 5.0, 10.0], &[24.0, 12.0, 3.0, 3.0]).unwrap();
        for &s in &[0.0, 1.0, 2.0, 3.5, 5.0, 8.0] {
            let plan = optimal_bypass(&c, s).unwrap();
            assert_eq!(plan.rho, 1.0, "bypassing should not help at {s}");
        }
    }

    #[test]
    fn bypass_at_zero_size() {
        let plan = optimal_bypass(&fig3_curve(), 0.0).unwrap();
        assert_eq!(plan.expected_misses, 24.0);
        assert_eq!(plan.rho, 1.0);
    }

    #[test]
    fn bypass_rejects_invalid_size() {
        assert!(optimal_bypass(&fig3_curve(), -1.0).is_err());
        assert!(optimal_bypass(&fig3_curve(), f64::NAN).is_err());
    }

    #[test]
    fn bypass_matches_hull_when_alpha_is_zero() {
        // When the hull bridge starts at size 0, Talus *is* bypassing, so
        // the two coincide exactly.
        let c = MissCurve::from_samples(&[0.0, 1.0, 2.0, 3.0], &[10.0, 10.0, 10.0, 1.0]).unwrap();
        let talus = talus_curve(&c);
        let bypass = optimal_bypass_curve(&c);
        for p in c.points() {
            assert!((talus.value_at(p.size) - bypass.value_at(p.size)).abs() < 1e-9);
        }
    }
}
