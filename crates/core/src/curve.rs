//! Miss curves: miss rate as a function of cache size.
//!
//! A [`MissCurve`] is a piecewise-linear function from cache capacity to a
//! miss metric (misses per access, MPKI, raw miss counts — any linear,
//! non-negative unit works). Talus's theory (paper §IV) operates directly on
//! these curves: the Theorem-4 sampling transform, convex hulls, and shadow
//! partition planning all take and return [`MissCurve`]s.

use crate::error::CurveError;
use crate::hull::ConvexHull;

/// One sample of a miss curve: a cache size and the miss metric at that size.
///
/// Sizes are in abstract capacity units (the simulator uses cache lines;
/// figures use megabytes). Misses may be in any non-negative linear unit.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CurvePoint {
    /// Cache capacity at which the miss metric was measured.
    pub size: f64,
    /// Miss metric at `size` (e.g. misses per kilo-instruction).
    pub misses: f64,
}

impl CurvePoint {
    /// Creates a curve point.
    ///
    /// # Examples
    ///
    /// ```
    /// use talus_core::CurvePoint;
    /// let p = CurvePoint::new(2.0, 12.0);
    /// assert_eq!(p.size, 2.0);
    /// assert_eq!(p.misses, 12.0);
    /// ```
    pub fn new(size: f64, misses: f64) -> Self {
        CurvePoint { size, misses }
    }
}

impl From<(f64, f64)> for CurvePoint {
    fn from((size, misses): (f64, f64)) -> Self {
        CurvePoint { size, misses }
    }
}

/// A miss curve: miss metric as a piecewise-linear function of cache size.
///
/// Invariants (enforced at construction):
/// - at least one point,
/// - sizes strictly increasing, finite, and non-negative,
/// - miss values finite and non-negative.
///
/// Miss curves are *not* required to be monotonically decreasing: measured
/// curves are noisy, and all the Talus math tolerates (and the convex hull
/// smooths over) local increases.
///
/// # Examples
///
/// The paper's §III example: an application that accesses 2 MB randomly and
/// 3 MB sequentially plateaus at 12 MPKI from 2 MB until a cliff at 5 MB.
///
/// ```
/// use talus_core::MissCurve;
/// let curve = MissCurve::from_samples(
///     &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 10.0],
///     &[24.0, 18.0, 12.0, 12.0, 12.0, 3.0, 3.0],
/// )?;
/// assert_eq!(curve.value_at(4.0), 12.0); // plateau: no gain from 2 to 5 MB
/// let hull = curve.convex_hull();
/// let talus = hull.value_at(4.0);        // Talus target at 4 MB (paper §III)
/// assert!((talus - 6.0).abs() < 1e-9);
/// # Ok::<(), talus_core::CurveError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MissCurve {
    points: Vec<CurvePoint>,
}

impl MissCurve {
    /// Creates a miss curve from points, validating the invariants.
    ///
    /// # Errors
    ///
    /// Returns [`CurveError`] if the points are empty, sizes are not strictly
    /// increasing, or any coordinate is negative or non-finite.
    pub fn new<I>(points: I) -> Result<Self, CurveError>
    where
        I: IntoIterator,
        I::Item: Into<CurvePoint>,
    {
        let points: Vec<CurvePoint> = points.into_iter().map(Into::into).collect();
        if points.is_empty() {
            return Err(CurveError::Empty);
        }
        for (i, p) in points.iter().enumerate() {
            if !p.size.is_finite() || p.size < 0.0 {
                return Err(CurveError::InvalidSize {
                    index: i,
                    value: p.size,
                });
            }
            if !p.misses.is_finite() || p.misses < 0.0 {
                return Err(CurveError::InvalidMissValue {
                    index: i,
                    value: p.misses,
                });
            }
            if i > 0 && points[i - 1].size >= p.size {
                return Err(CurveError::NonIncreasingSizes { index: i });
            }
        }
        Ok(MissCurve { points })
    }

    /// Creates a miss curve from parallel slices of sizes and miss values.
    ///
    /// # Errors
    ///
    /// Returns [`CurveError::LengthMismatch`] if the slices differ in length,
    /// plus all the validation errors of [`MissCurve::new`].
    pub fn from_samples(sizes: &[f64], misses: &[f64]) -> Result<Self, CurveError> {
        if sizes.len() != misses.len() {
            return Err(CurveError::LengthMismatch {
                sizes: sizes.len(),
                misses: misses.len(),
            });
        }
        Self::new(sizes.iter().copied().zip(misses.iter().copied()))
    }

    /// Creates a curve on a uniform grid `0, step, 2*step, …` from miss values.
    ///
    /// This is the natural constructor for monitor output (e.g. a UMON with
    /// one counter per way).
    ///
    /// # Errors
    ///
    /// Returns [`CurveError`] if `misses` is empty, `step` is not positive,
    /// or any value is invalid.
    pub fn from_uniform(step: f64, misses: &[f64]) -> Result<Self, CurveError> {
        if !(step > 0.0) || !step.is_finite() {
            return Err(CurveError::InvalidSize {
                index: 0,
                value: step,
            });
        }
        Self::new(
            misses
                .iter()
                .enumerate()
                .map(|(i, &m)| CurvePoint::new(i as f64 * step, m)),
        )
    }

    /// The curve's sample points, in increasing size order.
    pub fn points(&self) -> &[CurvePoint] {
        &self.points
    }

    /// Number of sample points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the curve has no points. Always `false` for a constructed
    /// curve; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Smallest size covered by the curve.
    pub fn min_size(&self) -> f64 {
        self.points[0].size
    }

    /// Largest size covered by the curve.
    pub fn max_size(&self) -> f64 {
        self.points[self.points.len() - 1].size
    }

    /// Iterates over the curve's points.
    pub fn iter(&self) -> std::slice::Iter<'_, CurvePoint> {
        self.points.iter()
    }

    /// Evaluates the curve at `size` by piecewise-linear interpolation.
    ///
    /// Sizes outside the curve's domain are clamped to the nearest endpoint,
    /// mirroring how a real monitor can only report what it has observed.
    ///
    /// # Examples
    ///
    /// ```
    /// use talus_core::MissCurve;
    /// let c = MissCurve::from_samples(&[0.0, 4.0], &[8.0, 0.0])?;
    /// assert_eq!(c.value_at(1.0), 6.0);
    /// assert_eq!(c.value_at(99.0), 0.0); // clamped
    /// # Ok::<(), talus_core::CurveError>(())
    /// ```
    pub fn value_at(&self, size: f64) -> f64 {
        interpolate(&self.points, size)
    }

    /// Applies the Theorem-4 sampling transform: pseudo-randomly sampling a
    /// fraction `rho` of an access stream yields the miss curve
    /// `m'(s') = rho * m(s'/rho)`.
    ///
    /// The returned curve covers sizes `[rho * min_size, rho * max_size]`;
    /// a partition of size `s'` receiving a `rho` fraction of accesses
    /// behaves like a cache of size `s'/rho` seeing the full stream.
    ///
    /// # Panics
    ///
    /// Panics if `rho` is not in `(0, 1]`.
    ///
    /// # Examples
    ///
    /// ```
    /// use talus_core::MissCurve;
    /// let m = MissCurve::from_samples(&[0.0, 2.0, 5.0], &[24.0, 12.0, 3.0])?;
    /// let sampled = m.sampled(0.5);
    /// // Half the stream into a 1 MB partition behaves like a 2 MB cache,
    /// // contributing half of the 2 MB miss rate.
    /// assert_eq!(sampled.value_at(1.0), 6.0);
    /// # Ok::<(), talus_core::CurveError>(())
    /// ```
    pub fn sampled(&self, rho: f64) -> MissCurve {
        assert!(
            rho > 0.0 && rho <= 1.0 && rho.is_finite(),
            "sampling rate must be in (0, 1], got {rho}"
        );
        MissCurve {
            points: self
                .points
                .iter()
                .map(|p| CurvePoint::new(p.size * rho, p.misses * rho))
                .collect(),
        }
    }

    /// Evaluates the Theorem-4 transform at a single partition size:
    /// `rho * m(s'/rho)`, with the inner size clamped to the curve's domain.
    ///
    /// # Panics
    ///
    /// Panics if `rho` is not in `(0, 1]`.
    pub fn sampled_value_at(&self, rho: f64, size: f64) -> f64 {
        assert!(
            rho > 0.0 && rho <= 1.0 && rho.is_finite(),
            "sampling rate must be in (0, 1], got {rho}"
        );
        rho * self.value_at(size / rho)
    }

    /// Computes the lower convex hull of this curve.
    ///
    /// The hull is the curve Talus traces (Theorem 6): the tight convex
    /// under-approximation of the measured miss curve.
    pub fn convex_hull(&self) -> ConvexHull {
        ConvexHull::of_curve(self)
    }

    /// Returns a copy of the curve with each miss value scaled by `factor`.
    ///
    /// Used to convert between units (misses per access ↔ MPKI given an
    /// access intensity) — both are linear, so scaling commutes with all the
    /// Talus math.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or non-finite.
    pub fn scaled(&self, factor: f64) -> MissCurve {
        assert!(
            factor >= 0.0 && factor.is_finite(),
            "scale factor must be non-negative and finite, got {factor}"
        );
        MissCurve {
            points: self
                .points
                .iter()
                .map(|p| CurvePoint::new(p.size, p.misses * factor))
                .collect(),
        }
    }

    /// Pointwise sum of two curves resampled onto the union of their grids.
    ///
    /// Models the combined misses of two partitions observed side by side.
    pub fn sum(&self, other: &MissCurve) -> MissCurve {
        let mut sizes: Vec<f64> = self
            .points
            .iter()
            .map(|p| p.size)
            .chain(other.points.iter().map(|p| p.size))
            .collect();
        sizes.sort_by(|a, b| a.partial_cmp(b).expect("sizes are finite"));
        sizes.dedup();
        MissCurve {
            points: sizes
                .into_iter()
                .map(|s| CurvePoint::new(s, self.value_at(s) + other.value_at(s)))
                .collect(),
        }
    }

    /// Whether the curve is non-increasing within tolerance `tol`.
    ///
    /// Well-behaved miss curves never get worse with more capacity; measured
    /// curves can violate this slightly (sampling noise, Belady anomalies in
    /// non-stack policies).
    pub fn is_monotone(&self, tol: f64) -> bool {
        self.points
            .windows(2)
            .all(|w| w[1].misses <= w[0].misses + tol)
    }

    /// Whether the curve is convex within tolerance `tol`: every point lies
    /// on or below the chord of its neighbours (a convex function's chords
    /// lie above it), allowing violations up to `tol`.
    pub fn is_convex(&self, tol: f64) -> bool {
        self.points.windows(3).all(|w| {
            let chord = chord_value(w[0], w[2], w[1].size);
            w[1].misses <= chord + tol
        })
    }

    /// Returns the non-increasing envelope of the curve: each point's miss
    /// value replaced by the minimum over all sizes up to and including it.
    ///
    /// Useful to clean measured noise before computing hulls, since a miss
    /// curve that goes *up* with size is a measurement artifact.
    pub fn monotone_envelope(&self) -> MissCurve {
        let mut out = Vec::with_capacity(self.points.len());
        let mut best = f64::INFINITY;
        for p in &self.points {
            best = best.min(p.misses);
            out.push(CurvePoint::new(p.size, best));
        }
        MissCurve { points: out }
    }

    /// Resamples the curve onto an arbitrary increasing grid by linear
    /// interpolation (clamped outside the domain).
    ///
    /// # Errors
    ///
    /// Returns [`CurveError`] if the grid is empty or not strictly
    /// increasing.
    pub fn resampled(&self, grid: &[f64]) -> Result<MissCurve, CurveError> {
        MissCurve::new(grid.iter().map(|&s| CurvePoint::new(s, self.value_at(s))))
    }

    /// Area under the curve between `lo` and `hi` (trapezoidal), a scalar
    /// summary used by tests and ablations to compare curve quality.
    pub fn area(&self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "area bounds must be ordered");
        // Integrate the piecewise-linear function by visiting each knot.
        let mut knots: Vec<f64> = vec![lo, hi];
        for p in &self.points {
            if p.size > lo && p.size < hi {
                knots.push(p.size);
            }
        }
        knots.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        knots
            .windows(2)
            .map(|w| (self.value_at(w[0]) + self.value_at(w[1])) * 0.5 * (w[1] - w[0]))
            .sum()
    }
}

impl<'a> IntoIterator for &'a MissCurve {
    type Item = &'a CurvePoint;
    type IntoIter = std::slice::Iter<'a, CurvePoint>;

    fn into_iter(self) -> Self::IntoIter {
        self.points.iter()
    }
}

/// Piecewise-linear interpolation over sorted points, clamped at the ends.
pub(crate) fn interpolate(points: &[CurvePoint], size: f64) -> f64 {
    debug_assert!(!points.is_empty());
    if size <= points[0].size {
        return points[0].misses;
    }
    let last = points[points.len() - 1];
    if size >= last.size {
        return last.misses;
    }
    // Binary search for the segment containing `size`.
    let idx = points.partition_point(|p| p.size <= size);
    // points[idx-1].size <= size < points[idx].size
    chord_value(points[idx - 1], points[idx], size)
}

/// Value at `x` of the line through points `a` and `b`.
pub(crate) fn chord_value(a: CurvePoint, b: CurvePoint, x: f64) -> f64 {
    debug_assert!(b.size > a.size);
    let t = (x - a.size) / (b.size - a.size);
    a.misses + t * (b.misses - a.misses)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig3_curve() -> MissCurve {
        // §III example: 24 APKI; convex decline to 12 MPKI at 2 MB; plateau
        // at 12 MPKI until the cliff at 5 MB; 3 MPKI from there on.
        MissCurve::from_samples(
            &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 10.0],
            &[24.0, 18.0, 12.0, 12.0, 12.0, 3.0, 3.0],
        )
        .unwrap()
    }

    #[test]
    fn new_rejects_empty() {
        assert_eq!(
            MissCurve::new(Vec::<CurvePoint>::new()).unwrap_err(),
            CurveError::Empty
        );
    }

    #[test]
    fn new_rejects_unsorted_sizes() {
        let err = MissCurve::from_samples(&[0.0, 2.0, 2.0], &[3.0, 2.0, 1.0]).unwrap_err();
        assert_eq!(err, CurveError::NonIncreasingSizes { index: 2 });
    }

    #[test]
    fn new_rejects_negative_misses() {
        let err = MissCurve::from_samples(&[0.0, 1.0], &[3.0, -0.5]).unwrap_err();
        assert!(matches!(err, CurveError::InvalidMissValue { index: 1, .. }));
    }

    #[test]
    fn new_rejects_nan_size() {
        let err = MissCurve::from_samples(&[0.0, f64::NAN], &[3.0, 1.0]).unwrap_err();
        assert!(matches!(err, CurveError::InvalidSize { index: 1, .. }));
    }

    #[test]
    fn new_rejects_negative_size() {
        let err = MissCurve::from_samples(&[-1.0, 2.0], &[3.0, 1.0]).unwrap_err();
        assert!(matches!(err, CurveError::InvalidSize { index: 0, .. }));
    }

    #[test]
    fn from_samples_rejects_length_mismatch() {
        let err = MissCurve::from_samples(&[0.0, 1.0], &[3.0]).unwrap_err();
        assert_eq!(
            err,
            CurveError::LengthMismatch {
                sizes: 2,
                misses: 1
            }
        );
    }

    #[test]
    fn from_uniform_builds_grid() {
        let c = MissCurve::from_uniform(2.0, &[10.0, 5.0, 1.0]).unwrap();
        assert_eq!(c.points()[2].size, 4.0);
        assert_eq!(c.value_at(1.0), 7.5);
    }

    #[test]
    fn from_uniform_rejects_bad_step() {
        assert!(MissCurve::from_uniform(0.0, &[1.0]).is_err());
        assert!(MissCurve::from_uniform(-1.0, &[1.0]).is_err());
    }

    #[test]
    fn value_at_interpolates_and_clamps() {
        let c = fig3_curve();
        assert_eq!(c.value_at(0.0), 24.0);
        assert_eq!(c.value_at(1.0), 18.0);
        assert_eq!(c.value_at(2.0), 12.0);
        assert_eq!(c.value_at(3.5), 12.0); // on the plateau
        assert_eq!(c.value_at(4.5), 7.5); // halfway down the cliff
        assert_eq!(c.value_at(5.0), 3.0);
        assert_eq!(c.value_at(100.0), 3.0);
        assert_eq!(c.value_at(-5.0), 24.0);
    }

    #[test]
    fn sampled_matches_theorem_4() {
        let c = fig3_curve();
        // rho = 1/3 as in the paper's worked example: the alpha partition of
        // size 2/3 MB behaves like a 2 MB cache seen by a third of accesses.
        let rho = 1.0 / 3.0;
        let s1 = rho * 2.0;
        let m1 = c.sampled(rho).value_at(s1);
        assert!((m1 - 12.0 / 3.0).abs() < 1e-12, "expected 4 MPKI, got {m1}");
        // The beta partition: 1-rho of accesses into 10/3 MB behaves like 5 MB.
        let rho2 = 1.0 - rho;
        let m2 = c.sampled(rho2).value_at(10.0 / 3.0);
        assert!((m2 - 2.0).abs() < 1e-12, "expected 2 MPKI, got {m2}");
    }

    #[test]
    fn sampled_value_at_agrees_with_sampled_curve() {
        let c = fig3_curve();
        for &rho in &[0.1, 0.25, 0.5, 0.9, 1.0] {
            for &s in &[0.0, 0.5, 1.0, 2.5, 4.0] {
                let a = c.sampled_value_at(rho, s);
                let b = c.sampled(rho).value_at(s);
                assert!((a - b).abs() < 1e-12, "rho={rho} s={s}: {a} vs {b}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "sampling rate")]
    fn sampled_rejects_zero_rho() {
        fig3_curve().sampled(0.0);
    }

    #[test]
    #[should_panic(expected = "sampling rate")]
    fn sampled_rejects_rho_above_one() {
        fig3_curve().sampled(1.5);
    }

    #[test]
    fn scaled_converts_units() {
        let c = fig3_curve();
        let mpki = c.scaled(0.5);
        assert_eq!(mpki.value_at(2.0), 6.0);
    }

    #[test]
    fn sum_combines_partition_curves() {
        let a = MissCurve::from_samples(&[0.0, 2.0], &[4.0, 0.0]).unwrap();
        let b = MissCurve::from_samples(&[0.0, 4.0], &[8.0, 0.0]).unwrap();
        let s = a.sum(&b);
        assert_eq!(s.value_at(0.0), 12.0);
        assert_eq!(s.value_at(2.0), 4.0);
        assert_eq!(s.value_at(4.0), 0.0);
    }

    #[test]
    fn monotone_checks() {
        assert!(fig3_curve().is_monotone(0.0));
        let noisy = MissCurve::from_samples(&[0.0, 1.0, 2.0], &[5.0, 4.0, 4.5]).unwrap();
        assert!(!noisy.is_monotone(0.0));
        assert!(noisy.is_monotone(0.6));
        let env = noisy.monotone_envelope();
        assert!(env.is_monotone(0.0));
        assert_eq!(env.value_at(2.0), 4.0);
    }

    #[test]
    fn convexity_checks() {
        // fig3 has a plateau followed by a cliff at 5 MB: not convex.
        assert!(!fig3_curve().is_convex(1e-12));
        // Slopes -6, -3, 0: magnitudes shrink with size, so this is convex.
        let convex =
            MissCurve::from_samples(&[0.0, 2.0, 5.0, 10.0], &[24.0, 12.0, 3.0, 3.0]).unwrap();
        assert!(convex.is_convex(1e-12));
    }

    #[test]
    fn resampled_evaluates_on_grid() {
        let c = fig3_curve();
        let r = c.resampled(&[1.0, 3.0, 7.0]).unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(r.value_at(3.0), 12.0);
        assert_eq!(r.value_at(7.0), 3.0);
    }

    #[test]
    fn area_of_linear_segment() {
        let c = MissCurve::from_samples(&[0.0, 2.0], &[4.0, 0.0]).unwrap();
        assert!((c.area(0.0, 2.0) - 4.0).abs() < 1e-12);
        assert!((c.area(0.0, 1.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn into_iterator_for_reference() {
        let c = fig3_curve();
        let n = (&c).into_iter().count();
        assert_eq!(n, c.len());
    }
}
