//! # talus-core — the mathematics of Talus
//!
//! A faithful implementation of the analytical machinery from
//! *“Talus: A Simple Way to Remove Cliffs in Cache Performance”*
//! (Beckmann & Sanchez, HPCA 2015).
//!
//! Caches often exhibit **performance cliffs**: ranges of sizes where extra
//! capacity buys nothing, followed by a threshold where the working set
//! suddenly fits and the miss rate collapses. Cliffs are synonymous with
//! *non-convex miss curves*. Talus removes them by splitting a single access
//! stream across two **shadow partitions** that emulate a smaller cache (α)
//! and a larger cache (β); the combination traces the **convex hull** of the
//! original miss curve.
//!
//! This crate is pure math — no simulator, no hardware model. It provides:
//!
//! - [`MissCurve`]: piecewise-linear miss curves and the Theorem-4 sampling
//!   transform `m'(s') = ρ·m(s'/ρ)`;
//! - [`ConvexHull`]: linear-time lower convex hulls (the curve Talus traces);
//! - [`plan`] / [`ShadowConfig`]: the Lemma-5/Theorem-6 shadow-partition
//!   solver, including the paper's §VI safety margin and way-partitioning
//!   coarsening correction;
//! - [`bypass`]: the optimal-bypassing model of §V-C, which Talus provably
//!   dominates (Corollary 8);
//! - [`source`]: the [`CurveSource`] seam separating curve producers
//!   (monitors, models, replays) from curve consumers (planners, services);
//! - [`limits`]: interchange bounds (frame/curve/batch sizes) every
//!   serialization of these types — e.g. `talus-serve`'s wire protocol —
//!   must agree on.
//!
//! ## Quickstart
//!
//! ```
//! use talus_core::{plan, MissCurve, TalusOptions};
//!
//! // A miss curve with a plateau from 2 MB to a cliff at 5 MB (paper §III).
//! let curve = MissCurve::from_samples(
//!     &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 10.0],
//!     &[24.0, 18.0, 12.0, 12.0, 12.0, 3.0, 3.0],
//! )?;
//!
//! // Plan a 4 MB cache: Talus bridges the cliff with two shadow partitions.
//! let plan = plan(&curve, 4.0, TalusOptions::exact())?;
//! let cfg = plan.shadow().expect("4 MB sits on the plateau");
//!
//! // One third of accesses go to a 2/3 MB partition emulating a 2 MB cache;
//! // the rest go to a 10/3 MB partition emulating a 5 MB cache.
//! assert!((cfg.rho - 1.0 / 3.0).abs() < 1e-9);
//! assert!((cfg.expected_misses - 6.0).abs() < 1e-9); // down from 12 MPKI
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Units
//!
//! Sizes and miss metrics are unit-agnostic `f64`s: everything in the theory
//! is linear, so lines/bytes/megabytes and misses-per-access/MPKI/raw counts
//! all work, as long as each curve is internally consistent. The companion
//! `talus-sim` crate uses cache lines and misses-per-access.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod bypass;
mod config;
mod curve;
mod error;
pub mod fault;
mod hash;
pub mod health;
mod hull;
pub mod limits;
pub mod source;

pub use config::{
    apply_margin, plan, plan_with_hull, shadow_miss_rate, talus_curve, ShadowConfig, TalusOptions,
    TalusPlan,
};
pub use curve::{CurvePoint, MissCurve};
pub use error::{CurveError, PlanError};
pub use fault::{FaultAction, FaultDirective, FaultScript};
pub use hash::{mix64, shard_of, ShardTopology, SHARD_SEED};
pub use health::{PlaneHealth, ShardHealth, ShardState, StoreHealth};
pub use hull::ConvexHull;
pub use source::{CurveSource, ReplaySource};
