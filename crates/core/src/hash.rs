//! A cheap, deterministic 64-bit mixing hash.
//!
//! Pure integer arithmetic — no randomness, no state — so it sits in L1
//! alongside the rest of the math. Upper layers use it wherever a fast,
//! seedable, uniform hash of a small integer key is needed: `talus-sim`'s
//! monitors (the Mattson `last_seen` map, the SHARDS-style sampling
//! filter) re-export it, and `talus-serve`'s shard router hashes cache
//! ids through it without pulling in the simulator.

/// A cheap, high-quality 64-bit mixing hash (the SplitMix64 finalizer with
/// a seed fold).
///
/// Every input bit affects every output bit, at a fixed cost of a handful
/// of ALU ops (three multiplies, a few shifts and xors). Deterministic:
/// the same `(seed, value)` pair always produces the same output, which is
/// what makes it usable for reproducible sampling decisions and stable
/// shard routing.
///
/// # Examples
///
/// ```
/// use talus_core::mix64;
/// assert_eq!(mix64(0xFEED, 42), mix64(0xFEED, 42)); // deterministic
/// assert_ne!(mix64(0xFEED, 42), mix64(0xBEEF, 42)); // seed matters
/// ```
#[inline]
pub fn mix64(seed: u64, value: u64) -> u64 {
    let mut z = value ^ seed ^ 0x9E37_79B9_7F4A_7C15;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seed folded into [`shard_of`], so shard placement is a fixed, documented
/// function of the cache id alone — stable across restarts and across
/// crates. Both the serving plane's router and the persistence layer's
/// journal files use this placement; sharing one constant is what lets a
/// store written by an N-shard plane be restored file-by-file into an
/// N-shard plane without any cross-shard record exchange.
pub const SHARD_SEED: u64 = 0x7A1D_5EED_CA0E_51D5;

/// The canonical shard placement: the index cache `id` routes to in an
/// `n`-shard layout, `mix64(SHARD_SEED, id) % n`.
///
/// Every component that partitions per-cache state by id — the
/// `talus-serve` router, the `talus-store` journal — must use this
/// function so their layouts coincide for equal `n`. Placement depends on
/// `n`: re-sharding a persisted layout requires replaying records into the
/// new layout, not renaming files.
///
/// # Panics
///
/// Panics if `n` is zero.
///
/// # Examples
///
/// ```
/// use talus_core::shard_of;
/// assert_eq!(shard_of(42, 1), 0); // one shard takes everything
/// assert!(shard_of(42, 4) < 4);
/// assert_eq!(shard_of(42, 4), shard_of(42, 4)); // pure function
/// ```
#[inline]
pub fn shard_of(id: u64, n: usize) -> usize {
    assert!(n > 0, "need at least one shard");
    (mix64(SHARD_SEED, id) % n as u64) as usize
}

/// A contiguous slice of the canonical shard layout owned by one process.
///
/// A cluster splits the `total` global shards of a plane across N server
/// processes; each process owns the contiguous range
/// `[first, first + count)`. Placement stays the pure function
/// [`shard_of`]`(id, total)` — the topology only says which of those
/// global shards are *local* — so routing is identical whether the plane
/// runs in one process ([`ShardTopology::solo`]) or many, and a journal
/// written under one member's topology restores under the same one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardTopology {
    total: usize,
    first: usize,
    count: usize,
}

impl ShardTopology {
    /// The single-process topology: one process owns all `n` shards.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn solo(n: usize) -> Self {
        Self::range(n, 0, n)
    }

    /// A member owning global shards `[first, first + count)` of `total`.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or the range does not fit in `total`.
    pub fn range(total: usize, first: usize, count: usize) -> Self {
        assert!(count > 0, "a member must own at least one shard");
        assert!(
            first.checked_add(count).is_some_and(|end| end <= total),
            "shard range [{first}, {first}+{count}) exceeds total {total}"
        );
        Self {
            total,
            first,
            count,
        }
    }

    /// Global shards in the whole plane.
    pub fn total(&self) -> usize {
        self.total
    }

    /// First global shard this member owns.
    pub fn first(&self) -> usize {
        self.first
    }

    /// Number of contiguous global shards this member owns.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Whether this member owns the whole plane (single-process layout).
    pub fn is_solo(&self) -> bool {
        self.first == 0 && self.count == self.total
    }

    /// The global shard cache `id` routes to: [`shard_of`]`(id, total)`.
    pub fn global_shard(&self, id: u64) -> usize {
        shard_of(id, self.total)
    }

    /// The member-local shard index for `id`, if this member owns it.
    pub fn local_shard(&self, id: u64) -> Option<usize> {
        let g = self.global_shard(id);
        self.owns_shard(g).then(|| g - self.first)
    }

    /// Whether this member owns the shard cache `id` routes to.
    pub fn owns(&self, id: u64) -> bool {
        self.owns_shard(self.global_shard(id))
    }

    /// Whether global shard `g` falls in this member's owned range.
    pub fn owns_shard(&self, g: usize) -> bool {
        g >= self.first && g < self.first + self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avalanche_on_single_bit_flips() {
        // Flipping any one input bit should flip roughly half the output
        // bits — a weak but cheap avalanche sanity check.
        for bit in 0..64 {
            let a = mix64(1, 0x0123_4567_89AB_CDEF);
            let b = mix64(1, 0x0123_4567_89AB_CDEF ^ (1 << bit));
            let flipped = (a ^ b).count_ones();
            assert!((16..=48).contains(&flipped), "bit {bit}: {flipped} flips");
        }
    }

    #[test]
    fn sequential_values_spread_across_buckets() {
        // The shard-router use case: consecutive ids must not collapse
        // onto one bucket for any small modulus.
        for buckets in [2u64, 3, 4, 8] {
            let mut counts = vec![0u32; buckets as usize];
            for id in 0..1000u64 {
                counts[(mix64(0x5EED, id) % buckets) as usize] += 1;
            }
            let min = *counts.iter().min().unwrap();
            let max = *counts.iter().max().unwrap();
            assert!(
                min as f64 > 0.6 * (1000.0 / buckets as f64),
                "{buckets} buckets: min {min}, max {max}"
            );
        }
    }

    #[test]
    fn shard_of_is_total_and_balanced() {
        for n in [1usize, 2, 3, 4, 8] {
            let mut counts = vec![0u32; n];
            for id in 0..1000u64 {
                counts[shard_of(id, n)] += 1;
            }
            assert!(counts.iter().all(|&c| c > 0), "{n} shards: {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn shard_of_rejects_zero_shards() {
        shard_of(1, 0);
    }

    #[test]
    fn topology_partitions_every_id_exactly_once() {
        // Three members covering 6 shards: every id is owned by exactly
        // one member, at a local index consistent with the global one.
        let members = [
            ShardTopology::range(6, 0, 2),
            ShardTopology::range(6, 2, 2),
            ShardTopology::range(6, 4, 2),
        ];
        for id in 0..500u64 {
            let owners: Vec<_> = members.iter().filter(|t| t.owns(id)).collect();
            assert_eq!(owners.len(), 1, "id {id} owned once");
            let t = owners[0];
            let local = t.local_shard(id).unwrap();
            assert_eq!(t.first() + local, shard_of(id, 6));
        }
    }

    #[test]
    fn solo_topology_matches_shard_of() {
        let t = ShardTopology::solo(4);
        assert!(t.is_solo());
        for id in 0..100u64 {
            assert_eq!(t.local_shard(id), Some(shard_of(id, 4)));
        }
        assert!(!ShardTopology::range(4, 1, 3).is_solo());
    }

    #[test]
    #[should_panic(expected = "exceeds total")]
    fn topology_rejects_overhanging_range() {
        ShardTopology::range(4, 3, 2);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn topology_rejects_empty_range() {
        ShardTopology::range(4, 2, 0);
    }
}
