//! Property-based tests for the Talus math.
//!
//! These check the paper's theorems on *arbitrary* miss curves, not just the
//! worked examples: hulls are convex minorants, the Theorem-4 transform is
//! consistent, plans land on the hull, and bypassing never beats Talus.

use proptest::prelude::*;
use talus_core::bypass::{optimal_bypass, optimal_bypass_curve};
use talus_core::{plan, shadow_miss_rate, talus_curve, MissCurve, TalusOptions, TalusPlan};

/// Strategy: an arbitrary valid miss curve with 2..=40 points, sizes on an
/// integer-ish grid, non-negative miss values. Optionally forced monotone
/// non-increasing (realistic miss curves).
fn arb_curve(monotone: bool) -> impl Strategy<Value = MissCurve> {
    (2usize..40, any::<u64>()).prop_map(move |(n, seed)| {
        // Simple deterministic PRNG so shrinking stays meaningful.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut sizes = Vec::with_capacity(n);
        let mut s = 0.0f64;
        for _ in 0..n {
            sizes.push(s);
            s += 1.0 + (next() % 8) as f64 / 2.0;
        }
        let mut misses = Vec::with_capacity(n);
        let mut m = 100.0 + (next() % 100) as f64;
        for _ in 0..n {
            misses.push(m);
            let drop = (next() % 32) as f64;
            if monotone {
                m = (m - drop).max(0.0);
            } else {
                // Mostly decreasing with occasional bumps (measurement noise).
                let bump = if next() % 5 == 0 {
                    (next() % 8) as f64
                } else {
                    0.0
                };
                m = (m - drop + bump).max(0.0);
            }
        }
        MissCurve::from_samples(&sizes, &misses).expect("generated curve is valid")
    })
}

proptest! {
    #[test]
    fn hull_is_convex_minorant(curve in arb_curve(false)) {
        let hull = curve.convex_hull();
        // Convex.
        prop_assert!(hull.to_curve().is_convex(1e-7));
        // Minorant: never above the curve at any sampled size.
        for p in curve.points() {
            prop_assert!(hull.value_at(p.size) <= p.misses + 1e-7);
        }
        // Touches the curve at its own vertices.
        for v in hull.vertices() {
            prop_assert!((curve.value_at(v.size) - v.misses).abs() < 1e-7);
        }
        // Endpoints preserved.
        prop_assert_eq!(hull.min_size(), curve.min_size());
        prop_assert_eq!(hull.max_size(), curve.max_size());
    }

    #[test]
    fn hull_is_idempotent(curve in arb_curve(false)) {
        let once = curve.convex_hull().to_curve();
        let twice = once.convex_hull().to_curve();
        prop_assert_eq!(once.len(), twice.len());
        for (a, b) in once.points().iter().zip(twice.points()) {
            prop_assert!((a.size - b.size).abs() < 1e-12);
            prop_assert!((a.misses - b.misses).abs() < 1e-12);
        }
    }

    #[test]
    fn theorem4_transform_scales_consistently(
        curve in arb_curve(true),
        rho_pct in 1u32..=100,
    ) {
        let rho = rho_pct as f64 / 100.0;
        let sampled = curve.sampled(rho);
        // m'(rho * s) == rho * m(s) at every original knot.
        for p in curve.points() {
            let got = sampled.value_at(rho * p.size);
            prop_assert!((got - rho * p.misses).abs() < 1e-7,
                "at size {}: {} vs {}", p.size, got, rho * p.misses);
        }
    }

    #[test]
    fn proportional_split_is_invisible(curve in arb_curve(true), pct in 1u32..100) {
        // Splitting a cache in proportion to its access split leaves the
        // total miss rate unchanged (paper §IV-B intuition, Figs. 2a/2b).
        let rho = pct as f64 / 100.0;
        let s = curve.max_size() * 0.7;
        let combined = shadow_miss_rate(&curve, rho * s, (1.0 - rho) * s, rho);
        prop_assert!((combined - curve.value_at(s)).abs() < 1e-7);
    }

    #[test]
    fn plan_lands_on_hull(curve in arb_curve(true), frac in 0.0f64..1.0) {
        let hull = curve.convex_hull();
        let s = curve.min_size() + frac * (curve.max_size() - curve.min_size());
        let p = plan(&curve, s, TalusOptions::exact()).unwrap();
        prop_assert!((p.expected_misses() - hull.value_at(s)).abs() < 1e-7);
        // And the shadow formula agrees with the plan's expectation.
        if let TalusPlan::Shadow(cfg) = p {
            let m = shadow_miss_rate(&curve, cfg.s1, cfg.s2, cfg.rho);
            // With the exact rho, Eq. 2 must land on the hull; tolerance is
            // loose because s1/rho hits interpolated (non-knot) sizes.
            prop_assert!(m <= curve.value_at(s) + 1e-7);
            // Partition sizes are a valid decomposition.
            prop_assert!(cfg.s1 >= 0.0 && cfg.s2 >= 0.0);
            prop_assert!((cfg.s1 + cfg.s2 - s).abs() < 1e-9);
            prop_assert!(cfg.rho > 0.0 && cfg.rho < 1.0);
            prop_assert!(cfg.alpha <= s && s < cfg.beta);
        }
    }

    #[test]
    fn plan_with_margin_is_still_valid(curve in arb_curve(true), frac in 0.0f64..1.0) {
        let s = curve.min_size() + frac * (curve.max_size() - curve.min_size());
        let p = plan(&curve, s, TalusOptions::new()).unwrap();
        if let TalusPlan::Shadow(cfg) = p {
            prop_assert!(cfg.rho > 0.0 && cfg.rho < 1.0);
            prop_assert!(cfg.rho >= cfg.ideal_rho);
            // Margin shrinks emulated alpha and grows emulated beta.
            prop_assert!(cfg.emulated_alpha() <= cfg.alpha + 1e-9);
            prop_assert!(cfg.emulated_beta() >= cfg.beta - 1e-9);
        }
    }

    #[test]
    fn bypass_sandwiched_between_hull_and_curve(curve in arb_curve(true)) {
        let talus = talus_curve(&curve);
        let bypass = optimal_bypass_curve(&curve);
        for p in curve.points() {
            let b = bypass.value_at(p.size);
            prop_assert!(b >= talus.value_at(p.size) - 1e-7,
                "bypass beats hull at {}", p.size);
            prop_assert!(b <= p.misses + 1e-7,
                "bypass worse than original at {}", p.size);
        }
    }

    #[test]
    fn bypass_plan_is_internally_consistent(curve in arb_curve(true), frac in 0.0f64..1.0) {
        let s = curve.min_size() + frac * (curve.max_size() - curve.min_size());
        let plan = optimal_bypass(&curve, s).unwrap();
        prop_assert!(plan.rho > 0.0 && plan.rho <= 1.0);
        let total = plan.admitted_misses(&curve) + plan.bypassed_misses(&curve);
        prop_assert!((total - plan.expected_misses).abs() < 1e-7);
    }

    #[test]
    fn monotone_envelope_is_monotone_minorant(curve in arb_curve(false)) {
        let env = curve.monotone_envelope();
        prop_assert!(env.is_monotone(1e-12));
        for (e, p) in env.points().iter().zip(curve.points()) {
            prop_assert!(e.misses <= p.misses);
        }
    }

    #[test]
    fn sum_is_commutative(a in arb_curve(true), b in arb_curve(true)) {
        let ab = a.sum(&b);
        let ba = b.sum(&a);
        for p in ab.points() {
            prop_assert!((p.misses - ba.value_at(p.size)).abs() < 1e-7);
        }
    }
}
